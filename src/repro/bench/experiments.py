"""One function per table/figure of the paper's evaluation.

Each function runs the corresponding experiment on the simulated testbed
and returns an :class:`ExperimentResult` whose ``render()`` prints the same
rows/series the paper plots.  Parameters default to *fast* settings so the
benchmark suite completes in minutes; pass ``full=True`` (or the explicit
knobs) for the paper-scale sweeps recorded in EXPERIMENTS.md.

Paper-vs-measured expectations (the *shape* claims each experiment must
reproduce) are documented per function and asserted loosely in
``tests/bench/test_experiments.py``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Sequence

from repro.baselines.volcano import VolcanoEngine  # noqa: F401 (re-export convenience)
from repro.bench.reporting import format_series, format_table
from repro.bench.runner import (
    POSTGRES,
    RunResult,
    run_batch,
    run_closed_loop,
)
from repro.bench.workload import (
    mix_spec_factory,
    q32_limited_plans_workload,
    q32_random_workload,
    q32_selectivity_workload,
    ssb_mix_workload,
    tpch_q1_workload,
)
from repro.data.ssb import generate_ssb
from repro.data.tpch import generate_tpch
from repro.engine.config import CJOIN, CJOIN_SP, QPIPE, QPIPE_CS, QPIPE_SP
from repro.engine.wop import WindowOfOpportunity, wop_gain
from repro.sim.machine import GB, PAPER_MACHINE
from repro.sim.metrics import CATEGORIES
from repro.storage.manager import StorageConfig

MEMORY = StorageConfig(resident="memory")


def disk_config(
    bufferpool_bytes: float = 48 * GB,
    os_cache_bytes: float = 32 * GB,
    direct_io: bool = False,
) -> StorageConfig:
    return StorageConfig(
        resident="disk",
        bufferpool_bytes=bufferpool_bytes,
        os_cache_bytes=os_cache_bytes,
        direct_io=direct_io,
    )


@dataclass
class ExperimentResult:
    """Structured output of one experiment."""

    experiment: str
    tables: list[str] = field(default_factory=list)
    data: dict[str, Any] = field(default_factory=dict)

    def render(self) -> str:
        return "\n\n".join(self.tables)

    def show(self) -> None:  # pragma: no cover - console convenience
        print(self.render())


def _rt_series(results: dict[str, list[RunResult]]) -> dict[str, list[float]]:
    return {name: [r.mean_response for r in rs] for name, rs in results.items()}


# ---------------------------------------------------------------------------
# Figure 2b: Windows of Opportunity
# ---------------------------------------------------------------------------


def fig2_wop(points: int = 11) -> ExperimentResult:
    """Paper Figure 2b: step vs linear WoP gain curves.

    Expectation: step = 100% gain for any arrival before the host's first
    output, then 0; linear = gain proportional to the remaining progress."""
    xs = [i / (points - 1) for i in range(points)]
    series = {
        "step_gain_%": [100 * wop_gain(WindowOfOpportunity.STEP, x) for x in xs],
        "linear_gain_%": [100 * wop_gain(WindowOfOpportunity.LINEAR, x) for x in xs],
    }
    table = format_series(
        "Figure 2b: Window of Opportunity gain vs host progress at arrival",
        "host_progress", [f"{x:.1f}" for x in xs], series,
    )
    return ExperimentResult("fig2", [table], {"xs": xs, **series})


# ---------------------------------------------------------------------------
# Figure 6: push-based vs pull-based SP (TPC-H Q1, memory-resident, SF=1)
# ---------------------------------------------------------------------------


def fig6_push_vs_pull(
    concurrency: Sequence[int] = (1, 2, 4, 8, 16, 32),
    sf: float = 1.0,
    seed: int = 42,
    full: bool = False,
) -> ExperimentResult:
    """Paper Figure 6a/b/c: identical TPC-H Q1 queries, No-SP vs circular
    scans (CS), with FIFO (push) vs SPL (pull) communication.

    Expectations: CS(FIFO) is worse than No-SP at low concurrency (producer
    serialization) and uses ~3 cores at 64 queries; CS(SPL) is never worse
    than No-SP and cuts CS(FIFO)'s response time by ~82-86% at high
    concurrency; No-SP degrades sharply once plans exceed 24 cores."""
    if full:
        concurrency = (1, 2, 4, 8, 16, 32, 64)
    ds = generate_tpch(sf, seed)
    cells: dict[str, list[RunResult]] = {
        "NoSP(FIFO)": [],
        "CS(FIFO)": [],
        "NoSP(SPL)": [],
        "CS(SPL)": [],
    }
    selectors = {
        "NoSP(FIFO)": QPIPE.with_comm("fifo"),
        "CS(FIFO)": QPIPE_CS.with_comm("fifo"),
        "NoSP(SPL)": QPIPE.with_comm("spl"),
        "CS(SPL)": QPIPE_CS.with_comm("spl"),
    }
    for n in concurrency:
        workload = tpch_q1_workload(n, ds)
        for name, cfg in selectors.items():
            cells[name].append(run_batch(ds.tables, cfg, workload, MEMORY))
    rt = _rt_series(cells)
    t_resp = format_series(
        "Figure 6a/6b: TPC-H Q1 response time (s), push vs pull SP",
        "queries", list(concurrency), rt,
    )
    speedups = {
        "speedup_FIFO": [
            rt["NoSP(FIFO)"][i] / rt["CS(FIFO)"][i] for i in range(len(concurrency))
        ],
        "speedup_SPL": [
            rt["NoSP(SPL)"][i] / rt["CS(SPL)"][i] for i in range(len(concurrency))
        ],
    }
    t_speed = format_series(
        "Figure 6c: speedup of sharing (NoSP/CS) per communication model",
        "queries", list(concurrency), speedups,
        note="paper: FIFO < 1 at low concurrency; SPL >= 1 everywhere",
    )
    hi = len(concurrency) - 1
    reduction = 100 * (1 - rt["CS(SPL)"][hi] / rt["CS(FIFO)"][hi])
    t_meta = format_table(
        "Figure 6 measurements at highest concurrency",
        ["metric", "CS(FIFO)", "CS(SPL)"],
        [
            ["response (s)", rt["CS(FIFO)"][hi], rt["CS(SPL)"][hi]],
            ["avg cores used", cells["CS(FIFO)"][hi].avg_cores_used, cells["CS(SPL)"][hi].avg_cores_used],
            ["SPL reduction vs FIFO (%)", "", reduction],
        ],
        note="paper at 64 queries: CS(FIFO) 60s/3.1 cores; CS(SPL) 8s/19.1 cores; 82-86% reduction",
    )
    return ExperimentResult(
        "fig6",
        [t_resp, t_speed, t_meta],
        {"concurrency": list(concurrency), "rt": rt, "speedups": speedups, "reduction": reduction, "cells": cells},
    )


# ---------------------------------------------------------------------------
# Figure 10: impact of concurrency (SSB Q3.2, SF=1, memory & disk)
# ---------------------------------------------------------------------------


def fig10_concurrency(
    concurrency: Sequence[int] = (1, 4, 16, 64, 256),
    sf: float = 1.0,
    seed: int = 42,
    resident: Sequence[str] = ("memory", "disk"),
    full: bool = False,
) -> ExperimentResult:
    """Paper Figure 10: random-predicate Q3.2 instances, 1..256 queries.

    Expectations: at high concurrency CJOIN < QPipe-SP < QPipe-CS < QPipe;
    QPipe saturates 24 cores and degrades sharply from ~32 queries; CJOIN
    uses only a few cores; on disk, circular scans cut response 80-97% vs
    independent scans at high concurrency."""
    if full:
        concurrency = (1, 2, 4, 8, 16, 32, 64, 128, 256)
    ds = generate_ssb(sf, seed)
    configs = (QPIPE, QPIPE_CS, QPIPE_SP, CJOIN)
    tables: list[str] = []
    data: dict[str, Any] = {"concurrency": list(concurrency)}
    for res in resident:
        storage = MEMORY if res == "memory" else disk_config()
        cells: dict[str, list[RunResult]] = {c.name: [] for c in configs}
        for n in concurrency:
            workload = q32_random_workload(n, seed)
            for cfg in configs:
                cells[cfg.name].append(run_batch(ds.tables, cfg, workload, storage))
        rt = _rt_series(cells)
        tables.append(
            format_series(
                f"Figure 10 ({res}-resident): SSB Q3.2 response time (s)",
                "queries", list(concurrency), rt,
            )
        )
        hi = len(concurrency) - 1
        meta_rows = [
            [c.name, cells[c.name][hi].avg_cores_used, cells[c.name][hi].avg_read_mb_s]
            for c in configs
        ]
        tables.append(
            format_table(
                f"Figure 10 ({res}) measurements at {concurrency[hi]} queries",
                ["config", "avg cores", "read MB/s"],
                meta_rows,
                note="paper (memory, 256q): cores 23.91/19.72/18.75/3.47; "
                "(disk, 256q): read rate 1.88/74.47/97.67/156.11 MB/s",
            )
        )
        data[res] = {"rt": rt, "cells": cells}
    sp_share = data[resident[0]]["cells"]["QPipe-SP"][-1].sharing
    tables.append(
        format_table(
            "QPipe-SP sharing opportunities at highest concurrency",
            ["join", "times shared"],
            [[k, v] for k, v in sorted(sp_share.items())],
            note="paper (256q): 1st hash-join 126, 2nd 17, 3rd 1 (on average)",
        )
    )
    return ExperimentResult("fig10", tables, data)


# ---------------------------------------------------------------------------
# Figure 11: impact of selectivity (8 queries, SF=10, memory-resident)
# ---------------------------------------------------------------------------


def fig11_selectivity(
    selectivities: Sequence[float] = (0.001, 0.01, 0.10, 0.30),
    n_queries: int = 8,
    sf: float = 10.0,
    seed: int = 42,
    full: bool = False,
) -> ExperimentResult:
    """Paper Figure 11: modified Q3.2 at 0.1%..30% fact selectivity, low
    concurrency (8 queries: no CPU contention).

    Expectations: both degrade with selectivity; CJOIN always worse than
    QPipe-SP (admission grows with selected tuples; shared operators pay
    bookkeeping); CJOIN's "Joins" CPU exceeds QPipe-SP's at every
    selectivity while QPipe-SP's "Hashing" grows faster (it hashes per
    query; CJOIN hashes once)."""
    if full:
        selectivities = (0.001, 0.01, 0.10, 0.20, 0.30)
    ds = generate_ssb(sf, seed)
    cells: dict[str, list[RunResult]] = {"QPipe-SP": [], "CJOIN": []}
    for sel in selectivities:
        workload = q32_selectivity_workload(n_queries, sel, seed)
        cells["QPipe-SP"].append(run_batch(ds.tables, QPIPE_SP, workload, MEMORY))
        cells["CJOIN"].append(run_batch(ds.tables, CJOIN, workload, MEMORY))
    rt = _rt_series(cells)
    rt["CJOIN admission"] = [r.admission_seconds for r in cells["CJOIN"]]
    xs = [f"{100 * s:g}%" for s in selectivities]
    tables = [
        format_series(
            f"Figure 11: response time (s) vs selectivity ({n_queries} queries, SF={sf:g}, memory)",
            "selectivity", xs, rt,
            note="paper: CJOIN worse than QPipe-SP at all selectivities at low concurrency",
        )
    ]
    for name in ("QPipe-SP", "CJOIN"):
        rows = [
            [xs[i]] + [cells[name][i].cpu_breakdown[cat] for cat in CATEGORIES]
            for i in range(len(selectivities))
        ]
        tables.append(
            format_table(
                f"Figure 11 CPU-time breakdown, {name} (core-seconds)",
                ["selectivity", *CATEGORIES],
                rows,
            )
        )
    return ExperimentResult(
        "fig11", tables, {"selectivities": list(selectivities), "rt": rt, "cells": cells}
    )


# ---------------------------------------------------------------------------
# Figure 12: selectivity x concurrency (30% selectivity, 16..256 queries)
# ---------------------------------------------------------------------------


def fig12_selectivity_concurrency(
    concurrency: Sequence[int] = (16, 32, 64),
    selectivity: float = 0.30,
    sf: float = 10.0,
    seed: int = 42,
    full: bool = False,
) -> ExperimentResult:
    """Paper Figure 12: 30% selectivity, rising concurrency.

    Expectations: QPipe-SP's CPU time (and response) grows superlinearly
    with queries; CJOIN's "Hashing" stays flat (hashing is shared) and it
    wins at high concurrency -- the reverse of Figure 11's low-concurrency
    verdict."""
    if full:
        concurrency = (16, 32, 64, 128, 256)
    ds = generate_ssb(sf, seed)
    cells: dict[str, list[RunResult]] = {"QPipe-SP": [], "CJOIN": []}
    for n in concurrency:
        workload = q32_selectivity_workload(n, selectivity, seed)
        cells["QPipe-SP"].append(run_batch(ds.tables, QPIPE_SP, workload, MEMORY))
        cells["CJOIN"].append(run_batch(ds.tables, CJOIN, workload, MEMORY))
    rt = _rt_series(cells)
    rt["CJOIN admission"] = [r.admission_seconds for r in cells["CJOIN"]]
    tables = [
        format_series(
            f"Figure 12: response time (s) at {100 * selectivity:g}% selectivity (SF={sf:g}, memory)",
            "queries", list(concurrency), rt,
            note="paper: crossover -- CJOIN wins at high concurrency",
        )
    ]
    hashing = {
        name: [cells[name][i].cpu_breakdown["hashing"] for i in range(len(concurrency))]
        for name in cells
    }
    tables.append(
        format_series(
            "Figure 12: 'Hashing' CPU core-seconds (flat for CJOIN = shared hashing)",
            "queries", list(concurrency), hashing,
        )
    )
    return ExperimentResult(
        "fig12",
        tables,
        {"concurrency": list(concurrency), "rt": rt, "hashing": hashing, "cells": cells},
    )


# ---------------------------------------------------------------------------
# Figure 13: impact of scale factor (8 queries, disk, +- direct I/O)
# ---------------------------------------------------------------------------


def fig13_scale_factor(
    scale_factors: Sequence[float] = (1.0, 10.0, 30.0),
    n_queries: int = 8,
    seed: int = 42,
    full: bool = False,
) -> ExperimentResult:
    """Paper Figure 13: disk-resident databases, SF 1..100, with and
    without direct I/O.

    Expectations: response grows ~linearly with SF for both; QPipe-SP's
    slope is smaller than CJOIN's; direct I/O (no FS cache/read-ahead)
    exposes the CJOIN preprocessor's overhead -- its read rate drops well
    below QPipe-SP's, while buffered I/O masks it."""
    if full:
        scale_factors = (1.0, 10.0, 30.0, 50.0, 100.0)
    series: dict[str, list[float]] = {
        "QPipe-SP": [],
        "CJOIN": [],
        "QPipe-SP (Direct I/O)": [],
        "CJOIN (Direct I/O)": [],
    }
    read_rates: dict[str, list[float]] = {k: [] for k in series}
    for sf in scale_factors:
        ds = generate_ssb(sf, seed)
        workload = q32_random_workload(n_queries, seed)
        for direct in (False, True):
            storage = disk_config(direct_io=direct)
            for cfg in (QPIPE_SP, CJOIN):
                r = run_batch(ds.tables, cfg, workload, storage)
                key = f"{cfg.name} (Direct I/O)" if direct else cfg.name
                series[key].append(r.mean_response)
                read_rates[key].append(r.avg_read_mb_s)
    tables = [
        format_series(
            f"Figure 13: response time (s) vs scale factor ({n_queries} queries, disk)",
            "SF", list(scale_factors), series,
            note="paper at SF=100: read rate QPipe-SP 97 vs CJOIN 70 MB/s buffered; "
            "216 vs 205 MB/s direct",
        ),
        format_series(
            "Figure 13: average read rate (MB/s)",
            "SF", list(scale_factors), read_rates,
        ),
    ]
    return ExperimentResult(
        "fig13",
        tables,
        {"scale_factors": list(scale_factors), "rt": series, "read_rates": read_rates},
    )


# ---------------------------------------------------------------------------
# Figure 14: impact of similarity (16 possible plans, SF=1, disk)
# ---------------------------------------------------------------------------


def fig14_similarity(
    concurrency: Sequence[int] = (1, 8, 64, 256),
    n_plans: int = 16,
    sf: float = 1.0,
    seed: int = 42,
    full: bool = False,
) -> ExperimentResult:
    """Paper Figure 14: 16 possible Q3.2 plans, disk-resident SF=1.

    Expectations at 256 queries: CJOIN-SP < QPipe-SP < CJOIN < QPipe-CS;
    QPipe-SP beats plain CJOIN (high similarity favors SP's result reuse);
    CJOIN-SP shares whole CJOIN packets (~239 times in the paper)."""
    if full:
        concurrency = (1, 2, 4, 8, 16, 32, 64, 128, 256)
    ds = generate_ssb(sf, seed)
    configs = (QPIPE_CS, QPIPE_SP, CJOIN, CJOIN_SP)
    cells: dict[str, list[RunResult]] = {c.name: [] for c in configs}
    for n in concurrency:
        workload = q32_limited_plans_workload(n, min(n_plans, n), seed)
        for cfg in configs:
            cells[cfg.name].append(run_batch(ds.tables, cfg, workload, disk_config()))
    rt = _rt_series(cells)
    hi = len(concurrency) - 1
    tables = [
        format_series(
            f"Figure 14: response time (s), {n_plans} possible plans (SF={sf:g}, disk)",
            "queries", list(concurrency), rt,
            note="paper at 256q: QPipe-CS 50s, QPipe-SP 13s, CJOIN 14s, CJOIN-SP 12s",
        ),
        format_table(
            f"Figure 14 measurements at {concurrency[hi]} queries",
            ["config", "avg cores", "read MB/s", "cjoin shares"],
            [
                [
                    c.name,
                    cells[c.name][hi].avg_cores_used,
                    cells[c.name][hi].avg_read_mb_s,
                    cells[c.name][hi].sharing.get("cjoin", 0),
                ]
                for c in configs
            ],
            note="paper: CJOIN-SP shares CJOIN packets 239 times at 256 queries",
        ),
    ]
    return ExperimentResult(
        "fig14", tables, {"concurrency": list(concurrency), "rt": rt, "cells": cells}
    )


# ---------------------------------------------------------------------------
# Figure 15: number of possible plans at very high concurrency
# ---------------------------------------------------------------------------


def fig15_plan_variety(
    n_queries: int = 128,
    plan_counts: Sequence[int | None] = (1, 32, 128, None),
    sf: float = 10.0,
    seed: int = 42,
    full: bool = False,
) -> ExperimentResult:
    """Paper Figure 15: 512 queries over SF=100 (buffer pool ~10% of the
    database), varying the number of possible plans (None = fully random).

    Expectations: QPipe-SP wins at extreme similarity (1 plan) and degrades
    as variety grows; CJOIN is nearly flat; CJOIN-SP improves on CJOIN by
    20-48% whenever common sub-plans exist and never does worse."""
    if full:
        n_queries, sf = 512, 100.0
        plan_counts = (1, 128, 256, 512, None)
    ds = generate_ssb(sf, seed)
    bp = max(ds.real_bytes * 0.10, 1 * GB)
    storage = disk_config(bufferpool_bytes=bp, os_cache_bytes=bp)
    configs = (QPIPE_SP, CJOIN, CJOIN_SP)
    cells: dict[str, list[RunResult]] = {c.name: [] for c in configs}
    xs: list[str] = []
    for count in plan_counts:
        xs.append("Random" if count is None else str(count))
        if count is None:
            workload = q32_random_workload(n_queries, seed)
        else:
            workload = q32_limited_plans_workload(n_queries, count, seed)
        for cfg in configs:
            cells[cfg.name].append(run_batch(ds.tables, cfg, workload, storage))
    rt = _rt_series(cells)
    improvements = [
        100 * (1 - rt["CJOIN-SP"][i] / rt["CJOIN"][i]) for i in range(len(xs))
    ]
    tables = [
        format_series(
            f"Figure 15: response time (s), {n_queries} queries (SF={sf:g}, BP~10%)",
            "plans", xs, rt,
            note="paper: CJOIN-SP improves CJOIN by 20-48% with common sub-plans",
        ),
        format_table(
            "Figure 15: sharing opportunities",
            ["plans", "QPipe-SP hj1/hj2/hj3", "CJOIN-SP packets", "CJOIN-SP gain %"],
            [
                [
                    xs[i],
                    "/".join(
                        str(cells["QPipe-SP"][i].sharing.get(f"join:hj{d}", 0))
                        for d in (1, 2, 3)
                    ),
                    cells["CJOIN-SP"][i].sharing.get("cjoin", 0),
                    improvements[i],
                ]
                for i in range(len(xs))
            ],
            note="paper (512q): QPipe-SP 1/0/510 ... 362/82/5; CJOIN-SP 510..12 shares",
        ),
    ]
    return ExperimentResult(
        "fig15",
        tables,
        {"plans": xs, "rt": rt, "improvements": improvements, "cells": cells},
    )


# ---------------------------------------------------------------------------
# Figure 16: SSB query mix -- response time and throughput vs Postgres
# ---------------------------------------------------------------------------


def fig16_mix(
    concurrency: Sequence[int] = (1, 16, 128),
    clients: Sequence[int] = (1, 16, 160),
    sf: float = 30.0,
    seed: int = 42,
    duration: float = 600.0,
    full: bool = False,
) -> ExperimentResult:
    """Paper Figure 16: mix of SSB Q1.1/Q2.1/Q3.2, disk-resident SF=30;
    left: batch response times; right: closed-loop throughput.

    Expectations: Postgres (mature, query-centric) wins at 1-2 queries but
    contends beyond; QPipe-SP in between; CJOIN-SP best at high
    concurrency, and its *throughput keeps rising* with clients while the
    query-centric engines flatten or degrade."""
    if full:
        concurrency = (1, 2, 4, 8, 16, 32, 64, 128, 256)
        clients = (1, 16, 64, 160, 256)
        duration = 1800.0
    ds = generate_ssb(sf, seed)
    storage = disk_config()
    selectors = {"Postgres": POSTGRES, "QPipe-SP": QPIPE_SP, "CJOIN-SP": CJOIN_SP}
    cells: dict[str, list[RunResult]] = {name: [] for name in selectors}
    for n in concurrency:
        workload = ssb_mix_workload(n, seed)
        for name, sel in selectors.items():
            cells[name].append(run_batch(ds.tables, sel, workload, storage))
    rt = _rt_series(cells)
    tables = [
        format_series(
            f"Figure 16 (left): SSB mix response time (s), SF={sf:g}, disk",
            "queries", list(concurrency), rt,
        )
    ]
    tput: dict[str, list[float]] = {name: [] for name in selectors}
    factory = mix_spec_factory(seed)
    for c in clients:
        for name, sel in selectors.items():
            r = run_closed_loop(ds.tables, sel, factory, c, duration, storage)
            tput[name].append(r.queries_per_hour)
    tables.append(
        format_series(
            f"Figure 16 (right): throughput (queries/hour), {duration:g}s closed loop",
            "clients", list(clients), tput,
            note="paper: CJOIN-SP throughput keeps increasing; "
            "query-centric engines degrade with many clients",
        )
    )
    return ExperimentResult(
        "fig16",
        tables,
        {"concurrency": list(concurrency), "rt": rt, "clients": list(clients), "throughput": tput, "cells": cells},
    )


# ---------------------------------------------------------------------------
# Table 1: rules of thumb (derived)
# ---------------------------------------------------------------------------


def table1_rules_of_thumb(
    low: int = 4,
    high: int = 256,
    sf: float = 1.0,
    seed: int = 42,
) -> ExperimentResult:
    """Paper Table 1, derived from measurements: pick the best engine
    configuration at low and at high concurrency (plus shared scans in the
    I/O layer) from an actual sweep over the paper's low-similarity
    random-predicate workload (the regime Table 1 generalizes over).

    Expectation: low concurrency -> query-centric operators + SP;
    high concurrency -> GQP (shared operators) + SP; shared scans always."""
    ds = generate_ssb(sf, seed)
    configs = (QPIPE, QPIPE_CS, QPIPE_SP, CJOIN, CJOIN_SP)
    verdicts = []
    winners: dict[str, str] = {}
    for label, n in (("low", low), ("high", high)):
        workload = q32_random_workload(n, seed)
        results = {
            cfg.name: run_batch(ds.tables, cfg, workload, disk_config()) for cfg in configs
        }
        best = min(results.values(), key=lambda r: r.mean_response)
        winners[label] = best.config_name
        verdicts.append([label, n, best.config_name] + [results[c.name].mean_response for c in configs])
    table = format_table(
        "Table 1 (derived): best sharing strategy by concurrency regime",
        ["regime", "queries", "winner", *[c.name for c in configs]],
        verdicts,
        note="paper: low -> query-centric + SP; high -> GQP + SP; shared scans in the I/O layer always",
    )
    return ExperimentResult("table1", [table], {"winners": winners, "rows": verdicts})


# ---------------------------------------------------------------------------
# Section 4.1 ablation: SPL maximum size
# ---------------------------------------------------------------------------


def spl_max_size_ablation(
    max_pages: Sequence[int] = (1, 2, 8, 64, 512),
    n_queries: int = 8,
    sf: float = 1.0,
    seed: int = 42,
) -> ExperimentResult:
    """Paper Section 4.1 (no graph shown): varying the SPL bound from tiny
    to effectively unbounded "does not heavily affect performance" -- which
    is why the paper picks 256 KB (8 pages).

    Expectation: response time roughly flat across bounds."""
    import dataclasses

    ds = generate_tpch(sf, seed)
    workload = tpch_q1_workload(n_queries, ds)
    rts = []
    for mp in max_pages:
        cfg = dataclasses.replace(QPIPE_CS, spl_max_pages=mp)
        rts.append(run_batch(ds.tables, cfg, workload, MEMORY).mean_response)
    table = format_series(
        f"SPL maximum size ablation ({n_queries} identical Q1, CS(SPL))",
        "max_pages", list(max_pages), {"response_s": rts},
        note="paper: SPL size does not heavily affect performance (256KB chosen)",
    )
    return ExperimentResult(
        "spl_maxsize", [table], {"max_pages": list(max_pages), "rt": rts}
    )
