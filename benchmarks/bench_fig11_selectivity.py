"""Paper Figure 11: impact of selectivity at low concurrency (8 queries,
SF=10, memory-resident).

Shape claims checked:
* both configurations degrade as selectivity grows;
* CJOIN is worse than QPipe-SP at every selectivity (low concurrency:
  shared-operator bookkeeping and admission dominate);
* CJOIN's admission time grows with selectivity;
* breakdown: CJOIN's "Joins" CPU (bookkeeping) exceeds QPipe-SP's, while
  QPipe-SP's "Hashing" grows faster than CJOIN's (hashing is not shared).
"""

from repro.bench.experiments import fig11_selectivity


def bench_fig11_selectivity(once, save_report, full_mode):
    result = once(fig11_selectivity, full=full_mode)
    save_report("fig11_selectivity", result.render())

    rt = result.data["rt"]
    cells = result.data["cells"]
    # Degradation with selectivity.
    assert rt["QPipe-SP"][-1] > rt["QPipe-SP"][0]
    assert rt["CJOIN"][-1] > rt["CJOIN"][0]
    # CJOIN always worse at low concurrency.
    assert all(c > q for c, q in zip(rt["CJOIN"], rt["QPipe-SP"]))
    # Admission grows with selected tuples.
    adm = rt["CJOIN admission"]
    assert adm[-1] > adm[0]
    # Breakdown claims at the highest selectivity.
    joins_cjoin = cells["CJOIN"][-1].cpu_breakdown["joins"]
    joins_qp = cells["QPipe-SP"][-1].cpu_breakdown["joins"]
    hash_cjoin = cells["CJOIN"][-1].cpu_breakdown["hashing"]
    hash_qp = cells["QPipe-SP"][-1].cpu_breakdown["hashing"]
    assert joins_cjoin > joins_qp * 0.5  # shared bookkeeping is expensive
    assert hash_qp > hash_cjoin  # per-query hashing vs shared hashing
