"""repro.cache: the shared result cache (sub-plan reuse beyond the WoP).

See :mod:`repro.cache.result_cache` for the design discussion and
``docs/caching.md`` for how it is wired through the engine, the storage
manager, the service router and the CLI.
"""

from repro.cache.result_cache import (
    CACHE_POLICIES,
    CacheEntry,
    ResultCache,
    cached_query_centric_plan,
)

__all__ = ["CACHE_POLICIES", "CacheEntry", "ResultCache", "cached_query_centric_plan"]
