"""Machine specifications for the simulated server.

The default spec mirrors the paper's testbed (Section 5.1): a Sun Fire X4470
with four hexa-core Intel Xeon E7530 processors at 1.86 GHz (hyper-threading
disabled, so 24 hardware contexts), 64 GB of RAM, and two 146 GB 10kRPM SAS
disks configured as RAID-0.
"""

from __future__ import annotations

from dataclasses import dataclass, field

GB = 1 << 30
MB = 1 << 20


@dataclass(frozen=True)
class DiskSpec:
    """One disk device of the machine."""

    name: str = "disk"
    bandwidth: float = 210 * MB  # aggregate sequential read, RAID-0 of 2 SAS disks
    seek_penalty: float = 0.35
    min_efficiency: float = 0.22
    random_multiplier: float = 4.0


@dataclass(frozen=True)
class MachineSpec:
    """Hardware configuration of the simulated server."""

    cores: int = 24
    hz: float = 1.86e9
    ram_bytes: float = 64 * GB
    #: superlinear slowdown when runnable threads exceed cores (context
    #: switching / cache pollution); multiplier 1/(1 + k*excess^p), see
    #: CpuPool._rate.
    oversub_penalty: float = 0.35
    oversub_exponent: float = 2.0
    disks: tuple[DiskSpec, ...] = field(default_factory=lambda: (DiskSpec(),))

    def __post_init__(self) -> None:
        if self.cores < 1:
            raise ValueError("cores must be >= 1")
        if self.hz <= 0:
            raise ValueError("hz must be positive")
        if not self.disks:
            raise ValueError("machine needs at least one disk")
        names = [d.name for d in self.disks]
        if len(set(names)) != len(names):
            raise ValueError("duplicate disk names")

    @property
    def primary_disk(self) -> DiskSpec:
        return self.disks[0]


#: The paper's testbed.
PAPER_MACHINE = MachineSpec()


def uniprocessor() -> MachineSpec:
    """A single-core machine -- the original QPipe evaluation hardware, on
    which the push-based serialization point was invisible (Section 4)."""
    return MachineSpec(cores=1)
