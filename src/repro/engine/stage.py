"""Stage base: packet admission, sharing detection, worker spawning.

Each stage keeps a registry of in-flight host packets keyed by plan
signature.  Admitting a packet whose signature matches a registered host
*inside the host's Window of Opportunity* attaches it as a satellite: its
whole sub-plan is cancelled and its consumers reuse the host's results
(paper Section 2.3)."""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Generator

from repro.engine.packet import Packet
from repro.engine.wop import STAGE_WOP, WindowOfOpportunity

if TYPE_CHECKING:  # pragma: no cover
    from repro.engine.qpipe import QPipeEngine
    from repro.query.plan import PlanNode
    from repro.query.star import Query


class Stage:
    """One relational-operator stage of the QPipe engine."""

    def __init__(self, engine: "QPipeEngine", name: str):
        self.engine = engine
        self.name = name
        self.wop = STAGE_WOP.get(name, WindowOfOpportunity.NONE)
        self._registry: dict[tuple, Packet] = {}
        self.packets_admitted = 0
        self.packets_shared = 0

    # ------------------------------------------------------------------
    @property
    def sp_enabled(self) -> bool:
        cfg = self.engine.config
        return {
            "tablescan": cfg.sp_scan,
            "join": cfg.sp_join,
            "aggregate": cfg.sp_agg,
            "sort": cfg.sp_sort,
            "cjoin": cfg.sp_cjoin,
        }.get(self.name, False)

    def make_packet(self, node: "PlanNode", query: "Query") -> Packet:
        return Packet(node, query, self.name, self.wop)

    def admit(self, packet: Packet) -> bool:
        """Register ``packet``; returns True if it attached as a satellite
        (in which case the caller must not build its sub-plan)."""
        self.packets_admitted += 1
        if self.sp_enabled:
            host = self._registry.get(packet.signature)
            if host is not None and host.can_attach():
                host.attach_satellite(packet)
                self.packets_shared += 1
                self._record_sharing(packet)
                return True
        packet.exchange = self.engine.new_exchange(f"{self.name}.p{packet.packet_id}")
        if self.sp_enabled:
            # Replaces a host that fell out of its WoP, if any.
            self._registry[packet.signature] = packet
        return False

    def unregister(self, packet: Packet) -> None:
        """Remove a host from the registry (step WoP: on first output)."""
        if self._registry.get(packet.signature) is packet:
            del self._registry[packet.signature]

    def spawn_worker(self, packet: Packet, gen: Generator[Any, Any, Any]) -> None:
        self.engine.sim.spawn(
            gen,
            name=f"q{packet.query.query_id}-{self.name}-p{packet.packet_id}",
            query_id=packet.query.query_id,
        )

    # ------------------------------------------------------------------
    def _sharing_label(self, packet: Packet) -> str:
        label = getattr(packet.node, "label", None)
        return f"{self.name}:{label}" if label else self.name

    def _record_sharing(self, packet: Packet) -> None:
        self.engine.sim.metrics.record_sharing(self._sharing_label(packet))

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<Stage {self.name} hosts={len(self._registry)}>"
