#!/usr/bin/env python3
"""Observe a pipeline with the simulation tracer.

Attaches a Tracer to a CJOIN run, then prints (a) a slice of the raw event
stream around the admission pause and (b) the per-thread activity summary --
the view you want when a pipeline stalls and you need to know who is
waiting on whom.

    python examples/trace_a_pipeline.py
"""

from repro.data import generate_ssb
from repro.engine import CJOIN_SP, QPipeEngine
from repro.query.ssb_queries import q32
from repro.sim import Simulator
from repro.sim.costmodel import DEFAULT_COST_MODEL
from repro.sim.machine import PAPER_MACHINE
from repro.sim.trace import Tracer
from repro.storage import StorageConfig, StorageManager


def main() -> None:
    dataset = generate_ssb(sf=0.5, seed=42)
    sim = Simulator(PAPER_MACHINE)
    storage = StorageManager(
        sim, DEFAULT_COST_MODEL, dataset.tables, StorageConfig(resident="memory")
    )
    engine = QPipeEngine(sim, storage, CJOIN_SP)

    with Tracer(sim, thread_filter=lambda name: name.startswith("cjoin")) as tracer:
        h1 = engine.submit(q32("CHINA", "FRANCE", 1993, 1996))
        h2 = engine.submit(q32("JAPAN", "BRAZIL", 1992, 1995))
        sim.run()

    print(f"queries finished in {h1.response_time:.2f}s / {h2.response_time:.2f}s; "
          f"{len(tracer.events)} pipeline events recorded\n")

    print("first 18 pipeline events (admission, then pages start flowing):")
    for event in tracer.events[:18]:
        print(f"  {event}")

    print("\nper-thread activity summary:")
    for thread, kinds in sorted(tracer.summary().items()):
        pretty = ", ".join(f"{k}x{v}" for k, v in sorted(kinds.items()))
        print(f"  {thread:28s} {pretty}")


if __name__ == "__main__":
    main()
