"""Ablations of design choices called out in DESIGN.md.

These are not paper figures; they isolate the mechanisms behind them:

* **distributor parts** -- the paper notes "the original CJOIN uses a
  single-threaded distributor which slows the pipeline significantly.  To
  address this bottleneck, we augment the distributor with several
  distributor parts" (Section 3.2).  The ablation shows the single-part
  penalty at high selectivity.
* **filter workers** -- the width of the horizontal configuration.
* **oversubscription penalty** -- the superlinear thrash term that makes
  the query-centric engine collapse past 24 cores; with it ablated to 0
  the machine degrades only linearly.
* **push-based prediction model** -- Johnson et al.'s run-time decision,
  tracking the lower envelope of No-SP and always-share under FIFO.
* **hybrid routing** -- the paper's concluding recommendation: dynamically
  choose query-centric + SP vs GQP + SP by load.

Like the paper figures in :mod:`repro.bench.experiments`, every ablation
enumerates :class:`~repro.parallel.CellSpec`\\ s and runs them through the
parallel fabric (``jobs``/``REPRO_JOBS``).
"""

from __future__ import annotations

import dataclasses
from typing import Sequence

from repro.bench.experiments import MEMORY, ExperimentResult, _sweep
from repro.bench.reporting import format_series
from repro.bench.runner import HYBRID
from repro.engine.config import CJOIN, QPIPE, QPIPE_CS, QPIPE_SP, CJOIN_SP
from repro.parallel import CellSpec, DatasetSpec, WorkloadSpec
from repro.sim.machine import PAPER_MACHINE


def ablate_distributor_parts(
    parts: Sequence[int] = (1, 2, 4, 8),
    n_queries: int = 128,
    selectivity: float = 0.30,
    sf: float = 10.0,
    seed: int = 42,
    jobs: int | None = None,
) -> ExperimentResult:
    """Single-threaded distributor vs distributor parts."""
    workload = WorkloadSpec("q32-selectivity", n=n_queries, selectivity=selectivity, seed=seed)
    specs = [
        CellSpec(
            key=f"parts{p}",
            config=dataclasses.replace(CJOIN, distributor_parts=p),
            dataset=DatasetSpec("ssb", sf, seed),
            workload=workload,
            storage=MEMORY,
        )
        for p in parts
    ]
    out = _sweep(specs, jobs)
    rts = [out.cell(f"parts{p}").mean_response for p in parts]
    table = format_series(
        f"Ablation: CJOIN distributor parts ({n_queries} queries, {100*selectivity:g}% selectivity)",
        "parts", list(parts), {"response_s": rts},
        note="paper 3.2: the original single-threaded distributor slows the pipeline",
    )
    return ExperimentResult(
        "ablate_distributor", [table], {"parts": list(parts), "rt": rts},
        timings=out.timings(),
    )


def ablate_filter_workers(
    workers: Sequence[int] = (1, 2, 4, 8),
    n_queries: int = 64,
    sf: float = 1.0,
    seed: int = 42,
    jobs: int | None = None,
) -> ExperimentResult:
    """Width of CJOIN's horizontal thread configuration."""
    specs = [
        CellSpec(
            key=f"w{w}",
            config=dataclasses.replace(CJOIN, filter_workers=w),
            dataset=DatasetSpec("ssb", sf, seed),
            workload=WorkloadSpec("q32-random", n=n_queries, seed=seed),
            storage=MEMORY,
        )
        for w in workers
    ]
    out = _sweep(specs, jobs)
    rts = [out.cell(f"w{w}").mean_response for w in workers]
    table = format_series(
        f"Ablation: CJOIN filter workers ({n_queries} random queries, SF={sf:g})",
        "workers", list(workers), {"response_s": rts},
    )
    return ExperimentResult(
        "ablate_filters", [table], {"workers": list(workers), "rt": rts},
        timings=out.timings(),
    )


def ablate_oversubscription(
    penalties: Sequence[float] = (0.0, 0.35, 1.0),
    n_queries: int = 64,
    sf: float = 1.0,
    seed: int = 42,
    jobs: int | None = None,
) -> ExperimentResult:
    """The superlinear thrash term behind the query-centric collapse."""
    specs = [
        CellSpec(
            key=f"k{k:g}",
            config=QPIPE,
            dataset=DatasetSpec("ssb", sf, seed),
            workload=WorkloadSpec("q32-random", n=n_queries, seed=seed),
            storage=MEMORY,
            machine=dataclasses.replace(PAPER_MACHINE, oversub_penalty=k),
        )
        for k in penalties
    ]
    out = _sweep(specs, jobs)
    rts = [out.cell(f"k{k:g}").mean_response for k in penalties]
    table = format_series(
        f"Ablation: CPU oversubscription penalty, QPipe with {n_queries} queries",
        "penalty_k", list(penalties), {"response_s": rts},
        note="k=0 -> fair-share only; the paper's 'excessive and unpredictable' regime needs k>0",
    )
    return ExperimentResult(
        "ablate_oversub", [table], {"penalties": list(penalties), "rt": rts},
        timings=out.timings(),
    )


def ablate_prediction_model(
    concurrency: Sequence[int] = (2, 8, 32, 64),
    sf: float = 1.0,
    seed: int = 42,
    jobs: int | None = None,
) -> ExperimentResult:
    """Push-based SP with and without the run-time prediction model."""
    nosp = QPIPE.with_comm("fifo")
    cs = QPIPE_CS.with_comm("fifo")
    pred = dataclasses.replace(cs, sp_prediction=True, name="CS (FIFO+pred)")
    configs = (nosp, cs, pred)
    specs = [
        CellSpec(
            key=f"{cfg.name}/n{n}",
            config=cfg,
            dataset=DatasetSpec("tpch", sf, seed),
            workload=WorkloadSpec("tpch-q1", n=n, seed=seed),
            storage=MEMORY,
        )
        for n in concurrency
        for cfg in configs
    ]
    out = _sweep(specs, jobs)
    series = {
        cfg.name: [out.cell(f"{cfg.name}/n{n}").mean_response for n in concurrency]
        for cfg in configs
    }
    table = format_series(
        "Ablation: push-based SP prediction model (identical TPC-H Q1)",
        "queries", list(concurrency), series,
        note="the model should track the lower envelope of the other two "
        "(the paper's point: with SPL no model is needed at all)",
    )
    return ExperimentResult(
        "ablate_prediction", [table], {"concurrency": list(concurrency), "rt": series},
        timings=out.timings(),
    )


def ablate_thread_configuration(
    concurrency: Sequence[int] = (8, 64),
    sf: float = 1.0,
    seed: int = 42,
    jobs: int | None = None,
) -> ExperimentResult:
    """CJOIN horizontal vs vertical thread configuration (Section 5.2.2).

    Paper: the vertical (one thread per filter) configuration can reduce
    synchronization but "these configurations, however, do not necessarily
    provide better performance" -- so the expectation is parity within a
    small factor, not a winner."""
    vertical = dataclasses.replace(CJOIN, cjoin_threads="vertical", name="CJOIN-vertical")
    configs = {"horizontal": CJOIN, "vertical": vertical}
    specs = [
        CellSpec(
            key=f"{label}/n{n}",
            config=cfg,
            dataset=DatasetSpec("ssb", sf, seed),
            workload=WorkloadSpec("q32-random", n=n, seed=seed),
            storage=MEMORY,
        )
        for n in concurrency
        for label, cfg in configs.items()
    ]
    out = _sweep(specs, jobs)
    series = {
        label: [out.cell(f"{label}/n{n}").mean_response for n in concurrency]
        for label in configs
    }
    table = format_series(
        "Ablation: CJOIN thread configuration (horizontal pool vs one thread per filter)",
        "queries", list(concurrency), series,
        note="paper 5.2.2: neither configuration necessarily wins",
    )
    return ExperimentResult(
        "ablate_threads", [table], {"concurrency": list(concurrency), "rt": series},
        timings=out.timings(),
    )


def ablate_batched_execution(
    delays: Sequence[float] = (0.0, 0.3, 1.0),
    n_queries: int = 8,
    sf: float = 1.0,
    seed: int = 42,
    jobs: int | None = None,
) -> ExperimentResult:
    """SharedDB-style batched execution vs CJOIN's continuous admission.

    Queries arriving ``delay`` seconds apart: with batching, a late query
    waits for the running generation, so its latency grows with the delay's
    misalignment; continuous admission joins the circular scan immediately.
    (Paper 2.4: "a new query may suffer increased latency, and the latency
    of a batch is dominated by the longest-running query.")"""
    batched_cfg = dataclasses.replace(CJOIN, gqp_batched_execution=True, name="CJOIN-batched")
    configs = {"CJOIN (continuous)": CJOIN, "CJOIN (batched)": batched_cfg}
    specs = [
        CellSpec(
            key=f"{label}/d{d:g}",
            config=cfg,
            dataset=DatasetSpec("ssb", sf, seed),
            workload=WorkloadSpec("q32-random", n=n_queries, seed=seed),
            storage=MEMORY,
            submit_stagger=d,
        )
        for d in delays
        for label, cfg in configs.items()
    ]
    out = _sweep(specs, jobs)
    series = {
        label: [out.cell(f"{label}/d{d:g}").mean_response for d in delays]
        for label in configs
    }
    table = format_series(
        f"Ablation: SharedDB-style batched execution ({n_queries} queries, staggered arrivals)",
        "interarrival_s", list(delays), series,
        note="paper 2.4: batching admits between generations; late arrivals pay latency",
    )
    return ExperimentResult(
        "ablate_batching", [table], {"delays": list(delays), "rt": series},
        timings=out.timings(),
    )


def interarrival_sweep(
    delays: Sequence[float] = (0.0, 0.02, 0.1, 0.5, 2.0),
    n_queries: int = 16,
    sf: float = 1.0,
    seed: int = 42,
    jobs: int | None = None,
) -> ExperimentResult:
    """Sharing opportunities vs interarrival delay (the WoP in action).

    The paper submits everything in one batch "so all queries with common
    sub-plans arrive surely inside the WoP" and defers the interarrival
    study to the original QPipe paper; this extension runs it: identical
    Q3.2 queries arriving ``delay`` seconds apart.

    Expectations: the *step*-WoP joins stop sharing once the delay exceeds
    the host's time-to-first-output; the *linear*-WoP circular scan keeps
    sharing as long as executions overlap at all; response times rise
    accordingly."""
    specs = [
        CellSpec(
            key=f"d{d:g}",
            config=QPIPE_SP,
            dataset=DatasetSpec("ssb", sf, seed),
            workload=WorkloadSpec("q32-fixed", n=n_queries),
            storage=MEMORY,
            submit_stagger=d,
        )
        for d in delays
    ]
    out = _sweep(specs, jobs)
    rts, join_shares, scan_shares = [], [], []
    for d in delays:
        r = out.cell(f"d{d:g}")
        rts.append(r.mean_response)
        join_shares.append(sum(v for k, v in r.sharing.items() if k.startswith("join")))
        scan_shares.append(r.sharing.get("tablescan", 0))
    table = format_series(
        f"Extension: interarrival delay vs sharing ({n_queries} identical Q3.2)",
        "delay_s",
        list(delays),
        {"response_s": rts, "join_shares(step WoP)": join_shares, "scan_shares(linear WoP)": scan_shares},
        note="step-WoP sharing dies once the delay exceeds time-to-first-output; "
        "linear-WoP scan sharing survives while executions overlap",
    )
    return ExperimentResult(
        "interarrival",
        [table],
        {"delays": list(delays), "rt": rts, "join_shares": join_shares, "scan_shares": scan_shares},
        timings=out.timings(),
    )


def ablate_hybrid_routing(
    concurrency: Sequence[int] = (2, 16, 64, 128),
    sf: float = 1.0,
    seed: int = 42,
    jobs: int | None = None,
) -> ExperimentResult:
    """The paper's conclusion as a live policy: hybrid routing vs the two
    static choices."""
    selectors = {"QPipe-SP": QPIPE_SP, "CJOIN-SP": CJOIN_SP, "Hybrid": HYBRID}
    specs = [
        CellSpec(
            key=f"{name}/n{n}",
            config=sel,
            dataset=DatasetSpec("ssb", sf, seed),
            workload=WorkloadSpec("q32-random", n=n, seed=seed),
            storage=MEMORY,
        )
        for n in concurrency
        for name, sel in selectors.items()
    ]
    out = _sweep(specs, jobs)
    series = {
        name: [out.cell(f"{name}/n{n}").mean_response for n in concurrency]
        for name in selectors
    }
    table = format_series(
        "Ablation: dynamic hybrid routing (random Q3.2, memory-resident)",
        "queries", list(concurrency), series,
        note="hybrid should track the better static choice at both extremes",
    )
    return ExperimentResult(
        "ablate_hybrid", [table], {"concurrency": list(concurrency), "rt": series},
        timings=out.timings(),
    )
