"""Process-pool execution fabric for experiment cells.

The sweeps in :mod:`repro.bench` are embarrassingly parallel: each cell is
a closed simulation determined entirely by its :class:`CellSpec`, so cells
can run on any core, in any order, and the merged sweep is byte-identical
to a serial run.  This is the shard-and-merge shape the paper itself
exploits at the systems level (QPipe saturates every core in Figure 10
while a serial harness uses exactly one).

Guarantees:

* **Determinism** -- results are merged *by cell key in submission order*,
  and every cell derives its own RNG streams from its spec (see
  :mod:`repro.parallel.cells`), so ``jobs=N`` output equals ``jobs=1``
  output byte for byte.
* **Exact serial fallback** -- ``jobs=1`` calls the same cell function
  in-process, no pool, no pickling.
* **Robustness** -- a cell that raises in a worker (or takes the whole
  pool down) is re-run serially in the parent, once; a second failure is
  reported as a structured :class:`CellFailure`.  A per-cell ``timeout``
  surfaces a stuck cell as a ``"timeout"`` failure instead of hanging the
  sweep; stuck worker processes are killed on shutdown.
* **Ordered progress** -- results are *collected* in submission order, so
  progress lines are deterministic even though completion order is not.
"""

from __future__ import annotations

import multiprocessing
import os
import time
import traceback
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures import TimeoutError as FutureTimeout
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, field
from typing import Any, Callable, Sequence

from repro.parallel.cells import CellResult, CellSpec, execute_cell

__all__ = [
    "CellFailure",
    "ParallelRunner",
    "SweepError",
    "SweepOutcome",
    "resolve_jobs",
    "run_cells",
]

#: Environment variable consulted when no explicit ``jobs`` is given.
JOBS_ENV = "REPRO_JOBS"


def resolve_jobs(jobs: int | None = None) -> int:
    """Explicit ``jobs`` argument > ``REPRO_JOBS`` env > 1 (serial)."""
    if jobs is None:
        raw = os.environ.get(JOBS_ENV, "").strip()
        if not raw:
            return 1
        try:
            jobs = int(raw)
        except ValueError:
            raise ValueError(f"{JOBS_ENV}={raw!r} is not an integer")
    if jobs < 1:
        raise ValueError(f"jobs must be >= 1, got {jobs}")
    return jobs


@dataclass
class CellFailure:
    """A cell that produced no result: structured, never a hang."""

    key: str
    kind: str  # "timeout" | "error"
    message: str

    def __str__(self) -> str:  # pragma: no cover - formatting convenience
        return f"[{self.kind}] {self.key}: {self.message}"


class SweepError(RuntimeError):
    """Raised when a sweep has failed cells and the caller asked to raise."""

    def __init__(self, failures: Sequence[CellFailure]):
        self.failures = list(failures)
        lines = "\n".join(f"  - {f}" for f in self.failures)
        super().__init__(f"{len(self.failures)} cell(s) failed:\n{lines}")


@dataclass
class SweepOutcome:
    """Merged results of one sweep, keyed and ordered by submission."""

    results: dict[str, Any]  # key -> fn(item) return value, submission order
    failures: list[CellFailure] = field(default_factory=list)
    jobs: int = 1
    wall_s: float = 0.0

    def cell(self, key: str) -> Any:
        """The *measurement* of one cell (unwraps :class:`CellResult`)."""
        out = self.results[key]
        return out.result if isinstance(out, CellResult) else out

    def timings(self) -> dict[str, Any]:
        """Host-side attribution for export: per-cell wall clock + worker."""
        cells = {
            key: out.attribution()
            for key, out in self.results.items()
            if isinstance(out, CellResult)
        }
        return {
            "jobs": self.jobs,
            "wall_s": round(self.wall_s, 4),
            "cells": cells,
        }


def _item_key(item: Any) -> str:
    return item.key if hasattr(item, "key") else str(item)


class ParallelRunner:
    """Runs picklable work items across a process pool and merges their
    results deterministically (see module docstring for the contract).

    ``fn`` must be a module-level function (pickled by reference); items
    must be picklable.  ``timeout`` bounds the wall-clock wait for each
    cell's result -- queue time included -- once collection reaches it."""

    def __init__(
        self,
        jobs: int | None = None,
        timeout: float | None = None,
        progress: Callable[[str], None] | None = None,
    ):
        self.jobs = resolve_jobs(jobs)
        self.timeout = timeout
        self.progress = progress

    def _report(self, i: int, total: int, key: str, note: str) -> None:
        if self.progress is not None:
            self.progress(f"[{i + 1}/{total}] {key}: {note}")

    def map(
        self,
        fn: Callable[[Any], Any],
        items: Sequence[Any],
        key_of: Callable[[Any], str] = _item_key,
    ) -> SweepOutcome:
        keys = [key_of(item) for item in items]
        dupes = {k for k in keys if keys.count(k) > 1}
        if dupes:
            raise ValueError(f"duplicate cell keys: {sorted(dupes)}")
        t0 = time.perf_counter()
        if self.jobs == 1 or len(items) <= 1:
            outcome = self._run_serial(fn, items, keys)
        else:
            outcome = self._run_pool(fn, items, keys)
        outcome.wall_s = time.perf_counter() - t0
        return outcome

    # -- serial ------------------------------------------------------------

    def _run_serial(self, fn, items, keys) -> SweepOutcome:
        outcome = SweepOutcome(results={}, jobs=1)
        for i, (key, item) in enumerate(zip(keys, items)):
            try:
                out = fn(item)
            except Exception:
                outcome.failures.append(
                    CellFailure(key, "error", traceback.format_exc(limit=8))
                )
                self._report(i, len(items), key, "FAILED")
                continue
            outcome.results[key] = out
            self._report(i, len(items), key, _describe(out))
        return outcome

    # -- process pool ------------------------------------------------------

    def _run_pool(self, fn, items, keys) -> SweepOutcome:
        jobs = min(self.jobs, len(items))
        _prewarm_datasets(items)
        pool = ProcessPoolExecutor(max_workers=jobs)
        outcome = SweepOutcome(results={}, jobs=jobs)
        stuck = False
        try:
            futures = [pool.submit(fn, item) for item in items]
            for i, (key, item, future) in enumerate(zip(keys, items, futures)):
                try:
                    out = future.result(timeout=self.timeout)
                except FutureTimeout:
                    if future.cancel():
                        # Never started (starved behind a stuck cell): the
                        # cell itself is not implicated -- run it here.
                        out, failure = self._retry_serial(fn, key, item, "starved in queue")
                    else:
                        out, failure = None, CellFailure(
                            key,
                            "timeout",
                            f"no result within {self.timeout:g}s (cell still running; worker will be killed)",
                        )
                        stuck = True
                except BrokenProcessPool:
                    # The worker died mid-cell (hard crash); every cell it
                    # held is lost.  Re-run this one serially, once.
                    out, failure = self._retry_serial(fn, key, item, "worker crashed")
                except Exception:
                    # The cell raised in the worker: retry serially once so
                    # a transient/worker-only failure doesn't cost the sweep.
                    # Keep the worker-side traceback: if the retry *also*
                    # fails, the report must show both failures -- they can
                    # differ (e.g. worker-only state), and the original is
                    # usually the one that matters.
                    out, failure = self._retry_serial(
                        fn, key, item, "raised in worker",
                        original=traceback.format_exc(limit=8),
                    )
                else:
                    outcome.results[key] = out
                    self._report(i, len(items), key, _describe(out))
                    continue
                if out is not None:
                    outcome.results[key] = out
                    self._report(i, len(items), key, _describe(out) + " (serial retry)")
                else:
                    outcome.failures.append(failure)
                    self._report(i, len(items), key, f"FAILED ({failure.kind})")
        finally:
            if stuck:
                _hard_shutdown(pool)
            else:
                pool.shutdown(wait=True, cancel_futures=True)
        return outcome

    def _retry_serial(self, fn, key, item, why, original: str | None = None):
        try:
            out = fn(item)
        except Exception:
            message = f"{why}; serial retry failed:\n{traceback.format_exc(limit=8)}"
            if original is not None:
                message = (
                    f"{why}:\n{original}"
                    f"serial retry also failed:\n{traceback.format_exc(limit=8)}"
                )
            return None, CellFailure(key, "error", message)
        if isinstance(out, CellResult):
            out.retried = True
        return out, None


def _describe(out: Any) -> str:
    if isinstance(out, CellResult):
        return f"ok ({out.wall_s:.2f}s, worker {out.worker})"
    return "ok"


def _prewarm_datasets(items: Sequence[Any]) -> None:
    """Under the fork start method, generating each distinct dataset once
    in the parent lets every worker inherit it copy-on-write instead of
    regenerating it per process.  Under spawn/forkserver this would be
    wasted work, so it is skipped (workers memoize per process instead)."""
    if multiprocessing.get_start_method() != "fork":
        return
    from repro.sim.fastpath import columnar_pages_default

    warm = columnar_pages_default()
    seen = set()
    for item in items:
        dataset = getattr(item, "dataset", None)
        if dataset is not None and dataset not in seen:
            seen.add(dataset)
            ds = dataset.generate()
            if warm:
                # Columnar plane: also materialize the column caches so
                # workers inherit the vectors copy-on-write instead of
                # each lazily re-slicing pages into columns.
                for table in ds.tables.values():
                    table.warm_columns()


def _hard_shutdown(pool: ProcessPoolExecutor) -> None:
    """Kill workers still holding timed-out cells; a stuck cell must not
    turn into a stuck sweep (or a stuck interpreter exit)."""
    processes = list(getattr(pool, "_processes", {}).values())
    pool.shutdown(wait=False, cancel_futures=True)
    for proc in processes:
        if proc.is_alive():
            proc.terminate()
    for proc in processes:
        proc.join(timeout=5)
        if proc.is_alive():  # pragma: no cover - last resort
            proc.kill()


def run_cells(
    specs: Sequence[CellSpec],
    jobs: int | None = None,
    timeout: float | None = None,
    progress: Callable[[str], None] | None = None,
    raise_on_failure: bool = True,
) -> SweepOutcome:
    """Execute experiment cells (serially or across a pool) and merge by
    key.  The standard entry point for every sweep in :mod:`repro.bench`:
    raising on failure keeps a lost cell from silently truncating a
    figure."""
    runner = ParallelRunner(jobs=jobs, timeout=timeout, progress=progress)
    outcome = runner.map(execute_cell, specs)
    if raise_on_failure and outcome.failures:
        raise SweepError(outcome.failures)
    return outcome
