"""Tests for the command-line interface."""

import pytest

from repro.cli import CONFIGS, WORKLOADS, build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_run_defaults(self):
        args = build_parser().parse_args(["run"])
        assert args.config == "qpipe-sp"
        assert args.workload == "q32-random"
        assert args.n == 16

    def test_unknown_config_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "--config", "mysql"])

    def test_experiment_choices(self):
        args = build_parser().parse_args(["experiment", "fig6"])
        assert args.name == "fig6"
        with pytest.raises(SystemExit):
            build_parser().parse_args(["experiment", "fig99"])


class TestCommands:
    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        for name in CONFIGS:
            assert name in out
        for name in WORKLOADS:
            assert name in out

    def test_run_small_workload(self, capsys):
        rc = main(["run", "--config", "qpipe-sp", "--workload", "q32-plans",
                   "-n", "4", "--plans", "2", "--sf", "0.5"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "QPipe-SP" in out
        assert "mean response" in out
        assert "sharing events" in out  # 2 plans x 4 queries must share

    def test_run_postgres_selector(self, capsys):
        rc = main(["run", "--config", "postgres", "-n", "2", "--sf", "0.5"])
        assert rc == 0
        assert "Postgres" in capsys.readouterr().out

    def test_query_command(self, capsys):
        rc = main(["query", "Q3.2", "--sf", "0.5", "--limit", "3"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "Q3.2 on QPipe-SP" in out
        assert "revenue" in out

    def test_query_rejects_non_engine_config(self):
        with pytest.raises(SystemExit):
            main(["query", "Q3.2", "--config", "postgres", "--sf", "0.5"])

    def test_experiment_fig2(self, capsys):
        rc = main(["experiment", "fig2"])
        assert rc == 0
        assert "Window of Opportunity" in capsys.readouterr().out

    def test_experiment_spl_maxsize(self, capsys):
        rc = main(["experiment", "spl-maxsize"])
        assert rc == 0
        assert "SPL maximum size" in capsys.readouterr().out

    def test_experiment_json_flag(self, capsys):
        import json

        rc = main(["experiment", "spl-maxsize", "--json"])
        assert rc == 0
        out = capsys.readouterr().out
        payload = out[out.index("{") :]
        assert json.loads(payload)["experiment"] == "spl_maxsize"

    def test_experiment_chart_flag(self, capsys):
        rc = main(["experiment", "fig6", "--chart"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "CS(SPL)" in out
        assert "overlap" in out  # the chart legend rendered
