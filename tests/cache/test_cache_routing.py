"""Cache-aware routing (hybrid engine + service layer) and run-for-run
determinism of cache-enabled service runs."""

import pytest

from repro.data import generate_ssb
from repro.engine.hybrid import HybridEngine
from repro.query.ssb_queries import q32
from repro.server.service import job_factory, recurring_job_factory, serve
from repro.sim import Simulator
from repro.sim.costmodel import DEFAULT_COST_MODEL
from repro.sim.machine import MachineSpec
from repro.storage import StorageConfig, StorageManager


@pytest.fixture(scope="module")
def ssb():
    return generate_ssb(0.5, seed=23)


def cache_config(mb=32.0, policy="benefit"):
    return StorageConfig(
        resident="memory",
        result_cache_bytes=mb * 1024 * 1024,
        result_cache_policy=policy,
    )


SPEC_ARGS = ("CHINA", "FRANCE", 1993, 1996)


class TestHybridDiscount:
    def test_likely_hit_stays_query_centric_at_saturation(self, ssb):
        sim = Simulator(MachineSpec())
        storage = StorageManager(sim, DEFAULT_COST_MODEL, ssb.tables, cache_config())
        hybrid = HybridEngine(sim, storage, threshold=1)
        hybrid.submit(q32(*SPEC_ARGS))  # below threshold: query-centric, fills
        sim.run()
        assert len(storage.result_cache) > 0
        # Two back-to-back arrivals: the second sees in_flight >= threshold,
        # but its plan is cached, so the discount keeps it query-centric.
        hybrid.submit(q32("JAPAN", "BRAZIL", 1992, 1995))
        h = hybrid.submit(q32(*SPEC_ARGS))
        sim.run()
        assert hybrid.routed["cache-discount"] == 1
        assert hybrid.routed["gqp"] == 0
        assert h.query.cache_served
        assert sim.metrics.counts["hybrid_cache_discount"] == 1

    def test_uncached_plan_still_goes_gqp(self, ssb):
        sim = Simulator(MachineSpec())
        storage = StorageManager(sim, DEFAULT_COST_MODEL, ssb.tables, cache_config())
        hybrid = HybridEngine(sim, storage, threshold=1)
        hybrid.submit(q32(*SPEC_ARGS))
        h = hybrid.submit(q32("JAPAN", "BRAZIL", 1992, 1995))  # not cached
        sim.run()
        assert hybrid.routed["gqp"] == 1
        assert "cache-discount" not in hybrid.routed
        assert not h.query.cache_served

    def test_no_cache_reproduces_plain_routing(self, ssb):
        sim = Simulator(MachineSpec())
        storage = StorageManager(
            sim, DEFAULT_COST_MODEL, ssb.tables, StorageConfig(resident="memory")
        )
        hybrid = HybridEngine(sim, storage, threshold=1)
        hybrid.submit(q32(*SPEC_ARGS))
        hybrid.submit(q32(*SPEC_ARGS))
        sim.run()
        assert hybrid.routed == {"query-centric": 1, "gqp": 1}


class TestServiceDiscount:
    def test_recurring_stream_uses_discount_and_splits_latency(self, ssb):
        report = serve(
            ssb.tables,
            policy="adaptive",
            rate=8.0,
            duration=4.0,
            seed=1,
            workload="recurring:0.5",
            storage_config=cache_config(),
        )
        m = report.metrics
        assert m.cache_stats["hits"] > 0
        assert m.cache_routed > 0
        assert len(m.cache_hit_latencies) > 0
        assert len(m.cache_hit_latencies) + len(m.cache_miss_latencies) == m.completed
        split = m.cache_latency_split()
        assert split["hit_served"]["p95"] < split["computed"]["p95"]
        out = m.to_dict()
        assert out["result_cache"]["routed_discount"] == m.cache_routed

    def test_cache_off_report_has_no_cache_section(self, ssb):
        report = serve(
            ssb.tables,
            policy="adaptive",
            rate=8.0,
            duration=2.0,
            seed=1,
            workload="recurring:0.5",
        )
        assert report.metrics.cache_stats == {}
        assert "result_cache" not in report.metrics.to_dict()


class TestDeterminism:
    def _run(self, ssb, **kwargs):
        return serve(
            ssb.tables,
            policy="adaptive",
            rate=8.0,
            duration=3.0,
            seed=7,
            workload="recurring:0.5",
            **kwargs,
        )

    def test_same_seed_same_metrics_with_cache(self, ssb):
        a = self._run(ssb, storage_config=cache_config())
        b = self._run(ssb, storage_config=cache_config())
        assert a.metrics.to_dict(hz=a.machine_hz) == b.metrics.to_dict(hz=b.machine_hz)
        assert a.sim_seconds == b.sim_seconds

    def test_cache_off_matches_default_config(self, ssb):
        # result_cache_bytes=0 must be byte-for-byte the pre-cache engine.
        a = self._run(ssb)
        b = self._run(ssb, storage_config=StorageConfig(resident="memory", result_cache_bytes=0.0))
        assert a.metrics.to_dict(hz=a.machine_hz) == b.metrics.to_dict(hz=b.machine_hz)
        assert a.sim_seconds == b.sim_seconds


class TestRecurringWorkload:
    def test_rate_validation(self):
        with pytest.raises(ValueError):
            recurring_job_factory(1, 1.5)
        with pytest.raises(ValueError, match="recurring"):
            job_factory("recurring:x", 1)

    def test_zero_rate_is_all_fresh(self):
        jobs = job_factory("recurring:0.0", 3)
        specs = [jobs(k).spec.signature for k in range(16)]
        assert len(set(specs)) == len(specs)

    def test_full_rate_draws_from_fixed_pool(self):
        jobs = job_factory("recurring:1.0", 3)
        specs = [jobs(k).spec.signature for k in range(32)]
        assert len(set(specs)) <= 4

    def test_factory_is_deterministic(self):
        a = job_factory("recurring:0.5", 9)
        b = job_factory("recurring:0.5", 9)
        assert [a(k).spec.signature for k in range(20)] == [
            b(k).spec.signature for k in range(20)
        ]
