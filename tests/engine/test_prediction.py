"""Tests for the push-based sharing prediction model (Johnson et al. [14],
as discussed in the paper's Sections 1.3/4)."""

import dataclasses

import pytest

from repro.baselines import evaluate_plan
from repro.data import generate_tpch
from repro.engine import QPIPE, QPIPE_CS, QPipeEngine
from repro.query.tpch_queries import tpch_q1_plan
from repro.sim import Simulator
from repro.sim.costmodel import DEFAULT_COST_MODEL
from repro.sim.machine import MachineSpec
from repro.storage import StorageConfig, StorageManager

CS_FIFO = QPIPE_CS.with_comm("fifo")
CS_FIFO_PRED = dataclasses.replace(CS_FIFO, sp_prediction=True, name="CS (FIFO+pred)")


@pytest.fixture(scope="module")
def tpch():
    return generate_tpch(0.5, seed=17)


def run(tpch, config, n):
    sim = Simulator(MachineSpec())
    storage = StorageManager(
        sim, DEFAULT_COST_MODEL, tpch.tables, StorageConfig(resident="memory")
    )
    eng = QPipeEngine(sim, storage, config)
    plan = tpch_q1_plan(tpch.lineitem)
    # Stagger submissions slightly so the machine-load signal is realistic.
    handles = []

    def submitter():
        from repro.sim.commands import SLEEP

        for _ in range(n):
            handles.append(eng.submit_plan(plan))
            yield SLEEP(0.002)

    sim.spawn(submitter(), "sub")
    sim.run()
    return sim, eng, handles


class TestPredictionModel:
    def test_results_still_exact(self, tpch):
        plan = tpch_q1_plan(tpch.lineitem)
        oracle = sorted(evaluate_plan(plan))
        _, _, handles = run(tpch, CS_FIFO_PRED, 6)
        for h in handles:
            assert sorted(h.results) == oracle

    def test_declines_to_share_at_low_concurrency(self, tpch):
        """Few queries, idle machine: private evaluation predicted cheaper
        -- the model 'falls back to the line of No SP (FIFO)'."""
        _, eng, _ = run(tpch, CS_FIFO_PRED, 3)
        assert eng.sharing_summary().get("tablescan", 0) == 0

    def test_shares_at_high_concurrency(self, tpch):
        """Once the machine saturates, the model starts attaching
        satellites (each satellite raises the copy burden, so the model is
        deliberately conservative about piling more on)."""
        _, eng, _ = run(tpch, CS_FIFO_PRED, 48)
        assert eng.sharing_summary().get("tablescan", 0) >= 5

    def test_tracks_lower_envelope(self, tpch):
        """Response time with prediction ~ min(No-SP, always-share) at both
        ends of the concurrency range."""

        def mean_rt(config, n):
            _, _, handles = run(tpch, config, n)
            return sum(h.response_time for h in handles) / n

        for n in (2, 48):
            nosp = mean_rt(QPIPE.with_comm("fifo"), n)
            always = mean_rt(CS_FIFO, n)
            pred = mean_rt(CS_FIFO_PRED, n)
            assert pred <= min(nosp, always) * 1.25

    def test_ignored_under_spl(self, tpch):
        """Pull-based sharing needs no model: with comm='spl' the flag is
        inert and sharing always happens."""
        cfg = dataclasses.replace(QPIPE_CS, sp_prediction=True)
        _, eng, _ = run(tpch, cfg, 3)
        assert eng.sharing_summary().get("tablescan", 0) == 2
