"""Export experiment results to CSV and JSON.

Downstream users plot with their own tools; every
:class:`~repro.bench.experiments.ExperimentResult` can be dumped as
machine-readable files next to the text tables that ``benchmarks/``
archives.
"""

from __future__ import annotations

import csv
import io
import json
from typing import Any

from repro.bench.experiments import ExperimentResult
from repro.bench.runner import RunResult
from repro.sim.metrics import Metrics, percentile_block


def run_result_to_dict(result: RunResult) -> dict[str, Any]:
    """A plain-dict view of one run's measurements."""
    return {
        "config": result.config_name,
        "n_queries": result.n_queries,
        "mean_response_s": result.mean_response,
        "stdev_response_s": result.stdev_response,
        # The canonical p50/p95/p99 block (same helper as the service and
        # shard tiers), so downstream plots never re-derive percentiles.
        "response_percentiles": percentile_block(result.response_times),
        "sim_seconds": result.sim_seconds,
        "avg_cores_used": result.avg_cores_used,
        "avg_read_mb_s": result.avg_read_mb_s,
        "cpu_breakdown": dict(result.cpu_breakdown),
        "sharing": dict(result.sharing),
        "admission_seconds": result.admission_seconds,
        "response_times": list(result.response_times),
    }


def _plain(value: Any) -> Any:
    """Recursively convert experiment data to JSON-safe values."""
    if isinstance(value, RunResult):
        return run_result_to_dict(value)
    if isinstance(value, dict):
        return {str(k): _plain(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [_plain(v) for v in value]
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    return repr(value)


def metrics_to_json(
    metrics: Metrics,
    hz: float | None = None,
    window: float | None = None,
    extra: dict[str, Any] | None = None,
    indent: int = 2,
) -> str:
    """Serialize any :class:`~repro.sim.metrics.Metrics` (including the
    service layer's ``ServiceMetrics``) standalone as JSON.

    ``hz`` converts CPU cycles to core-seconds; ``window`` (for metrics
    classes that accept it, e.g. ``ServiceMetrics``) adds throughput over
    that many seconds; ``extra`` entries are merged into the payload
    (run identification -- policy, rate, ... -- lives there)."""
    if window is not None:
        try:
            data = metrics.to_dict(hz=hz, window=window)
        except TypeError:  # plain Metrics: no throughput window concept
            data = metrics.to_dict(hz=hz)
    else:
        data = metrics.to_dict(hz=hz)
    payload = {**(extra or {}), **data}
    return json.dumps(_plain(payload), indent=indent, sort_keys=True)


def experiment_to_json(
    result: ExperimentResult, indent: int = 2, include_timings: bool = False
) -> str:
    """Serialize an experiment's structured data as JSON.

    The default payload holds only *simulated* measurements, so it is
    byte-identical for any ``jobs`` count -- the artifact CI diffs between
    serial and parallel sweeps.  ``include_timings=True`` adds the host-side
    attribution (per-cell wall clock, worker pid, retries) from the
    parallel fabric."""
    payload: dict[str, Any] = {"experiment": result.experiment, "data": _plain(result.data)}
    if include_timings and result.timings:
        payload["timings"] = _plain(result.timings)
    return json.dumps(payload, indent=indent, sort_keys=True)


def timings_to_json(result: ExperimentResult, indent: int = 2) -> str:
    """Serialize just the host-side attribution of one sweep: effective
    ``jobs``, total wall clock, and per-cell ``{wall_s, worker, retried}``."""
    return json.dumps(
        {"experiment": result.experiment, **_plain(result.timings)},
        indent=indent,
        sort_keys=True,
    )


def series_to_csv(x_name: str, xs: list, series: dict[str, list[float]]) -> str:
    """Render x-indexed series as CSV (one row per x, one column per
    series) -- the format the paper-figure data naturally takes."""
    names = list(series)
    for name in names:
        if len(series[name]) != len(xs):
            raise ValueError(f"series {name!r} length mismatch")
    buf = io.StringIO()
    writer = csv.writer(buf)
    writer.writerow([x_name, *names])
    for i, x in enumerate(xs):
        writer.writerow([x] + [series[name][i] for name in names])
    return buf.getvalue()
