"""Focused unit tests of filter semantics (bitmaps, pass masks, unions)."""

import pytest

from repro.baselines import evaluate_plan
from repro.data import generate_ssb
from repro.engine import CJOIN, QPipeEngine
from repro.query.expr import Cmp
from repro.query.ssb_queries import q32
from repro.sim import Simulator
from repro.sim.commands import SLEEP
from repro.sim.costmodel import DEFAULT_COST_MODEL
from repro.sim.machine import MachineSpec
from repro.storage import StorageConfig, StorageManager


@pytest.fixture(scope="module")
def ssb():
    return generate_ssb(0.5, seed=88)


def norm(rows):
    return sorted(
        tuple(round(v, 6) if isinstance(v, float) else v for v in row) for row in rows
    )


def make_engine(ssb):
    sim = Simulator(MachineSpec())
    storage = StorageManager(sim, DEFAULT_COST_MODEL, ssb.tables, StorageConfig(resident="memory"))
    return sim, QPipeEngine(sim, storage, CJOIN)


class TestFilterState:
    def test_union_hash_table(self, ssb):
        """Two queries selecting different nations: the customer filter
        holds the union of both selections, each annotated with its bit."""
        sim, eng = make_engine(ssb)
        eng.submit(q32("CHINA", "FRANCE", 1993, 1996))
        eng.submit(q32("JAPAN", "FRANCE", 1993, 1996))
        probe = {}

        def snapshot():
            yield SLEEP(0.5)  # mid-execution
            pipeline = eng.cjoin_stage.pipeline_for("lineorder")
            flt = pipeline.filters["customer"]
            probe["entries"] = len(flt.ht)
            probe["bitmaps"] = {e.bitmap for e in flt.ht.values()}
            probe["pass"] = flt.pass_mask

        sim.spawn(snapshot(), "snap")
        sim.run()
        csch = ssb.customer.schema
        inat = csch.index("c_nation")
        china = sum(1 for r in ssb.customer.iter_rows() if r[inat] == "CHINA")
        japan = sum(1 for r in ssb.customer.iter_rows() if r[inat] == "JAPAN")
        assert probe["entries"] == china + japan  # disjoint union
        assert probe["bitmaps"] == {0b01, 0b10}  # each tuple tagged by one query
        assert probe["pass"] == 0  # both queries reference customer

    def test_overlapping_selections_share_entries(self, ssb):
        """Same nation in both queries: one entry carries both bits."""
        sim, eng = make_engine(ssb)
        eng.submit(q32("CHINA", "FRANCE", 1993, 1996))
        eng.submit(q32("CHINA", "BRAZIL", 1992, 1995))
        probe = {}

        def snapshot():
            yield SLEEP(0.5)
            flt = eng.cjoin_stage.pipeline_for("lineorder").filters["customer"]
            probe["bitmaps"] = {e.bitmap for e in flt.ht.values()}

        sim.spawn(snapshot(), "snap")
        sim.run()
        assert probe["bitmaps"] == {0b11}  # every CHINA customer serves both

    def test_supplier_region_vs_nation_predicates(self, ssb):
        """Different predicate granularities on one dimension coexist and
        both produce exact results."""
        from repro.query.plan import AggSpec, DimJoinSpec
        from repro.query.star import StarQuerySpec
        from repro.query.expr import Col

        region_query = StarQuerySpec(
            fact_table="lineorder",
            dims=(
                DimJoinSpec(
                    "supplier", "lo_suppkey", "s_suppkey",
                    Cmp("=", "s_region", "ASIA"), ("s_nation",)
                ),
            ),
            group_by=("s_nation",),
            aggregates=(AggSpec("sum", Col("lo_revenue"), "revenue"),),
        )
        nation_query = q32("CHINA", "CHINA", 1993, 1996)
        oracles = [
            norm(evaluate_plan(s.to_query_centric_plan(ssb.tables)))
            for s in (region_query, nation_query)
        ]
        sim, eng = make_engine(ssb)
        h1 = eng.submit(region_query)
        h2 = eng.submit(nation_query)
        sim.run()
        assert norm(h1.results) == oracles[0]
        assert norm(h2.results) == oracles[1]

    def test_stale_bits_scrubbed_before_slot_reuse(self, ssb):
        """A completed query's bits must not leak into a later query that
        reuses its slot."""
        spec_a = q32("CHINA", "FRANCE", 1993, 1996)
        spec_b = q32("JAPAN", "BRAZIL", 1992, 1995)
        oracle_b = norm(evaluate_plan(spec_b.to_query_centric_plan(ssb.tables)))
        sim, eng = make_engine(ssb)
        results = {}

        def waves():
            h_a = eng.submit(spec_a)
            yield from h_a.wait()
            h_b = eng.submit(spec_b)  # reuses slot 0 after reclamation
            yield from h_b.wait()
            results["b"] = norm(h_b.results)
            pipeline = eng.cjoin_stage.pipeline_for("lineorder")
            results["slot_reused"] = pipeline.slots.high_water == 1

        sim.spawn(waves(), "waves")
        sim.run()
        assert results["b"] == oracle_b
        assert results["slot_reused"]
