"""Unit tests for the GPS CPU pool."""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim.cpu import CpuPool, cycles_for_seconds
from repro.sim.task import SimThread


def _thread(name="t"):
    def _g():
        yield None

    return SimThread(_g(), name)


class TestConstruction:
    def test_rejects_zero_cores(self):
        with pytest.raises(ValueError):
            CpuPool(0, 1e9)

    def test_rejects_nonpositive_hz(self):
        with pytest.raises(ValueError):
            CpuPool(4, 0)

    def test_rejects_negative_oversub(self):
        with pytest.raises(ValueError):
            CpuPool(4, 1e9, oversub_penalty=-1)


class TestSingleThread:
    def test_one_thread_runs_at_full_speed(self):
        pool = CpuPool(4, 1e9, oversub_penalty=0.0)
        done = []
        pool.add(0.0, _thread(), 2e9, lambda: done.append(1))
        assert pool.next_completion(0.0) == pytest.approx(2.0)

    def test_completion_pops_thread(self):
        pool = CpuPool(4, 1e9)
        fired = []
        pool.add(0.0, _thread(), 1e9, lambda: fired.append("a"))
        t = pool.next_completion(0.0)
        completed = pool.pop_completed(t)
        assert len(completed) == 1
        completed[0][1]()
        assert fired == ["a"]
        assert pool.runnable == 0

    def test_zero_cycle_work_completes_immediately(self):
        pool = CpuPool(2, 1e9)
        pool.add(0.0, _thread(), 0.0, lambda: None)
        assert pool.next_completion(0.0) == pytest.approx(0.0)


class TestSharing:
    def test_two_threads_on_one_core_halve_speed(self):
        pool = CpuPool(1, 1e9, oversub_penalty=0.0)
        pool.add(0.0, _thread("a"), 1e9, lambda: None)
        pool.add(0.0, _thread("b"), 1e9, lambda: None)
        # Each progresses at 0.5e9 cycles/s: both done at t=2.
        assert pool.next_completion(0.0) == pytest.approx(2.0)
        assert len(pool.pop_completed(2.0)) == 2

    def test_under_subscription_no_slowdown(self):
        pool = CpuPool(8, 1e9, oversub_penalty=0.0)
        for i in range(4):
            pool.add(0.0, _thread(str(i)), 1e9, lambda: None)
        assert pool.next_completion(0.0) == pytest.approx(1.0)

    def test_unequal_work_completes_in_order(self):
        pool = CpuPool(1, 1e9, oversub_penalty=0.0)
        order = []
        pool.add(0.0, _thread("short"), 0.5e9, lambda: order.append("short"))
        pool.add(0.0, _thread("long"), 1.0e9, lambda: order.append("long"))
        # Shared core: short finishes at t=1.0 (0.5e9 at half speed).
        t1 = pool.next_completion(0.0)
        assert t1 == pytest.approx(1.0)
        for _th, cb in pool.pop_completed(t1):
            cb()
        assert order == ["short"]
        # Long has 0.5e9 left and now runs alone: done at 1.5.
        t2 = pool.next_completion(t1)
        assert t2 == pytest.approx(1.5)

    def test_late_arrival_shares_remaining(self):
        pool = CpuPool(1, 1e9, oversub_penalty=0.0)
        pool.add(0.0, _thread("a"), 1e9, lambda: None)
        # At t=0.5, a has 0.5e9 left; b arrives with 0.5e9.
        pool.add(0.5, _thread("b"), 0.5e9, lambda: None)
        # Both share: each needs 0.5e9 at 0.5e9/s -> done at 1.5.
        assert pool.next_completion(0.5) == pytest.approx(1.5)

    def test_oversubscription_penalty_slows_everyone(self):
        fair = CpuPool(2, 1e9, oversub_penalty=0.0)
        slow = CpuPool(2, 1e9, oversub_penalty=0.5)
        for pool in (fair, slow):
            for i in range(4):
                pool.add(0.0, _thread(str(i)), 1e9, lambda: None)
        t_fair = fair.next_completion(0.0)
        t_slow = slow.next_completion(0.0)
        # R/cores = 2 -> multiplier 1/(1+0.5) = 2/3 -> 1.5x slower.
        assert t_fair == pytest.approx(2.0)
        assert t_slow == pytest.approx(3.0)


class TestMetrics:
    def test_util_integral_counts_busy_cores(self):
        pool = CpuPool(4, 1e9, oversub_penalty=0.0)
        pool.add(0.0, _thread("a"), 1e9, lambda: None)
        pool.add(0.0, _thread("b"), 1e9, lambda: None)
        t = pool.next_completion(0.0)
        pool.pop_completed(t)
        assert pool.util_integral == pytest.approx(2.0)  # 2 cores busy for 1s
        assert pool.busy_time == pytest.approx(1.0)
        assert pool.avg_cores_used(1.0) == pytest.approx(2.0)

    def test_util_capped_at_cores(self):
        pool = CpuPool(2, 1e9, oversub_penalty=0.0)
        for i in range(6):
            pool.add(0.0, _thread(str(i)), 1e9, lambda: None)
        t = pool.next_completion(0.0)  # all finish together at 3.0
        pool.pop_completed(t)
        assert pool.avg_cores_used(t) == pytest.approx(2.0)

    def test_avg_cores_zero_window(self):
        assert CpuPool(2, 1e9).avg_cores_used(0.0) == 0.0


class TestConservation:
    """Work conservation: the pool can never deliver more cycle-throughput
    than cores * hz (with no oversubscription penalty, exactly that when
    saturated)."""

    @settings(max_examples=60, deadline=None)
    @given(
        cores=st.integers(1, 32),
        works=st.lists(st.floats(1e6, 5e9), min_size=1, max_size=20),
    )
    def test_total_cycles_bounded_by_capacity(self, cores, works):
        hz = 1e9
        pool = CpuPool(cores, hz, oversub_penalty=0.0)
        for i, w in enumerate(works):
            pool.add(0.0, _thread(str(i)), w, lambda: None)
        finish = 0.0
        remaining = len(works)
        now = 0.0
        while remaining:
            t = pool.next_completion(now)
            assert t is not None
            done = pool.pop_completed(t)
            remaining -= len(done)
            now = finish = t
        total = sum(works)
        capacity_bound = total / (cores * hz)
        serial_bound = total / hz
        assert finish >= capacity_bound - 1e-6
        assert finish <= serial_bound + 1e-6
        # Saturated all along if len(works) >= cores at all times is not
        # guaranteed, but finish can never beat perfect parallelism:
        assert finish * cores * hz >= total - 1e-3

    @settings(max_examples=40, deadline=None)
    @given(works=st.lists(st.floats(1e6, 2e9), min_size=2, max_size=12))
    def test_completion_order_matches_work_order(self, works):
        pool = CpuPool(2, 1e9, oversub_penalty=0.0)
        order: list[int] = []
        for i, w in enumerate(works):
            pool.add(0.0, _thread(str(i)), w, lambda i=i: order.append(i))
        now = 0.0
        while pool.runnable:
            now = pool.next_completion(now)
            for _th, cb in pool.pop_completed(now):
                cb()
        expected = [i for i, _ in sorted(enumerate(works), key=lambda p: p[1])]
        assert order == expected


def test_cycles_for_seconds():
    assert cycles_for_seconds(2e9, 1.5) == 3e9
    with pytest.raises(ValueError):
        cycles_for_seconds(1e9, math.inf)
