"""Shared join arrangements: refcounted build-side indexes reused across
concurrent queries.

The paper's thesis is that concurrent analytical queries should share
*data and work*; scans already share (circular scans, WoP, the result
cache, the GQP) but build-side **state** did not -- every QPipe hash-join
and every CJOIN admission rebuilt its build-side hash table from scratch.
Following *Shared Arrangements* (McSherry et al., PAPERS.md), this module
maintains ONE indexed representation of each (table, key column) pair --
an :class:`Arrangement` -- built on first demand and shared by every
concurrent reader that joins on that key.

Determinism contract (the same one ``CJoinPipeline._dim_sel_cache``
established): sharing an arrangement never changes a simulated tick.
Every consumer keeps yielding the exact charges of a private build --
build-input page reads, hashing/insert cycles, admission scans -- and
only the *host-side Python data structure* is reused.  The golden suite
(``tests/engine/test_golden_determinism.py``) holds simulated metrics to
bit-identical with the ``arrangements`` fast-path flag on vs off.

Contents of one arrangement:

* ``positions`` -- hash map from key value to row positions (the hash
  variant every join consumer probes);
* ``unique`` -- whether the base table's key column is unique (dimension
  tables keyed by primary key -- the star-schema common case).  Unique
  base keys make every filtered subset unique too, so shared views are
  insertion-order-independent and safe under circular-scan rotation;
* :meth:`Arrangement.single_view` -- the hoisted single-match table
  (``key -> row``), memoized **per predicate** instead of rebuilt per
  query (see :func:`single_match_table`, moved here from the join
  stage);
* :meth:`Arrangement.range_positions` -- the sorted variant: bisect
  range lookups over the key column for range-keyed consumers.

Lifecycle: the process-wide :data:`ARRANGEMENTS` cache hands out pinned
(refcounted) arrangements via :meth:`ArrangementCache.acquire`; holders
:meth:`~ArrangementCache.release` when done.  ``StorageManager.
notify_update`` calls :meth:`ArrangementCache.invalidate_table` (the
same hook the result cache uses): the cache entry is dropped so the
*next* acquirer rebuilds against fresh data, while concurrent holders
finish on their pinned snapshot (their Python reference keeps it alive).
Shard parents build arrangements pre-fork (:mod:`repro.shard.service`)
so they ride fork-COW into every worker for free.
"""

from __future__ import annotations

from bisect import bisect_left, bisect_right
from typing import TYPE_CHECKING, Any

if TYPE_CHECKING:  # pragma: no cover
    from repro.query.expr import Expr
    from repro.storage.table import Table

__all__ = ["ARRANGEMENTS", "Arrangement", "ArrangementCache", "single_match_table"]


def single_match_table(table: dict[Any, list[tuple]]) -> dict[Any, tuple] | None:
    """When every build key maps to exactly one row (dimension tables keyed
    by primary key -- the star-schema common case), flatten the hash table
    to key -> row so probes run as C-level dict lookups.  Returns None when
    any key has multiple matches (the general loop handles those).

    Hoisted here from the join stage so the specialization is computed
    once per *arrangement* (see :meth:`Arrangement.single_view`) instead
    of once per query; the stage still calls it for private builds."""
    if any(len(ms) != 1 for ms in table.values()):
        return None
    return {k: ms[0] for k, ms in table.items()}


def _layout_tag(table: "Table") -> str:
    """'packed' when the table was built with packed column vectors,
    'boxed' otherwise -- layout is baked in at table build time, so the
    tag is a property of the table object, not of the current flags."""
    from repro.storage.packed import is_packed

    cols = getattr(table, "_cols", None)
    if cols and any(is_packed(c) for c in cols):
        return "packed"
    return "boxed"


class Arrangement:
    """One shared build-side index over ``table`` keyed by ``key_column``."""

    __slots__ = (
        "table",
        "key_column",
        "key_idx",
        "layout",
        "rows",
        "positions",
        "unique",
        "refcount",
        "_single_memo",
        "_keys_memo",
        "_sorted_keys",
        "_sorted_positions",
        "_range_memo",
        "fold_views",
        "fold_ranges",
    )

    def __init__(self, table: "Table", key_column: str):
        self.table = table
        self.key_column = key_column
        self.key_idx = table.schema.index(key_column)
        self.layout = _layout_tag(table)
        # Dimension tables are small (thousands of generated rows); the
        # arrangement materializes their rows once so every shared view is
        # a dict over already-boxed tuples.
        self.rows: list[tuple] = list(table.iter_rows())
        key_idx = self.key_idx
        positions: dict[Any, list[int]] = {}
        setdefault = positions.setdefault
        for pos, r in enumerate(self.rows):
            setdefault(r[key_idx], []).append(pos)
        self.positions = positions
        self.unique = all(len(ps) == 1 for ps in positions.values())
        self.refcount = 0
        #: predicate (or None) -> {key: row} single-match view over the
        #: rows passing that predicate.  Expr compares/hashes structurally
        #: (PR 7), so queries drawing equal predicates share one view.
        self._single_memo: dict[Any, dict[Any, tuple]] = {}
        #: predicate (or None) -> [key per selected row, in table order]
        #: (what CJOIN admission extracts per admitted query)
        self._keys_memo: dict[Any, list[Any]] = {}
        self._sorted_keys: list[Any] | None = None
        self._sorted_positions: list[int] | None = None
        #: predicate -> (sorted keys, sorted positions) over the rows
        #: passing that predicate -- per-predicate sorted variants, each
        #: derived from the weakest subsuming variant already built
        #: (``None`` = the unfiltered base) instead of from scratch.
        self._range_memo: dict[Any, tuple[list[Any], list[int]]] = {}
        #: single-match views served from a subsuming sibling's view
        #: through a residual filter (query folding)
        self.fold_views = 0
        #: per-predicate sorted variants derived from a subsuming sibling
        self.fold_ranges = 0

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"<Arrangement {self.table.name}.{self.key_column} [{self.layout}]"
            f" keys={len(self.positions)} unique={self.unique} rc={self.refcount}>"
        )

    # -- hash variant ---------------------------------------------------
    def single_view(self, predicate: "Expr | None" = None) -> dict[Any, tuple]:
        """The shared single-match table (``key -> row``) over the rows
        passing ``predicate`` (all rows when None), memoized per
        predicate.  Only valid on a unique-key arrangement: uniqueness of
        the base key makes every subset's mapping independent of build
        insertion order, which is what lets circularly-rotated build
        scans share one view."""
        if not self.unique:
            raise ValueError(
                f"{self.table.name}.{self.key_column} is not unique; "
                "consumers must fall back to a private build"
            )
        view = self._single_memo.get(predicate)
        if view is None:
            key_idx = self.key_idx
            if predicate is None:
                rows = self.rows
            else:
                pred = predicate.compile(self.table.schema)
                rows = [r for r in self.rows if pred(r)]
            view = self._single_memo[predicate] = {r[key_idx]: r for r in rows}
        return view

    def has_single_view(self, predicate: "Expr | None" = None) -> bool:
        """Whether the view for ``predicate`` is already memoized (lets a
        consumer skip collecting rows to offer)."""
        return predicate in self._single_memo

    def offer_single_view(
        self, predicate: "Expr | None", rows: list[tuple]
    ) -> dict[Any, tuple]:
        """Memoize (or fetch) the single-match view for ``predicate`` from
        ``rows``, an already-filtered build input some consumer drained
        anyway.  This is the cheap path :meth:`single_view` avoids paying
        twice for: the first query with a novel predicate seeds the view
        from its own (fully charged) build scan, and later queries fetch
        the memo.  Unique base keys make the mapping independent of row
        order, so circularly-rotated build scans offer identical views."""
        view = self._single_memo.get(predicate)
        if view is None:
            if not self.unique:
                raise ValueError(
                    f"{self.table.name}.{self.key_column} is not unique; "
                    "consumers must fall back to a private build"
                )
            key_idx = self.key_idx
            view = self._single_memo[predicate] = {r[key_idx]: r for r in rows}
        return view

    # -- subsumption folds (repro.query.subsume) -------------------------
    def has_subsuming_view(self, predicate: "Expr | None" = None) -> bool:
        """Whether :meth:`fold_single_view` could serve ``predicate`` right
        now: its exact view is memoized, or some memoized sibling's
        predicate subsumes it (lets a consumer skip collecting rows to
        offer, exactly like :meth:`has_single_view`)."""
        if not self.unique:
            return False
        if predicate in self._single_memo:
            return True
        if predicate is None:
            return False
        from repro.query.subsume import predicate_subsumes  # deferred: layering

        return any(predicate_subsumes(p, predicate)[0] for p in self._single_memo)

    def fold_single_view(self, predicate: "Expr | None") -> dict[Any, tuple] | None:
        """The single-match view for ``predicate``, derived from the
        smallest memoized sibling view whose predicate *subsumes* it
        (query folding) -- filter the sibling's rows instead of re-scanning
        the table.  Returns the exact memo when present, ``None`` when no
        sibling subsumes (callers fall back to a private build).  The
        derived view is memoized, so it seeds further folds."""
        view = self._single_memo.get(predicate)
        if view is not None:
            return view
        if not self.unique or predicate is None:
            return None
        from repro.query.subsume import predicate_subsumes  # deferred: layering

        provider: dict[Any, tuple] | None = None
        for prov_pred, prov_view in self._single_memo.items():
            if predicate_subsumes(prov_pred, predicate)[0]:
                if provider is None or len(prov_view) < len(provider):
                    provider = prov_view
        if provider is None:
            return None
        pred = predicate.compile(self.table.schema)
        view = {k: r for k, r in provider.items() if pred(r)}
        self._single_memo[predicate] = view
        self.fold_views += 1
        return view

    def keys_for(
        self, selected: list[tuple], predicate: "Expr | None" = None
    ) -> list[Any]:
        """The key column of ``selected`` (an admission's dim-scan output
        for ``predicate``), memoized per predicate.  Scans iterate pages
        in table order, so equal predicates select equal row lists; the
        length check guards the (never-observed) mismatch by recomputing."""
        keys = self._keys_memo.get(predicate)
        if keys is None or len(keys) != len(selected):
            key_idx = self.key_idx
            keys = self._keys_memo[predicate] = [r[key_idx] for r in selected]
        return keys

    # -- sorted variant -------------------------------------------------
    def _ensure_sorted(self) -> None:
        if self._sorted_keys is None:
            order = sorted(range(len(self.rows)), key=lambda p: self.rows[p][self.key_idx])
            self._sorted_positions = order
            self._sorted_keys = [self.rows[p][self.key_idx] for p in order]

    def range_positions(
        self, lo: Any, hi: Any, predicate: "Expr | None" = None
    ) -> list[int]:
        """Row positions whose key falls in ``[lo, hi]`` (both inclusive)
        *and* whose row passes ``predicate`` (all rows when None), in
        ascending key order -- the sorted arrangement for range-keyed
        consumers, built lazily on first range probe (bisect over one
        sorted key vector shared by every range consumer).

        Per-predicate sorted variants are derived from the weakest
        subsuming variant already memoized (query folding): a probe under
        ``σ_a`` filters the base's sorted vector once, and a later probe
        under ``σ_a∧b`` filters ``σ_a``'s (smaller) vector instead of the
        base -- the sorted variant of a differently filtered sibling keeps
        serving narrower consumers."""
        if predicate is None:
            self._ensure_sorted()
            keys, poss = self._sorted_keys, self._sorted_positions
        else:
            keys, poss = self._range_variant(predicate)
        a = bisect_left(keys, lo)
        b = bisect_right(keys, hi)
        return poss[a:b]

    def _range_variant(self, predicate: "Expr") -> tuple[list[Any], list[int]]:
        """The (sorted keys, positions) pair over rows passing
        ``predicate``, derived from the smallest memoized subsuming
        variant (the unfiltered base when none subsumes) and memoized."""
        got = self._range_memo.get(predicate)
        if got is not None:
            return got
        from repro.query.subsume import predicate_subsumes  # deferred: layering

        provider: tuple[list[Any], list[int]] | None = None
        for prov_pred, pair in self._range_memo.items():
            if predicate_subsumes(prov_pred, predicate)[0]:
                if provider is None or len(pair[0]) < len(provider[0]):
                    provider = pair
        if provider is None:
            self._ensure_sorted()
            keys, poss = self._sorted_keys, self._sorted_positions
        else:
            keys, poss = provider
            self.fold_ranges += 1
        pred = predicate.compile(self.table.schema)
        rows = self.rows
        pairs = [(k, p) for k, p in zip(keys, poss) if pred(rows[p])]
        variant = ([k for k, _ in pairs], [p for _, p in pairs])
        self._range_memo[predicate] = variant
        return variant

    def lookup_positions(self, key: Any) -> list[int]:
        """Row positions holding ``key`` (empty when absent)."""
        return self.positions.get(key, [])


class ArrangementCache:
    """Process-wide refcounted cache of :class:`Arrangement` objects.

    Keyed by ``(table name, key column)`` with *object identity*
    verification: datasets regenerated under different storage flags
    produce new ``Table`` objects under old names, and a stale entry is
    then evicted and rebuilt (the layout tag rides on the table object,
    so identity subsumes layout).  Single-threaded by design, like every
    other host-side structure here: engine "threads" are simulated
    generators, and each shard worker process owns its own (fork-COW
    initialized) cache."""

    def __init__(self) -> None:
        self._entries: dict[tuple[str, str], Arrangement] = {}
        self.hits = 0
        self.builds = 0
        self.evictions = 0
        self.invalidations = 0

    # -- acquisition ----------------------------------------------------
    def acquire(self, table: "Table", key_column: str) -> Arrangement:
        """Pin (refcount) the arrangement for ``(table, key_column)``,
        building it on first demand.  Callers must :meth:`release`."""
        key = (table.name, key_column)
        arr = self._entries.get(key)
        if arr is not None and arr.table is table:
            self.hits += 1
            arr.refcount += 1
            return arr
        if arr is not None:
            # Same name, different table object: the dataset was rebuilt
            # (e.g. under other storage flags); drop the stale index.
            self.evictions += 1
        arr = Arrangement(table, key_column)
        self._entries[key] = arr
        self.builds += 1
        arr.refcount += 1
        return arr

    def release(self, arr: Arrangement) -> None:
        """Unpin one holder.  The arrangement stays cached for the next
        acquirer; refcounts only track live readers (invalidation never
        destroys a pinned holder's snapshot -- Python references do the
        keeping-alive, the count is the observable)."""
        if arr.refcount > 0:
            arr.refcount -= 1

    # -- invalidation ---------------------------------------------------
    def invalidate_table(self, table_name: str) -> int:
        """A base table changed: drop its arrangements so the next query
        rebuilds.  Concurrent holders keep their pinned snapshot (exactly
        the semantics of the result cache's ``invalidate_table``, whose
        ``StorageManager.notify_update`` hook calls this).  Returns the
        number of arrangements dropped."""
        stale = [k for k in self._entries if k[0] == table_name]
        for k in stale:
            del self._entries[k]
        self.evictions += len(stale)
        self.invalidations += len(stale)
        return len(stale)

    def clear(self) -> None:
        """Drop everything (tests)."""
        self.evictions += len(self._entries)
        self._entries.clear()

    # -- introspection --------------------------------------------------
    def get(self, table_name: str, key_column: str) -> Arrangement | None:
        """The cached arrangement (unpinned peek), or None."""
        return self._entries.get((table_name, key_column))

    def pinned(self) -> int:
        """Total live pins across cached arrangements."""
        return sum(a.refcount for a in self._entries.values())

    def stats(self) -> dict[str, int]:
        """Counter snapshot -- what the service tiers publish into their
        metrics (``arrangement_hits`` / ``_builds`` / ... deltas) and the
        benchmarks commit into ``BENCH_arrangements.json``."""
        return {
            "hits": self.hits,
            "builds": self.builds,
            "evictions": self.evictions,
            "invalidations": self.invalidations,
            "entries": len(self._entries),
            "fold_views": sum(a.fold_views for a in self._entries.values()),
            "fold_ranges": sum(a.fold_ranges for a in self._entries.values()),
        }


#: The process-wide cache every consumer shares (QPipe hash joins, CJOIN
#: admission, shard prewarm + workers).  Gated by the ``arrangements``
#: fast-path flag at each consumer, not here.
ARRANGEMENTS = ArrangementCache()
