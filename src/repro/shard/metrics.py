"""Shard-tier metrics: the service SLO view plus per-shard attribution.

:class:`ShardServiceMetrics` extends the server tier's
:class:`~repro.server.metrics.ServiceMetrics` (same latency / queue-wait /
admission counters, measured on the virtual timeline) with what only a
sharded deployment can report:

* per-shard service-time percentiles (the same canonical
  :func:`~repro.sim.metrics.percentile_block` every other report uses);
* **straggler attribution** -- for each gathered query, which shard's
  partial arrived last (set the critical path).  A healthy hash partition
  spreads this evenly; a skewed one concentrates it;
* scatter/gather overhead totals (virtual seconds spent on dispatch and
  merge rather than shard work);
* failure accounting: worker crashes, respawns, retried queries, stuck-
  shard timeouts, and the structured per-query failure records.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from repro.server.metrics import ServiceMetrics
from repro.sim.metrics import percentile_block

__all__ = ["ShardServiceMetrics"]


@dataclass
class ShardServiceMetrics(ServiceMetrics):
    """Metrics for one :class:`~repro.shard.service.ShardService` run."""

    n_shards: int = 0
    #: simulated service seconds per shard, one sample per gathered query
    per_shard_svc: dict[int, list[float]] = field(default_factory=dict)
    #: queries for which this shard's partial completed last
    straggler_counts: dict[int, int] = field(default_factory=dict)
    #: virtual seconds spent scattering plan specs / merging partials
    scatter_overhead_s: float = 0.0
    gather_overhead_s: float = 0.0
    #: peak per-shard backlog (virtual seconds of queued shard work)
    #: observed at any dispatch -- the shard tier's pressure gauge
    peak_shard_backlog_s: float = 0.0
    #: per-shard partition-build accounting from the spawn handshake --
    #: rows, pages and *shipped* bytes (zero-copy range views of packed
    #: buffers ship nothing; hash gathers ship full buffers; see
    #: :func:`repro.shard.partition.partition_shipping`)
    partition_shipping: dict[int, dict[str, int]] = field(default_factory=dict)
    #: virtual seconds of start-up scatter charged onto shard backlogs
    #: (per-page placement + per-shipped-byte copy via the cost model)
    prewarm_scatter_s: float = 0.0
    #: virtual seconds of start-up arrangement builds charged onto EVERY
    #: shard's backlog (dimension indexes built once pre-fork, shared
    #: fork-COW; reusing queries pay only their probe cost)
    prewarm_arrange_s: float = 0.0
    #: shared-arrangement cache hits per shard, summed over gathered
    #: queries (host-side attribution from :class:`ShardResponse`)
    arrange_hits: dict[int, int] = field(default_factory=dict)
    #: queries retried after a worker crash (and then gathered normally)
    shard_retries: int = 0
    #: worker processes (re)spawned after a crash or a timeout kill
    shard_respawns: int = 0
    #: stuck-shard timeouts (each kills + respawns the worker, no retry)
    shard_timeouts: int = 0
    #: queries that ended in a structured failure instead of a result
    failed: int = 0
    #: structured failure records: seq, shard, kind, detail, deadline view
    failures: list[dict[str, Any]] = field(default_factory=list)

    # -- recording ------------------------------------------------------
    def record_shard_service(self, shard_id: int, svc_seconds: float) -> None:
        self.per_shard_svc.setdefault(shard_id, []).append(svc_seconds)

    def record_straggler(self, shard_id: int) -> None:
        self.straggler_counts[shard_id] = self.straggler_counts.get(shard_id, 0) + 1

    def record_overhead(self, scatter_s: float, gather_s: float) -> None:
        self.scatter_overhead_s += scatter_s
        self.gather_overhead_s += gather_s

    def record_partition_shipping(
        self, shard_id: int, shipping: dict[str, int], prewarm_s: float
    ) -> None:
        self.partition_shipping[shard_id] = dict(shipping)
        self.prewarm_scatter_s += prewarm_s

    def record_arrange_hits(self, shard_id: int, hits: int) -> None:
        if hits:
            self.arrange_hits[shard_id] = self.arrange_hits.get(shard_id, 0) + hits

    def record_pressure(self, backlog_s: float) -> None:
        if backlog_s > self.peak_shard_backlog_s:
            self.peak_shard_backlog_s = backlog_s

    def record_failure(self, record: dict[str, Any]) -> None:
        self.failed += 1
        self.failures.append(record)

    # -- derived --------------------------------------------------------
    def per_shard_percentiles(self) -> dict[str, dict[str, float]]:
        """``{"shard0": {count, p50, p95, p99}, ...}`` of simulated service
        seconds -- the balance view (skew shows up as unequal p99s)."""
        return {
            f"shard{i}": percentile_block(self.per_shard_svc.get(i, []), include_count=True)
            for i in range(self.n_shards)
        }

    # -- export ---------------------------------------------------------
    def to_dict(self, hz: float | None = None, window: float | None = None) -> dict[str, Any]:
        out = super().to_dict(hz=hz, window=window)
        out["shards"] = {
            "n_shards": self.n_shards,
            "service_seconds": self.per_shard_percentiles(),
            "stragglers": {f"shard{i}": n for i, n in sorted(self.straggler_counts.items())},
            "scatter_overhead_s": self.scatter_overhead_s,
            "gather_overhead_s": self.gather_overhead_s,
            "partition_shipping": {
                f"shard{i}": dict(s) for i, s in sorted(self.partition_shipping.items())
            },
            "prewarm_scatter_s": self.prewarm_scatter_s,
            "prewarm_arrange_s": self.prewarm_arrange_s,
            "arrange_hits": {f"shard{i}": n for i, n in sorted(self.arrange_hits.items())},
            "peak_backlog_s": self.peak_shard_backlog_s,
            "retries": self.shard_retries,
            "respawns": self.shard_respawns,
            "timeouts": self.shard_timeouts,
            "failed": self.failed,
            "failures": list(self.failures),
        }
        return out
