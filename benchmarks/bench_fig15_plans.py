"""Paper Figure 15: very high concurrency with a varying number of
possible plans (similarity factor sweep).

Shape claims checked:
* QPipe-SP is best at extreme similarity (1 plan) and degrades as plan
  variety grows;
* CJOIN is roughly flat across the similarity sweep;
* CJOIN-SP improves on plain CJOIN whenever common sub-plans exist
  (paper: 20-48%) and never does meaningfully worse.
"""

from repro.bench.experiments import fig15_plan_variety


def bench_fig15_plan_variety(once, save_report, full_mode):
    result = once(fig15_plan_variety, full=full_mode)
    save_report("fig15_plans", result.render())

    rt = result.data["rt"]
    # QPipe-SP: the best configuration at extreme similarity (1 plan), and
    # worse at full variety than at 1 plan.  (Its own series need not be
    # monotonic: at paper scale, 512 satellites of one host wake together
    # on every shared page, and the contention model charges that herd --
    # a mid-sweep dip documented in EXPERIMENTS.md.)
    assert rt["QPipe-SP"][0] <= 1.01 * min(rt[name][0] for name in rt)
    assert rt["QPipe-SP"][-1] > rt["QPipe-SP"][0]
    assert rt["QPipe-SP"][0] < rt["CJOIN"][0]
    # CJOIN roughly flat: within 3x across the sweep.
    assert max(rt["CJOIN"]) < 3 * min(rt["CJOIN"])
    # CJOIN-SP gains where similarity exists; never >5% worse than CJOIN.
    improvements = result.data["improvements"]
    assert improvements[0] > 15.0  # single plan: maximal packet sharing
    assert all(imp > -5.0 for imp in improvements)
