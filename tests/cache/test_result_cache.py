"""Unit tests for the shared result cache store: probe/fill bookkeeping,
byte-budgeted eviction under both policies, table invalidation."""

import pytest

from repro.cache import CACHE_POLICIES, ResultCache
from repro.sim import Simulator
from repro.sim.machine import MachineSpec
from repro.storage.page import Batch


def make_cache(capacity=1000.0, policy="benefit", max_entry_fraction=0.5):
    sim = Simulator(MachineSpec(cores=2))
    return sim, ResultCache(sim, capacity, policy, max_entry_fraction)


def entry_batches(n=1):
    return [Batch([(i,)], weight=1.0) for i in range(n)]


class TestConstruction:
    def test_rejects_bad_capacity(self):
        sim = Simulator(MachineSpec(cores=2))
        with pytest.raises(ValueError):
            ResultCache(sim, 0.0)
        with pytest.raises(ValueError):
            ResultCache(sim, -1.0)

    def test_rejects_unknown_policy(self):
        sim = Simulator(MachineSpec(cores=2))
        with pytest.raises(ValueError, match="unknown cache policy"):
            ResultCache(sim, 100.0, "fifo")

    def test_policies_registry_matches(self):
        for policy in CACHE_POLICIES:
            sim, cache = make_cache(policy=policy)
            assert cache.policy == policy


class TestProbeAndFill:
    def test_miss_then_hit(self):
        sim, cache = make_cache()
        key = ("sort", "x")
        assert cache.probe(key) is None
        assert cache.misses == 1
        cache.admit(key, entry_batches(), 100.0, 0.5, frozenset({"t"}), "sort")
        entry = cache.probe(key)
        assert entry is not None
        assert entry.hits == 1
        assert cache.hits == 1
        assert sim.metrics.counts["result_cache_hits"] == 1
        assert sim.metrics.counts["result_cache_misses"] == 1

    def test_contains_is_silent(self):
        sim, cache = make_cache()
        key = ("agg", "y")
        cache.admit(key, entry_batches(), 10.0, 0.1, frozenset(), "aggregate")
        assert cache.contains(key)
        assert cache.contains_any([("other",), key])
        assert not cache.contains_any([("other",)])
        entry = cache._entries[key]
        assert cache.hits == 0 and cache.misses == 0 and entry.hits == 0

    def test_begin_fill_is_exclusive(self):
        _, cache = make_cache()
        key = ("join", "z")
        assert cache.begin_fill(key)
        assert not cache.begin_fill(key)  # a second identical host must not fill
        cache.end_fill(key)
        assert cache.begin_fill(key)

    def test_oversized_entry_rejected(self):
        sim, cache = make_cache(capacity=1000.0, max_entry_fraction=0.5)
        assert not cache.fits_entry(501.0)
        assert cache.fits_entry(500.0)
        assert not cache.admit(("k",), entry_batches(), 501.0, 1.0, frozenset(), "sort")
        assert cache.rejected == 1
        assert len(cache) == 0

    def test_readmit_replaces(self):
        _, cache = make_cache()
        key = ("sort", "x")
        cache.admit(key, entry_batches(1), 100.0, 0.5, frozenset(), "sort")
        cache.admit(key, entry_batches(3), 200.0, 0.7, frozenset(), "sort")
        assert len(cache) == 1
        assert cache.resident_bytes == 200.0


class TestEviction:
    def test_lru_evicts_least_recently_probed(self):
        _, cache = make_cache(capacity=1000.0, policy="lru", max_entry_fraction=1.0)
        cache.admit(("a",), entry_batches(), 400.0, 1.0, frozenset(), "sort")
        cache.admit(("b",), entry_batches(), 400.0, 1.0, frozenset(), "sort")
        cache.probe(("a",))  # "a" is now more recent than "b"
        cache.admit(("c",), entry_batches(), 400.0, 1.0, frozenset(), "sort")
        assert not cache.contains(("b",))
        assert cache.contains(("a",)) and cache.contains(("c",))
        assert cache.evictions == 1

    def test_benefit_evicts_cheapest_per_byte(self):
        _, cache = make_cache(capacity=1000.0, policy="benefit", max_entry_fraction=1.0)
        # "cheap" is large and cost little to make; "dear" is small and slow.
        cache.admit(("cheap",), entry_batches(), 400.0, 0.01, frozenset(), "sort")
        cache.admit(("dear",), entry_batches(), 100.0, 5.0, frozenset(), "sort")
        cache.admit(("new",), entry_batches(), 600.0, 1.0, frozenset(), "sort")
        assert not cache.contains(("cheap",))
        assert cache.contains(("dear",))

    def test_benefit_weighs_observed_reuse(self):
        _, cache = make_cache(capacity=1000.0, policy="benefit", max_entry_fraction=1.0)
        # Equal cost and size: the probed entry must survive the unprobed.
        cache.admit(("cold",), entry_batches(), 400.0, 1.0, frozenset(), "sort")
        cache.admit(("hot",), entry_batches(), 400.0, 1.0, frozenset(), "sort")
        for _ in range(3):
            cache.probe(("hot",))
        cache.admit(("new",), entry_batches(), 400.0, 1.0, frozenset(), "sort")
        assert cache.contains(("hot",))
        assert not cache.contains(("cold",))

    def test_eviction_keeps_budget(self):
        _, cache = make_cache(capacity=1000.0, max_entry_fraction=1.0)
        for i in range(10):
            cache.admit((i,), entry_batches(), 300.0, 1.0, frozenset(), "sort")
        assert cache.resident_bytes <= 1000.0
        assert len(cache) == 3


class TestInvalidation:
    def test_invalidate_by_table(self):
        sim, cache = make_cache()
        cache.admit(("a",), entry_batches(), 10.0, 1.0, frozenset({"lineorder", "date"}), "sort")
        cache.admit(("b",), entry_batches(), 10.0, 1.0, frozenset({"part"}), "sort")
        assert cache.invalidate_table("lineorder") == 1
        assert not cache.contains(("a",))
        assert cache.contains(("b",))
        assert cache.invalidated == 1
        assert cache.resident_bytes == 10.0
        assert cache.invalidate_table("lineorder") == 0

    def test_clear(self):
        _, cache = make_cache()
        cache.admit(("a",), entry_batches(), 10.0, 1.0, frozenset(), "sort")
        cache.clear()
        assert len(cache) == 0
        assert cache.resident_bytes == 0.0


class TestStats:
    def test_stats_snapshot(self):
        _, cache = make_cache(capacity=500.0, policy="lru")
        cache.admit(("a",), entry_batches(), 10.0, 1.0, frozenset(), "sort")
        cache.probe(("a",))
        cache.probe(("b",))
        stats = cache.stats()
        assert stats["policy"] == "lru"
        assert stats["capacity_bytes"] == 500.0
        assert stats["entries"] == 1
        assert stats["hits"] == 1
        assert stats["misses"] == 1
        assert stats["insertions"] == 1
