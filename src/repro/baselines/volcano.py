"""Volcano-style query-centric engine (the paper's PostgreSQL stand-in).

One simulated thread per query (a backend process) evaluates the plan
bottom-up with no sharing of any kind: no circular scans, no SP, no shared
operators.  Per-tuple CPU constants are scaled by ``volcano_cpu_factor``
(< 1): the paper notes that "as Postgres is a more mature system than the
two research prototypes, it attains a better performance for low
concurrency" -- the point of the comparison is sharing behavior at high
concurrency, where the query-centric model contends for resources.
"""

from __future__ import annotations

import dataclasses
from typing import TYPE_CHECKING, Any, Iterator

from repro.engine.config import (
    batch_kernels_default,
    columnar_pages_default,
    fuse_charges_default,
)
from repro.engine.qpipe import QueryHandle
from repro.engine.stages.aggregate import _finalize, accumulate_columnar
from repro.engine.stages.join import probe_columnar, single_match_table
from repro.storage.page import ColumnBatch
from repro.query.plan import (
    AggregateNode,
    CJoinNode,
    HashJoinNode,
    PlanNode,
    ScanNode,
    SelectNode,
    SortNode,
)
from repro.query.star import Query, StarQuerySpec
from repro.sim.commands import CPU, CPU_FUSED
from repro.sim.costmodel import DEFAULT_COST_MODEL, CostModel
from repro.sim.sync import Gate

if TYPE_CHECKING:  # pragma: no cover
    from repro.sim.engine import Simulator
    from repro.storage.manager import StorageManager

#: CostModel fields expressing CPU cycles, scaled by the maturity factor.
_CYCLE_FIELDS = (
    "scan_tuple",
    "pred_term",
    "read_tuple",
    "bufferpool_page",
    "hash_func",
    "hash_equal",
    "build_insert",
    "probe_visit",
    "join_emit",
    "agg_update",
    "agg_per_function",
    "sort_per_item_log",
    "packet_dispatch",
)


def mature_cost_model(base: CostModel) -> CostModel:
    """The baseline's cheaper per-tuple code paths."""
    f = base.volcano_cpu_factor
    return dataclasses.replace(base, **{name: getattr(base, name) * f for name in _CYCLE_FIELDS})


class VolcanoEngine:
    """Query-centric iterator engine on the simulated machine."""

    name = "Postgres"

    def __init__(self, sim: "Simulator", storage: "StorageManager", cost: CostModel = DEFAULT_COST_MODEL):
        self.sim = sim
        self.storage = storage
        self.cost = mature_cost_model(cost)
        self._query_ids = iter(range(10**9))
        self.handles: list[QueryHandle] = []

    # ------------------------------------------------------------------
    def submit(self, spec: StarQuerySpec, label: str | None = None) -> QueryHandle:
        plan = spec.to_query_centric_plan(self.storage.tables)
        return self.submit_plan(plan, label=label or spec.label, spec=spec)

    def submit_plan(self, plan: PlanNode, label: str = "", spec: StarQuerySpec | None = None) -> QueryHandle:
        """Submit an explicit physical plan on its own backend thread."""
        query = Query(
            query_id=next(self._query_ids),
            spec=spec,
            plan=plan,
            label=label,
            submit_time=self.sim.now,
        )
        handle = QueryHandle(query=query, gate=Gate(self.sim, f"pg-q{query.query_id}.done"))
        self.handles.append(handle)
        self.sim.spawn(
            self._backend(query, plan, handle),
            name=f"pg-q{query.query_id}",
            query_id=query.query_id,
        )
        return handle

    # ------------------------------------------------------------------
    def _backend(self, query: Query, plan: PlanNode, handle: QueryHandle) -> Iterator[Any]:
        yield CPU(self.cost.packet_dispatch, "misc")
        rows, _w = yield from self._eval(plan)
        if isinstance(rows, ColumnBatch):
            rows = list(rows.rows)
        query.results = rows
        query.finish_time = self.sim.now
        handle.results = rows
        handle.gate.open()

    def _eval(self, node: PlanNode) -> Iterator[Any]:
        """Evaluate bottom-up; a relation is either a list of row tuples or
        (columnar fast path) a :class:`ColumnBatch` over the table's column
        vectors.  Charges count rows, never representation, so both modes
        are tick-identical.

        The tree walk is an explicit stack machine rather than recursive
        ``yield from``: every simulator resume re-enters exactly one
        generator frame instead of bubbling through one frame per plan
        level (Q3.2 plans are ~6 deep, and the per-page scan yields are the
        hottest resume path in the whole baseline).  Frames are
        ``(node, phase, saved)``; ``result`` carries the last completed
        subtree's ``(relation, weight)``.  The phase splits reproduce the
        recursive order exactly -- a hash join charges its build *before*
        its probe subtree runs."""
        cost = self.cost
        result: tuple[Any, float] | None = None
        stack: list[tuple[PlanNode, int, Any]] = [(node, 0, None)]
        while stack:
            nd, phase, saved = stack.pop()
            if isinstance(nd, ScanNode):
                # Sequential scan through the buffer pool with OS read-ahead
                # (PostgreSQL enjoys the same kernel prefetching the research
                # prototypes do), but no sharing across queries of any kind.
                # Inlined here (not a helper generator): the per-page yields
                # are the hottest resume path in the whole baseline, and on
                # the direct path the buffer pool is driven straight -- no
                # PageSource frame, no helper frame.
                table = nd.table
                columnar = columnar_pages_default()
                rows: list[tuple] = []
                npages = table.num_pages
                if npages:
                    storage = self.storage
                    scfg = storage.config
                    if (
                        storage.ram_resident
                        or scfg.direct_io
                        or scfg.prefetch_window <= 0
                    ):
                        read_page = storage.read_page
                        prepay = (
                            storage.latch_prepay_charge()
                            if fuse_charges_default()
                            else None
                        )
                        if prepay is not None:
                            # Prepay the next page's buffer-pool latch charge
                            # at the tail of this page's scan charge: one
                            # fewer event per page, tick-identical (the latch
                            # take still happens at the charge's completion
                            # instant).  Fused commands are immutable, so
                            # cache them per page length.
                            fused_scans: dict[int, Any] = {}
                            last = npages - 1
                            prepaid = False
                            for i in range(npages):
                                page = yield from read_page(
                                    table, i, latch_prepaid=prepaid
                                )
                                n = len(page)
                                if i < last:
                                    cmd = fused_scans.get(n)
                                    if cmd is None:
                                        cmd = fused_scans[n] = CPU_FUSED(
                                            cost.scan(n, page.weight), prepay
                                        )
                                    prepaid = True
                                else:
                                    cmd = cost.scan(n, page.weight)
                                    prepaid = False
                                yield cmd
                                if not columnar:
                                    rows.extend(page.rows)
                        else:
                            for i in range(npages):
                                page = yield from read_page(table, i)
                                yield cost.scan(len(page), page.weight)
                                if not columnar:
                                    rows.extend(page.rows)
                    else:
                        from repro.storage.prefetch import PageSource

                        source = PageSource(
                            self.sim, storage, table, 0, name="pg-scan"
                        )
                        for _ in range(npages):
                            page = yield from source.next()
                            yield cost.scan(len(page), page.weight)
                            if not columnar:
                                rows.extend(page.rows)
                        source.close()
                if columnar:
                    # Pages arrive in table order, so the scan output is a
                    # zero-copy view of the table's (cached) column vectors.
                    result = (
                        ColumnBatch(table.columns(), None, table.row_weight),
                        table.row_weight,
                    )
                else:
                    result = rows, table.row_weight
            elif isinstance(nd, SelectNode):
                if phase == 0:
                    stack.append((nd, 1, None))
                    stack.append((nd.child, 0, None))
                    continue
                rel, w = result
                yield cost.predicate(len(rel), w, max(nd.predicate.terms, 1))
                if isinstance(rel, ColumnBatch):
                    ck = nd.predicate.compile_cols(nd.child.schema)
                    if ck is not None:
                        result = rel.take(ck(rel.column, len(rel))), w
                    else:
                        kernel = nd.predicate.compile_batch(nd.child.schema)
                        result = kernel(rel.rows), w
                elif batch_kernels_default():
                    kernel = nd.predicate.compile_batch(nd.child.schema)
                    result = kernel(rel), w
                else:
                    pred = nd.predicate.compile(nd.child.schema)
                    result = [r for r in rel if pred(r)], w
            elif isinstance(nd, HashJoinNode):
                if phase == 0:
                    stack.append((nd, 1, None))
                    stack.append((nd.build, 0, None))
                    continue
                if phase == 1:
                    build_rel, bw = result
                    # Build rows materialize either way: they become the
                    # probe output's tail payloads (dims are small
                    # post-filter).
                    build_rows = (
                        build_rel.rows
                        if isinstance(build_rel, ColumnBatch)
                        else build_rel
                    )
                    # Star dimensions are keyed by primary key, so the
                    # common case is one row per key: build the flat
                    # single-match dict directly (C-level dict(zip)) and
                    # only fall back to the multi-match table when a
                    # duplicate key shows up.
                    table: dict[Any, list[tuple]] | None = None
                    single: dict[Any, tuple] | None = None
                    bkey = nd.build.schema.index(nd.build_key)
                    if build_rows:
                        nb = len(build_rows)
                        if fuse_charges_default():
                            yield CPU_FUSED(cost.hashing(nb, bw), cost.build(nb, bw))
                        else:
                            yield cost.hashing(nb, bw)
                            yield cost.build(nb, bw)
                        bkeys = [r[bkey] for r in build_rows]
                        single = dict(zip(bkeys, build_rows))
                        if len(single) != nb:
                            single = None
                            table = {}
                            setdefault = table.setdefault
                            for k, r in zip(bkeys, build_rows):
                                setdefault(k, []).append(r)
                    stack.append((nd, 2, (table, single)))
                    stack.append((nd.probe, 0, None))
                    continue
                table, single = saved
                probe_rel, w = result
                pkey = nd.probe.schema.index(nd.probe_key)
                n = len(probe_rel)
                if isinstance(probe_rel, ColumnBatch):
                    if single is None and table is None:
                        table = {}  # empty build side: nothing matches
                    out: Any = probe_columnar(
                        probe_rel,
                        pkey,
                        table.get if table is not None else None,
                        w,
                        single,
                    )
                elif single is not None:
                    sget = single.get
                    out = [
                        r + m for r in probe_rel if (m := sget(r[pkey])) is not None
                    ]
                elif table is not None:
                    get = table.get
                    out = [r + m for r in probe_rel for m in get(r[pkey], ())]
                else:
                    out = []
                nout = len(out)
                cmds = []
                if n:
                    cmds.append(cost.hashing(n, w, equals=nout))
                    cmds.append(cost.probe(n, w))
                if nout:
                    cmds.append(cost.emit_join(nout, w))
                if cmds:
                    if fuse_charges_default():
                        yield CPU_FUSED(*cmds)
                    else:
                        for cmd in cmds:
                            yield cmd
                result = out, w
            elif isinstance(nd, AggregateNode):
                if phase == 0:
                    stack.append((nd, 1, None))
                    stack.append((nd.child, 0, None))
                    continue
                rel, w = result
                n = len(rel)
                if n:
                    if fuse_charges_default():
                        yield CPU_FUSED(
                            CPU(cost.hash_func * n * w, "aggregation"),
                            cost.aggregate(n, w, functions=len(nd.aggregates)),
                        )
                    else:
                        yield CPU(cost.hash_func * n * w, "aggregation")
                        yield cost.aggregate(n, w, functions=len(nd.aggregates))
                schema = nd.child.schema
                if isinstance(rel, ColumnBatch):
                    # Late-materialized accumulation; same fold order as the
                    # reference row loop, so every float is bit-identical.
                    specs = nd.aggregates
                    fns = [
                        a.expr.compile(schema) if a.expr is not None else None
                        for a in specs
                    ]
                    group_idx = tuple(schema.index(g) for g in nd.group_by)
                    groups: dict = {}
                    accumulate_columnar(rel, n, w, group_idx, specs, fns, schema, groups)
                    out = [
                        key + tuple(_finalize(specs[i], acc, i) for i in range(len(specs)))
                        for key, acc in groups.items()
                    ]
                    result = out, 1.0
                else:
                    from repro.baselines.reference import _aggregate

                    result = _aggregate(nd, rel, w, schema), 1.0
            elif isinstance(nd, SortNode):
                if phase == 0:
                    stack.append((nd, 1, None))
                    stack.append((nd.child, 0, None))
                    continue
                rel, w = result
                rows = list(rel.rows) if isinstance(rel, ColumnBatch) else rel
                if rows:
                    yield cost.sort(len(rows), w)
                    schema = nd.child.schema
                    for col, ascending in reversed(nd.keys):
                        i = schema.index(col)
                        rows.sort(key=lambda r, i=i: r[i], reverse=not ascending)
                result = rows, w
            elif isinstance(nd, CJoinNode):
                raise TypeError("the Volcano baseline does not evaluate GQP plans")
            else:
                raise TypeError(f"cannot evaluate {type(nd).__name__}")
        return result

