"""Paper Table 2: taxonomy of sharing methodologies.

Encoded as structured data (and rendered as the paper's table) so examples
and docs can reference it programmatically.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.bench.reporting import format_table


@dataclass(frozen=True)
class SystemTaxonomy:
    """One row of the paper's Table 2."""
    system: str
    execution_engine_sharing: str
    io_layer_sharing: str
    storage_manager: str
    reproduced_by: str  # which module of this library models it


TABLE2 = (
    SystemTaxonomy(
        "Traditional query-centric model",
        "Query caching, materialized views, MQO",
        "Buffer pool management techniques",
        "Any",
        "repro.baselines.volcano",
    ),
    SystemTaxonomy(
        "QPipe",
        "Simultaneous Pipelining",
        "Circular scan of each table",
        "Any (Shore-MT in the paper)",
        "repro.engine",
    ),
    SystemTaxonomy(
        "CJOIN",
        "Global Query Plan (joins of star queries)",
        "Circular scan of the fact table",
        "Any",
        "repro.gqp",
    ),
    SystemTaxonomy(
        "DataPath",
        "Global Query Plan",
        "Asynchronous linear scan of each disk",
        "Special I/O subsystem (read-only)",
        "discussed in DESIGN.md (not reproduced; paper uses CJOIN)",
    ),
    SystemTaxonomy(
        "SharedDB",
        "Global Query Plan (with batched execution)",
        "Circular scan of in-memory table partitions",
        "Crescando (reads and updates)",
        "discussed in DESIGN.md (not reproduced; paper uses CJOIN)",
    ),
)


def render_table2() -> str:
    return format_table(
        "Table 2: sharing methodologies by system",
        ["system", "execution engine", "I/O layer", "storage manager", "in this repo"],
        [
            [t.system, t.execution_engine_sharing, t.io_layer_sharing, t.storage_manager, t.reproduced_by]
            for t in TABLE2
        ],
    )
