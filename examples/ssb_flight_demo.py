#!/usr/bin/env python3
"""Run the complete SSB suite (all thirteen queries) concurrently.

Submits one instance of every SSB query to the engine of your choice and
prints per-query response times and result sizes -- a miniature of the
dashboard workload the paper's introduction motivates (hundreds of analysts
firing templated reports at one warehouse).

    python examples/ssb_flight_demo.py [qpipe|qpipe-cs|qpipe-sp|cjoin|cjoin-sp]
"""

import sys

from repro.data import generate_ssb
from repro.engine import CJOIN, CJOIN_SP, QPIPE, QPIPE_CS, QPIPE_SP, QPipeEngine
from repro.query.ssb_suite import ALL_SSB_QUERIES, default_instance
from repro.sim import Simulator
from repro.sim.costmodel import DEFAULT_COST_MODEL
from repro.sim.machine import PAPER_MACHINE
from repro.storage import StorageConfig, StorageManager

CONFIGS = {
    "qpipe": QPIPE,
    "qpipe-cs": QPIPE_CS,
    "qpipe-sp": QPIPE_SP,
    "cjoin": CJOIN,
    "cjoin-sp": CJOIN_SP,
}


def main(config_name: str = "cjoin-sp") -> None:
    config = CONFIGS[config_name]
    dataset = generate_ssb(sf=1.0, seed=42)
    sim = Simulator(PAPER_MACHINE)
    storage = StorageManager(
        sim, DEFAULT_COST_MODEL, dataset.tables, StorageConfig(resident="memory")
    )
    engine = QPipeEngine(sim, storage, config)

    handles = {name: engine.submit(default_instance(name)) for name in sorted(ALL_SSB_QUERIES)}
    sim.run()

    print(f"all 13 SSB queries, concurrently, on {config.name} "
          f"(makespan {sim.now:.2f}s, {sim.avg_cores_used():.1f} cores avg)\n")
    print(f"{'query':>6s} {'rows':>6s} {'response (s)':>13s}")
    for name, handle in handles.items():
        print(f"{name:>6s} {len(handle.results):6d} {handle.response_time:13.2f}")
    sharing = engine.sharing_summary()
    if sharing:
        print("\nsharing events:", ", ".join(f"{k}={v}" for k, v in sorted(sharing.items())))
    else:
        print("\nno SP sharing events (the thirteen templates are all distinct"
              " -- on CJOIN configs the joins still share the global query plan)")


if __name__ == "__main__":
    main(sys.argv[1] if len(sys.argv) > 1 else "cjoin-sp")
