"""repro: a reproduction of "Sharing Data and Work Across Concurrent
Analytical Queries" (Psaroudakis, Athanassoulis, Ailamaki; VLDB 2013).

The package implements the paper's integrated sharing system on a
deterministic discrete-event simulation of its 24-core testbed:

* :mod:`repro.sim` -- the simulated machine (GPS CPU pool, disk model,
  cost model, sim-time synchronization);
* :mod:`repro.storage` -- the storage-manager substrate (paged tables,
  buffer pool, OS page cache, prefetching);
* :mod:`repro.data` -- SSB and TPC-H lineitem generators;
* :mod:`repro.query` -- expressions, signed plan nodes, star-query specs,
  the thirteen SSB queries and TPC-H Q1;
* :mod:`repro.engine` -- the QPipe engine: Simultaneous Pipelining with
  push-based FIFOs or pull-based Shared Pages Lists, circular scans,
  Windows of Opportunity, the hybrid router and the prediction model;
* :mod:`repro.gqp` -- the CJOIN global query plan (shared selections and
  hash-joins, batched asynchronous admission, distributor parts);
* :mod:`repro.baselines` -- the reference evaluator and the Volcano-style
  query-centric baseline;
* :mod:`repro.bench` -- workloads, runners, and one experiment per paper
  figure/table;
* :mod:`repro.server` -- the admission-controlled query service layer:
  open-loop arrivals, bounded queue with deadlines and backpressure,
  static/adaptive SP-GQP routing, service-level (tail latency) metrics.

Typical use::

    from repro.data import generate_ssb
    from repro.engine import CJOIN_SP, QPipeEngine
    from repro.query.ssb_queries import q32
    from repro.sim import Simulator
    from repro.sim.costmodel import DEFAULT_COST_MODEL
    from repro.sim.machine import PAPER_MACHINE
    from repro.storage import StorageConfig, StorageManager

    dataset = generate_ssb(sf=1.0, seed=42)
    sim = Simulator(PAPER_MACHINE)
    storage = StorageManager(sim, DEFAULT_COST_MODEL, dataset.tables,
                             StorageConfig(resident="memory"))
    engine = QPipeEngine(sim, storage, CJOIN_SP)
    handle = engine.submit(q32("CHINA", "FRANCE", 1993, 1996))
    sim.run()
    print(handle.response_time, handle.results)

See README.md for the project overview, DESIGN.md for the substitution
rationale and system inventory, and EXPERIMENTS.md for paper-vs-measured
results.
"""

__version__ = "1.0.0"

__all__ = ["__version__"]
