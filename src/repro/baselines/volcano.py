"""Volcano-style query-centric engine (the paper's PostgreSQL stand-in).

One simulated thread per query (a backend process) evaluates the plan
bottom-up with no sharing of any kind: no circular scans, no SP, no shared
operators.  Per-tuple CPU constants are scaled by ``volcano_cpu_factor``
(< 1): the paper notes that "as Postgres is a more mature system than the
two research prototypes, it attains a better performance for low
concurrency" -- the point of the comparison is sharing behavior at high
concurrency, where the query-centric model contends for resources.
"""

from __future__ import annotations

import dataclasses
from typing import TYPE_CHECKING, Any, Iterator

from repro.engine.config import batch_kernels_default, fuse_charges_default
from repro.engine.qpipe import QueryHandle
from repro.query.plan import (
    AggregateNode,
    CJoinNode,
    HashJoinNode,
    PlanNode,
    ScanNode,
    SelectNode,
    SortNode,
)
from repro.query.star import Query, StarQuerySpec
from repro.sim.commands import CPU, CPU_FUSED
from repro.sim.costmodel import DEFAULT_COST_MODEL, CostModel
from repro.sim.sync import Gate

if TYPE_CHECKING:  # pragma: no cover
    from repro.sim.engine import Simulator
    from repro.storage.manager import StorageManager

#: CostModel fields expressing CPU cycles, scaled by the maturity factor.
_CYCLE_FIELDS = (
    "scan_tuple",
    "pred_term",
    "read_tuple",
    "bufferpool_page",
    "hash_func",
    "hash_equal",
    "build_insert",
    "probe_visit",
    "join_emit",
    "agg_update",
    "agg_per_function",
    "sort_per_item_log",
    "packet_dispatch",
)


def mature_cost_model(base: CostModel) -> CostModel:
    """The baseline's cheaper per-tuple code paths."""
    f = base.volcano_cpu_factor
    return dataclasses.replace(base, **{name: getattr(base, name) * f for name in _CYCLE_FIELDS})


class VolcanoEngine:
    """Query-centric iterator engine on the simulated machine."""

    name = "Postgres"

    def __init__(self, sim: "Simulator", storage: "StorageManager", cost: CostModel = DEFAULT_COST_MODEL):
        self.sim = sim
        self.storage = storage
        self.cost = mature_cost_model(cost)
        self._query_ids = iter(range(10**9))
        self.handles: list[QueryHandle] = []

    # ------------------------------------------------------------------
    def submit(self, spec: StarQuerySpec, label: str | None = None) -> QueryHandle:
        plan = spec.to_query_centric_plan(self.storage.tables)
        return self.submit_plan(plan, label=label or spec.label, spec=spec)

    def submit_plan(self, plan: PlanNode, label: str = "", spec: StarQuerySpec | None = None) -> QueryHandle:
        """Submit an explicit physical plan on its own backend thread."""
        query = Query(
            query_id=next(self._query_ids),
            spec=spec,
            plan=plan,
            label=label,
            submit_time=self.sim.now,
        )
        handle = QueryHandle(query=query, gate=Gate(self.sim, f"pg-q{query.query_id}.done"))
        self.handles.append(handle)
        self.sim.spawn(
            self._backend(query, plan, handle),
            name=f"pg-q{query.query_id}",
            query_id=query.query_id,
        )
        return handle

    # ------------------------------------------------------------------
    def _backend(self, query: Query, plan: PlanNode, handle: QueryHandle) -> Iterator[Any]:
        yield CPU(self.cost.packet_dispatch, "misc")
        rows, _w = yield from self._eval(plan)
        query.results = rows
        query.finish_time = self.sim.now
        handle.results = rows
        handle.gate.open()

    def _eval(self, node: PlanNode) -> Iterator[Any]:
        cost = self.cost
        if isinstance(node, ScanNode):
            # Sequential scan through the buffer pool with OS read-ahead
            # (PostgreSQL enjoys the same kernel prefetching the research
            # prototypes do), but no sharing across queries of any kind.
            from repro.storage.prefetch import PageSource

            table = node.table
            rows: list[tuple] = []
            if table.num_pages:
                source = PageSource(self.sim, self.storage, table, 0, name="pg-scan")
                for _ in range(table.num_pages):
                    page = yield from source.next()
                    yield cost.scan(len(page.rows), page.weight)
                    rows.extend(page.rows)
                source.close()
            return rows, table.row_weight
        if isinstance(node, SelectNode):
            rows, w = yield from self._eval(node.child)
            yield cost.predicate(len(rows), w, max(node.predicate.terms, 1))
            if batch_kernels_default():
                kernel = node.predicate.compile_batch(node.child.schema)
                return kernel(rows), w
            pred = node.predicate.compile(node.child.schema)
            return [r for r in rows if pred(r)], w
        if isinstance(node, HashJoinNode):
            build_rows, bw = yield from self._eval(node.build)
            table: dict[Any, list[tuple]] = {}
            bkey = node.build.schema.index(node.build_key)
            if build_rows:
                if fuse_charges_default():
                    yield CPU_FUSED(cost.hashing(len(build_rows), bw), cost.build(len(build_rows), bw))
                else:
                    yield cost.hashing(len(build_rows), bw)
                    yield cost.build(len(build_rows), bw)
                setdefault = table.setdefault
                for r in build_rows:
                    setdefault(r[bkey], []).append(r)
            probe_rows, w = yield from self._eval(node.probe)
            pkey = node.probe.schema.index(node.probe_key)
            get = table.get
            out = [r + m for r in probe_rows for m in get(r[pkey], ())]
            cmds = []
            if probe_rows:
                cmds.append(cost.hashing(len(probe_rows), w, equals=len(out)))
                cmds.append(cost.probe(len(probe_rows), w))
            if out:
                cmds.append(cost.emit_join(len(out), w))
            if cmds:
                if fuse_charges_default():
                    yield CPU_FUSED(*cmds)
                else:
                    for cmd in cmds:
                        yield cmd
            return out, w
        if isinstance(node, AggregateNode):
            rows, w = yield from self._eval(node.child)
            if rows:
                if fuse_charges_default():
                    yield CPU_FUSED(
                        CPU(cost.hash_func * len(rows) * w, "aggregation"),
                        cost.aggregate(len(rows), w, functions=len(node.aggregates)),
                    )
                else:
                    yield CPU(cost.hash_func * len(rows) * w, "aggregation")
                    yield cost.aggregate(len(rows), w, functions=len(node.aggregates))
            from repro.baselines.reference import _aggregate

            return _aggregate(node, rows, w, node.child.schema), 1.0
        if isinstance(node, SortNode):
            rows, w = yield from self._eval(node.child)
            if rows:
                yield cost.sort(len(rows), w)
                schema = node.child.schema
                for col, ascending in reversed(node.keys):
                    i = schema.index(col)
                    rows.sort(key=lambda r, i=i: r[i], reverse=not ascending)
            return rows, w
        if isinstance(node, CJoinNode):
            raise TypeError("the Volcano baseline does not evaluate GQP plans")
        raise TypeError(f"cannot evaluate {type(node).__name__}")
