"""The always-on query service: arrivals -> admission -> routing -> engines.

:class:`QueryService` turns the batch simulator into a *service*: an
open-loop arrival source feeds a bounded admission queue; a dispatcher
pops queries, sheds the ones whose queueing deadline passed, applies
backpressure at the in-flight cap, asks the routing policy for a route and
submits to one of two engines -- query-centric QPipe-SP or the CJOIN-SP
GQP -- that share one :class:`~repro.storage.manager.StorageManager`
(circular scans and caches are common, exactly as in
:class:`~repro.engine.hybrid.HybridEngine`).  Completions feed latency
back into :class:`~repro.server.metrics.ServiceMetrics` and the policy.

The convenience entry point :func:`serve` builds the whole stack from
names (policy, arrival process, workload) and returns a
:class:`ServiceReport`; it is what the CLI's ``serve`` command and
``benchmarks/bench_server_load.py`` call.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Iterator

from repro.bench.workload import QueryJob
from repro.cache import cached_query_centric_plan
from repro.data.rng import make_rng
from repro.engine.config import CJOIN_SP, QPIPE_SP
from repro.engine.qpipe import QPipeEngine, QueryHandle
from repro.query.ssb_queries import q32, random_q11, random_q21, random_q32
from repro.server.admission import AdmissionQueue, QueuedQuery
from repro.server.arrivals import ArrivalProcess, make_arrivals
from repro.server.config import ServiceConfig
from repro.server.metrics import ServiceMetrics
from repro.server.router import QUERY_CENTRIC, RoutingPolicy, make_policy
from repro.sim.commands import SLEEP
from repro.sim.costmodel import DEFAULT_COST_MODEL, CostModel
from repro.sim.engine import Simulator
from repro.sim.machine import PAPER_MACHINE, MachineSpec
from repro.sim.sync import Condition
from repro.storage.arrangements import ARRANGEMENTS
from repro.storage.manager import StorageConfig, StorageManager

#: Workloads the service can synthesize (deterministic per-query RNG
#: streams, so a served run replays exactly for any prefix length).
#: ``recurring:<rate>`` additionally takes a template-recurrence rate in
#: [0, 1]: that fraction of queries repeats one of a small fixed pool of
#: Q3.2 templates (dashboards, canned reports), the rest are fresh random
#: instances -- the workload knob the result-cache benchmark sweeps.
#: ``folding:<overlap>`` takes a predicate-overlap rate in [0, 1]: that
#: fraction of queries are *narrowings* of a small pool of broad Q3.2
#: base templates (same nations, a random year sub-range) -- subsumable
#: but usually not identical, so exact-match sharing misses them and only
#: the fold plane can attach them; the rest are fresh random instances.
SERVE_WORKLOADS = (
    "ssb-mix",
    "q32-random",
    "recurring:<rate>",
    "folding:<overlap>",
)

#: Fixed template pool size of the ``recurring:<rate>`` workload.
RECURRING_TEMPLATES = 4

#: Fixed broad-template pool size of the ``folding:<overlap>`` workload.
FOLDING_TEMPLATES = 4


def recurring_job_factory(
    seed: int, recurrence: float, n_templates: int = RECURRING_TEMPLATES
) -> Callable[[int], QueryJob]:
    """``k -> QueryJob`` where a ``recurrence`` fraction of queries repeats
    one of ``n_templates`` fixed Q3.2 instances (identical specs, hence
    identical plan signatures -- exactly what the result cache keys on)."""
    if not 0.0 <= recurrence <= 1.0:
        raise ValueError(f"recurrence rate must be in [0, 1], got {recurrence}")
    templates = [
        random_q32(make_rng(seed, "serve-template", i)) for i in range(n_templates)
    ]

    def make(k: int) -> QueryJob:
        rng = make_rng(seed, "serve", k)
        if rng.random() < recurrence:
            return QueryJob(spec=templates[rng.randrange(len(templates))])
        return QueryJob(spec=random_q32(rng))

    return make


def folding_job_factory(
    seed: int, overlap: float, n_templates: int = FOLDING_TEMPLATES
) -> Callable[[int], QueryJob]:
    """``k -> QueryJob`` where an ``overlap`` fraction of queries narrows
    one of ``n_templates`` broad Q3.2 base templates: same nation pair,
    a random year sub-range.  One in four overlap draws re-issues the
    broad template itself, so subsuming hosts and cache entries exist for
    the narrowings to fold into; exact-signature sharing almost never
    fires on this mix (the sub-ranges rarely coincide)."""
    if not 0.0 <= overlap <= 1.0:
        raise ValueError(f"overlap rate must be in [0, 1], got {overlap}")
    from repro.data.ssb import SSB_NATIONS, YEARS

    trng = make_rng(seed, "serve-fold-template")
    templates = [
        (trng.choice(SSB_NATIONS), trng.choice(SSB_NATIONS))
        for _ in range(n_templates)
    ]
    y_lo, y_hi = YEARS[0], YEARS[-1]

    def make(k: int) -> QueryJob:
        rng = make_rng(seed, "serve", k)
        if rng.random() < overlap:
            nc, ns = templates[rng.randrange(len(templates))]
            if rng.random() < 0.25:
                return QueryJob(spec=q32(nc, ns, y_lo, y_hi))
            lo = rng.randrange(y_lo, y_hi + 1)
            hi = rng.randrange(lo, y_hi + 1)
            return QueryJob(spec=q32(nc, ns, lo, hi))
        return QueryJob(spec=random_q32(rng))

    return make


def job_factory(workload: str, seed: int) -> Callable[[int], QueryJob]:
    """A ``k -> QueryJob`` factory for an unbounded served stream."""
    if workload.startswith("folding:"):
        try:
            overlap = float(workload.split(":", 1)[1])
        except ValueError:
            raise ValueError(
                f"bad folding workload {workload!r}: expected 'folding:<overlap>'"
            ) from None
        return folding_job_factory(seed, overlap)
    if workload.startswith("recurring:"):
        try:
            recurrence = float(workload.split(":", 1)[1])
        except ValueError:
            raise ValueError(
                f"bad recurring workload {workload!r}: expected 'recurring:<rate>'"
            ) from None
        return recurring_job_factory(seed, recurrence)
    if workload == "ssb-mix":
        makers = (random_q11, random_q21, random_q32)

        def make(k: int) -> QueryJob:
            return QueryJob(spec=makers[k % 3](make_rng(seed, "serve", k)))

    elif workload == "q32-random":

        def make(k: int) -> QueryJob:
            return QueryJob(spec=random_q32(make_rng(seed, "serve", k)))

    else:
        raise ValueError(
            f"unknown serve workload {workload!r} (choose from: {', '.join(SERVE_WORKLOADS)})"
        )
    return make


class QueryService:
    """One serving stack bound to one simulator.

    Parameters
    ----------
    tables:
        The (immutable) database tables to serve against.
    policy:
        A :class:`~repro.server.router.RoutingPolicy` or a policy name.
    config:
        Admission/dispatch knobs (:class:`~repro.server.config.ServiceConfig`).
    """

    def __init__(
        self,
        tables: dict,
        policy: RoutingPolicy | str = "adaptive",
        config: ServiceConfig = ServiceConfig(),
        machine: MachineSpec = PAPER_MACHINE,
        cost: CostModel = DEFAULT_COST_MODEL,
        storage_config: StorageConfig = StorageConfig(),
        qc_config=QPIPE_SP,
        gqp_config=CJOIN_SP,
    ):
        self.sim = Simulator(machine)
        self.metrics = ServiceMetrics()
        self.sim.metrics = self.metrics  # extend, in place, what stages charge into
        self.config = config
        self.storage = StorageManager(self.sim, cost, tables, storage_config)
        #: both engines share the one storage manager (shared circular
        #: scans, buffer pool and page cache), as in HybridEngine.  The
        #: preset configs leave the adaptive-GQP knobs at None, so the
        #: process-wide set_gqp_plane defaults apply unless a caller passes
        #: an explicit gqp_config.
        self.query_centric = QPipeEngine(self.sim, self.storage, qc_config, cost)
        self.gqp = QPipeEngine(self.sim, self.storage, gqp_config, cost)
        self.policy = make_policy(policy, machine) if isinstance(policy, str) else policy
        self.queue = AdmissionQueue(self.sim, config.queue_capacity, self.metrics)
        self._in_flight = 0
        self._slot_free = Condition(self.sim, "service.slot-free")
        self.handles: list[QueryHandle] = []

    # ------------------------------------------------------------------
    @property
    def in_flight(self) -> int:
        return self._in_flight

    # ------------------------------------------------------------------
    def run(
        self,
        jobs: Callable[[int], QueryJob],
        arrivals: ArrivalProcess,
        duration: float | None,
    ) -> float:
        """Serve ``jobs`` under ``arrivals`` for ``duration`` simulated
        seconds (``None``: until the arrival process is exhausted), drain,
        and return the final simulated time."""
        self.sim.spawn(self._source(jobs, arrivals, duration), "service-source")
        self.sim.spawn(self._dispatch(), "service-dispatcher")
        return self.sim.run()

    # ------------------------------------------------------------------
    def _source(
        self,
        jobs: Callable[[int], QueryJob],
        arrivals: ArrivalProcess,
        duration: float | None,
    ) -> Iterator[Any]:
        seq = 0
        for gap in arrivals.gaps():
            if gap > 0:
                yield SLEEP(gap)
            if duration is not None and self.sim.now >= duration:
                break
            self.metrics.record_arrival()
            deadline = (
                self.sim.now + self.config.queue_timeout
                if self.config.queue_timeout is not None
                else None
            )
            self.queue.offer(QueuedQuery(seq, jobs(seq), self.sim.now, deadline))
            seq += 1
        self.queue.close()

    def _dispatch(self) -> Iterator[Any]:
        while True:
            item = yield from self.queue.get()
            if item is AdmissionQueue.CLOSED:
                break
            if self._shed_if_expired(item):
                continue
            while (
                self.config.max_in_flight is not None
                and self._in_flight >= self.config.max_in_flight
            ):
                yield from self._slot_free.wait()
            # Backpressure may have held the query past its deadline.
            if self._shed_if_expired(item):
                continue
            self._submit(item)

    def _shed_if_expired(self, item: QueuedQuery) -> bool:
        if item.expired(self.sim.now):
            self.metrics.record_timeout(self.sim.now - item.arrival_time)
            return True
        return False

    def _submit(self, item: QueuedQuery) -> None:
        job = item.job
        cached_plan = None
        if job.spec is None:
            # Explicit plans only run query-centric: the GQP evaluates
            # star-query joins (same rule as HybridEngine.submit_plan).
            route = QUERY_CENTRIC
        else:
            # Cache discount before the policy: a likely result-cache hit
            # replays materialized pages at memory-read cost, so it stays
            # query-centric instead of paying GQP admission -- and does not
            # perturb the policy's pressure feedback (it adds ~no load).
            cached_plan = cached_query_centric_plan(self.storage, job.spec)
            if cached_plan is not None:
                route = QUERY_CENTRIC
                self.metrics.record_cache_route()
            else:
                route = self.policy.choose(job.spec, self._in_flight, self.queue.depth)
        engine = self.query_centric if route == QUERY_CENTRIC else self.gqp
        self.metrics.record_dispatch(self.sim.now - item.arrival_time, route)
        if cached_plan is not None:
            handle = engine.submit_plan(
                cached_plan, label=job.label or job.spec.label, spec=job.spec
            )
        elif job.spec is not None:
            handle = engine.submit(job.spec, label=job.label or None)
        else:
            handle = engine.submit_plan(job.plan, label=job.label)
        self.handles.append(handle)
        self._in_flight += 1
        self.sim.spawn(
            self._watch(handle, item, route),
            name=f"service-watch-s{item.seq}",
            daemon=True,
        )

    def _watch(self, handle: QueryHandle, item: QueuedQuery, route: str) -> Iterator[Any]:
        yield from handle.wait()
        self._in_flight -= 1
        latency = self.sim.now - item.arrival_time
        self.metrics.record_completion(latency, cache_served=handle.query.cache_served)
        self.policy.observe_completion(route, latency)
        self._slot_free.notify_one()


# ---------------------------------------------------------------------------
# Reports and the one-call entry point
# ---------------------------------------------------------------------------


@dataclass
class ServiceReport:
    """Everything one served run measured, ready to render or serialize."""

    policy: str
    arrival: str
    rate: float
    duration: float | None
    workload: str
    sim_seconds: float
    window: float
    avg_cores_used: float
    avg_read_mb_s: float
    metrics: ServiceMetrics
    machine_hz: float

    @property
    def throughput_qps(self) -> float:
        return self.metrics.throughput(self.window)

    def header(self) -> dict[str, Any]:
        """Run identification -- everything that is not a measurement."""
        return {
            "policy": self.policy,
            "arrival": self.arrival,
            "rate": self.rate,
            "duration": self.duration,
            "workload": self.workload,
            "sim_seconds": self.sim_seconds,
            "avg_cores_used": self.avg_cores_used,
            "avg_read_mb_s": self.avg_read_mb_s,
        }

    def to_dict(self) -> dict[str, Any]:
        out = self.header()
        out.update(self.metrics.to_dict(hz=self.machine_hz, window=self.window))
        return out

    def render(self) -> str:
        from repro.bench.reporting import format_table

        m = self.metrics
        lat = m.latency_percentiles()
        qw = m.queue_wait_percentiles()
        rows = [
            ["policy", self.policy],
            ["arrival", f"{self.arrival} @ {self.rate}/s"],
            ["window (s)", f"{self.window:.2f}"],
            ["arrived", m.arrived],
            ["admitted", m.admitted],
            ["dropped (queue full)", m.dropped],
            ["timed out (shed)", m.timed_out],
            ["completed", m.completed],
            ["throughput (q/s)", f"{self.throughput_qps:.3f}"],
            ["latency p50 (s)", f"{lat['p50']:.3f}"],
            ["latency p95 (s)", f"{lat['p95']:.3f}"],
            ["latency p99 (s)", f"{lat['p99']:.3f}"],
            ["queue wait p95 (s)", f"{qw['p95']:.3f}"],
            ["avg cores used", f"{self.avg_cores_used:.2f}"],
        ]
        for route, n in sorted(m.routed.items()):
            rows.append([f"routed {route}", n])
        if m.cache_stats:
            split = m.cache_latency_split()
            rows.append(["cache hits / misses", f"{m.cache_stats['hits']} / {m.cache_stats['misses']}"])
            rows.append(["cache resident (bytes)", f"{m.cache_stats['resident_bytes']:.0f}"])
            rows.append(["cache evictions", m.cache_stats["evictions"]])
            rows.append(["cache routing discounts", m.cache_routed])
            rows.append(["hit-served p95 (s)", f"{split['hit_served']['p95']:.3f}"])
            rows.append(["computed p95 (s)", f"{split['computed']['p95']:.3f}"])
        return format_table(f"serve: {self.workload} ({self.policy})", ["metric", "value"], rows)


def serve(
    tables: dict,
    policy: RoutingPolicy | str = "adaptive",
    arrival: str = "poisson",
    rate: float = 8.0,
    duration: float | None = 10.0,
    seed: int = 1,
    workload: str = "ssb-mix",
    config: ServiceConfig = ServiceConfig(),
    machine: MachineSpec = PAPER_MACHINE,
    storage_config: StorageConfig = StorageConfig(),
    threshold: int | None = None,
    trace_path: str | None = None,
    cost: CostModel = DEFAULT_COST_MODEL,
    qc_config=QPIPE_SP,
    gqp_config=CJOIN_SP,
) -> ServiceReport:
    """Serve a synthetic workload end-to-end and report service metrics.

    Raises :class:`ValueError` on unknown policy/arrival/workload names --
    the CLI converts those into one-line exits.
    """
    jobs = job_factory(workload, seed)
    arrivals = make_arrivals(arrival, rate, seed, trace_path=trace_path)
    if isinstance(policy, str):
        policy = make_policy(policy, machine, threshold)
    service = QueryService(
        tables,
        policy,
        config=config,
        machine=machine,
        cost=cost,
        storage_config=storage_config,
        qc_config=qc_config,
        gqp_config=gqp_config,
    )
    arrange_before = ARRANGEMENTS.stats()
    service.run(jobs, arrivals, duration)
    sim = service.sim
    if service.storage.result_cache is not None:
        service.metrics.cache_stats = service.storage.result_cache.stats()
    # Shared-arrangement attribution: the cache is process-wide, so
    # publish this run's *deltas* (host-side counters only -- no
    # simulated measurement depends on them).  ``entries`` and the fold
    # derivation counters are cache-*lifetime* state, not per-run work: a
    # fold only happens while the shared memo is cold, so its delta would
    # differ between two identical runs (ArrangementCache.stats() still
    # reports the totals for benchmarks).
    lifetime = ("entries", "fold_views", "fold_ranges")
    for k, v in ARRANGEMENTS.stats().items():
        delta = v - arrange_before.get(k, 0)
        if k not in lifetime and delta:
            service.metrics.set_count(f"arrangement_{k}", delta)
    window = max(sim.now, duration or 0.0) or 1.0
    return ServiceReport(
        policy=policy.name,
        arrival=arrivals.name,
        rate=rate,
        duration=duration,
        workload=workload,
        sim_seconds=sim.now,
        window=window,
        avg_cores_used=sim.avg_cores_used(window),
        avg_read_mb_s=sim.disk.bytes_delivered / window / (1 << 20),
        metrics=service.metrics,
        machine_hz=machine.hz,
    )
