"""SSB query templates used in the paper's evaluation.

* :func:`q32` -- SSB Q3.2 (Figure 9), the sensitivity-analysis workhorse:
  customer |x| lineorder |x| supplier |x| date with nation and year-range
  predicates, grouped by city/year, ordered by year asc / revenue desc.
* :func:`q32_selectivity` -- the modified Q3.2 of Section 5.2.2: maximum
  year range and *disjunctions* of nation options sized to hit a target
  fact-tuple selectivity.  (We draw the disjunctions over cities -- 250
  values instead of 25 -- which reaches targets like 30% that integer
  nation counts cannot; semantics are identical: an IN-disjunction of
  equality predicates on a dimension attribute.)
* :func:`q11` -- SSB Q1.1 (date join + fact predicates, single sum).
* :func:`q21` -- SSB Q2.1 (part/supplier/date joins, group by year/brand).
"""

from __future__ import annotations

import math
import random

from repro.data.ssb import ALL_CITIES, SSB_NATIONS, YEARS
from repro.query.expr import And, Arith, Between, Cmp, Col, InSet
from repro.query.plan import AggSpec, DimJoinSpec
from repro.query.star import StarQuerySpec


def q32(
    nation_customer: str,
    nation_supplier: str,
    year_low: int,
    year_high: int,
) -> StarQuerySpec:
    """SSB Q3.2 as templated in the paper's Figure 9."""
    if nation_customer not in SSB_NATIONS or nation_supplier not in SSB_NATIONS:
        raise ValueError("unknown nation")
    if year_low > year_high:
        raise ValueError("empty year range")
    return StarQuerySpec(
        fact_table="lineorder",
        dims=(
            DimJoinSpec(
                "supplier",
                "lo_suppkey",
                "s_suppkey",
                Cmp("=", "s_nation", nation_supplier),
                payload=("s_city",),
            ),
            DimJoinSpec(
                "customer",
                "lo_custkey",
                "c_custkey",
                Cmp("=", "c_nation", nation_customer),
                payload=("c_city",),
            ),
            DimJoinSpec(
                "date",
                "lo_orderdate",
                "d_datekey",
                Between("d_year", year_low, year_high),
                payload=("d_year",),
            ),
        ),
        group_by=("c_city", "s_city", "d_year"),
        aggregates=(AggSpec("sum", Col("lo_revenue"), "revenue"),),
        order_by=(("d_year", True), ("revenue", False)),
        label="Q3.2",
    )


def random_q32(rng: random.Random) -> StarQuerySpec:
    """A random Q3.2 instance (random nations, random year sub-range), as in
    the paper's low-similarity concurrency experiments; fact selectivity
    lands in roughly 0.02%-0.16%."""
    nc = rng.choice(SSB_NATIONS)
    ns = rng.choice(SSB_NATIONS)
    y1 = rng.randrange(YEARS[0], YEARS[-1] + 1)
    y2 = rng.randrange(y1, YEARS[-1] + 1)
    return q32(nc, ns, y1, y2)


def q32_selectivity(target: float, rng: random.Random) -> StarQuerySpec:
    """Modified Q3.2 with fact-tuple selectivity ~= ``target``.

    Uses the full year range and city IN-disjunctions of size
    ``ceil(sqrt(target) * 250)`` on customer and supplier (selectivity of
    the fact table ~= customer fraction x supplier fraction)."""
    if not 0 < target <= 1:
        raise ValueError("target selectivity must be in (0, 1]")
    per_side = math.sqrt(target)
    k = max(1, round(per_side * len(ALL_CITIES)))
    cust_cities = rng.sample(ALL_CITIES, k)
    supp_cities = rng.sample(ALL_CITIES, k)
    return StarQuerySpec(
        fact_table="lineorder",
        dims=(
            DimJoinSpec(
                "supplier",
                "lo_suppkey",
                "s_suppkey",
                InSet("s_city", supp_cities),
                payload=("s_city",),
            ),
            DimJoinSpec(
                "customer",
                "lo_custkey",
                "c_custkey",
                InSet("c_city", cust_cities),
                payload=("c_city",),
            ),
            DimJoinSpec(
                "date",
                "lo_orderdate",
                "d_datekey",
                Between("d_year", YEARS[0], YEARS[-1]),
                payload=("d_year",),
            ),
        ),
        group_by=("c_city", "s_city", "d_year"),
        aggregates=(AggSpec("sum", Col("lo_revenue"), "revenue"),),
        order_by=(("d_year", True), ("revenue", False)),
        label=f"Q3.2-sel{target:g}",
    )


def q11(year: int, discount_low: float, discount_high: float, quantity_max: int) -> StarQuerySpec:
    """SSB Q1.1: revenue gained from a discount band in one year.

    The predicates on ``lo_discount``/``lo_quantity`` are *fact-table*
    predicates: CJOIN evaluates them on its output tuples (Section 3.2)."""
    return StarQuerySpec(
        fact_table="lineorder",
        dims=(
            DimJoinSpec(
                "date",
                "lo_orderdate",
                "d_datekey",
                Cmp("=", "d_year", year),
                payload=("d_year",),
            ),
        ),
        group_by=(),
        aggregates=(
            AggSpec("sum", Arith("*", Col("lo_extendedprice"), Col("lo_discount")), "revenue"),
        ),
        fact_predicate=And(
            Between("lo_discount", discount_low, discount_high),
            Cmp("<", "lo_quantity", quantity_max),
        ),
        label="Q1.1",
    )


def random_q11(rng: random.Random) -> StarQuerySpec:
    lo = rng.randrange(0, 8)
    return q11(
        year=rng.choice(YEARS),
        discount_low=float(lo),
        discount_high=float(lo + 2),
        quantity_max=rng.randrange(20, 36),
    )


def q21(category: str, supplier_region: str) -> StarQuerySpec:
    """SSB Q2.1: revenue by year and brand for one part category and one
    supplier region."""
    return StarQuerySpec(
        fact_table="lineorder",
        dims=(
            DimJoinSpec(
                "part",
                "lo_partkey",
                "p_partkey",
                Cmp("=", "p_category", category),
                payload=("p_brand1",),
            ),
            DimJoinSpec(
                "supplier",
                "lo_suppkey",
                "s_suppkey",
                Cmp("=", "s_region", supplier_region),
                payload=(),
            ),
            DimJoinSpec(
                "date",
                "lo_orderdate",
                "d_datekey",
                None,  # no predicate: Q2.1 groups by all years
                payload=("d_year",),
            ),
        ),
        group_by=("d_year", "p_brand1"),
        aggregates=(AggSpec("sum", Col("lo_revenue"), "revenue"),),
        order_by=(("d_year", True), ("p_brand1", True)),
        label="Q2.1",
    )


def random_q21(rng: random.Random) -> StarQuerySpec:
    from repro.data.ssb import SSB_REGIONS

    category = f"MFGR#{rng.randrange(1, 6)}{rng.randrange(1, 6)}"
    return q21(category, rng.choice(SSB_REGIONS))
