#!/usr/bin/env python
"""Adaptive GQP data plane benchmark: selectivity-ordered CJOIN chains.

Runs two fixed seeded workloads through CJOIN-SP with the adaptive data
plane off (static plan-insertion chain order, per-row probe loop) and on
(selectivity-ordered chain + columnar filter kernels):

* ``gqp-skew`` -- every query lists its dimensions in the *worst* order
  (pass-everything date filter first, most-selective supplier filter
  last).  The adaptive chain must learn to invert it: the headline
  response-time win, asserted at >= 1.2x.
* ``gqp-uniform`` -- all three filters have similar pass rates, so no
  order is much better than another.  The control arm: adaptive must not
  lose more than 5% here (hysteresis keeps it from thrashing).

Identical query *results* in both modes are asserted by a direct engine
run against the same workload.  Cells execute on the parallel fabric, so
``BENCH_gqp_ordering.json`` (simulated measurements only -- no wall
clock) is byte-identical for any ``--jobs`` count.

Usage::

    python benchmarks/bench_gqp_ordering.py --fast    # CI smoke
    python benchmarks/bench_gqp_ordering.py --full --jobs 4
"""

from __future__ import annotations

import argparse
import dataclasses
import json
import pathlib
import sys

sys.path.insert(0, str(pathlib.Path(__file__).resolve().parent.parent / "src"))

from repro.bench.reporting import format_table
from repro.bench.workload import gqp_skewed_workload, gqp_uniform_workload
from repro.data import generate_ssb
from repro.engine.config import CJOIN_SP
from repro.parallel import CellSpec, DatasetSpec, WorkloadSpec, run_cells
from repro.sim.metrics import percentile

ROOT = pathlib.Path(__file__).resolve().parent.parent
OUT_PATH = ROOT / "BENCH_gqp_ordering.json"

SF = 0.5
SEED = 1

#: both knobs pinned explicitly (not None), so the cells are self-contained
#: regardless of the process-wide defaults or environment.
STATIC = dataclasses.replace(
    CJOIN_SP, gqp_adaptive_ordering=False, gqp_filter_kernels=False,
    name="CJOIN-SP static",
)
ADAPTIVE = dataclasses.replace(
    CJOIN_SP, gqp_adaptive_ordering=True, gqp_filter_kernels=True,
    name="CJOIN-SP adaptive",
)
MODES = {"static": STATIC, "adaptive": ADAPTIVE}
WORKLOADS = ("gqp-skew", "gqp-uniform")


def sweep(n: int, jobs: int | None = None):
    cells = [
        CellSpec(
            key=f"{wl}/{mode}",
            config=config,
            dataset=DatasetSpec("ssb", sf=SF, seed=42),
            workload=WorkloadSpec(kind=wl, n=n, seed=SEED),
        )
        for wl in WORKLOADS
        for mode, config in MODES.items()
    ]
    outcome = run_cells(cells, jobs=jobs)
    return {key: outcome.cell(key) for key in (c.key for c in cells)}


def speedup(results, wl: str) -> float:
    static = results[f"{wl}/static"].mean_response
    adaptive = results[f"{wl}/adaptive"].mean_response
    return static / adaptive if adaptive else 0.0


def render(results) -> str:
    rows = []
    for wl in WORKLOADS:
        for mode in MODES:
            r = results[f"{wl}/{mode}"]
            rows.append(
                [
                    wl,
                    mode,
                    f"{r.mean_response:.3f}",
                    f"{percentile(r.response_times, 0.95):.3f}",
                    f"{r.sim_seconds:.3f}",
                    r.counts.get("cjoin_chain_reorders", 0),
                    r.counts.get("cjoin_filters_skipped", 0),
                ]
            )
        rows.append([wl, "speedup", f"{speedup(results, wl):.2f}x", "", "", "", ""])
    return format_table(
        "adaptive GQP data plane: static vs selectivity-ordered CJOIN chain",
        ["workload", "mode", "mean resp", "p95 resp", "makespan", "reorders", "skips"],
        rows,
    )


def check_results_identical(n: int) -> None:
    """Adaptive ordering + kernels must not change a single query result:
    run the same workloads through both configs on one simulator each and
    compare every query's rows."""
    from repro.bench.runner import run_batch  # noqa: F401  (oracle helper below)
    from repro.engine.qpipe import QPipeEngine
    from repro.sim.costmodel import DEFAULT_COST_MODEL
    from repro.sim.engine import Simulator
    from repro.sim.machine import PAPER_MACHINE
    from repro.storage.manager import StorageConfig, StorageManager

    dataset = generate_ssb(SF, seed=42)

    def norm(rows):
        return sorted(
            tuple(round(v, 6) if isinstance(v, float) else v for v in row)
            for row in rows
        )

    for jobs_fn in (gqp_skewed_workload, gqp_uniform_workload):
        workload = jobs_fn(n, SEED)
        per_mode = {}
        for mode, config in MODES.items():
            sim = Simulator(PAPER_MACHINE)
            storage = StorageManager(
                sim, DEFAULT_COST_MODEL, dataset.tables, StorageConfig(resident="memory")
            )
            engine = QPipeEngine(sim, storage, config)
            handles = [engine.submit(job.spec) for job in workload]
            sim.run()
            per_mode[mode] = [norm(h.results) for h in handles]
        assert per_mode["static"] == per_mode["adaptive"], (
            f"{jobs_fn.__name__}: adaptive mode changed query results"
        )


def check(results) -> None:
    skew = speedup(results, "gqp-skew")
    assert skew >= 1.2, f"only {skew:.2f}x on the skewed mix (need >= 1.2x)"
    uniform = speedup(results, "gqp-uniform")
    assert uniform >= 0.95, f"adaptive lost {1 - uniform:.1%} on the uniform mix"
    adaptive_skew = results["gqp-skew/adaptive"]
    assert adaptive_skew.counts.get("cjoin_chain_reorders", 0) > 0, (
        "adaptive run never re-sorted the chain"
    )
    for wl in WORKLOADS:
        static = results[f"{wl}/static"]
        assert "cjoin_chain_reorders" not in static.counts, (
            "static run carries adaptive-ordering counters"
        )


def to_artifact(results, n: int) -> dict:
    """Simulated measurements only -- byte-identical for any --jobs."""
    out: dict = {"sf": SF, "seed": SEED, "n_queries": n, "cells": {}}
    for key, r in sorted(results.items()):
        out["cells"][key] = {
            "config": r.config_name,
            "mean_response_s": round(r.mean_response, 6),
            "p95_response_s": round(percentile(r.response_times, 0.95), 6),
            "sim_seconds": round(r.sim_seconds, 6),
            "total_cpu_seconds": round(r.total_cpu_seconds, 6),
            "chain_reorders": r.counts.get("cjoin_chain_reorders", 0),
            "filters_skipped": r.counts.get("cjoin_filters_skipped", 0),
        }
    for wl in WORKLOADS:
        out[f"speedup_{wl}"] = round(speedup(results, wl), 4)
    return out


def bench_gqp_ordering(once, save_report, full_mode):
    """pytest-benchmark entry point (see conftest.py)."""
    n = 32 if full_mode else 8
    results = once(sweep, n)
    save_report("gqp_ordering", render(results))
    check(results)
    check_results_identical(4)


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[1])
    mode = parser.add_mutually_exclusive_group()
    mode.add_argument("--fast", action="store_true", help="CI smoke parameters (default)")
    mode.add_argument("--full", action="store_true", help="paper-scale sweep")
    parser.add_argument("--jobs", type=int, default=None,
                        help="fabric worker processes (default: REPRO_JOBS or 1)")
    parser.add_argument("--out", type=pathlib.Path, default=OUT_PATH,
                        help=f"artifact path (default {OUT_PATH.name} at repo root)")
    args = parser.parse_args(argv)

    n = 32 if args.full else 8
    results = sweep(n, jobs=args.jobs)
    print(render(results))
    check(results)
    check_results_identical(4 if args.fast or not args.full else 8)
    args.out.write_text(json.dumps(to_artifact(results, n), indent=1, sort_keys=True) + "\n")
    print(f"wrote {args.out}")
    print("OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
