"""Edge cases of the OS page-cache model: zero capacity, pages larger than
the whole cache, and the counter semantics of direct I/O."""

import pytest

from repro.sim import Simulator
from repro.sim.machine import DiskSpec, MachineSpec
from repro.storage.cache import OsPageCache


def make_cache(capacity):
    sim = Simulator(
        MachineSpec(cores=2, oversub_penalty=0.0, disks=(DiskSpec(bandwidth=100e6),))
    )
    return sim, OsPageCache(sim, capacity)


def drive(sim, gen):
    sim.spawn(gen, "reader")
    sim.run()


class TestZeroCapacity:
    def test_every_read_goes_to_disk(self):
        sim, cache = make_cache(0.0)

        def reads():
            for _ in range(3):
                yield from cache.read(("t", 0), 1000.0)

        drive(sim, reads())
        assert cache.hits == 0
        assert cache.misses == 3
        assert cache.resident_bytes == 0.0
        assert sim.disk.bytes_delivered == pytest.approx(3000.0)

    def test_negative_capacity_rejected(self):
        with pytest.raises(ValueError):
            make_cache(-1.0)


class TestOversizedPage:
    def test_page_larger_than_capacity_is_not_cached(self):
        sim, cache = make_cache(500.0)

        def reads():
            yield from cache.read(("t", 0), 1000.0)  # larger than the cache
            yield from cache.read(("t", 0), 1000.0)  # must miss again

        drive(sim, reads())
        assert cache.misses == 2
        assert cache.hits == 0
        assert not cache.contains(("t", 0))
        assert cache.resident_bytes == 0.0

    def test_smaller_pages_still_cached_alongside(self):
        sim, cache = make_cache(500.0)

        def reads():
            yield from cache.read(("t", 0), 1000.0)  # uncacheable
            yield from cache.read(("t", 1), 400.0)  # cacheable
            yield from cache.read(("t", 1), 400.0)  # hit

        drive(sim, reads())
        assert cache.hits == 1
        assert cache.misses == 2
        assert cache.resident_bytes == 400.0


class TestReadDirect:
    def test_counters_untouched(self):
        sim, cache = make_cache(1e9)

        def reads():
            yield from cache.read_direct(1000.0)
            yield from cache.read_direct(1000.0)

        drive(sim, reads())
        assert cache.hits == 0
        assert cache.misses == 0
        assert cache.resident_bytes == 0.0
        assert "os_cache_hits" not in sim.metrics.counts
        assert "os_cache_misses" not in sim.metrics.counts
        # The I/O itself still happened.
        assert sim.disk.bytes_delivered == pytest.approx(2000.0)

    def test_direct_read_does_not_admit(self):
        sim, cache = make_cache(1e9)

        def reads():
            yield from cache.read_direct(1000.0)
            yield from cache.read(("t", 0), 1000.0)  # still a miss

        drive(sim, reads())
        assert cache.misses == 1
        assert cache.hits == 0


class TestMetricsCounters:
    def test_hit_and_miss_counts_surface_in_metrics(self):
        sim, cache = make_cache(1e9)

        def reads():
            yield from cache.read(("t", 0), 1000.0)
            yield from cache.read(("t", 0), 1000.0)

        drive(sim, reads())
        assert sim.metrics.counts["os_cache_misses"] == 1
        assert sim.metrics.counts["os_cache_hits"] == 1
