"""Batch-kernel equivalence: ``compile_batch`` must select exactly the rows
that row-at-a-time ``compile`` selects, in the same order, for every Expr
shape -- specialized fast paths and generic fallbacks alike.

Property-style: seeded random rows (via :mod:`repro.data.rng`) plus the
corner cases the comprehension kernels could plausibly get wrong -- empty
input, all-pass, all-fail."""

import pytest

from repro.data.rng import make_rng
from repro.query.expr import And, Arith, Between, Cmp, Col, Const, InSet, Not, Or
from repro.storage.schema import Column, Schema

SCHEMA = Schema(
    (
        Column("k", "int"),
        Column("v", "float"),
        Column("tag", "str"),
    )
)

TAGS = ("red", "green", "blue", "cyan")


def random_rows(seed: int, n: int) -> list[tuple]:
    rng = make_rng(seed, "batch-kernels")
    return [
        (rng.randrange(-50, 50), rng.uniform(-10.0, 10.0), rng.choice(TAGS))
        for _ in range(n)
    ]


# Every Expr shape: the specialized kernels (Cmp on Col-vs-Const for all six
# operators, Between, InSet, And of those) and the generic fallback (Or, Not,
# Cmp over Arith, non-Col/Const comparisons).
EXPRS = [
    Cmp("<", "k", 0),
    Cmp("<=", "k", -10),
    Cmp("=", "tag", "red"),
    Cmp("!=", "tag", "blue"),
    Cmp(">=", "v", 2.5),
    Cmp(">", "k", 49),  # near-all-fail
    Between("k", -5, 5),
    Between("v", -100.0, 100.0),  # all-pass
    InSet("tag", ["red", "blue"]),
    InSet("k", [1]),
    And(Cmp(">", "k", -50)),  # single-part And collapses to its part
    And(Between("k", -20, 20), InSet("tag", TAGS)),
    And(Cmp(">", "v", 0.0), Cmp("<", "v", 5.0), Cmp("!=", "tag", "green")),
    And(Cmp(">", "k", 100), Between("v", 0, 1)),  # first part kills all rows
    Or(Cmp("=", "tag", "red"), Cmp(">", "k", 40)),
    Not(Between("k", 0, 100)),
    Cmp(">", Arith("*", "v", Const(2.0)), Const(3.0)),  # arithmetic fallback
    Cmp("<", Col("k"), Col("v")),  # non-Const rhs: fallback
    And(Or(Cmp("=", "tag", "red"), Cmp("=", "tag", "blue")), Cmp(">", "k", 0)),
]


@pytest.mark.parametrize("expr", EXPRS, ids=lambda e: repr(e.signature))
@pytest.mark.parametrize("nrows", [0, 1, 7, 200])
def test_rows_kernel_matches_row_closure(expr, nrows):
    rows = random_rows(seed=nrows + 3, n=nrows)
    pred = expr.compile(SCHEMA)
    kernel = expr.compile_batch(SCHEMA)
    assert kernel(rows) == [r for r in rows if pred(r)]


@pytest.mark.parametrize("expr", EXPRS, ids=lambda e: repr(e.signature))
@pytest.mark.parametrize("nrows", [0, 1, 7, 200])
def test_indices_kernel_matches_row_closure(expr, nrows):
    rows = random_rows(seed=nrows + 11, n=nrows)
    pred = expr.compile(SCHEMA)
    kernel = expr.compile_batch(SCHEMA, indices=True)
    assert kernel(rows) == [j for j, r in enumerate(rows) if pred(r)]


def test_kernels_accept_tuples_and_preserve_type():
    """Zero-copy batches hand kernels a *tuple* of rows; the kernel must
    still return a list."""
    rows = tuple(random_rows(seed=5, n=50))
    for expr in EXPRS:
        out = expr.compile_batch(SCHEMA)(rows)
        assert isinstance(out, list)
        idx = expr.compile_batch(SCHEMA, indices=True)(rows)
        assert isinstance(idx, list)
        assert [rows[j] for j in idx] == out


def test_all_pass_and_all_fail_extremes():
    rows = random_rows(seed=9, n=64)
    everything = Between("k", -1000, 1000)
    nothing = Cmp(">", "k", 1000)
    assert everything.compile_batch(SCHEMA)(rows) == rows
    assert nothing.compile_batch(SCHEMA)(rows) == []
    assert everything.compile_batch(SCHEMA, indices=True)(rows) == list(range(64))
    assert nothing.compile_batch(SCHEMA, indices=True)(rows) == []


def test_col_compiles_to_plain_item_access():
    get = Col("v").compile(SCHEMA)
    assert get((1, 2.5, "red")) == 2.5
