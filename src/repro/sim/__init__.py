"""Discrete-event simulation of a multicore database server.

This package is the substrate substitution for the paper's Sun Fire X4470
(4x6-core Xeon E7530, 64 GB RAM, 2-disk RAID-0).  The CPython GIL makes real
multicore measurements of pipelined sharing meaningless, so the execution
engines in :mod:`repro.engine` and :mod:`repro.gqp` run as cooperative
coroutines on this simulator: real tuples flow through real data structures,
while *time* is accounted by a generalized-processor-sharing CPU model and a
shared-bandwidth disk model.

Public surface:

* :class:`~repro.sim.engine.Simulator` -- the event loop.
* :class:`~repro.sim.machine.MachineSpec` -- cores, clock speed, disks, RAM.
* :func:`~repro.sim.commands.CPU`, :func:`~repro.sim.commands.IO`,
  :func:`~repro.sim.commands.SLEEP`, :data:`~repro.sim.commands.BLOCK` --
  the commands a simulated thread may ``yield``.
* :mod:`~repro.sim.sync` -- locks, condition variables and channels that
  block in simulated time.
* :class:`~repro.sim.costmodel.CostModel` -- calibrated cycle/byte charges.
"""

from repro.sim.commands import BLOCK, CPU, IO, SLEEP
from repro.sim.costmodel import CostModel
from repro.sim.engine import DeadlockError, Simulator
from repro.sim.machine import MachineSpec
from repro.sim.metrics import Metrics
from repro.sim.sync import Channel, Condition, Gate, Lock
from repro.sim.task import SimThread

__all__ = [
    "BLOCK",
    "CPU",
    "IO",
    "SLEEP",
    "Channel",
    "Condition",
    "CostModel",
    "DeadlockError",
    "Gate",
    "Lock",
    "MachineSpec",
    "Metrics",
    "SimThread",
    "Simulator",
]
