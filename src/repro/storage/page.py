"""Pages and batches.

A :class:`Page` is a fixed slice of a table's rows -- the unit of buffer-pool
residency and disk I/O.  A :class:`Batch` is the unit of data flow between
operators (through FIFO buffers and Shared Pages Lists); scan stages turn
pages into batches, operators transform batches.

Both carry a ``weight``: the number of real rows each generated row
represents (see the scale substitution in DESIGN.md), so CPU and I/O charges
reflect paper-scale data volumes.
"""

from __future__ import annotations

from typing import Any, Sequence


class Page:
    """An immutable slice of table rows."""

    __slots__ = ("table_name", "index", "rows", "weight", "real_bytes")

    def __init__(
        self,
        table_name: str,
        index: int,
        rows: Sequence[tuple],
        weight: float,
        real_bytes: float,
    ):
        self.table_name = table_name
        self.index = index
        self.rows = tuple(rows)
        self.weight = weight
        self.real_bytes = real_bytes

    def __len__(self) -> int:
        return len(self.rows)

    def to_batch(self) -> "Batch":
        return Batch(list(self.rows), self.weight)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<Page {self.table_name}[{self.index}] rows={len(self.rows)}>"


class Batch:
    """A batch of tuples flowing between operators."""

    __slots__ = ("rows", "weight", "meta")

    def __init__(self, rows: list, weight: float = 1.0, meta: Any = None):
        self.rows = rows
        self.weight = weight
        self.meta = meta

    def __len__(self) -> int:
        return len(self.rows)

    def copy(self) -> "Batch":
        """A shallow copy (what push-based SP pays cycles to produce)."""
        return Batch(list(self.rows), self.weight, self.meta)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<Batch rows={len(self.rows)} weight={self.weight}>"
