"""Tests for the buffer pool, OS cache and storage manager."""

import pytest

from repro.sim import Simulator
from repro.sim.costmodel import CostModel
from repro.sim.machine import DiskSpec, MachineSpec
from repro.storage import StorageConfig, StorageManager
from repro.storage.schema import Column, Schema
from repro.storage.table import Table


def make_table(rows=100, row_bytes=1000.0, weight=10.0, name="t"):
    s = Schema([Column("x")], row_bytes=row_bytes)
    return Table(name, s, [(i,) for i in range(rows)], row_weight=weight, tuples_per_page=10)


def make_env(resident="disk", bp_bytes=1e9, cache_bytes=1e9, direct_io=False, bandwidth=100e6):
    sim = Simulator(
        MachineSpec(cores=4, hz=1e9, oversub_penalty=0.0, disks=(DiskSpec(bandwidth=bandwidth),))
    )
    table = make_table()
    storage = StorageManager(
        sim,
        CostModel(),
        {"t": table},
        StorageConfig(
            resident=resident,
            bufferpool_bytes=bp_bytes,
            os_cache_bytes=cache_bytes,
            direct_io=direct_io,
        ),
    )
    return sim, storage, table


def run_reads(sim, storage, table, indices, out):
    def worker():
        for i in indices:
            page = yield from storage.read_page(table, i)
            out.append(page.index)

    sim.spawn(worker(), "reader")
    sim.run()


class TestBufferPool:
    def test_miss_then_hit(self):
        sim, storage, table = make_env()
        out = []
        run_reads(sim, storage, table, [0, 0, 0], out)
        assert out == [0, 0, 0]
        assert storage.bufferpool.misses == 1
        assert storage.bufferpool.hits == 2
        # Only one disk transfer happened.
        assert sim.disk.bytes_delivered == pytest.approx(table.page(0).real_bytes)

    def test_ram_resident_never_does_io(self):
        sim, storage, table = make_env(resident="memory")
        out = []
        run_reads(sim, storage, table, list(range(10)) * 2, out)
        assert sim.disk.bytes_delivered == 0
        assert storage.bufferpool.misses == 0

    def test_eviction_under_tiny_capacity(self):
        # Each page: 10 rows * weight 10 * 1000 B = 100 KB. Pool of 150 KB
        # holds one page.
        sim, storage, table = make_env(bp_bytes=150e3, cache_bytes=100)
        out = []
        run_reads(sim, storage, table, [0, 1, 0], out)
        assert storage.bufferpool.misses == 3  # page 0 was evicted by 1

    def test_os_cache_absorbs_bufferpool_evictions(self):
        sim, storage, table = make_env(bp_bytes=150e3, cache_bytes=1e9)
        run_reads(sim, storage, table, [0, 1, 0], [])
        # Third read misses the pool but hits the OS cache: still 1 disk
        # read for page 0.
        assert storage.os_cache.hits == 1
        assert sim.disk.bytes_delivered == pytest.approx(
            table.page(0).real_bytes + table.page(1).real_bytes
        )

    def test_direct_io_bypasses_os_cache(self):
        sim, storage, table = make_env(bp_bytes=150e3, cache_bytes=1e9, direct_io=True)
        run_reads(sim, storage, table, [0, 1, 0], [])
        assert storage.os_cache.hits == 0
        assert sim.disk.bytes_delivered == pytest.approx(
            2 * table.page(0).real_bytes + table.page(1).real_bytes
        )

    def test_page_cpu_charged_under_scans(self):
        sim, storage, table = make_env(resident="memory")
        run_reads(sim, storage, table, [0], [])
        assert sim.metrics.cpu_cycles_by_category["scans"] > 0


class TestStorageManager:
    def test_unknown_table(self):
        sim, storage, _ = make_env()
        with pytest.raises(KeyError, match="no table"):
            storage.table("nope")

    def test_scan_pages_wraps_circularly(self):
        sim, storage, table = make_env(resident="memory")
        got = []

        def worker():
            pages = yield from storage.scan_pages(table, start_page=8, num_pages=10)
            got.extend(p.index for p in pages)

        sim.spawn(worker(), "w")
        sim.run()
        assert got == [8, 9, 0, 1, 2, 3, 4, 5, 6, 7]

    def test_total_real_bytes(self):
        _, storage, table = make_env()
        assert storage.total_real_bytes() == pytest.approx(table.real_bytes)

    def test_config_validation(self):
        with pytest.raises(ValueError):
            StorageConfig(resident="tape")
        with pytest.raises(ValueError):
            StorageConfig(prefetch_window=-1)
