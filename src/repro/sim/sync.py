"""Synchronization primitives in simulated time.

All primitives are built on the ``BLOCK`` command plus
:meth:`Simulator.unblock`.  Methods that may block are generators and must be
invoked with ``yield from``; methods that never block are plain calls.

Because the simulator is single-threaded there are no data races -- these
primitives exist to model *waiting* (a consumer blocked on an empty FIFO, a
producer blocked on a full SPL, a thread queued on the SPL lock), which is
where the paper's serialization points live.
"""

from __future__ import annotations

from collections import deque
from typing import TYPE_CHECKING, Any, Iterator

from repro.sim.commands import BLOCK

if TYPE_CHECKING:  # pragma: no cover
    from repro.sim.engine import Simulator
    from repro.sim.task import SimThread


class Lock:
    """A FIFO mutex.  ``yield from lock.acquire()`` ... ``lock.release()``.

    Optionally charges ``acquire_cycles`` of CPU (category ``locks``) per
    acquisition, modelling latch overhead; waiting time under contention is
    modelled by the blocking itself.
    """

    def __init__(self, sim: "Simulator", name: str = "lock", acquire_cycles: float = 0.0):
        from repro.sim.commands import CpuCommand

        self.sim = sim
        self.name = name
        self.acquire_cycles = acquire_cycles
        #: the (immutable) latch charge, built once -- hot paths yield this
        #: cached instance instead of constructing a command per acquire.
        self.charge_cmd: "CpuCommand | None" = (
            CpuCommand(acquire_cycles, "locks") if acquire_cycles else None
        )
        self._owner: "SimThread | None" = None
        self._waiters: deque["SimThread"] = deque()
        self.acquisitions = 0
        self.contentions = 0

    @property
    def locked(self) -> bool:
        return self._owner is not None

    def take_or_enqueue(self, me: "SimThread") -> bool:
        """Post-charge half of ``acquire``: take the free lock (True) or
        queue ``me`` FIFO (False -- the caller must ``yield BLOCK`` and then
        call :meth:`confirm_after_block`).  Split out as a plain call so hot
        loops can inline the acquire protocol without a sub-generator per
        acquisition; the yielded commands are identical either way."""
        if self._owner is None:
            self._owner = me
            self.acquisitions += 1
            return True
        self.contentions += 1
        self._waiters.append(me)
        return False

    def confirm_after_block(self, me: "SimThread") -> None:
        """Second half of a contended inline acquire, after the BLOCK."""
        if self._owner is not me:  # pragma: no cover - invariant
            raise AssertionError("woken without ownership")
        self.acquisitions += 1

    def acquire(self) -> Iterator[Any]:
        """Generator: take the lock, queueing FIFO under contention."""
        me = self.sim.current
        if me is None:
            raise RuntimeError("Lock.acquire outside a simulated thread")
        if self.charge_cmd is not None:
            yield self.charge_cmd
        if not self.take_or_enqueue(me):
            yield BLOCK
            self.confirm_after_block(me)

    def release(self) -> None:
        if self._owner is None:
            raise RuntimeError(f"release of unheld lock {self.name!r}")
        if self._waiters:
            nxt = self._waiters.popleft()
            self._owner = nxt
            self.sim.unblock(nxt)
        else:
            self._owner = None


class Condition:
    """Condition variable (no associated lock needed: the simulator is
    cooperative, so predicates cannot change between check and wait within
    one thread step).  Always re-check the predicate in a loop::

        while not pred():
            yield from cond.wait()
    """

    def __init__(self, sim: "Simulator", name: str = "cond"):
        self.sim = sim
        self.name = name
        self._waiters: list["SimThread"] = []

    def wait(self) -> Iterator[Any]:
        """Generator: park until notified (re-check your predicate!)."""
        me = self.sim.current
        if me is None:
            raise RuntimeError("Condition.wait outside a simulated thread")
        self._waiters.append(me)
        yield BLOCK

    def notify_all(self) -> None:
        waiters, self._waiters = self._waiters, []
        for t in waiters:
            self.sim.unblock(t)

    def notify_one(self) -> None:
        if self._waiters:
            self.sim.unblock(self._waiters.pop(0))

    @property
    def waiting(self) -> int:
        return len(self._waiters)


class Gate:
    """A one-shot event: threads wait until somebody opens it."""

    def __init__(self, sim: "Simulator", name: str = "gate"):
        self.sim = sim
        self.name = name
        self.is_open = False
        self._cond = Condition(sim, name=f"{name}.cond")

    def wait(self) -> Iterator[Any]:
        while not self.is_open:
            yield from self._cond.wait()

    def open(self) -> None:
        self.is_open = True
        self._cond.notify_all()


class Channel:
    """A bounded FIFO channel of Python objects (work queues, not data
    pages -- data pages flow through :class:`repro.engine.fifo.FifoBuffer`
    or :class:`repro.engine.spl.SharedPagesList`).

    ``capacity=None`` means unbounded.  ``close()`` wakes all consumers;
    ``get`` returns :data:`Channel.CLOSED` once drained.
    """

    class _Closed:
        __slots__ = ()

        def __repr__(self) -> str:  # pragma: no cover
            return "Channel.CLOSED"

    CLOSED = _Closed()

    def __init__(self, sim: "Simulator", capacity: int | None = None, name: str = "chan"):
        if capacity is not None and capacity < 1:
            raise ValueError("capacity must be >= 1 or None")
        self.sim = sim
        self.name = name
        self.capacity = capacity
        self._items: deque[Any] = deque()
        self._closed = False
        self._not_empty = Condition(sim, f"{name}.ne")
        self._not_full = Condition(sim, f"{name}.nf")

    def __len__(self) -> int:
        return len(self._items)

    @property
    def closed(self) -> bool:
        return self._closed

    def put(self, item: Any) -> Iterator[Any]:
        """Generator: enqueue ``item``, blocking while at capacity."""
        if self._closed:
            raise RuntimeError(f"put on closed channel {self.name!r}")
        while self.capacity is not None and len(self._items) >= self.capacity:
            yield from self._not_full.wait()
            if self._closed:
                raise RuntimeError(f"channel {self.name!r} closed while blocked on put")
        self._items.append(item)
        self._not_empty.notify_one()

    def try_put(self, item: Any) -> bool:
        """Non-blocking put; returns False when full."""
        if self._closed:
            raise RuntimeError(f"put on closed channel {self.name!r}")
        if self.capacity is not None and len(self._items) >= self.capacity:
            return False
        self._items.append(item)
        self._not_empty.notify_one()
        return True

    def get(self) -> Iterator[Any]:
        """Generator: dequeue the next item (CLOSED once closed+drained)."""
        while not self._items:
            if self._closed:
                return Channel.CLOSED
            yield from self._not_empty.wait()
        item = self._items.popleft()
        self._not_full.notify_one()
        return item

    def close(self) -> None:
        """Close the channel and wake all blocked producers/consumers."""
        self._closed = True
        self._not_empty.notify_all()
        self._not_full.notify_all()
