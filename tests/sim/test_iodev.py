"""Unit tests for the shared-bandwidth disk model."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim.iodev import IoDevice
from repro.sim.task import SimThread


def _thread(name="t"):
    def _g():
        yield None

    return SimThread(_g(), name)


def _drain(dev, now=0.0):
    """Run the device to idle; return (finish_time, completion_count)."""
    count = 0
    while dev.active_streams:
        t = dev.next_completion(now)
        assert t is not None and t >= now
        done = dev.pop_completed(t)
        count += len(done)
        now = t
    return now, count


class TestConstruction:
    def test_rejects_nonpositive_bandwidth(self):
        with pytest.raises(ValueError):
            IoDevice("d", 0)


class TestSingleStream:
    def test_full_bandwidth_alone(self):
        dev = IoDevice("d", bandwidth=100e6)
        dev.add(0.0, _thread(), 200e6, True, lambda: None)
        assert dev.next_completion(0.0) == pytest.approx(2.0)

    def test_random_access_penalty(self):
        dev = IoDevice("d", bandwidth=100e6, random_multiplier=4.0)
        dev.add(0.0, _thread(), 100e6, False, lambda: None)
        assert dev.next_completion(0.0) == pytest.approx(4.0)

    def test_bytes_delivered_counts_logical_bytes(self):
        dev = IoDevice("d", bandwidth=100e6, random_multiplier=4.0)
        dev.add(0.0, _thread(), 100e6, False, lambda: None)
        _drain(dev)
        assert dev.bytes_delivered == pytest.approx(100e6)


class TestInterleaving:
    def test_two_streams_thrash(self):
        dev = IoDevice("d", bandwidth=100e6, seek_penalty=0.5, min_efficiency=0.1)
        dev.add(0.0, _thread("a"), 100e6, True, lambda: None)
        dev.add(0.0, _thread("b"), 100e6, True, lambda: None)
        # eff(2) = 1/1.5; per-stream rate = 100e6/1.5/2 = 33.3 MB/s.
        assert dev.next_completion(0.0) == pytest.approx(3.0)

    def test_efficiency_floor(self):
        dev = IoDevice("d", bandwidth=100e6, seek_penalty=1.0, min_efficiency=0.25)
        assert dev.interleave_efficiency(1) == 1.0
        assert dev.interleave_efficiency(2) == pytest.approx(0.5)
        assert dev.interleave_efficiency(100) == 0.25

    def test_n_shared_scans_slower_than_one(self):
        """The core I/O claim behind circular scans: N interleaved full-table
        scans take much longer than N x (one scan) / N."""
        one = IoDevice("d", bandwidth=100e6)
        one.add(0.0, _thread(), 1e9, True, lambda: None)
        t_one, _ = _drain(one)

        many = IoDevice("d", bandwidth=100e6)
        for i in range(8):
            many.add(0.0, _thread(str(i)), 1e9, True, lambda: None)
        t_many, _ = _drain(many)
        assert t_many > 8 * t_one * 1.5  # thrash makes it far worse than 8x


class TestMetrics:
    def test_avg_read_rate(self):
        dev = IoDevice("d", bandwidth=100e6)
        dev.add(0.0, _thread(), 100e6, True, lambda: None)
        t, _ = _drain(dev)
        assert dev.avg_read_rate(t) == pytest.approx(100e6)

    def test_zero_window(self):
        assert IoDevice("d", 1e6).avg_read_rate(0) == 0.0


class TestConservation:
    @settings(max_examples=50, deadline=None)
    @given(sizes=st.lists(st.floats(1e5, 1e8), min_size=1, max_size=16))
    def test_all_requests_complete(self, sizes):
        dev = IoDevice("d", bandwidth=50e6)
        fired = []
        for i, s in enumerate(sizes):
            dev.add(0.0, _thread(str(i)), s, True, lambda i=i: fired.append(i))
        now, count = _drain(dev)
        assert count == len(sizes)
        assert dev.bytes_delivered == pytest.approx(sum(sizes))
        # Never faster than peak bandwidth allows.
        assert now >= sum(sizes) / dev.bandwidth - 1e-9
