"""Query representation: expressions, plan nodes, star-query specs, and the
SSB / TPC-H query templates used in the paper's evaluation.

Plans carry *signatures* -- canonical hashable encodings of an operator and
its whole sub-plan -- which is how QPipe stages detect common sub-plans for
Simultaneous Pipelining and how the CJOIN stage detects identical star
queries for CJOIN-SP.
"""

from repro.query.expr import (
    And,
    Arith,
    Between,
    Col,
    Cmp,
    Const,
    Expr,
    InSet,
    Not,
    Or,
)
from repro.query.plan import (
    AggregateNode,
    AggSpec,
    CJoinNode,
    HashJoinNode,
    PlanNode,
    ScanNode,
    SelectNode,
    SortNode,
)
from repro.query.star import DimJoinSpec, StarQuerySpec

__all__ = [
    "AggSpec",
    "AggregateNode",
    "And",
    "Arith",
    "Between",
    "CJoinNode",
    "Cmp",
    "Col",
    "Const",
    "DimJoinSpec",
    "Expr",
    "HashJoinNode",
    "InSet",
    "Not",
    "Or",
    "PlanNode",
    "ScanNode",
    "SelectNode",
    "SortNode",
    "StarQuerySpec",
]
