"""Tests for table rendering and the taxonomy."""

from repro.bench.reporting import format_series, format_table
from repro.bench.taxonomy import TABLE2, render_table2


class TestFormatting:
    def test_format_table_alignment(self):
        text = format_table("T", ["a", "long_column"], [[1, 2.5], [333, 4.0]])
        lines = text.splitlines()
        assert lines[0] == "== T =="
        assert "long_column" in lines[1]
        widths = {len(line) for line in lines[1:]}
        assert len(widths) == 1  # all rows aligned

    def test_format_table_note(self):
        text = format_table("T", ["a"], [[1]], note="hello")
        assert text.endswith("note: hello")

    def test_float_formats(self):
        text = format_table("T", ["x"], [[0.0], [1234.5], [12.34], [0.1234]])
        assert "0" in text
        assert "1,235" in text or "1,234" in text
        assert "12.3" in text
        assert "0.123" in text

    def test_format_series(self):
        text = format_series("S", "n", [1, 2], {"a": [10.0, 20.0], "b": [1.0, 2.0]})
        lines = text.splitlines()
        assert lines[1].split("|")[0].strip() == "n"
        assert "20.0" in text


class TestTaxonomy:
    def test_five_systems(self):
        assert len(TABLE2) == 5

    def test_render_contains_all_systems(self):
        text = render_table2()
        for t in TABLE2:
            assert t.system in text
