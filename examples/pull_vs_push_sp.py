#!/usr/bin/env python3
"""Pull-based vs push-based Simultaneous Pipelining (paper Section 4).

Runs N identical TPC-H Q1 queries with circular-scan sharing under the two
SP communication models and shows the serialization point of the push-based
design disappear with Shared Pages Lists: the FIFO host copies every result
page into every satellite's buffer (its thread becomes the bottleneck, a
couple of busy cores); the SPL host just appends, consumers pull in
parallel.

    python examples/pull_vs_push_sp.py [n_queries]
"""

import sys

from repro.bench.runner import run_batch
from repro.bench.workload import tpch_q1_workload
from repro.data import generate_tpch
from repro.engine import QPIPE, QPIPE_CS
from repro.storage import StorageConfig

MEMORY = StorageConfig(resident="memory")


def main(n_queries: int = 32) -> None:
    dataset = generate_tpch(sf=1.0, seed=42)
    workload = tpch_q1_workload(n_queries, dataset)
    print(f"{n_queries} identical TPC-H Q1 queries, memory-resident SF=1\n")
    print(f"{'configuration':16s} {'response (s)':>12s} {'avg cores':>10s}")
    rows = {}
    for label, config in (
        ("No SP (FIFO)", QPIPE.with_comm("fifo")),
        ("CS (FIFO)", QPIPE_CS.with_comm("fifo")),
        ("No SP (SPL)", QPIPE.with_comm("spl")),
        ("CS (SPL)", QPIPE_CS.with_comm("spl")),
    ):
        r = run_batch(dataset.tables, config, workload, MEMORY)
        rows[label] = r
        print(f"{label:16s} {r.mean_response:12.2f} {r.avg_cores_used:10.1f}")

    fifo, spl = rows["CS (FIFO)"], rows["CS (SPL)"]
    reduction = 100 * (1 - spl.mean_response / fifo.mean_response)
    print(
        f"\nPull-based SP (SPL) cut the shared-scan response time by "
        f"{reduction:.0f}% vs push-based SP"
    )
    print(
        f"(the paper reports 82-86% at 64 queries; the FIFO host is stuck at "
        f"~{fifo.avg_cores_used:.0f} cores while SPL uses {spl.avg_cores_used:.0f})"
    )


if __name__ == "__main__":
    main(int(sys.argv[1]) if len(sys.argv) > 1 else 32)
