"""Partial-aggregate merge operators for scatter/gather execution.

The shard tier (:mod:`repro.shard`) splits a star query's fact table across
N workers; each worker evaluates the query's selections and joins on its
own engine and reduces the joined rows to a **partial aggregate**.  The
gather stage merges the N partials and finalizes exactly one answer.  Two
properties make that sound:

* **Decomposability** -- every supported aggregate merges from per-shard
  partials: ``sum``/``count`` add, ``min``/``max`` compare, and ``avg``
  carries (sum, count) and divides only at finalize time.
* **Exactness** -- partial sums accumulate as :class:`fractions.Fraction`
  (binary floats convert exactly), so accumulation is associative and
  commutative and the merged value is *independent of how rows were
  partitioned*: the N-shard answer is byte-identical to the 1-shard answer
  for any N and any partitioning.  The single float rounding happens once,
  at finalize.  (The in-engine aggregation stage accumulates in row order
  with per-step float rounding, so its answer can differ from the merged
  one by float-accumulation error -- the merged value is the correctly
  rounded exact sum; tests hold them together to relative 1e-9.)

Finalized rows are emitted in a **canonical order**: rows are first sorted
by their group key, then by the query's ``ORDER BY`` (successive stable
sorts, exactly like the sort stage), so gather output never depends on
group-table insertion order or shard count.
"""

from __future__ import annotations

from fractions import Fraction
from typing import Any, Sequence

from repro.query.plan import AggSpec
from repro.storage.schema import Schema

__all__ = [
    "PartialAggState",
    "PartialAggregator",
    "finalize_rows",
    "merge_states",
]

#: One group's accumulators: a tuple with one slot per :class:`AggSpec`.
#: ``sum``/``count`` slots hold a :class:`Fraction`; ``avg`` holds a
#: ``(sum, count)`` Fraction pair; ``min``/``max`` hold the raw extremum
#: (``None`` until the first value).  The whole state is plain picklable
#: data -- it is the shard tier's wire format for partial results.
PartialAggState = dict[tuple, tuple]

_ZERO = Fraction(0)


def _fresh_slots(aggregates: Sequence[AggSpec]) -> tuple:
    slots: list[Any] = []
    for a in aggregates:
        if a.func == "avg":
            slots.append((_ZERO, _ZERO))
        elif a.func in ("sum", "count"):
            slots.append(_ZERO)
        else:  # min | max
            slots.append(None)
    return tuple(slots)


class PartialAggregator:
    """Reduce weighted row batches to one shard's partial-aggregate state.

    Mirrors the aggregation stage's semantics: each generated row stands
    for ``weight`` real rows, so additive aggregates scale by the batch
    weight (``count`` adds the weight; ``sum``/``avg`` add ``value *
    weight``); ``min``/``max`` ignore it.
    """

    def __init__(self, group_by: Sequence[str], aggregates: Sequence[AggSpec], schema: Schema):
        self.group_by = tuple(group_by)
        self.aggregates = tuple(aggregates)
        self._group_idx = schema.indices(self.group_by)
        self._value_fns = [
            a.expr.compile(schema) if a.expr is not None else None for a in self.aggregates
        ]
        self.groups: PartialAggState = {}

    def consume(self, rows: Sequence[tuple], weight: float) -> None:
        """Fold one weighted batch of joined rows into the partial state."""
        if not rows:
            return
        w = Fraction(weight)
        group_idx = self._group_idx
        specs = self.aggregates
        fns = self._value_fns
        groups = self.groups
        for r in rows:
            key = tuple(r[i] for i in group_idx)
            slots = groups.get(key)
            if slots is None:
                slots = _fresh_slots(specs)
            new_slots = list(slots)
            for i, spec in enumerate(specs):
                func = spec.func
                if func == "count":
                    new_slots[i] = new_slots[i] + w
                    continue
                v = fns[i](r)
                if func == "sum":
                    new_slots[i] = new_slots[i] + Fraction(v) * w
                elif func == "avg":
                    s, c = new_slots[i]
                    new_slots[i] = (s + Fraction(v) * w, c + w)
                elif func == "min":
                    new_slots[i] = v if new_slots[i] is None else min(new_slots[i], v)
                else:  # max
                    new_slots[i] = v if new_slots[i] is None else max(new_slots[i], v)
            groups[key] = tuple(new_slots)

    def state(self) -> PartialAggState:
        """This shard's partial state (picklable; ship it to the gather)."""
        return self.groups


def _merge_slot(spec: AggSpec, a: Any, b: Any) -> Any:
    if spec.func in ("sum", "count"):
        return a + b
    if spec.func == "avg":
        return (a[0] + b[0], a[1] + b[1])
    if b is None:
        return a
    if a is None:
        return b
    return min(a, b) if spec.func == "min" else max(a, b)


def merge_states(
    aggregates: Sequence[AggSpec], states: Sequence[PartialAggState]
) -> PartialAggState:
    """Merge per-shard partial states (associative and commutative; the
    gather stage still applies it in shard order for reproducible logs)."""
    merged: PartialAggState = {}
    for state in states:
        for key, slots in state.items():
            have = merged.get(key)
            if have is None:
                merged[key] = slots
            else:
                merged[key] = tuple(
                    _merge_slot(spec, a, b)
                    for spec, a, b in zip(aggregates, have, slots)
                )
    return merged


def _finalize_slot(spec: AggSpec, slot: Any) -> Any:
    if spec.func in ("sum", "count"):
        return float(slot)
    if spec.func == "avg":
        s, c = slot
        return float(s / c) if c else 0.0
    return slot  # min | max: the raw extremum


def finalize_rows(
    group_by: Sequence[str],
    aggregates: Sequence[AggSpec],
    order_by: Sequence[tuple[str, bool]],
    state: PartialAggState,
) -> list[tuple]:
    """Finalize a merged state into canonical result rows.

    Output schema matches the in-engine :class:`AggregateNode`: group-by
    columns first, then one column per aggregate.  Rows come out in the
    canonical order described in the module docstring."""
    rows = [
        key + tuple(_finalize_slot(spec, slot) for spec, slot in zip(aggregates, slots))
        for key, slots in state.items()
    ]
    # Canonical base order: the group key (total within a query: group keys
    # are unique), so nothing depends on dict insertion order.
    rows.sort(key=lambda r: r[: len(group_by)])
    if order_by:
        names = list(group_by) + [a.name for a in aggregates]
        for col, ascending in reversed(tuple(order_by)):
            i = names.index(col)
            rows.sort(key=lambda r, i=i: r[i], reverse=not ascending)
    return rows
