"""Routing policies: query-centric SP vs the shared GQP, per query.

The paper's conclusion -- query-centric operators with SP at low
concurrency, GQP(+SP) at high concurrency -- is a *policy*, and
:class:`~repro.engine.hybrid.HybridEngine` hard-codes its simplest form: a
static in-flight threshold at the machine's saturation point.  The service
layer generalizes it:

* :class:`StaticThresholdPolicy` -- the baseline, byte-for-byte the
  ``HybridEngine`` rule (route GQP at/above a fixed in-flight count).
* :class:`AdaptivePolicy` -- a feedback controller over the *observed*
  service state: in-flight concurrency **plus admission-queue depth**
  (queued work is imminent concurrency the static rule cannot see), biased
  by **plan similarity** (signature-component overlap with the recent
  window -- the same signatures the WoP machinery shares on: similar plans
  make the GQP pay off earlier), with hysteresis so the route does not
  flap around the switch point.

Policies are pure deciders: the service owns the engines and the state.
"""

from __future__ import annotations

from collections import deque
from typing import TYPE_CHECKING

from repro.engine.hybrid import saturation_threshold

if TYPE_CHECKING:  # pragma: no cover
    from repro.query.star import StarQuerySpec
    from repro.sim.machine import MachineSpec

#: Route labels (also the keys of ``ServiceMetrics.routed``).
QUERY_CENTRIC = "query-centric"
GQP = "gqp"


class RoutingPolicy:
    """Base class: decide a route from the spec and the observed state."""

    name = "policy"

    def choose(self, spec: "StarQuerySpec | None", in_flight: int, queue_depth: int) -> str:
        """Return :data:`QUERY_CENTRIC` or :data:`GQP` for this query.

        ``spec`` is ``None`` for explicit (non-star) plans, which only the
        query-centric path can evaluate -- callers route those before
        consulting the policy."""
        raise NotImplementedError  # pragma: no cover

    def observe_completion(self, route: str, latency: float) -> None:
        """Feedback hook: called as routed queries complete."""


class StaticThresholdPolicy(RoutingPolicy):
    """The ``HybridEngine`` rule: GQP at/above a fixed in-flight count."""

    name = "static"

    def __init__(self, machine: "MachineSpec", threshold: int | None = None):
        self.threshold = threshold if threshold is not None else saturation_threshold(machine)

    def choose(self, spec: "StarQuerySpec | None", in_flight: int, queue_depth: int) -> str:
        return GQP if in_flight >= self.threshold else QUERY_CENTRIC


def spec_features(spec: "StarQuerySpec") -> frozenset:
    """The signature components a spec can share work on: its fact table,
    each dimension sub-plan, the aggregate list and the grouping -- the
    granularity at which stages detect identical in-flight sub-plans."""
    parts = [("fact", spec.fact_table, spec.fact_predicate.signature if spec.fact_predicate else None)]
    parts.extend(("dim", d.signature) for d in spec.dims)
    parts.append(("agg", spec.group_by, tuple(a.signature for a in spec.aggregates)))
    return frozenset(parts)


class AdaptivePolicy(RoutingPolicy):
    """Feedback routing on *sustained* pressure, biased by plan similarity.

    The static rule keys on instantaneous in-flight count, which is a
    noisy proxy for saturation: Poisson bunching trips it at arrival
    rates the query-centric path still absorbs comfortably (routing those
    queries into the GQP costs them its batching latency for nothing),
    while a queue building up behind a full engine is invisible to it.
    This policy instead tracks an exponentially-weighted moving average of
    **pressure** -- in-flight concurrency plus (weighted) admission-queue
    depth, the queued work being imminent concurrency -- and routes to the
    GQP only when that average says the overload is sustained:

    * **enter** GQP when the pressure EWMA reaches the (similarity-
      discounted) threshold, or immediately when instantaneous pressure
      reaches ``surge_factor`` times it (a queue explosion should not wait
      for the average to catch up);
    * **exit** GQP only when the EWMA falls below ``exit_ratio`` of the
      threshold -- hysteresis, so the route does not flap (and restart
      cold shared operators) around the switch point;
    * **similarity** -- mean signature-component overlap (Jaccard) between
      this query and the last ``window`` routed queries, over the same
      signatures the WoP machinery shares on -- discounts the threshold by
      up to ``similarity_discount``: similar plans make the GQP pay off at
      lower concurrency.
    """

    name = "adaptive"

    def __init__(
        self,
        machine: "MachineSpec",
        threshold: int | None = None,
        window: int = 32,
        similarity_discount: float = 0.25,
        queue_weight: float = 0.5,
        alpha: float = 0.2,
        surge_factor: float = 2.0,
        exit_ratio: float = 0.7,
    ):
        self.base_threshold = threshold if threshold is not None else saturation_threshold(machine)
        self.similarity_discount = similarity_discount
        self.queue_weight = queue_weight
        self.alpha = alpha
        self.surge_factor = surge_factor
        self.exit_ratio = exit_ratio
        self.pressure_ewma = 0.0
        self._samples = 0
        self._recent: deque[frozenset] = deque(maxlen=window)
        self._gqp_mode = False
        #: per-route completion-latency EWMAs (observability; fed by
        #: :meth:`observe_completion`)
        self.latency_ewma: dict[str, float] = {}
        #: decision log: (pressure, ewma, similarity, route) per choice,
        #: for ablations and tests
        self.decisions: list[tuple[float, float, float, str]] = []

    # ------------------------------------------------------------------
    def similarity(self, features: frozenset) -> float:
        """Mean Jaccard overlap with the recent routing window (0 when the
        window is empty)."""
        if not self._recent or not features:
            return 0.0
        total = 0.0
        for other in self._recent:
            union = len(features | other)
            total += len(features & other) / union if union else 0.0
        return total / len(self._recent)

    def choose(self, spec: "StarQuerySpec | None", in_flight: int, queue_depth: int) -> str:
        features = spec_features(spec) if spec is not None else frozenset()
        sim_score = self.similarity(features)
        if features:
            self._recent.append(features)
        pressure = in_flight + self.queue_weight * queue_depth
        self._samples += 1
        self.pressure_ewma += self.alpha * (pressure - self.pressure_ewma)
        # Bias-corrected average: without the correction the EWMA starts at
        # zero and a sudden arrival wave is routed query-centric for ~1/alpha
        # queries while the average catches up.
        ewma = self.pressure_ewma / (1.0 - (1.0 - self.alpha) ** self._samples)
        threshold = max(self.base_threshold * (1.0 - self.similarity_discount * sim_score), 1.0)
        if self._gqp_mode:
            gqp = ewma >= self.exit_ratio * threshold
        else:
            gqp = ewma >= threshold or pressure >= self.surge_factor * threshold
        self._gqp_mode = gqp
        route = GQP if gqp else QUERY_CENTRIC
        self.decisions.append((pressure, ewma, sim_score, route))
        return route

    def observe_completion(self, route: str, latency: float) -> None:
        prev = self.latency_ewma.get(route)
        self.latency_ewma[route] = (
            latency if prev is None else prev + self.alpha * (latency - prev)
        )


class ShardBacklog:
    """Per-shard dispatch horizons: the shard tier's pressure signal.

    The scatter/gather front end (:mod:`repro.shard.service`) runs on a
    virtual timeline; this class owns the per-shard **availability
    horizon** -- the virtual time at which each shard finishes everything
    already dispatched to it.  Dispatching work to a shard advances its
    horizon FIFO (``start = max(ready_time, horizon)``), which is both the
    timeline bookkeeping and a backpressure signal the admission side can
    read: ``backlog(now)`` is queued-but-unfinished shard work in seconds,
    the per-shard analogue of the in-flight count the single-process
    router keys on.  An EWMA of observed service times (same ``alpha``
    convention as :class:`AdaptivePolicy`) supports completion prediction
    for deadline-aware shedding."""

    def __init__(self, n_shards: int, alpha: float = 0.2):
        if n_shards < 1:
            raise ValueError("n_shards must be >= 1")
        self.n_shards = n_shards
        self.alpha = alpha
        #: virtual time each shard becomes free (monotone per shard: FIFO)
        self.horizon = [0.0] * n_shards
        self.svc_ewma: list[float | None] = [None] * n_shards

    def dispatch(self, shard: int, ready_time: float, cost_s: float) -> tuple[float, float]:
        """Account ``cost_s`` virtual seconds of work on ``shard``, ready
        no earlier than ``ready_time``; returns ``(start, end)`` and
        advances the shard's horizon to ``end``."""
        start = max(ready_time, self.horizon[shard])
        end = start + cost_s
        self.horizon[shard] = end
        prev = self.svc_ewma[shard]
        self.svc_ewma[shard] = cost_s if prev is None else prev + self.alpha * (cost_s - prev)
        return start, end

    def backlog(self, now: float) -> list[float]:
        """Seconds of already-dispatched work still ahead of each shard."""
        return [max(0.0, h - now) for h in self.horizon]

    def pressure(self, now: float) -> float:
        """The gather-relevant pressure: the *worst* shard backlog (a
        gathered query is as late as its most backlogged shard)."""
        return max(self.backlog(now))

    def predicted_completion(self, now: float) -> float:
        """Predicted gather time of a query dispatched now, from the
        horizons plus the slowest shard's service-time EWMA."""
        est = max(self.svc_ewma[i] or 0.0 for i in range(self.n_shards))
        return max(now, max(self.horizon)) + est


#: name -> one-line description, for ``python -m repro list``.
POLICIES = {
    "static": "fixed in-flight threshold at machine saturation (HybridEngine rule)",
    "adaptive": "feedback on in-flight + queue depth, similarity-biased, hysteresis",
}


def make_policy(
    name: str, machine: "MachineSpec", threshold: int | None = None
) -> RoutingPolicy:
    """Build a routing policy by name (the CLI/benchmark entry point)."""
    if name == "static":
        return StaticThresholdPolicy(machine, threshold)
    if name == "adaptive":
        return AdaptivePolicy(machine, threshold)
    raise ValueError(f"unknown policy {name!r} (choose from: {', '.join(POLICIES)})")
