"""Shared result cache: materialized sub-plan reuse beyond the WoP.

The paper shares work only among queries whose identical sub-plans overlap
*in time*: the step Window of Opportunity closes the moment a host starts
emitting, and a query arriving a millisecond later recomputes everything.
Cache-based multi-query optimization (Michiardi et al.) and shared cloud
execution ("Pay One, Get Hundreds for Free") add the missing axis: keep the
*materialized output* of common sub-plans and replay it for later identical
arrivals at memory-read cost.

:class:`ResultCache` is that store.  It is keyed by the very plan
signatures the SP machinery already matches hosts and satellites on
(:attr:`~repro.engine.packet.Packet.signature`), so anything SP could have
shared inside the WoP the cache can share after it.  One cache instance
lives on the :class:`~repro.storage.manager.StorageManager`, which both
engines of a hybrid/service deployment share -- a result filled by the
query-centric path is visible to a query routed anywhere.

Mechanics (all in simulated time, fully deterministic):

* **probe** -- on stage dispatch a packet looks itself up before the WoP
  registry; a hit replays the cached pages through the packet's exchange.
* **fill** -- a miss with an eligible sub-plan opens one extra consumer on
  the host's Shared Pages List; the SPL's pull model means the extra
  consumer adds *nothing* to the producer's critical path (the same
  argument as paper Section 4), and the SPL's bounded size still holds.
* **eviction** -- byte-budgeted, two policies: plain ``lru`` and
  ``benefit`` (cost x frequency / size: evict the entry whose re-creation
  cost per resident byte is lowest).
* **invalidation** -- entries record the base tables their sub-plan read;
  :meth:`invalidate_table` drops everything touching an updated table.

Ordering inside the cache is insertion-ordered dicts plus a logical tick
counter, never wall-clock or unseeded randomness, so a run's hit/miss/
eviction sequence is exactly reproducible.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Iterable

from repro.storage.page import Batch

if TYPE_CHECKING:  # pragma: no cover
    from repro.sim.engine import Simulator

#: name -> one-line description, for ``python -m repro list``.
CACHE_POLICIES = {
    "lru": "evict the least recently probed entry",
    "benefit": "evict the lowest cost x frequency / size entry first",
}


class CacheEntry:
    """One materialized sub-plan result."""

    __slots__ = ("key", "batches", "nbytes", "cost_seconds", "tables", "stage",
                 "hits", "last_used", "seq", "node")

    def __init__(
        self,
        key: tuple,
        batches: list[Batch],
        nbytes: float,
        cost_seconds: float,
        tables: frozenset[str],
        stage: str,
        seq: int,
        node=None,
    ):
        self.key = key
        self.batches = batches
        self.nbytes = nbytes
        self.cost_seconds = cost_seconds  # simulated time the producer took
        self.tables = tables  # base tables read, for invalidation
        self.stage = stage
        self.hits = 0
        self.last_used = seq
        self.seq = seq
        # The plan node this entry materialized, when the filler recorded
        # it: subsumption probes (repro.query.subsume) need the structure,
        # not just the signature hash.  Entries without a node only serve
        # exact hits.
        self.node = node

    def benefit_per_byte(self) -> float:
        """Eviction score of the ``benefit`` policy: what re-creating this
        entry would cost, per resident byte, weighted by observed reuse."""
        return self.cost_seconds * (1.0 + self.hits) / max(self.nbytes, 1.0)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<CacheEntry {self.stage} pages={len(self.batches)} hits={self.hits}>"


class ResultCache:
    """Byte-budgeted, cost-aware store of materialized sub-plan outputs."""

    def __init__(
        self,
        sim: "Simulator",
        capacity_bytes: float,
        policy: str = "benefit",
        max_entry_fraction: float = 0.5,
    ):
        if capacity_bytes <= 0:
            raise ValueError("capacity_bytes must be positive")
        if policy not in CACHE_POLICIES:
            raise ValueError(
                f"unknown cache policy {policy!r} (choose from: {', '.join(CACHE_POLICIES)})"
            )
        if not 0.0 < max_entry_fraction <= 1.0:
            raise ValueError("max_entry_fraction must be in (0, 1]")
        self.sim = sim
        self.capacity_bytes = capacity_bytes
        self.policy = policy
        self.max_entry_fraction = max_entry_fraction
        self._entries: dict[tuple, CacheEntry] = {}  # insertion-ordered
        self._filling: set[tuple] = set()  # keys with an in-flight fill
        self._bytes = 0.0
        self._tick = 0  # logical clock: deterministic LRU / tie-breaks
        self.hits = 0
        self.misses = 0
        self.insertions = 0
        self.evictions = 0
        self.rejected = 0  # entries larger than the per-entry bound
        self.invalidated = 0
        self.fold_hits = 0  # partial hits served through a subsuming entry

    # -- probes ---------------------------------------------------------
    def probe(self, key: tuple) -> CacheEntry | None:
        """Look up ``key``, counting the hit or miss."""
        entry = self._entries.get(key)
        self._tick += 1
        if entry is None:
            self.misses += 1
            self.sim.metrics.bump("result_cache_misses")
            return None
        entry.hits += 1
        entry.last_used = self._tick
        self.hits += 1
        self.sim.metrics.bump("result_cache_hits")
        return entry

    def contains(self, key: tuple) -> bool:
        """Silent membership test (no counters) -- the routing layer's
        "would this query likely be served from cache?" probe."""
        return key in self._entries

    def contains_any(self, keys: Iterable[tuple]) -> bool:
        return any(k in self._entries for k in keys)

    def probe_subsuming(self, node) -> tuple[CacheEntry, "FoldPlan", int] | None:
        """Partial-hit probe: the cheapest entry whose recorded plan
        *subsumes* ``node`` (repro.query.subsume), as ``(entry, fold plan,
        candidates examined)``.  Called only after an exact :meth:`probe`
        missed, so it never shadows a direct hit.  Ranking: fewest residual
        terms and no roll-up first, then smallest entry with the highest
        benefit-per-byte (cheapest to replay, most worth keeping hot), then
        insertion order."""
        from repro.query.subsume import FoldPlanner  # deferred: layering

        planner = FoldPlanner(node)
        sig = node.signature
        for entry in self._entries.values():
            if entry.node is None or entry.key == sig:
                continue
            planner.consider(
                entry.node,
                entry,
                tie_break=(entry.nbytes, -entry.benefit_per_byte(), entry.seq),
            )
        best = planner.best()
        if best is None:
            return None
        entry, plan = best
        self._tick += 1
        entry.hits += 1
        entry.last_used = self._tick
        self.fold_hits += 1
        self.sim.metrics.bump("result_cache_fold_hits")
        return entry, plan, planner.examined

    def has_subsuming(self, node) -> bool:
        """Silent fold-hit test (no counters) -- the routing layer's
        "would folding likely serve this query from cache?" probe."""
        from repro.query.subsume import fold_plan  # deferred: layering

        sig = node.signature
        for entry in self._entries.values():
            if entry.node is None or entry.key == sig:
                continue
            if fold_plan(node, entry.node) is not None:
                return True
        return False

    # -- fills ----------------------------------------------------------
    def begin_fill(self, key: tuple) -> bool:
        """Claim ``key`` for one in-flight fill; False if one is already
        running (concurrent identical hosts fill once, not N times)."""
        if key in self._filling:
            return False
        self._filling.add(key)
        return True

    def end_fill(self, key: tuple) -> None:
        self._filling.discard(key)

    def fits_entry(self, nbytes: float) -> bool:
        """Would an entry of ``nbytes`` be admissible at all?  Fill workers
        consult this page by page and abandon oversized spills early."""
        return nbytes <= self.capacity_bytes * self.max_entry_fraction

    def admit(
        self,
        key: tuple,
        batches: list[Batch],
        nbytes: float,
        cost_seconds: float,
        tables: frozenset[str],
        stage: str = "",
        node=None,
    ) -> bool:
        """Insert a materialized result, evicting by policy to fit."""
        if not self.fits_entry(nbytes):
            self.rejected += 1
            self.sim.metrics.bump("result_cache_rejected")
            return False
        old = self._entries.pop(key, None)
        if old is not None:
            self._bytes -= old.nbytes
        while self._bytes + nbytes > self.capacity_bytes and self._entries:
            self._evict_one()
        self._tick += 1
        self._entries[key] = CacheEntry(
            key, batches, nbytes, cost_seconds, tables, stage, self._tick, node=node
        )
        self._bytes += nbytes
        self.insertions += 1
        self.sim.metrics.bump("result_cache_insertions")
        return True

    def _evict_one(self) -> None:
        if self.policy == "lru":
            victim = min(self._entries.values(), key=lambda e: (e.last_used, e.seq))
        else:  # benefit per byte; seq breaks exact-score ties deterministically
            victim = min(self._entries.values(), key=lambda e: (e.benefit_per_byte(), e.seq))
        del self._entries[victim.key]
        self._bytes -= victim.nbytes
        self.evictions += 1
        self.sim.metrics.bump("result_cache_evictions")

    # -- invalidation ---------------------------------------------------
    def invalidate_table(self, table_name: str) -> int:
        """Drop every entry whose sub-plan read ``table_name``; returns how
        many were dropped."""
        dead = [k for k, e in self._entries.items() if table_name in e.tables]
        for key in dead:
            self._bytes -= self._entries.pop(key).nbytes
        if dead:
            self.invalidated += len(dead)
            self.sim.metrics.bump("result_cache_invalidated", len(dead))
        return len(dead)

    def clear(self) -> None:
        self._entries.clear()
        self._bytes = 0.0

    # -- introspection --------------------------------------------------
    @property
    def resident_bytes(self) -> float:
        return self._bytes

    def __len__(self) -> int:
        return len(self._entries)

    def stats(self) -> dict:
        """JSON-safe counter snapshot (exported by the service layer)."""
        return {
            "policy": self.policy,
            "capacity_bytes": self.capacity_bytes,
            "resident_bytes": self._bytes,
            "entries": len(self._entries),
            "hits": self.hits,
            "misses": self.misses,
            "insertions": self.insertions,
            "evictions": self.evictions,
            "rejected": self.rejected,
            "invalidated": self.invalidated,
            "fold_hits": self.fold_hits,
        }

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"<ResultCache {self.policy} entries={len(self._entries)} "
            f"bytes={self._bytes:.0f}/{self.capacity_bytes:.0f}>"
        )


def cached_query_centric_plan(storage, spec):
    """The spec's query-centric plan when a result-cache hit is likely for
    it -- its root signature (or, under a sort root, the aggregate below)
    is resident in ``storage``'s cache -- else ``None``.

    This is the routing layer's cache discount (HybridEngine and the
    service router both call it): a likely hit replays materialized pages
    at memory-read cost, so the query should stay query-centric instead of
    paying GQP admission.  Plan construction is pure bookkeeping with no
    simulated cost; the replay worker pays the probe cycles."""
    cache = storage.result_cache
    if cache is None:
        return None
    from repro.query.plan import SortNode  # deferred: avoid import cycles

    plan = spec.to_query_centric_plan(storage.tables)
    candidates = [plan.signature]
    if isinstance(plan, SortNode):
        candidates.append(plan.child.signature)
    if cache.contains_any(candidates):
        return plan
    # Under query folding, a *subsuming* entry serves the query the same
    # way (residual replay at memory-read cost), so the routing discount
    # applies to partial hits too.
    from repro.sim.fastpath import query_folding_default  # deferred: layering

    if query_folding_default():
        roots = [plan.child, plan] if isinstance(plan, SortNode) else [plan]
        if any(cache.has_subsuming(r) for r in roots):
            return plan
    return None
