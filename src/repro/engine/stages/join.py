"""The hash-join stage (query-centric joins, step WoP).

One worker per host packet: build a hash table from the (filtered) build
input, then stream the probe input.  Cost charges split per the paper's
breakdown: ``hash()``/``equal()`` cycles under "hashing", build/probe
bookkeeping and output materialization under "joins".

Both hot loops run vectorized (one comprehension per batch, key indices
hoisted out of the loop) and the per-batch cycle charges are fused into a
single simulator event; neither changes the joined rows or a single
simulated tick (see :mod:`repro.engine.config`)."""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Iterator

from repro.sim.commands import CPU, CPU_FUSED
from repro.engine.exchange import END
from repro.engine.packet import Packet
from repro.engine.stage import Stage
from repro.engine.stages.inputs import FilteredInput
from repro.storage.arrangements import (  # noqa: F401  (re-export: baselines import it here)
    ARRANGEMENTS,
    Arrangement,
    single_match_table,
)
from repro.storage.packed import as_list
from repro.storage.page import Batch, ColumnBatch


def probe_columnar(
    batch: ColumnBatch,
    probe_key: int,
    get,
    weight: float,
    single: dict[Any, tuple] | None = None,
) -> ColumnBatch:
    """Late-materialized hash probe: extract the key column, match, and
    emit a new selection vector over the *same* base columns plus a tail
    of matched build rows -- no wide output tuples.  Match order (probe
    order, then build-insertion order) equals the row-wise probe's, so
    downstream results and charge counts are identical.

    With a ``single`` match table the whole probe runs as one C-level
    ``map(dict.get)`` pass over the key column plus ``is not None``
    comprehensions (one hash lookup per key, no per-row Python
    bytecode beyond the loops)."""
    # Packed FK vectors decode once per page (memoized on the column) so
    # the C-level dict probes below run over cached boxed keys instead of
    # re-boxing array elements on every circular-scan revisit.
    keys = as_list(batch.column(probe_key))
    src = batch.sel
    tails = batch.tail
    if single is not None:
        ms = list(map(single.get, keys))
        if tails is None:
            if src is None:
                out_sel = [j for j, m in enumerate(ms) if m is not None]
            else:
                out_sel = [j for j, m in zip(src, ms) if m is not None]
            out_tail = [m for m in ms if m is not None]
        else:
            out_sel = [j for j, m in zip(src, ms) if m is not None]
            out_tail = [t + m for t, m in zip(tails, ms) if m is not None]
        return ColumnBatch(batch.cols, out_sel, weight, out_tail)
    out_sel = []
    out_tail = []
    add_sel = out_sel.append
    add_tail = out_tail.append
    if tails is None:
        positions = range(len(keys)) if src is None else src
        for j, k in zip(positions, keys):
            ms = get(k)
            if ms is not None:
                for m in ms:
                    add_sel(j)
                    add_tail(m)
    else:
        for j, k, t in zip(src, keys, tails):
            ms = get(k)
            if ms is not None:
                for m in ms:
                    add_sel(j)
                    add_tail(t + m)
    return ColumnBatch(batch.cols, out_sel, weight, out_tail)

if TYPE_CHECKING:  # pragma: no cover
    from repro.query.plan import HashJoinNode


class HashJoinStage(Stage):
    """The query-centric hash-join stage (step WoP)."""
    def __init__(self, engine):
        super().__init__(engine, "join")

    def run(
        self,
        packet: Packet,
        probe_input: FilteredInput,
        build_input: FilteredInput,
        shared: tuple[Arrangement, Any] | None = None,
    ) -> None:
        """``shared`` (engine-resolved, see ``QPipeEngine._shared_build``)
        carries a pinned arrangement plus the build-side predicate: the
        build input is then drained with identical charges but no private
        dict is populated, and probes hit the arrangement's shared view
        for that predicate -- seeded by the first query's own drained
        rows, fetched from the memo by every later one."""
        self.spawn_worker(packet, self._work(packet, probe_input, build_input, shared))

    def _work(
        self,
        packet: Packet,
        probe_input: FilteredInput,
        build_input: FilteredInput,
        shared: tuple[Arrangement, Any] | None = None,
    ) -> Iterator[Any]:
        node: "HashJoinNode" = packet.node
        cost = self.engine.cost
        exchange = packet.exchange
        fuse = self.engine.config.use_fuse_charges()
        yield CPU(cost.packet_dispatch, "misc")

        # ---- build phase --------------------------------------------
        # Key index resolved once per packet, not per batch.
        build_key = build_input.schema.index(node.build_key)
        table: dict[Any, list[tuple]] = {}
        setdefault = table.setdefault
        #: with a shared arrangement whose view for this predicate is not
        #: memoized yet, collect the drained rows to seed it (C-level
        #: extends; cheaper than the private setdefault loop they replace).
        #: Under query folding, a *subsuming* sibling view (built for a
        #: weaker build-side predicate) serves instead: the view derives
        #: from the sibling's rows at probe time, so nothing is collected.
        #: Either way the build input is drained with identical charges --
        #: the derived mapping equals the directly built one (unique base
        #: keys), so this fold never moves a simulated tick.
        collect: list[tuple] | None = None
        fold_view = False
        if shared is not None and not shared[0].has_single_view(shared[1]):
            if self.engine.config.use_query_folding() and shared[0].has_subsuming_view(
                shared[1]
            ):
                fold_view = True
            else:
                collect = []
        while True:
            # Fast mode: the input hands back its per-batch charge so it
            # rides in front of our hashing/build charge -- one command
            # per batch for the whole read->filter->build chain.
            if fuse:
                batch, fc = yield from build_input.read_fused()
            else:
                batch = yield from build_input.read()
                fc = None
            if batch is END:
                break
            n, w = len(batch), batch.weight
            if not n:
                if fc is not None:
                    yield build_input.fuse_next_lock(fc)
                continue
            # The build side materializes rows either way: they become the
            # probe output's tail payloads (dims are small post-filter).
            rows = batch.rows
            if fuse:
                # Only pure computation follows until the next read, so the
                # next read's lock charge rides at the tail of this command.
                if fc is not None:
                    cmd = CPU_FUSED(fc, cost.hashing(n, w), cost.build(n, w))
                else:
                    cmd = CPU_FUSED(cost.hashing(n, w), cost.build(n, w))
                yield build_input.fuse_next_lock(cmd)
            else:
                yield cost.hashing(n, w)
                yield cost.build(n, w)
            if shared is None:
                # Private build.  With a shared arrangement the input is
                # drained and charged identically (the *work* of reading
                # and hashing is still this query's), but the dict the
                # probes hit is the arrangement's shared view.
                for r in rows:
                    setdefault(r[build_key], []).append(r)
            elif collect is not None:
                collect.extend(rows)

        # ---- probe phase --------------------------------------------
        probe_key = probe_input.schema.index(node.probe_key)
        get = table.get
        if shared is not None:
            if fold_view:
                single = shared[0].fold_single_view(shared[1])
            else:
                single = shared[0].offer_single_view(shared[1], collect or [])
        else:
            single = single_match_table(table)
        empty: tuple = ()
        while True:
            if fuse:
                batch, fc = yield from probe_input.read_fused()
            else:
                batch = yield from probe_input.read()
                fc = None
            if batch is END:
                break
            n, w = len(batch), batch.weight
            if not n:
                if fc is not None:
                    yield probe_input.fuse_next_lock(fc)
                continue
            if isinstance(batch, ColumnBatch):
                out = probe_columnar(batch, probe_key, get, w, single)
            elif single is not None:
                # Row-plane single-match fast path (one dict lookup per
                # probe row; same rows in the same order as the general
                # loop, since every key has at most one match).
                sget = single.get
                out = Batch(
                    [
                        r + m
                        for r in batch.rows
                        if (m := sget(r[probe_key])) is not None
                    ],
                    w,
                )
            else:
                out = Batch(
                    [r + m for r in batch.rows for m in get(r[probe_key], empty)], w
                )
            nout = len(out)
            cmds = [cost.hashing(n, w, equals=nout), cost.probe(n, w)]
            if nout:
                cmds.append(cost.emit_join(nout, w))
            if fuse:
                if fc is not None:
                    cmds.insert(0, fc)
                fused_cmd = CPU_FUSED(*cmds)
                if not nout:
                    # No emission before the next read, so its lock charge
                    # can ride at the tail (an emit in between would hold
                    # the input SPL's lock across the emit -- illegal).
                    fused_cmd = probe_input.fuse_next_lock(fused_cmd)
                yield fused_cmd
            else:
                for cmd in cmds:
                    yield cmd
            if nout:
                if not packet.started_emitting:
                    packet.mark_started()
                    self.unregister(packet)  # step WoP closes
                yield from exchange.emit(out)

        exchange.close()
        packet.finished = True
        self.unregister(packet)
        if shared is not None:
            ARRANGEMENTS.release(shared[0])
