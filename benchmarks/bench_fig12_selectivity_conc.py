"""Paper Figure 12: 30% selectivity with rising concurrency (SF=10,
memory-resident).

Shape claims checked:
* QPipe-SP's response grows superlinearly with the number of queries
  (query-centric joins contend for cores);
* CJOIN stays nearly flat and wins at high concurrency;
* CJOIN's "Hashing" CPU is (near-)flat -- hashing is shared -- while
  QPipe-SP's scales with the number of queries.
"""

from repro.bench.experiments import fig12_selectivity_concurrency


def bench_fig12_selectivity_concurrency(once, save_report, full_mode):
    result = once(fig12_selectivity_concurrency, full=full_mode)
    save_report("fig12_selectivity_conc", result.render())

    rt = result.data["rt"]
    xs = result.data["concurrency"]
    growth_qp = rt["QPipe-SP"][-1] / rt["QPipe-SP"][0]
    growth_cj = rt["CJOIN"][-1] / rt["CJOIN"][0]
    queries_growth = xs[-1] / xs[0]
    assert growth_qp > queries_growth  # superlinear
    assert growth_cj < 0.5 * growth_qp  # CJOIN nearly flat by comparison
    assert rt["CJOIN"][-1] < rt["QPipe-SP"][-1]  # crossover reached

    hashing = result.data["hashing"]
    assert hashing["QPipe-SP"][-1] / hashing["QPipe-SP"][0] > 2.0
    assert hashing["CJOIN"][-1] / hashing["CJOIN"][0] < 2.0
