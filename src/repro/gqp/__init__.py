"""Global Query Plans: the CJOIN shared-operator pipeline.

One CJOIN pipeline per fact table evaluates the joins of *all* concurrent
star queries at once (Candea et al., VLDB'09):

* the **preprocessor** runs a circular scan of the fact table, admits new
  queries in batches between pages (pausing the pipeline), and tags each
  page with the set of queries it is addressed to;
* **filters** -- one per referenced dimension -- hold the union of the
  dimension tuples selected by any active query, each annotated with a
  query bitmap; worker threads push fact pages through the filter chain,
  AND-ing bitmaps and dropping tuples whose bitmap reaches zero (the
  paper's *horizontal* configuration by default; *vertical* -- one thread
  per filter -- via ``EngineConfig(cjoin_threads="vertical")``);
* the **distributor**, parallelized into distributor parts (Section 3.2),
  routes joined tuples to the output of every query whose bit is set,
  applying per-query fact predicates and projections.

Integrated as a QPipe stage (:class:`~repro.gqp.stage.CJoinStage`), CJOIN
packets themselves participate in Simultaneous Pipelining: with SP enabled,
an identical CJOIN packet inside the step WoP becomes a satellite and skips
admission, bitmaps and distribution entirely (CJOIN-SP).
"""

from repro.gqp.bitmap import SlotAllocator
from repro.gqp.cjoin import CJoinPipeline, Filter
from repro.gqp.ordering import ChainOrderer
from repro.gqp.stage import CJoinStage

__all__ = ["ChainOrderer", "CJoinPipeline", "CJoinStage", "Filter", "SlotAllocator"]
