"""Tests for plan nodes, star specs and query templates."""

import random

import pytest

from repro.data.ssb import generate_ssb
from repro.query.expr import Cmp, Col
from repro.query.plan import (
    AggregateNode,
    AggSpec,
    CJoinNode,
    HashJoinNode,
    ScanNode,
    SelectNode,
    SortNode,
)
from repro.query.ssb_queries import q11, q21, q32, q32_selectivity, random_q32
from repro.query.star import StarQuerySpec
from repro.query.tpch_queries import tpch_q1_plan


@pytest.fixture(scope="module")
def ssb():
    return generate_ssb(1.0, seed=11)


class TestPlanNodes:
    def test_scan_schema_and_signature(self, ssb):
        n = ScanNode(ssb.customer)
        assert n.schema is ssb.customer.schema
        assert n.signature == ("scan", "customer")

    def test_select_passthrough_schema(self, ssb):
        n = SelectNode(ScanNode(ssb.customer), Cmp("=", "c_nation", "FRANCE"))
        assert n.schema is ssb.customer.schema
        assert n.signature[0] == "select"

    def test_join_schema_concat(self, ssb):
        n = HashJoinNode(ScanNode(ssb.lineorder), ScanNode(ssb.customer), "lo_custkey", "c_custkey")
        assert "lo_revenue" in n.schema
        assert "c_city" in n.schema

    def test_aggregate_schema(self, ssb):
        n = AggregateNode(
            ScanNode(ssb.lineorder), ("lo_custkey",), (AggSpec("sum", Col("lo_revenue"), "rev"),)
        )
        assert n.schema.names == ("lo_custkey", "rev")

    def test_aggspec_validation(self):
        with pytest.raises(ValueError):
            AggSpec("median", Col("x"), "m")
        with pytest.raises(ValueError):
            AggSpec("sum", None, "s")
        AggSpec("count", None, "c")  # count(*) ok

    def test_sort_requires_keys(self, ssb):
        with pytest.raises(ValueError):
            SortNode(ScanNode(ssb.customer), ())

    def test_signature_includes_subtree(self, ssb):
        a = HashJoinNode(
            SelectNode(ScanNode(ssb.lineorder), Cmp(">", "lo_quantity", 10)),
            ScanNode(ssb.customer),
            "lo_custkey",
            "c_custkey",
        )
        b = HashJoinNode(
            SelectNode(ScanNode(ssb.lineorder), Cmp(">", "lo_quantity", 11)),
            ScanNode(ssb.customer),
            "lo_custkey",
            "c_custkey",
        )
        assert a.signature != b.signature

    def test_signature_cached(self, ssb):
        n = ScanNode(ssb.customer)
        assert n.signature is n.signature


class TestStarSpec:
    def test_q32_query_centric_shape(self, ssb):
        plan = q32("CHINA", "FRANCE", 1993, 1995).to_query_centric_plan(ssb.tables)
        assert isinstance(plan, SortNode)
        agg = plan.child
        assert isinstance(agg, AggregateNode)
        j3 = agg.child
        assert isinstance(j3, HashJoinNode) and j3.label == "hj3"
        j2 = j3.probe
        assert isinstance(j2, HashJoinNode) and j2.label == "hj2"
        j1 = j2.probe
        assert isinstance(j1, HashJoinNode) and j1.label == "hj1"
        assert isinstance(j1.probe, ScanNode)

    def test_q32_gqp_shape(self, ssb):
        plan = q32("CHINA", "FRANCE", 1993, 1995).to_gqp_plan(ssb.tables)
        agg = plan.child
        cj = agg.child
        assert isinstance(cj, CJoinNode)
        assert cj.fact_table == "lineorder"
        assert len(cj.dims) == 3
        assert "c_city" in cj.schema and "lo_revenue" in cj.schema

    def test_fact_payload_excludes_dim_columns(self, ssb):
        spec = q32("CHINA", "FRANCE", 1993, 1995)
        assert spec.fact_payload == ("lo_revenue",)

    def test_identical_templates_share_signature(self):
        assert q32("CHINA", "FRANCE", 1993, 1995).signature == q32(
            "CHINA", "FRANCE", 1993, 1995
        ).signature
        assert q32("CHINA", "FRANCE", 1993, 1995).signature != q32(
            "CHINA", "FRANCE", 1993, 1996
        ).signature

    def test_q32_validation(self):
        with pytest.raises(ValueError):
            q32("ATLANTIS", "FRANCE", 1993, 1995)
        with pytest.raises(ValueError):
            q32("CHINA", "FRANCE", 1995, 1993)

    def test_star_requires_dims(self):
        with pytest.raises(ValueError):
            StarQuerySpec("lineorder", (), (), (AggSpec("count", None, "c"),))


class TestTemplates:
    def test_q11_has_fact_predicate(self):
        spec = q11(1993, 1.0, 3.0, 25)
        assert spec.fact_predicate is not None
        assert len(spec.dims) == 1
        assert spec.group_by == ()

    def test_q21_three_dims(self):
        spec = q21("MFGR#12", "AMERICA")
        assert [d.dim_table for d in spec.dims] == ["part", "supplier", "date"]
        assert spec.dims[2].predicate is None

    def test_random_q32_deterministic(self):
        assert random_q32(random.Random(3)).signature == random_q32(random.Random(3)).signature

    def test_selectivity_targeting(self, ssb):
        """Realized fact selectivity should be within ~2x of target."""
        rng = random.Random(5)
        spec = q32_selectivity(0.10, rng)
        csch, ssch = ssb.customer.schema, ssb.supplier.schema
        cpred = spec.dims[1].predicate.compile(csch)
        spred = spec.dims[0].predicate.compile(ssch)
        cfrac = sum(1 for r in ssb.customer.iter_rows() if cpred(r)) / len(ssb.customer)
        sfrac = sum(1 for r in ssb.supplier.iter_rows() if spred(r)) / len(ssb.supplier)
        realized = cfrac * sfrac
        assert 0.05 < realized < 0.2

    def test_selectivity_validation(self):
        with pytest.raises(ValueError):
            q32_selectivity(0.0, random.Random(1))
        with pytest.raises(ValueError):
            q32_selectivity(1.5, random.Random(1))

    def test_tpch_q1_plan_shape(self):
        from repro.data.tpch import generate_tpch

        ds = generate_tpch(1.0, seed=3)
        plan = tpch_q1_plan(ds.lineitem)
        assert isinstance(plan, SortNode)
        agg = plan.child
        assert isinstance(agg, AggregateNode)
        assert len(agg.aggregates) == 8
        assert isinstance(agg.child, SelectNode)
