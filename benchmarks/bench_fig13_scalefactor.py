"""Paper Figure 13: impact of scale factor (8 queries, disk-resident,
with and without direct I/O).

Shape claims checked:
* response grows with the scale factor for both configurations;
* QPipe-SP is below CJOIN at every scale factor (8 queries = low
  concurrency);
* direct I/O makes both slower (no read-ahead/FS cache) and exposes the
  CJOIN preprocessor: CJOIN loses more from direct I/O than QPipe-SP.
"""

from repro.bench.experiments import fig13_scale_factor


def bench_fig13_scale_factor(once, save_report, full_mode):
    result = once(fig13_scale_factor, full=full_mode)
    save_report("fig13_scalefactor", result.render())

    rt = result.data["rt"]
    for name, series in rt.items():
        assert series[-1] > series[0], name  # grows with SF
    assert all(q <= c for q, c in zip(rt["QPipe-SP"], rt["CJOIN"]))
    # Direct I/O penalty, and it hits CJOIN harder (preprocessor exposed).
    hi = -1
    penalty_qp = rt["QPipe-SP (Direct I/O)"][hi] / rt["QPipe-SP"][hi]
    penalty_cj = rt["CJOIN (Direct I/O)"][hi] / rt["CJOIN"][hi]
    assert penalty_qp > 1.0
    assert penalty_cj > 1.0
