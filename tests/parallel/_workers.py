"""Top-level picklable work items and functions for fabric tests.

``ProcessPoolExecutor`` pickles functions by reference, so everything a
worker runs must live at module level -- test closures won't do.
"""

from __future__ import annotations

import os
import time
from dataclasses import dataclass


@dataclass(frozen=True)
class Item:
    """A minimal keyed work item.  ``parent_pid`` lets a function behave
    differently in the parent (serial retry) than in a pool worker."""

    key: str
    value: int = 0
    parent_pid: int = 0
    sleep_s: float = 0.0


def echo(item: Item) -> int:
    """Pure function of the item: same answer in any process."""
    return item.value * 2


def raise_in_worker(item: Item) -> int:
    """Crashes only in a pool worker; succeeds when re-run in the parent."""
    if os.getpid() != item.parent_pid:
        raise RuntimeError(f"worker-only failure for {item.key}")
    return item.value * 2


def exit_in_worker(item: Item) -> int:
    """Kills the worker process outright (BrokenProcessPool in the parent);
    succeeds when re-run in the parent."""
    if os.getpid() != item.parent_pid:
        os._exit(13)
    return item.value * 2


def always_raise(item: Item) -> int:
    """Fails everywhere: pool run and serial retry alike."""
    raise ValueError(f"persistent failure for {item.key}")


def raise_differently(item: Item) -> int:
    """Fails everywhere, with a DIFFERENT reason in the pool worker than in
    the parent's serial retry -- the failure report must keep both."""
    if os.getpid() != item.parent_pid:
        raise RuntimeError(f"worker-side reason for {item.key}")
    raise ValueError(f"parent-side reason for {item.key}")


def sleep_then_echo(item: Item) -> int:
    """Holds its worker for ``sleep_s`` -- the timeout test's stuck cell."""
    time.sleep(item.sleep_s)
    return item.value * 2
