"""Open-loop arrival processes for the query service.

The batch runner submits every query at once; a *service* sees a stream.
Each process below yields successive **inter-arrival gaps** in simulated
seconds; the service's source thread sleeps each gap and enqueues the next
query.  All processes are deterministic in their seed
(:func:`repro.data.rng.make_rng`), so a served workload replays exactly.
"""

from __future__ import annotations

import pathlib
from typing import Iterator

from repro.data.rng import make_rng


class ArrivalProcess:
    """Base class: an unbounded stream of inter-arrival gaps."""

    name = "arrivals"

    def gaps(self) -> Iterator[float]:  # pragma: no cover - interface
        raise NotImplementedError


class PoissonArrivals(ArrivalProcess):
    """Memoryless arrivals at ``rate`` queries/second (exponential gaps) --
    the standard open-loop model for independent analytical clients."""

    name = "poisson"

    def __init__(self, rate: float, seed: int = 1):
        if rate <= 0:
            raise ValueError("rate must be positive")
        self.rate = rate
        self.seed = seed

    def gaps(self) -> Iterator[float]:
        rng = make_rng(self.seed, "arrivals", self.name, self.rate)
        while True:
            yield rng.expovariate(self.rate)


class UniformArrivals(ArrivalProcess):
    """Perfectly paced arrivals: one query every ``1/rate`` seconds."""

    name = "uniform"

    def __init__(self, rate: float, seed: int = 1):
        if rate <= 0:
            raise ValueError("rate must be positive")
        self.rate = rate

    def gaps(self) -> Iterator[float]:
        gap = 1.0 / self.rate
        while True:
            yield gap


class BurstArrivals(ArrivalProcess):
    """Bursty arrivals: ``burst`` back-to-back queries, then silence, with
    a long-run average of ``rate`` queries/second.  Stresses the admission
    queue bound and the router's queue-depth signal."""

    name = "burst"

    def __init__(self, rate: float, seed: int = 1, burst: int = 8):
        if rate <= 0:
            raise ValueError("rate must be positive")
        if burst < 1:
            raise ValueError("burst must be >= 1")
        self.rate = rate
        self.burst = burst

    def gaps(self) -> Iterator[float]:
        quiet = self.burst / self.rate
        while True:
            yield quiet
            for _ in range(self.burst - 1):
                yield 0.0


class TraceArrivals(ArrivalProcess):
    """Trace-driven arrivals: an explicit list of absolute arrival times
    (non-decreasing, in simulated seconds).  Finite -- the service stops
    sourcing when the trace is exhausted."""

    name = "trace"

    def __init__(self, times: list[float]):
        if any(b < a for a, b in zip(times, times[1:])):
            raise ValueError("trace times must be non-decreasing")
        if times and times[0] < 0:
            raise ValueError("trace times must be non-negative")
        self.times = list(times)

    @classmethod
    def from_file(cls, path: str | pathlib.Path) -> "TraceArrivals":
        """Parse a trace file: one arrival timestamp per line; blank lines
        and ``#`` comments ignored."""
        times = []
        for line in pathlib.Path(path).read_text().splitlines():
            line = line.split("#", 1)[0].strip()
            if line:
                times.append(float(line))
        return cls(times)

    def gaps(self) -> Iterator[float]:
        prev = 0.0
        for t in self.times:
            yield t - prev
            prev = t


#: CLI-selectable arrival kinds.
ARRIVALS = ("poisson", "uniform", "burst", "trace")


def make_arrivals(
    kind: str,
    rate: float,
    seed: int = 1,
    trace_path: str | None = None,
    burst: int = 8,
) -> ArrivalProcess:
    """Build an arrival process by name (the CLI/benchmark entry point)."""
    if kind == "poisson":
        return PoissonArrivals(rate, seed)
    if kind == "uniform":
        return UniformArrivals(rate, seed)
    if kind == "burst":
        return BurstArrivals(rate, seed, burst=burst)
    if kind == "trace":
        if trace_path is None:
            raise ValueError("trace arrivals need a trace file (--trace)")
        return TraceArrivals.from_file(trace_path)
    raise ValueError(f"unknown arrival process {kind!r} (choose from: {', '.join(ARRIVALS)})")
