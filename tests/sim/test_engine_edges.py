"""Additional edge-case tests for the simulator event loop."""

import pytest

from repro.sim import BLOCK, CPU, IO, SLEEP, Simulator
from repro.sim.machine import DiskSpec, MachineSpec
from repro.sim.task import ThreadState


def make_sim(cores=4):
    return Simulator(
        MachineSpec(cores=cores, hz=1e9, oversub_penalty=0.0, disks=(DiskSpec(bandwidth=100e6),))
    )


class TestRunEdges:
    def test_run_until_pauses_mid_pool(self):
        """run(until=...) stops the clock without losing pool state; a
        second run() finishes the work."""
        sim = make_sim()
        done = []

        def worker():
            yield CPU(2e9)
            done.append(sim.now)

        sim.spawn(worker(), "w")
        assert sim.run(until=1.0) == pytest.approx(1.0)
        assert not done
        sim.run()
        assert done == [pytest.approx(2.0)]

    def test_negative_sleep_clamped(self):
        sim = make_sim()
        times = []

        def worker():
            yield SLEEP(-5.0)
            times.append(sim.now)

        sim.spawn(worker(), "w")
        sim.run()
        assert times == [0.0]

    def test_zero_byte_io_immediate(self):
        sim = make_sim()
        times = []

        def worker():
            yield IO("disk", 0)
            times.append(sim.now)

        sim.spawn(worker(), "w")
        sim.run()
        assert times == [0.0]
        assert sim.disk.bytes_delivered == 0

    def test_call_at_past_rejected(self):
        sim = make_sim()

        def worker():
            yield SLEEP(1.0)
            with pytest.raises(ValueError):
                sim.call_at(0.5, lambda: None)

        sim.spawn(worker(), "w")
        sim.run()

    def test_unblock_non_blocked_thread_is_noop(self):
        sim = make_sim()

        def sleeper():
            yield SLEEP(1.0)

        t = sim.spawn(sleeper(), "s")

        def poker():
            yield SLEEP(0.5)
            assert sim.unblock(t) is False  # sleeping, not blocked

        sim.spawn(poker(), "p")
        sim.run()
        assert t.state is ThreadState.DONE

    def test_double_unblock_delivers_once(self):
        sim = make_sim()
        woke = []

        def waiter():
            got = yield BLOCK
            woke.append((sim.now, got))
            yield SLEEP(1.0)

        t = sim.spawn(waiter(), "w")

        def waker():
            yield SLEEP(0.1)
            assert sim.unblock(t, "first") is True
            assert sim.unblock(t, "second") is False

        sim.spawn(waker(), "k")
        sim.run()
        assert woke == [(pytest.approx(0.1), "first")]

    def test_random_io_flag_charged(self):
        sim = make_sim()

        def worker():
            yield IO("disk", 50e6, False)  # random: 4x inflation

        sim.spawn(worker(), "w")
        end = sim.run()
        assert end == pytest.approx(2.0)  # 50 MB * 4 at 100 MB/s

    def test_spawn_during_run_joins_pools(self):
        sim = make_sim(cores=1)
        ends = {}

        def child():
            yield CPU(1e9)
            ends["child"] = sim.now

        def parent():
            yield CPU(1e9)  # runs alone: finishes at t=1
            ends["parent_mid"] = sim.now
            sim.spawn(child(), "child")
            yield CPU(1e9)  # shares the core with child

        sim.spawn(parent(), "p")
        sim.run()
        assert ends["parent_mid"] == pytest.approx(1.0)
        assert ends["child"] == pytest.approx(3.0)  # both done at 3.0

    def test_avg_metrics_with_explicit_window(self):
        sim = make_sim()

        def worker():
            yield CPU(1e9)
            yield IO("disk", 100e6)

        sim.spawn(worker(), "w")
        sim.run()
        assert sim.avg_cores_used(2.0) == pytest.approx(0.5)
        assert sim.avg_read_mb_per_s(2.0) == pytest.approx(100e6 / (1 << 20) / 2)
