"""repro.shard: a sharded multi-process service tier.

The single-process service (:mod:`repro.server`) scales work *sharing*;
this package scales the **machine**: the fact table is partitioned across
N long-lived worker processes (:mod:`repro.parallel.workers`), each running
its own engine over its own shard, fronted by a scatter/gather distributor
that reuses the server tier's admission semantics (bounded queue, queueing
deadlines, backpressure) and merges per-shard partial aggregates
(:mod:`repro.query.merge`) into answers that are **byte-identical for any
shard count**.  See ``docs/sharding.md`` for the topology, the determinism
contract, and the failure semantics (crash => one retry; stuck shard =>
kill, no retry; both end in structured failures, never hangs).
"""

from repro.shard.metrics import ShardServiceMetrics
from repro.shard.partition import PARTITION_MODES, assign_shards, partition_table, shard_tables
from repro.shard.service import MergedResult, ShardReport, ShardService, serve_sharded
from repro.shard.spec import SHARD_ENGINES, ShardConfig, ShardRequest, ShardResponse
from repro.shard.worker import shard_worker_main

__all__ = [
    "MergedResult",
    "PARTITION_MODES",
    "SHARD_ENGINES",
    "ShardConfig",
    "ShardReport",
    "ShardRequest",
    "ShardResponse",
    "ShardService",
    "ShardServiceMetrics",
    "assign_shards",
    "partition_table",
    "serve_sharded",
    "shard_tables",
    "shard_worker_main",
]
