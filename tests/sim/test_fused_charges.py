"""Fused CPU charges must be *bit-identical* to separate yields.

The simulator's fast path lets a worker yield ``CPU_FUSED(a, b, c)`` instead
of yielding a, b, c in sequence, saving two generator resumes and two event
dispatches.  The GPS pool consumes the parts sequentially -- each part
re-enters the pool at its predecessor's completion instant with its own
cycles, so the float arithmetic (``service + cycles`` per part), the
metrics-charge order, and the pool insertion order all replicate the unfused
sequence exactly.  These tests hold the equivalence to full bit-identity
under contention, oversubscription, and interleaving with I/O and sleeps."""

import pytest

from repro.sim.commands import CPU, CPU_FUSED, SLEEP, CpuCommand
from repro.sim.engine import Simulator
from repro.sim.machine import MachineSpec


class TestFactory:
    def test_single_command_passes_through(self):
        c = CPU(100.0, "joins")
        assert CPU_FUSED(c) is c

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            CPU_FUSED()

    def test_parts_preserved_in_order(self):
        f = CPU_FUSED(CPU(1.0, "a"), CPU(2.0, "b"), CPU(3.0, "c"))
        assert (f.cycles, f.category) == (1.0, "a")
        assert f.rest == ((2.0, "b"), (3.0, "c"))

    def test_nested_fusions_flatten(self):
        inner = CPU_FUSED(CPU(2.0, "b"), CPU(3.0, "c"))
        f = CPU_FUSED(CPU(1.0, "a"), inner, CPU(4.0, "d"))
        assert f.rest == ((2.0, "b"), (3.0, "c"), (4.0, "d"))


def _run(fused: bool, charges_by_thread: list[list[tuple[float, str]]], cores=2):
    """Run one thread per charge list; fused=True yields each list as one
    CPU_FUSED command, else one CPU per charge.  Returns (now, metrics)."""
    sim = Simulator(MachineSpec(cores=cores, hz=1e9))
    finish_times: dict[int, float] = {}

    def worker(tid: int, charges: list[tuple[float, str]]):
        # Stagger starts so pool entries arrive at distinct service levels.
        yield SLEEP(0.001 * tid)
        if fused:
            yield CPU_FUSED(*[CPU(c, cat) for c, cat in charges])
        else:
            for c, cat in charges:
                yield CPU(c, cat)
        finish_times[tid] = sim.now

    for tid, charges in enumerate(charges_by_thread):
        sim.spawn(worker(tid, charges), f"w{tid}", query_id=tid)
    sim.run()
    return sim.now, sim.metrics.to_dict(), finish_times


WORKLOADS = [
    # one thread, simple sequence
    [[(1e6, "scans"), (2e6, "hashing"), (5e5, "joins")]],
    # contention: more threads than cores, uneven charge counts
    [
        [(1e6, "scans"), (3e6, "joins")],
        [(2.5e6, "hashing")],
        [(7e5, "joins"), (7e5, "joins"), (7e5, "joins")],
        [(1.1e6, "aggregation"), (9e5, "misc")],
    ],
    # irrational-ish cycle counts to stress float accumulation
    [
        [(1234567.891, "scans"), (7654321.123, "joins"), (1e3, "locks")],
        [(999999.5, "hashing"), (1000000.5, "hashing")],
        [(3333333.333, "aggregation")] * 3,
    ],
]


@pytest.mark.parametrize("charges", WORKLOADS, ids=["single", "contended", "floats"])
def test_fused_run_is_bit_identical(charges):
    now_u, metrics_u, fin_u = _run(False, charges)
    now_f, metrics_f, fin_f = _run(True, charges)
    assert now_f == now_u  # exact float equality, no approx
    assert fin_f == fin_u
    assert metrics_f == metrics_u


def test_fused_zero_cycle_head_still_enters_pool():
    """A fused command whose head is zero cycles must not take the
    immediate-resume shortcut -- its rest still needs the pool."""
    sim = Simulator(MachineSpec(cores=1, hz=1e9))
    seen = []

    def worker():
        yield CPU_FUSED(CPU(0.0, "misc"), CPU(1e9, "joins"))
        seen.append(sim.now)

    sim.spawn(worker(), "w")
    sim.run()
    assert seen == [pytest.approx(1.0)]
    assert sim.metrics.to_dict()["cpu_cycles_by_category"]["joins"] == 1e9


def test_fused_charges_attribute_to_thread_query():
    sim = Simulator(MachineSpec(cores=4, hz=1e9))

    def worker():
        yield CPU_FUSED(CPU(5e5, "scans"), CPU(5e5, "scans"))

    sim.spawn(worker(), "w", query_id=7)
    sim.run()
    assert sim.metrics.cpu_cycles_by_query[(7, "scans")] == 1e6


def test_rest_is_plain_data():
    """rest entries are (cycles, category) pairs, so fused commands stay
    hashable/frozen like any CpuCommand."""
    f = CPU_FUSED(CPU(1.0, "a"), CPU(2.0, "b"))
    assert isinstance(f, CpuCommand)
    hash(f)
