"""Tests for the metrics accumulator."""

import pytest

from repro.sim.metrics import CATEGORIES, Metrics


class TestMetrics:
    def test_categories_match_paper_legend(self):
        assert CATEGORIES == ("hashing", "joins", "aggregation", "scans", "locks", "misc")

    def test_charge_cpu_accumulates_by_category_and_query(self):
        m = Metrics()
        m.charge_cpu(100, "hashing", 1)
        m.charge_cpu(50, "hashing", 2)
        m.charge_cpu(25, "joins", 1)
        assert m.cpu_cycles_by_category["hashing"] == 150
        assert m.cpu_cycles_by_query[(1, "hashing")] == 100
        assert m.cpu_cycles_by_query[(2, "hashing")] == 50
        assert m.cpu_cycles_by_query[(1, "joins")] == 25

    def test_cpu_seconds_conversion(self):
        m = Metrics()
        m.charge_cpu(2e9, "scans", None)
        secs = m.cpu_seconds_by_category(1e9)
        assert secs["scans"] == pytest.approx(2.0)
        assert secs["joins"] == 0.0
        assert set(secs) == set(CATEGORIES)
        assert m.total_cpu_seconds(1e9) == pytest.approx(2.0)

    def test_sharing_and_counters(self):
        m = Metrics()
        m.record_sharing("join:hj1")
        m.record_sharing("join:hj1", 3)
        m.add_duration("cjoin_admission", 0.5)
        m.add_duration("cjoin_admission", 0.25)
        m.bump("bp_hit")
        m.bump("bp_hit", 2)
        assert m.sharing_events["join:hj1"] == 4
        assert m.durations["cjoin_admission"] == pytest.approx(0.75)
        assert m.counts["bp_hit"] == 3
