#!/usr/bin/env python3
"""When should an execution engine share?  (paper Section 5 in miniature)

Sweeps concurrency for the paper's five engine configurations over random
SSB Q3.2 instances and prints the response-time matrix -- watch the winner
flip from query-centric operators (+SP) at low concurrency to the global
query plan (+SP) at high concurrency, the paper's Table 1 rules of thumb.

    python examples/sharing_showdown.py
"""

from repro.bench.runner import run_batch
from repro.bench.workload import q32_random_workload
from repro.data import generate_ssb
from repro.engine import CJOIN, CJOIN_SP, QPIPE, QPIPE_CS, QPIPE_SP
from repro.storage import StorageConfig

CONFIGS = (QPIPE, QPIPE_CS, QPIPE_SP, CJOIN, CJOIN_SP)


def main() -> None:
    dataset = generate_ssb(sf=1.0, seed=42)
    storage = StorageConfig(resident="memory")
    levels = (1, 8, 32, 256)
    print("SSB Q3.2, random predicates (low similarity), memory-resident SF=1")
    print("mean response time in simulated seconds:\n")
    header = f"{'queries':>8s}" + "".join(f"{c.name:>12s}" for c in CONFIGS)
    print(header)
    for n in levels:
        workload = q32_random_workload(n, seed=42)
        row = f"{n:8d}"
        best_name, best_rt = None, float("inf")
        for config in CONFIGS:
            r = run_batch(dataset.tables, config, workload, storage)
            row += f"{r.mean_response:12.2f}"
            if r.mean_response < best_rt:
                best_name, best_rt = config.name, r.mean_response
        print(f"{row}   <- best: {best_name}")

    print("\nPaper Table 1 (what the sweep above should show):")
    print("  low concurrency  -> query-centric operators + SP (QPipe-CS/QPipe-SP)")
    print("  high concurrency -> GQP shared operators + SP (CJOIN/CJOIN-SP)")
    print("  I/O layer        -> shared (circular) scans, always")


if __name__ == "__main__":
    main()
