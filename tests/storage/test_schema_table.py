"""Tests for schemas, pages and tables."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.storage.page import Batch
from repro.storage.schema import Column, Schema
from repro.storage.table import Table


def make_schema():
    return Schema([Column("a"), Column("b", "float"), Column("c", "str")], row_bytes=24)


class TestSchema:
    def test_index_lookup(self):
        s = make_schema()
        assert s.index("a") == 0
        assert s.index("c") == 2
        assert s.indices(["c", "a"]) == (2, 0)

    def test_unknown_column(self):
        with pytest.raises(KeyError, match="no column"):
            make_schema().index("zz")

    def test_duplicate_names_rejected(self):
        with pytest.raises(ValueError, match="duplicate"):
            Schema([Column("a"), Column("a")])

    def test_bad_kind_rejected(self):
        with pytest.raises(ValueError):
            Column("a", "blob")

    def test_contains(self):
        s = make_schema()
        assert "b" in s
        assert "zz" not in s

    def test_project(self):
        s = make_schema()
        p = s.project(["c", "a"])
        assert p.names == ("c", "a")
        assert p.row_bytes == pytest.approx(16)

    def test_concat(self):
        s1 = Schema([Column("a")], row_bytes=10)
        s2 = Schema([Column("b")], row_bytes=20)
        j = s1.concat(s2)
        assert j.names == ("a", "b")
        assert j.row_bytes == 30

    def test_concat_collision_rejected(self):
        s = Schema([Column("a")])
        with pytest.raises(ValueError):
            s.concat(s)

    def test_equality_and_hash(self):
        assert make_schema() == make_schema()
        assert hash(make_schema()) == hash(make_schema())


class TestTable:
    def test_paging(self):
        s = Schema([Column("x")], row_bytes=10)
        t = Table("t", s, [(i,) for i in range(10)], row_weight=100, tuples_per_page=4)
        assert t.num_pages == 3
        assert [len(p) for p in t.pages] == [4, 4, 2]
        assert t.page(1).rows[0] == (4,)
        assert list(t.iter_rows()) == [(i,) for i in range(10)]

    def test_real_accounting(self):
        s = Schema([Column("x")], row_bytes=10)
        t = Table("t", s, [(i,) for i in range(10)], row_weight=100)
        assert t.real_rows == 1000
        assert t.real_bytes == pytest.approx(10 * 100 * 10)

    def test_arity_mismatch(self):
        s = Schema([Column("x"), Column("y")])
        with pytest.raises(ValueError, match="arity"):
            Table("t", s, [(1,)])

    def test_invalid_params(self):
        s = Schema([Column("x")])
        with pytest.raises(ValueError):
            Table("t", s, [], row_weight=0)
        with pytest.raises(ValueError):
            Table("t", s, [], tuples_per_page=0)

    @settings(max_examples=30, deadline=None)
    @given(n=st.integers(0, 500), tpp=st.integers(1, 64))
    def test_paging_roundtrip(self, n, tpp):
        s = Schema([Column("x")])
        t = Table("t", s, [(i,) for i in range(n)], tuples_per_page=tpp)
        assert sum(len(p) for p in t.pages) == n
        assert t.num_pages == ((n + tpp - 1) // tpp if n else 0)
        assert list(t.iter_rows()) == [(i,) for i in range(n)]
        for i, p in enumerate(t.pages):
            assert p.index == i


class TestBatch:
    def test_copy_is_shallow_and_independent(self):
        b = Batch([(1,), (2,)], weight=10)
        c = b.copy()
        c.rows.append((3,))
        assert len(b) == 2
        assert len(c) == 3
        assert c.weight == 10
