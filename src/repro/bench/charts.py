"""ASCII line charts for experiment series.

The paper's figures are mostly response-time-vs-concurrency plots, often on
a log scale.  ``render_chart`` draws the same series as a terminal chart so
a full figure (table + plot) can be read straight from the benchmark
output::

    Figure 10 (memory): response time (s)
    3365.0 |                                             Q
           |
     379.1 |                                             C
           |
      42.7 |                              Q
           |                              C  S
       4.8 |                           S  J  J        J
           | QCSJ     QCS  J  QCS  J
       0.5 +----------------------------------------------
             1        4        16       64       256

Pure text, no dependencies; used by the CLI's ``experiment --chart`` flag
and importable for notebooks/scripts.
"""

from __future__ import annotations

import math
from typing import Sequence


#: keys an experiment's data dict may use for its x axis, in priority order.
_X_KEYS = ("concurrency", "selectivities", "scale_factors", "plans", "delays", "max_pages", "clients")


def chart_for(result) -> str | None:
    """Best-effort chart for an :class:`ExperimentResult`: plots its ``rt``
    series against whichever x-axis key its data carries.  Returns None when
    the result has no chartable series."""
    data = getattr(result, "data", None)
    if not isinstance(data, dict):
        return None
    rt = data.get("rt")
    if not isinstance(rt, dict):
        return None
    series = {k: v for k, v in rt.items() if isinstance(v, (list, tuple)) and v}
    if not series:
        return None
    n = len(next(iter(series.values())))
    series = {k: v for k, v in series.items() if len(v) == n}
    xs = None
    for key in _X_KEYS:
        candidate = data.get(key)
        if isinstance(candidate, (list, tuple)) and len(candidate) == n:
            xs = candidate
            break
    if xs is None:
        xs = list(range(n))
    return render_chart(f"{result.experiment}: response time (s)", xs, series)


def _ticks(lo: float, hi: float, rows: int, log: bool) -> list[float]:
    if log:
        llo, lhi = math.log10(lo), math.log10(hi)
        return [10 ** (llo + (lhi - llo) * i / (rows - 1)) for i in range(rows)]
    return [lo + (hi - lo) * i / (rows - 1) for i in range(rows)]


def render_chart(
    title: str,
    xs: Sequence[float | int | str],
    series: dict[str, Sequence[float]],
    height: int = 12,
    width: int = 64,
    log_y: bool = True,
) -> str:
    """Render named series as an ASCII chart.

    Each series is plotted with the first letter of its name (collisions
    get successive letters); a legend maps markers back to names.  The y
    axis is log-scale by default (most paper figures are)."""
    if not series:
        raise ValueError("no series to plot")
    n = len(xs)
    for name, ys in series.items():
        if len(ys) != n:
            raise ValueError(f"series {name!r} length {len(ys)} != x length {n}")
    values = [y for ys in series.values() for y in ys if y is not None]
    if not values:
        raise ValueError("series contain no values")
    lo, hi = min(values), max(values)
    if log_y:
        lo = max(lo, 1e-9)
        hi = max(hi, lo * 1.0001)
    elif hi == lo:
        hi = lo + 1.0

    # Assign a unique marker per series.
    markers: dict[str, str] = {}
    used: set[str] = set()
    for name in series:
        for ch in name + "abcdefghijklmnopqrstuvwxyz":
            if ch.isalnum() and ch.upper() not in used:
                markers[name] = ch.upper()
                used.add(ch.upper())
                break

    rows = height
    grid = [[" "] * width for _ in range(rows)]
    xpos = [int(i * (width - 1) / max(n - 1, 1)) for i in range(n)]

    def yrow(v: float) -> int:
        if log_y:
            frac = (math.log10(max(v, lo)) - math.log10(lo)) / (
                math.log10(hi) - math.log10(lo)
            )
        else:
            frac = (v - lo) / (hi - lo)
        frac = min(max(frac, 0.0), 1.0)
        return rows - 1 - int(round(frac * (rows - 1)))

    for name, ys in series.items():
        m = markers[name]
        for i, v in enumerate(ys):
            if v is None:
                continue
            r, c = yrow(v), xpos[i]
            grid[r][c] = m if grid[r][c] == " " else "*"

    # y-axis labels at a few tick rows.
    tick_rows = {0, rows // 2, rows - 1}
    label_vals = _ticks(lo, hi, rows, log_y)
    lines = [title]
    for r in range(rows):
        v = label_vals[rows - 1 - r]
        label = f"{v:9.3g} |" if r in tick_rows else " " * 9 + " |"
        lines.append(label + "".join(grid[r]))
    lines.append(" " * 10 + "+" + "-" * width)
    # x labels spread along the axis (buffer padded so the last label fits).
    xlabel = [" "] * (width + 11 + max(len(str(x)) for x in xs))
    for i, x in enumerate(xs):
        s = str(x)
        start = 11 + xpos[i]
        for j, ch in enumerate(s):
            if start + j < len(xlabel):
                xlabel[start + j] = ch
    lines.append("".join(xlabel).rstrip())
    legend = "   ".join(f"{markers[name]}={name}" for name in series)
    lines.append(f"{'':9s}  [{legend}]  ('*' = overlap)")
    return "\n".join(lines)
