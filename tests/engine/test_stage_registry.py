"""Stage registry semantics and engine error paths."""

import pytest

from repro.baselines import evaluate_plan
from repro.data import generate_ssb
from repro.engine import QPIPE, QPIPE_SP, QPipeEngine
from repro.query.expr import Cmp
from repro.query.plan import ScanNode, SelectNode
from repro.query.ssb_queries import q32
from repro.sim import Simulator
from repro.sim.commands import SLEEP
from repro.sim.costmodel import DEFAULT_COST_MODEL
from repro.sim.machine import MachineSpec
from repro.storage import StorageConfig, StorageManager


@pytest.fixture(scope="module")
def ssb():
    return generate_ssb(0.5, seed=41)


def norm(rows):
    return sorted(
        tuple(round(v, 6) if isinstance(v, float) else v for v in row) for row in rows
    )


def make_engine(ssb, config=QPIPE_SP):
    sim = Simulator(MachineSpec())
    storage = StorageManager(sim, DEFAULT_COST_MODEL, ssb.tables, StorageConfig(resident="memory"))
    return sim, QPipeEngine(sim, storage, config)


class TestRegistry:
    def test_new_host_replaces_expired_one(self, ssb):
        """When the first host's step WoP closes, the next identical packet
        becomes the new host and subsequent arrivals share with *it*."""
        spec = q32("CHINA", "FRANCE", 1993, 1996)
        oracle = norm(evaluate_plan(spec.to_query_centric_plan(ssb.tables)))
        sim, eng = make_engine(ssb)
        h1 = eng.submit(spec)
        late = {}

        def late_pair():
            yield from h1.wait()  # first host finished: WoP long closed
            late["a"] = eng.submit(spec)  # becomes the new host
            late["b"] = eng.submit(spec)  # shares with the new host
            yield SLEEP(0)

        sim.spawn(late_pair(), "late")
        sim.run()
        assert norm(late["a"].results) == oracle
        assert norm(late["b"].results) == oracle
        # Exactly one sharing event: b attached to a (not to the dead h1).
        assert eng.sharing_summary().get("join:hj3", 0) == 1

    def test_registry_empty_without_sp(self, ssb):
        sim, eng = make_engine(ssb, QPIPE)
        eng.submit(q32("CHINA", "FRANCE", 1993, 1996))
        sim.run()
        assert eng.join_stage._registry == {}

    def test_stage_counters(self, ssb):
        spec = q32("CHINA", "FRANCE", 1993, 1996)
        sim, eng = make_engine(ssb)
        for _ in range(3):
            eng.submit(spec)
        sim.run()
        assert eng.join_stage.packets_shared == 2
        assert eng.scan_stage.packets_admitted >= 4  # fact + 3 dims (host only)


class TestErrorPaths:
    def test_select_rooted_plan_rejected(self, ssb):
        sim, eng = make_engine(ssb)
        plan = SelectNode(ScanNode(ssb.customer), Cmp("=", "c_nation", "CHINA"))
        with pytest.raises(ValueError, match="rooted"):
            eng.submit_plan(plan)

    def test_cjoin_plan_without_cjoin_engine(self, ssb):
        spec = q32("CHINA", "FRANCE", 1993, 1996)
        plan = spec.to_gqp_plan(ssb.tables)
        sim, eng = make_engine(ssb, QPIPE_SP)
        with pytest.raises(RuntimeError, match="use_cjoin"):
            eng.submit_plan(plan)

    def test_unknown_plan_node_rejected(self, ssb):
        class Weird:
            signature = ("weird",)
            children = ()

        sim, eng = make_engine(ssb)
        with pytest.raises(TypeError):
            eng._build(Weird(), None)
