#!/usr/bin/env python
"""Shard-tier scaling benchmark: throughput vs shard count.

Serves one fixed seeded workload (random SSB Q3.2 instances under a
saturating uniform arrival stream) on the sharded service tier at
increasing shard counts and reports simulated throughput, latency
percentiles, scatter/gather overhead and straggler attribution per point.

Asserted invariants (the shard tier's contract):

* **determinism** -- the merged result fingerprints are byte-identical at
  EVERY shard count (exact partial aggregation + associative merge +
  canonical ordering);
* **scaling** -- completed-queries-per-simulated-second increases
  monotonically from 1 shard up through the sweep (the arrival rate
  saturates a single shard, so extra shards shorten the drain window).

All measurements are simulated seconds composed on the virtual timeline;
worker processes execute for real, but no wall clock reaches
``BENCH_shard_scaling.json``, so the artifact is stable across hosts.

Usage::

    python benchmarks/bench_shard_scaling.py --fast    # CI smoke: 1,2 shards
    python benchmarks/bench_shard_scaling.py --full    # 1,2,4,8 shards
"""

from __future__ import annotations

import argparse
import json
import pathlib
import sys

sys.path.insert(0, str(pathlib.Path(__file__).resolve().parent.parent / "src"))

from repro.bench.reporting import format_table
from repro.shard import serve_sharded

ROOT = pathlib.Path(__file__).resolve().parent.parent
OUT_PATH = ROOT / "BENCH_shard_scaling.json"

SF = 0.2
SEED = 42
#: saturating for a single shard at SF 0.2: the drain window, not the
#: arrival process, bounds throughput, so shards translate into q/s.
RATE = 50.0
DURATION = 2.0
FAST_SHARDS = (1, 2)
FULL_SHARDS = (1, 2, 4, 8)


def sweep(shard_counts: tuple[int, ...]):
    return {
        n: serve_sharded(
            n,
            arrival="uniform",
            rate=RATE,
            duration=DURATION,
            seed=SEED,
            workload="q32-random",
            sf=SF,
        )
        for n in shard_counts
    }


def render(reports) -> str:
    rows = []
    for n, r in sorted(reports.items()):
        m = r.metrics
        lat = m.latency_percentiles()
        stragglers = "/".join(
            str(m.straggler_counts.get(i, 0)) for i in range(n)
        )
        rows.append(
            [
                n,
                m.completed,
                f"{r.throughput_qps:.3f}",
                f"{lat['p50']:.3f}",
                f"{lat['p95']:.3f}",
                f"{m.scatter_overhead_s + m.gather_overhead_s:.3f}",
                f"{m.peak_shard_backlog_s:.2f}",
                stragglers,
            ]
        )
    return format_table(
        f"shard scaling: q32-random @ {RATE}/s uniform, sf={SF}",
        ["shards", "done", "q/s", "p50 (s)", "p95 (s)", "ovh (s)", "peak bklg", "stragglers"],
        rows,
    )


def check(reports) -> None:
    counts = sorted(reports)
    base = reports[counts[0]].fingerprint_lines()
    for n in counts[1:]:
        assert reports[n].fingerprint_lines() == base, (
            f"{n}-shard fingerprints differ from {counts[0]}-shard"
        )
    qps = [reports[n].throughput_qps for n in counts]
    for (a, qa), (b, qb) in zip(zip(counts, qps), zip(counts[1:], qps[1:])):
        assert qb > qa, f"throughput fell from {qa:.3f} q/s @{a} to {qb:.3f} q/s @{b}"
    for n in counts:
        m = reports[n].metrics
        assert m.failed == 0, f"{m.failed} structured failures at {n} shards"
        assert m.completed + m.timed_out == m.admitted, "run did not drain"


def to_artifact(reports) -> dict:
    """Simulated measurements only -- stable across hosts and runs."""
    out: dict = {
        "sf": SF,
        "seed": SEED,
        "rate": RATE,
        "duration": DURATION,
        "workload": "q32-random",
        "points": {},
    }
    for n, r in sorted(reports.items()):
        m = r.metrics
        lat = m.latency_percentiles()
        out["points"][str(n)] = {
            "completed": m.completed,
            "throughput_qps": round(r.throughput_qps, 6),
            "sim_seconds": round(r.sim_seconds, 6),
            "latency_p50_s": round(lat["p50"], 6),
            "latency_p95_s": round(lat["p95"], 6),
            "scatter_overhead_s": round(m.scatter_overhead_s, 6),
            "gather_overhead_s": round(m.gather_overhead_s, 6),
            "prewarm_scatter_s": round(m.prewarm_scatter_s, 6),
            "partition_shipped_bytes": sum(
                s["shipped_bytes"] for s in m.partition_shipping.values()
            ),
            "peak_shard_backlog_s": round(m.peak_shard_backlog_s, 6),
            "stragglers": {str(k): v for k, v in sorted(m.straggler_counts.items())},
            "result_digest": r.fingerprint_lines()[-1].split()[1] if r.results else "",
        }
    base = min(reports)
    out["speedup"] = {
        str(n): round(reports[n].throughput_qps / reports[base].throughput_qps, 4)
        for n in sorted(reports)
    }
    return out


def bench_shard_scaling(once, save_report, full_mode):
    """pytest-benchmark entry point (see conftest.py)."""
    reports = once(sweep, FULL_SHARDS if full_mode else FAST_SHARDS)
    save_report("shard_scaling", render(reports))
    check(reports)


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[1])
    mode = parser.add_mutually_exclusive_group()
    mode.add_argument("--fast", action="store_true", help="CI smoke: shards 1,2 (default)")
    mode.add_argument("--full", action="store_true", help="full sweep: shards 1,2,4,8")
    parser.add_argument("--out", type=pathlib.Path, default=OUT_PATH,
                        help=f"artifact path (default {OUT_PATH.name} at repo root)")
    args = parser.parse_args(argv)

    reports = sweep(FULL_SHARDS if args.full else FAST_SHARDS)
    print(render(reports))
    check(reports)
    args.out.write_text(json.dumps(to_artifact(reports), indent=1, sort_keys=True) + "\n")
    print(f"wrote {args.out}")
    print("OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
