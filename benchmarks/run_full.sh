#!/bin/sh
# Paper-scale sweeps (REPRO_FULL=1), one figure at a time so partial
# progress is preserved. Logs to benchmarks/out/full_run.log.
cd /root/repo
for f in fig6_push_vs_pull fig11_selectivity fig10_concurrency fig12_selectivity_conc \
         fig13_scalefactor fig14_similarity fig15_plans fig16_mix; do
  echo "=== $f start $(date +%T) ===" >> benchmarks/out/full_run.log
  REPRO_FULL=1 python -m pytest "benchmarks/bench_${f}.py" --benchmark-only \
      -p no:cacheprovider -q >> benchmarks/out/full_run.log 2>&1
  echo "=== $f done $(date +%T) rc=$? ===" >> benchmarks/out/full_run.log
done
echo "=== ALL FULL RUNS COMPLETE ===" >> benchmarks/out/full_run.log
