"""Property suite for the columnar data plane.

Holds the two invariants the whole columnar-pages fast path rests on, over
*arbitrary* generated inputs:

* **Round trip** -- a table built from rows exposes exactly the transposed
  column vectors, a table built from columns exposes exactly the zipped
  row tuples, and the page-level dual caches agree in both directions.
* **Kernel equivalence** -- for any schema, predicate and data,
  ``Expr.compile_cols`` pass positions equal the positions row-at-a-time
  ``Expr.compile`` evaluation keeps, in the same order, both on full
  columns and when refining a prior selection vector.

Plus the mask helpers (selection vector <-> int bitmap) and the shard
partitioner's row/columnar layout equivalence, which reduce to the same
two invariants.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.query.expr import And, Between, Cmp, InSet, Not, Or
from repro.shard.partition import partition_table
from repro.storage.page import ColumnPage, full_mask, mask_to_sel, sel_to_mask
from repro.storage.schema import Column, Schema
from repro.storage.table import Table

# ----------------------------------------------------------------------
# Strategies: small-int relations over a fixed 3-column schema (values
# collide often, so equality/set predicates exercise real selections).
# ----------------------------------------------------------------------
SCHEMA = Schema([Column("a"), Column("b"), Column("c")], row_bytes=24)

rows_strategy = st.lists(
    st.tuples(
        st.integers(0, 9), st.integers(-5, 5), st.integers(0, 3)
    ),
    max_size=120,
)

values = st.integers(-6, 10)
col_names = st.sampled_from(["a", "b", "c"])


def leaf_predicates():
    cmps = st.builds(
        Cmp, st.sampled_from(["<", "<=", "=", "!=", ">=", ">"]), col_names, values
    )
    betweens = st.builds(
        lambda c, lo, span: Between(c, lo, lo + span),
        col_names,
        values,
        st.integers(0, 6),
    )
    insets = st.builds(
        lambda c, vs: InSet(c, tuple(vs)),
        col_names,
        st.lists(values, min_size=1, max_size=4),
    )
    return st.one_of(cmps, betweens, insets)


predicates = st.recursive(
    leaf_predicates(),
    lambda inner: st.one_of(
        st.lists(inner, min_size=1, max_size=3).map(lambda ps: And(*ps)),
        st.lists(inner, min_size=1, max_size=3).map(lambda ps: Or(*ps)),
        inner.map(Not),
    ),
    max_leaves=5,
)


# ----------------------------------------------------------------------
# Row <-> column round trip
# ----------------------------------------------------------------------
@settings(max_examples=60, deadline=None)
@given(rows=rows_strategy, tpp=st.integers(1, 17))
def test_row_built_table_round_trips_through_columns(rows, tpp):
    table = Table("t", SCHEMA, rows, tuples_per_page=tpp)
    expected_cols = tuple(list(c) for c in zip(*rows)) if rows else ((), (), ())
    assert tuple(list(c) for c in table.columns()) == tuple(
        list(c) for c in expected_cols
    )
    assert list(table.iter_rows()) == rows


@settings(max_examples=60, deadline=None)
@given(rows=rows_strategy, tpp=st.integers(1, 17))
def test_column_built_table_round_trips_through_rows(rows, tpp):
    cols = tuple(list(c) for c in zip(*rows)) if rows else ([], [], [])
    table = Table.from_columns("t", SCHEMA, cols, tuples_per_page=tpp)
    assert list(table.iter_rows()) == rows
    assert table.num_rows == len(rows)
    # Page structure (counts, weights, bytes) matches the row constructor.
    row_table = Table("t", SCHEMA, rows, tuples_per_page=tpp)
    assert table.num_pages == row_table.num_pages
    for cp, rp in zip(table.pages, row_table.pages):
        assert list(cp.rows) == list(rp.rows)
        assert tuple(map(list, cp.columns)) == tuple(map(list, rp.columns))
        assert cp.real_bytes == rp.real_bytes
        assert cp.weight == rp.weight


@settings(max_examples=60, deadline=None)
@given(rows=st.lists(st.tuples(st.integers(), st.integers()), min_size=1, max_size=40))
def test_page_dual_cache_agrees_both_directions(rows):
    # min_size=1: a rowless page cannot reconstruct column arity (the
    # table layer always knows it from the schema, pages need the data).
    schema_cols = tuple(zip(*rows)) if rows else ((), ())
    from_rows = ColumnPage("t", 0, rows=list(rows), weight=1.0, real_bytes=0.0)
    from_cols = ColumnPage(
        "t", 0, rows=None, weight=1.0, real_bytes=0.0, columns=schema_cols
    )
    assert tuple(map(tuple, from_rows.columns)) == tuple(map(tuple, schema_cols))
    assert list(from_cols.rows) == rows
    assert len(from_rows) == len(from_cols) == len(rows)


# ----------------------------------------------------------------------
# Column kernels == row-wise predicates
# ----------------------------------------------------------------------
@settings(max_examples=120, deadline=None)
@given(rows=rows_strategy, expr=predicates)
def test_column_kernel_pass_positions_equal_row_wise(rows, expr):
    kernel = expr.compile_cols(SCHEMA)
    if kernel is None:  # shape has no column form; callers fall back
        return
    pred = expr.compile(SCHEMA)
    cols = tuple(zip(*rows)) if rows else ((), (), ())
    expected = [j for j, r in enumerate(rows) if pred(r)]
    assert kernel(cols.__getitem__, len(rows)) == expected


@settings(max_examples=120, deadline=None)
@given(rows=rows_strategy, expr=predicates, data=st.data())
def test_column_kernel_refines_selection_like_row_wise(rows, expr, data):
    kernel = expr.compile_cols(SCHEMA)
    if kernel is None:
        return
    pred = expr.compile(SCHEMA)
    keep = data.draw(st.lists(st.booleans(), min_size=len(rows), max_size=len(rows)))
    sel = [j for j, k in enumerate(keep) if k]
    cols = tuple(zip(*rows)) if rows else ((), (), ())
    expected = [j for j in sel if pred(rows[j])]
    assert kernel(cols.__getitem__, len(rows), sel) == expected


@settings(max_examples=120, deadline=None)
@given(rows=rows_strategy, expr=predicates)
def test_batch_kernel_positions_equal_row_wise(rows, expr):
    idx_kernel = expr.compile_batch(SCHEMA, indices=True)
    row_kernel = expr.compile_batch(SCHEMA)
    pred = expr.compile(SCHEMA)
    expected_idx = [j for j, r in enumerate(rows) if pred(r)]
    assert idx_kernel(rows) == expected_idx
    assert list(row_kernel(rows)) == [rows[j] for j in expected_idx]


# ----------------------------------------------------------------------
# Mask helpers
# ----------------------------------------------------------------------
@settings(max_examples=80, deadline=None)
@given(data=st.data(), n=st.integers(0, 80))
def test_sel_mask_round_trip(data, n):
    keep = data.draw(st.lists(st.booleans(), min_size=n, max_size=n))
    sel = [j for j, k in enumerate(keep) if k]
    mask = sel_to_mask(sel)
    assert mask_to_sel(mask, n) == sel
    assert mask & full_mask(n) == mask
    assert mask_to_sel(full_mask(n), n) == list(range(n))


# ----------------------------------------------------------------------
# Shard partitioning: columnar build == row build
# ----------------------------------------------------------------------
@settings(max_examples=40, deadline=None)
@given(
    rows=rows_strategy,
    n_shards=st.integers(1, 5),
    mode=st.sampled_from(["hash", "range"]),
    salt=st.integers(0, 3),
)
def test_partition_layouts_hold_identical_rows(rows, n_shards, mode, salt):
    table = Table("fact", SCHEMA, rows, tuples_per_page=7)
    row_parts = partition_table(table, n_shards, mode, salt, columnar=False)
    col_parts = partition_table(table, n_shards, mode, salt, columnar=True)
    assert len(row_parts) == len(col_parts) == n_shards
    for rp, cp in zip(row_parts, col_parts):
        assert list(cp.iter_rows()) == list(rp.iter_rows())
        assert cp.num_pages == rp.num_pages
        assert cp.real_bytes == rp.real_bytes
        assert cp.row_weight == rp.row_weight
