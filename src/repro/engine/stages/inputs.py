"""Consumer-side input wrapper: read + fused selection.

Selections never get their own packets (see :mod:`repro.query.plan`); the
consuming operator reads its input through a :class:`FilteredInput`, which
charges the consumer's per-tuple read cost and -- when the input was wrapped
in SelectNodes -- evaluates the fused predicate, charging per predicate
term.  Keeping predicate evaluation on the *consumer* side is what lets a
raw circular scan be shared by queries with different predicates.

Selection runs through the predicate's batch kernel
(:meth:`repro.query.expr.Expr.compile_batch`) -- one call per batch instead
of one closure call per row -- and the read + predicate cycle charges are
fused into a single simulator event.  Both are pure wall-clock
optimizations: the selected rows, the charged cycles, and every simulated
tick are identical to the row-at-a-time path (``batch=False``,
``fuse=False``)."""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Iterator

from repro.engine.exchange import END
from repro.query.expr import And, Expr
from repro.query.plan import PlanNode, SelectNode
from repro.sim.commands import CPU_FUSED
from repro.storage.page import Batch, ColumnBatch

if TYPE_CHECKING:  # pragma: no cover
    from repro.sim.costmodel import CostModel


def unwrap_selects(node: PlanNode) -> tuple[PlanNode, Expr | None]:
    """Strip a chain of SelectNodes, folding predicates into one conjunction
    (outermost select evaluated last, matching plan semantics)."""
    predicate: Expr | None = None
    while isinstance(node, SelectNode):
        predicate = node.predicate if predicate is None else And(node.predicate, predicate)
        node = node.child
    return node, predicate


class FilteredInput:
    """A reader plus an optional fused predicate."""

    def __init__(
        self,
        reader: Any,
        cost: "CostModel",
        predicate: Expr | None,
        schema,
        charge_read: bool = True,
        batch: bool = True,
        fuse: bool = True,
    ):
        self.reader = reader
        self.cost = cost
        self.schema = schema
        self.charge_read = charge_read
        self.fuse = fuse
        self.terms = predicate.terms if predicate is not None else 0
        # Fast mode: an SPL reader hands us its per-page read charge to
        # fuse in front of whatever we yield next (everything between is
        # pure computation, so the fused parts complete at exactly the
        # instants the separate yields would have).
        self._deferred_charge = None
        self._lock_prepay = None
        if fuse and hasattr(reader, "defer_read_charge"):
            self._deferred_charge = reader.defer_read_charge()
            self._lock_prepay = reader.prepay_lock_charge()
        # Column kernel: used when the incoming batch is a ColumnBatch
        # (selection = shrinking the selection vector, no row rebuild).
        # Predicate shapes without a column form fall back to the row
        # kernel over the batch's materialized rows.
        self._col_kernel = None
        self._mask_kernel = None
        if predicate is None:
            self._pred = None
            self._kernel = None
        elif batch:
            self._pred = None
            self._kernel = predicate.compile_batch(schema)
            self._col_kernel = predicate.compile_cols(schema)
            self._mask_kernel = predicate.compile_mask(schema)
        else:
            pred = predicate.compile(schema)
            self._pred = pred
            self._kernel = lambda rows: [r for r in rows if pred(r)]

    def _filter(self, batch) -> Any:
        """Apply the fused predicate to one non-empty batch (pure Python --
        the caller charges the cycles).

        Dispatch order: bitmap kernel (dictionary-encoded page views --
        per-column predicate masks are memoized, so recurring predicates
        across concurrent queries AND cached ints), then selection-vector
        column kernel, then the row kernel.  All three keep exactly the
        same survivors in the same order."""
        if isinstance(batch, ColumnBatch):
            mk = self._mask_kernel
            if mk is not None and batch.sel is None:
                # Page view: columns are the base vectors (mask bit p ==
                # base row p); selected batches gather their columns, so
                # the mask probe would materialize them only to fall back.
                m = mk(batch.column, len(batch))
                if m is not None:
                    return batch.take_mask(m)
            ck = self._col_kernel
            if ck is not None:
                return batch.take(ck(batch.column, len(batch)))
        return Batch(self._kernel(batch.rows), batch.weight)

    def read(self) -> Iterator[Any]:
        """Next (filtered) batch, or END."""
        batch = yield from self.reader.read()
        if batch is END:
            return END
        rc = self._deferred_charge
        n = len(batch)
        if self._kernel is None or n == 0:
            if self.charge_read and n:
                read_cmd = self.cost.read(n, batch.weight)
                yield CPU_FUSED(rc, read_cmd) if rc is not None else read_cmd
            elif rc is not None:
                yield rc
            return batch
        if self.charge_read:
            read_cmd = self.cost.read(n, batch.weight)
            pred_cmd = self.cost.predicate(n, batch.weight, max(self.terms, 1))
            if rc is not None:
                yield CPU_FUSED(rc, read_cmd, pred_cmd)
            elif self.fuse:
                yield CPU_FUSED(read_cmd, pred_cmd)
            else:
                yield read_cmd
                yield pred_cmd
        else:
            pred_cmd = self.cost.predicate(n, batch.weight, max(self.terms, 1))
            yield CPU_FUSED(rc, pred_cmd) if rc is not None else pred_cmd
        return self._filter(batch)

    def read_fused(self) -> Iterator[Any]:
        """Fast mode: like :meth:`read`, but hand the per-batch charge back
        to the caller as ``(batch, cmd)`` instead of yielding it.  The
        caller must fuse ``cmd`` (when not None) in front of the very next
        CPU command it yields, before reading again -- everything in
        between must be pure computation.  ``(END, None)`` closes the
        stream; END never carries a charge."""
        batch = yield from self.reader.read()
        if batch is END:
            return END, None
        rc = self._deferred_charge
        n = len(batch)
        if self._kernel is None or n == 0:
            if self.charge_read and n:
                read_cmd = self.cost.read(n, batch.weight)
                return batch, (CPU_FUSED(rc, read_cmd) if rc is not None else read_cmd)
            return batch, rc
        if self.charge_read:
            read_cmd = self.cost.read(n, batch.weight)
            pred_cmd = self.cost.predicate(n, batch.weight, max(self.terms, 1))
            cmd = (
                CPU_FUSED(rc, read_cmd, pred_cmd)
                if rc is not None
                else CPU_FUSED(read_cmd, pred_cmd)
            )
        else:
            pred_cmd = self.cost.predicate(n, batch.weight, max(self.terms, 1))
            cmd = CPU_FUSED(rc, pred_cmd) if rc is not None else pred_cmd
        return self._filter(batch), cmd

    def fuse_next_lock(self, cmd):
        """Fast mode: fuse the *next* read's SPL lock charge as the last
        part of ``cmd`` (see ``SplConsumer.prepay_lock_charge``).  Only
        legal when nothing but pure computation happens between yielding
        the returned command and the next ``read_fused`` call -- in
        particular, no intervening emit.  Returns ``cmd`` unchanged when
        prepaying is unavailable."""
        lp = self._lock_prepay
        if lp is None or cmd is None:
            return cmd
        self.reader.lock_prepaid = True
        return CPU_FUSED(cmd, lp)
