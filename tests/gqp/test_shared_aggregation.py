"""Tests for DataPath-style shared aggregation inside the GQP (paper
Section 2.4: "a running sum for each group and query")."""

import dataclasses

import pytest

from repro.baselines import evaluate_plan
from repro.data import generate_ssb
from repro.engine import CJOIN, CJOIN_SP, QPipeEngine
from repro.engine.config import EngineConfig
from repro.query.ssb_queries import q11, q32
from repro.query.ssb_suite import ALL_SSB_QUERIES, default_instance
from repro.sim import Simulator
from repro.sim.costmodel import DEFAULT_COST_MODEL
from repro.sim.machine import MachineSpec
from repro.storage import StorageConfig, StorageManager

CJOIN_SHAGG = dataclasses.replace(CJOIN, shared_aggregation=True, name="CJOIN+shagg")
CJOIN_SP_SHAGG = dataclasses.replace(CJOIN_SP, shared_aggregation=True, name="CJOIN-SP+shagg")


@pytest.fixture(scope="module")
def ssb():
    return generate_ssb(0.5, seed=71)


def norm(rows):
    return sorted(
        tuple(round(v, 6) if isinstance(v, float) else v for v in row) for row in rows
    )


def make_engine(ssb, config):
    sim = Simulator(MachineSpec())
    storage = StorageManager(sim, DEFAULT_COST_MODEL, ssb.tables, StorageConfig(resident="memory"))
    return sim, QPipeEngine(sim, storage, config)


class TestCorrectness:
    def test_q32_matches_oracle(self, ssb):
        spec = q32("CHINA", "FRANCE", 1993, 1996)
        oracle = norm(evaluate_plan(spec.to_query_centric_plan(ssb.tables)))
        sim, eng = make_engine(ssb, CJOIN_SHAGG)
        handles = [eng.submit(spec) for _ in range(3)]
        sim.run()
        for h in handles:
            assert norm(h.results) == oracle

    def test_fact_predicates_still_applied(self, ssb):
        spec = q11(1993, 1.0, 3.0, 25)
        oracle = norm(evaluate_plan(spec.to_query_centric_plan(ssb.tables)))
        sim, eng = make_engine(ssb, CJOIN_SHAGG)
        h = eng.submit(spec)
        sim.run()
        assert norm(h.results) == oracle

    @pytest.mark.parametrize("name", ["Q1.2", "Q2.1", "Q3.1", "Q4.2"])
    def test_suite_queries(self, ssb, name):
        spec = default_instance(name)
        oracle = norm(evaluate_plan(spec.to_query_centric_plan(ssb.tables)))
        sim, eng = make_engine(ssb, CJOIN_SHAGG)
        h = eng.submit(spec)
        sim.run()
        assert norm(h.results) == oracle

    def test_mixed_queries_concurrently(self, ssb):
        specs = [q32("CHINA", "FRANCE", 1993, 1996), q11(1994, 2.0, 4.0, 30),
                 default_instance("Q4.1")]
        oracles = [norm(evaluate_plan(s.to_query_centric_plan(ssb.tables))) for s in specs]
        sim, eng = make_engine(ssb, CJOIN_SHAGG)
        handles = [eng.submit(s) for s in specs]
        sim.run()
        for h, o in zip(handles, oracles):
            assert norm(h.results) == o


class TestBehavior:
    def test_no_query_centric_agg_packets(self, ssb):
        """The aggregation runs inside the distributor: the aggregate stage
        admits nothing."""
        sim, eng = make_engine(ssb, CJOIN_SHAGG)
        eng.submit(q32("CHINA", "FRANCE", 1993, 1996))
        sim.run()
        assert eng.agg_stage.packets_admitted == 0

    def test_full_step_wop_for_sp(self, ssb):
        """Results are buffered until completion, so the whole execution is
        inside the WoP: a late identical query still shares (the paper's
        Section 3.1 'maximum benefit' case)."""
        spec = q32("CHINA", "FRANCE", 1993, 1996)
        oracle = norm(evaluate_plan(spec.to_query_centric_plan(ssb.tables)))
        sim, eng = make_engine(ssb, CJOIN_SP_SHAGG)
        h1 = eng.submit(spec)
        late = {}

        def late_submit():
            from repro.sim.commands import SLEEP

            yield SLEEP(1.0)  # well into the host's execution
            late["h"] = eng.submit(spec)

        sim.spawn(late_submit(), "late")
        sim.run()
        assert norm(h1.results) == oracle
        assert norm(late["h"].results) == oracle
        assert eng.sharing_summary().get("cjoin", 0) == 1
        assert sim.metrics.counts["cjoin_queries_admitted"] == 1

    def test_aggregation_cpu_attributed(self, ssb):
        sim, eng = make_engine(ssb, CJOIN_SHAGG)
        eng.submit(q32("CHINA", "FRANCE", 1993, 1996))
        sim.run()
        assert sim.metrics.cpu_cycles_by_category["aggregation"] > 0

    def test_config_validation(self):
        with pytest.raises(ValueError, match="shared_aggregation"):
            EngineConfig(shared_aggregation=True)  # requires use_cjoin
