"""Tables: immutable paged row storage.

A table's rows are generated at ~1/1000 of the paper's real cardinality;
``row_weight`` records how many real rows each generated row represents so
that CPU charges (cycles x weight) and I/O charges (bytes x weight) match
paper-scale volumes.
"""

from __future__ import annotations

from typing import Iterator, Sequence

from repro.storage.page import Page
from repro.storage.schema import Schema

#: Generated tuples per page.  Real pages are 32 KB; this is the *batch*
#: granularity of the simulation (one generated page stands for the run of
#: real 32 KB pages holding `TUPLES_PER_PAGE * row_weight` rows).
TUPLES_PER_PAGE = 64


class Table:
    """An immutable, paged relational table."""

    def __init__(
        self,
        name: str,
        schema: Schema,
        rows: Sequence[tuple],
        row_weight: float = 1.0,
        tuples_per_page: int = TUPLES_PER_PAGE,
    ):
        if row_weight <= 0:
            raise ValueError("row_weight must be positive")
        if tuples_per_page < 1:
            raise ValueError("tuples_per_page must be >= 1")
        for row in rows[:1]:
            if len(row) != len(schema):
                raise ValueError(
                    f"row arity {len(row)} does not match schema arity {len(schema)}"
                )
        self.name = name
        self.schema = schema
        self.row_weight = float(row_weight)
        self.tuples_per_page = tuples_per_page
        self.pages: list[Page] = []
        rows = list(rows)
        for start in range(0, len(rows), tuples_per_page):
            chunk = rows[start : start + tuples_per_page]
            self.pages.append(
                Page(
                    table_name=name,
                    index=len(self.pages),
                    rows=chunk,
                    weight=self.row_weight,
                    real_bytes=len(chunk) * self.row_weight * schema.row_bytes,
                )
            )
        self.num_rows = len(rows)

    # ------------------------------------------------------------------
    @property
    def num_pages(self) -> int:
        return len(self.pages)

    @property
    def real_rows(self) -> float:
        """Number of real rows this table represents."""
        return self.num_rows * self.row_weight

    @property
    def real_bytes(self) -> float:
        """Real on-disk size in bytes."""
        return sum(p.real_bytes for p in self.pages)

    def page(self, index: int) -> Page:
        return self.pages[index]

    def iter_rows(self) -> Iterator[tuple]:
        for p in self.pages:
            yield from p.rows

    def __len__(self) -> int:
        return self.num_rows

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"<Table {self.name} rows={self.num_rows} (x{self.row_weight:g} real)"
            f" pages={self.num_pages}>"
        )
