"""One function per table/figure of the paper's evaluation.

Each function runs the corresponding experiment on the simulated testbed
and returns an :class:`ExperimentResult` whose ``render()`` prints the same
rows/series the paper plots.  Parameters default to *fast* settings so the
benchmark suite completes in minutes; pass ``full=True`` (or the explicit
knobs) for the paper-scale sweeps recorded in EXPERIMENTS.md.

Every sweep enumerates its grid as :class:`~repro.parallel.CellSpec`\\ s
and executes them through the parallel fabric (:func:`repro.parallel.
run_cells`): ``jobs=1`` (the default) is the exact serial path, ``jobs=N``
(or ``REPRO_JOBS=N``) fans cells out across a process pool with
byte-identical results (cells are deterministic in their spec; see
``repro/parallel/cells.py``).

Paper-vs-measured expectations (the *shape* claims each experiment must
reproduce) are documented per function and asserted loosely in
``tests/bench/test_experiments.py``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Sequence

from repro.baselines.volcano import VolcanoEngine  # noqa: F401 (re-export convenience)
from repro.bench.reporting import format_series, format_table
from repro.bench.runner import (
    POSTGRES,
    RunResult,
    run_batch,  # noqa: F401 (re-export: ad-hoc single cells)
    run_closed_loop,  # noqa: F401 (re-export)
)
from repro.data.ssb import generate_ssb
from repro.engine.config import CJOIN, CJOIN_SP, QPIPE, QPIPE_CS, QPIPE_SP
from repro.engine.wop import WindowOfOpportunity, wop_gain
from repro.parallel import CellSpec, DatasetSpec, SweepOutcome, WorkloadSpec, run_cells
from repro.sim.machine import GB
from repro.sim.metrics import CATEGORIES
from repro.storage.manager import StorageConfig

MEMORY = StorageConfig(resident="memory")


def disk_config(
    bufferpool_bytes: float = 48 * GB,
    os_cache_bytes: float = 32 * GB,
    direct_io: bool = False,
) -> StorageConfig:
    return StorageConfig(
        resident="disk",
        bufferpool_bytes=bufferpool_bytes,
        os_cache_bytes=os_cache_bytes,
        direct_io=direct_io,
    )


@dataclass
class ExperimentResult:
    """Structured output of one experiment."""

    experiment: str
    tables: list[str] = field(default_factory=list)
    data: dict[str, Any] = field(default_factory=dict)
    #: host-side attribution from the parallel fabric: ``jobs``, total
    #: ``wall_s``, and per-cell ``{wall_s, worker, retried}`` -- see
    #: :meth:`repro.parallel.SweepOutcome.timings`.  Empty for derived
    #: (non-sweep) experiments like fig2.
    timings: dict[str, Any] = field(default_factory=dict)

    def render(self) -> str:
        return "\n\n".join(self.tables)

    def show(self) -> None:  # pragma: no cover - console convenience
        print(self.render())


def _rt_series(results: dict[str, list[RunResult]]) -> dict[str, list[float]]:
    return {name: [r.mean_response for r in rs] for name, rs in results.items()}


def _progress() -> Callable[[str], None] | None:
    """Sweeps print ordered per-cell progress only when the fabric was
    asked for it (``REPRO_PROGRESS=1``); library callers stay quiet."""
    import os

    if os.environ.get("REPRO_PROGRESS"):
        return lambda line: print(line, flush=True)
    return None


def _cell_timeout() -> float | None:
    """Per-cell wall-clock budget, settable from the CLI
    (``repro sweep --timeout``) via ``REPRO_CELL_TIMEOUT``."""
    import os

    raw = os.environ.get("REPRO_CELL_TIMEOUT")
    return float(raw) if raw else None


def _sweep(specs: Sequence[CellSpec], jobs: int | None) -> SweepOutcome:
    return run_cells(specs, jobs=jobs, timeout=_cell_timeout(), progress=_progress())


# ---------------------------------------------------------------------------
# Figure 2b: Windows of Opportunity
# ---------------------------------------------------------------------------


def fig2_wop(points: int = 11) -> ExperimentResult:
    """Paper Figure 2b: step vs linear WoP gain curves.

    Expectation: step = 100% gain for any arrival before the host's first
    output, then 0; linear = gain proportional to the remaining progress."""
    xs = [i / (points - 1) for i in range(points)]
    series = {
        "step_gain_%": [100 * wop_gain(WindowOfOpportunity.STEP, x) for x in xs],
        "linear_gain_%": [100 * wop_gain(WindowOfOpportunity.LINEAR, x) for x in xs],
    }
    table = format_series(
        "Figure 2b: Window of Opportunity gain vs host progress at arrival",
        "host_progress", [f"{x:.1f}" for x in xs], series,
    )
    return ExperimentResult("fig2", [table], {"xs": xs, **series})


# ---------------------------------------------------------------------------
# Figure 6: push-based vs pull-based SP (TPC-H Q1, memory-resident, SF=1)
# ---------------------------------------------------------------------------


def fig6_push_vs_pull(
    concurrency: Sequence[int] = (1, 2, 4, 8, 16, 32),
    sf: float = 1.0,
    seed: int = 42,
    full: bool = False,
    jobs: int | None = None,
) -> ExperimentResult:
    """Paper Figure 6a/b/c: identical TPC-H Q1 queries, No-SP vs circular
    scans (CS), with FIFO (push) vs SPL (pull) communication.

    Expectations: CS(FIFO) is worse than No-SP at low concurrency (producer
    serialization) and uses ~3 cores at 64 queries; CS(SPL) is never worse
    than No-SP and cuts CS(FIFO)'s response time by ~82-86% at high
    concurrency; No-SP degrades sharply once plans exceed 24 cores."""
    if full:
        concurrency = (1, 2, 4, 8, 16, 32, 64)
    dataset = DatasetSpec("tpch", sf, seed)
    selectors = {
        "NoSP(FIFO)": QPIPE.with_comm("fifo"),
        "CS(FIFO)": QPIPE_CS.with_comm("fifo"),
        "NoSP(SPL)": QPIPE.with_comm("spl"),
        "CS(SPL)": QPIPE_CS.with_comm("spl"),
    }
    specs = [
        CellSpec(
            key=f"{name}/n{n}",
            config=cfg,
            dataset=dataset,
            workload=WorkloadSpec("tpch-q1", n=n, seed=seed),
            storage=MEMORY,
        )
        for n in concurrency
        for name, cfg in selectors.items()
    ]
    out = _sweep(specs, jobs)
    cells: dict[str, list[RunResult]] = {
        name: [out.cell(f"{name}/n{n}") for n in concurrency] for name in selectors
    }
    rt = _rt_series(cells)
    t_resp = format_series(
        "Figure 6a/6b: TPC-H Q1 response time (s), push vs pull SP",
        "queries", list(concurrency), rt,
    )
    speedups = {
        "speedup_FIFO": [
            rt["NoSP(FIFO)"][i] / rt["CS(FIFO)"][i] for i in range(len(concurrency))
        ],
        "speedup_SPL": [
            rt["NoSP(SPL)"][i] / rt["CS(SPL)"][i] for i in range(len(concurrency))
        ],
    }
    t_speed = format_series(
        "Figure 6c: speedup of sharing (NoSP/CS) per communication model",
        "queries", list(concurrency), speedups,
        note="paper: FIFO < 1 at low concurrency; SPL >= 1 everywhere",
    )
    hi = len(concurrency) - 1
    reduction = 100 * (1 - rt["CS(SPL)"][hi] / rt["CS(FIFO)"][hi])
    t_meta = format_table(
        "Figure 6 measurements at highest concurrency",
        ["metric", "CS(FIFO)", "CS(SPL)"],
        [
            ["response (s)", rt["CS(FIFO)"][hi], rt["CS(SPL)"][hi]],
            ["avg cores used", cells["CS(FIFO)"][hi].avg_cores_used, cells["CS(SPL)"][hi].avg_cores_used],
            ["SPL reduction vs FIFO (%)", "", reduction],
        ],
        note="paper at 64 queries: CS(FIFO) 60s/3.1 cores; CS(SPL) 8s/19.1 cores; 82-86% reduction",
    )
    return ExperimentResult(
        "fig6",
        [t_resp, t_speed, t_meta],
        {"concurrency": list(concurrency), "rt": rt, "speedups": speedups, "reduction": reduction, "cells": cells},
        timings=out.timings(),
    )


# ---------------------------------------------------------------------------
# Figure 10: impact of concurrency (SSB Q3.2, SF=1, memory & disk)
# ---------------------------------------------------------------------------


def fig10_concurrency(
    concurrency: Sequence[int] = (1, 4, 16, 64, 256),
    sf: float = 1.0,
    seed: int = 42,
    resident: Sequence[str] = ("memory", "disk"),
    full: bool = False,
    jobs: int | None = None,
) -> ExperimentResult:
    """Paper Figure 10: random-predicate Q3.2 instances, 1..256 queries.

    Expectations: at high concurrency CJOIN < QPipe-SP < QPipe-CS < QPipe;
    QPipe saturates 24 cores and degrades sharply from ~32 queries; CJOIN
    uses only a few cores; on disk, circular scans cut response 80-97% vs
    independent scans at high concurrency."""
    if full:
        concurrency = (1, 2, 4, 8, 16, 32, 64, 128, 256)
    dataset = DatasetSpec("ssb", sf, seed)
    configs = (QPIPE, QPIPE_CS, QPIPE_SP, CJOIN)
    specs = [
        CellSpec(
            key=f"{res}/{cfg.name}/n{n}",
            config=cfg,
            dataset=dataset,
            workload=WorkloadSpec("q32-random", n=n, seed=seed),
            storage=MEMORY if res == "memory" else disk_config(),
        )
        for res in resident
        for n in concurrency
        for cfg in configs
    ]
    out = _sweep(specs, jobs)
    tables: list[str] = []
    data: dict[str, Any] = {"concurrency": list(concurrency)}
    for res in resident:
        cells: dict[str, list[RunResult]] = {
            cfg.name: [out.cell(f"{res}/{cfg.name}/n{n}") for n in concurrency]
            for cfg in configs
        }
        rt = _rt_series(cells)
        tables.append(
            format_series(
                f"Figure 10 ({res}-resident): SSB Q3.2 response time (s)",
                "queries", list(concurrency), rt,
            )
        )
        hi = len(concurrency) - 1
        meta_rows = [
            [c.name, cells[c.name][hi].avg_cores_used, cells[c.name][hi].avg_read_mb_s]
            for c in configs
        ]
        tables.append(
            format_table(
                f"Figure 10 ({res}) measurements at {concurrency[hi]} queries",
                ["config", "avg cores", "read MB/s"],
                meta_rows,
                note="paper (memory, 256q): cores 23.91/19.72/18.75/3.47; "
                "(disk, 256q): read rate 1.88/74.47/97.67/156.11 MB/s",
            )
        )
        data[res] = {"rt": rt, "cells": cells}
    sp_share = data[resident[0]]["cells"]["QPipe-SP"][-1].sharing
    tables.append(
        format_table(
            "QPipe-SP sharing opportunities at highest concurrency",
            ["join", "times shared"],
            [[k, v] for k, v in sorted(sp_share.items())],
            note="paper (256q): 1st hash-join 126, 2nd 17, 3rd 1 (on average)",
        )
    )
    return ExperimentResult("fig10", tables, data, timings=out.timings())


# ---------------------------------------------------------------------------
# Figure 11: impact of selectivity (8 queries, SF=10, memory-resident)
# ---------------------------------------------------------------------------


def fig11_selectivity(
    selectivities: Sequence[float] = (0.001, 0.01, 0.10, 0.30),
    n_queries: int = 8,
    sf: float = 10.0,
    seed: int = 42,
    full: bool = False,
    jobs: int | None = None,
) -> ExperimentResult:
    """Paper Figure 11: modified Q3.2 at 0.1%..30% fact selectivity, low
    concurrency (8 queries: no CPU contention).

    Expectations: both degrade with selectivity; CJOIN always worse than
    QPipe-SP (admission grows with selected tuples; shared operators pay
    bookkeeping); CJOIN's "Joins" CPU exceeds QPipe-SP's at every
    selectivity while QPipe-SP's "Hashing" grows faster (it hashes per
    query; CJOIN hashes once)."""
    if full:
        selectivities = (0.001, 0.01, 0.10, 0.20, 0.30)
    dataset = DatasetSpec("ssb", sf, seed)
    configs = {"QPipe-SP": QPIPE_SP, "CJOIN": CJOIN}
    specs = [
        CellSpec(
            key=f"{name}/sel{sel:g}",
            config=cfg,
            dataset=dataset,
            workload=WorkloadSpec("q32-selectivity", n=n_queries, selectivity=sel, seed=seed),
            storage=MEMORY,
        )
        for sel in selectivities
        for name, cfg in configs.items()
    ]
    out = _sweep(specs, jobs)
    cells: dict[str, list[RunResult]] = {
        name: [out.cell(f"{name}/sel{sel:g}") for sel in selectivities] for name in configs
    }
    rt = _rt_series(cells)
    rt["CJOIN admission"] = [r.admission_seconds for r in cells["CJOIN"]]
    xs = [f"{100 * s:g}%" for s in selectivities]
    tables = [
        format_series(
            f"Figure 11: response time (s) vs selectivity ({n_queries} queries, SF={sf:g}, memory)",
            "selectivity", xs, rt,
            note="paper: CJOIN worse than QPipe-SP at all selectivities at low concurrency",
        )
    ]
    for name in ("QPipe-SP", "CJOIN"):
        rows = [
            [xs[i]] + [cells[name][i].cpu_breakdown[cat] for cat in CATEGORIES]
            for i in range(len(selectivities))
        ]
        tables.append(
            format_table(
                f"Figure 11 CPU-time breakdown, {name} (core-seconds)",
                ["selectivity", *CATEGORIES],
                rows,
            )
        )
    return ExperimentResult(
        "fig11",
        tables,
        {"selectivities": list(selectivities), "rt": rt, "cells": cells},
        timings=out.timings(),
    )


# ---------------------------------------------------------------------------
# Figure 12: selectivity x concurrency (30% selectivity, 16..256 queries)
# ---------------------------------------------------------------------------


def fig12_selectivity_concurrency(
    concurrency: Sequence[int] = (16, 32, 64),
    selectivity: float = 0.30,
    sf: float = 10.0,
    seed: int = 42,
    full: bool = False,
    jobs: int | None = None,
) -> ExperimentResult:
    """Paper Figure 12: 30% selectivity, rising concurrency.

    Expectations: QPipe-SP's CPU time (and response) grows superlinearly
    with queries; CJOIN's "Hashing" stays flat (hashing is shared) and it
    wins at high concurrency -- the reverse of Figure 11's low-concurrency
    verdict."""
    if full:
        concurrency = (16, 32, 64, 128, 256)
    dataset = DatasetSpec("ssb", sf, seed)
    configs = {"QPipe-SP": QPIPE_SP, "CJOIN": CJOIN}
    specs = [
        CellSpec(
            key=f"{name}/n{n}",
            config=cfg,
            dataset=dataset,
            workload=WorkloadSpec("q32-selectivity", n=n, selectivity=selectivity, seed=seed),
            storage=MEMORY,
        )
        for n in concurrency
        for name, cfg in configs.items()
    ]
    out = _sweep(specs, jobs)
    cells: dict[str, list[RunResult]] = {
        name: [out.cell(f"{name}/n{n}") for n in concurrency] for name in configs
    }
    rt = _rt_series(cells)
    rt["CJOIN admission"] = [r.admission_seconds for r in cells["CJOIN"]]
    tables = [
        format_series(
            f"Figure 12: response time (s) at {100 * selectivity:g}% selectivity (SF={sf:g}, memory)",
            "queries", list(concurrency), rt,
            note="paper: crossover -- CJOIN wins at high concurrency",
        )
    ]
    hashing = {
        name: [cells[name][i].cpu_breakdown["hashing"] for i in range(len(concurrency))]
        for name in cells
    }
    tables.append(
        format_series(
            "Figure 12: 'Hashing' CPU core-seconds (flat for CJOIN = shared hashing)",
            "queries", list(concurrency), hashing,
        )
    )
    return ExperimentResult(
        "fig12",
        tables,
        {"concurrency": list(concurrency), "rt": rt, "hashing": hashing, "cells": cells},
        timings=out.timings(),
    )


# ---------------------------------------------------------------------------
# Figure 13: impact of scale factor (8 queries, disk, +- direct I/O)
# ---------------------------------------------------------------------------


def fig13_scale_factor(
    scale_factors: Sequence[float] = (1.0, 10.0, 30.0),
    n_queries: int = 8,
    seed: int = 42,
    full: bool = False,
    jobs: int | None = None,
) -> ExperimentResult:
    """Paper Figure 13: disk-resident databases, SF 1..100, with and
    without direct I/O.

    Expectations: response grows ~linearly with SF for both; QPipe-SP's
    slope is smaller than CJOIN's; direct I/O (no FS cache/read-ahead)
    exposes the CJOIN preprocessor's overhead -- its read rate drops well
    below QPipe-SP's, while buffered I/O masks it."""
    if full:
        scale_factors = (1.0, 10.0, 30.0, 50.0, 100.0)
    specs = [
        CellSpec(
            key=f"{cfg.name}{' (Direct I/O)' if direct else ''}/sf{sf:g}",
            config=cfg,
            dataset=DatasetSpec("ssb", sf, seed),
            workload=WorkloadSpec("q32-random", n=n_queries, seed=seed),
            storage=disk_config(direct_io=direct),
        )
        for sf in scale_factors
        for direct in (False, True)
        for cfg in (QPIPE_SP, CJOIN)
    ]
    out = _sweep(specs, jobs)
    series: dict[str, list[float]] = {}
    read_rates: dict[str, list[float]] = {}
    for cfg in (QPIPE_SP, CJOIN):
        for direct in (False, True):
            key = f"{cfg.name} (Direct I/O)" if direct else cfg.name
            results = [out.cell(f"{key}/sf{sf:g}") for sf in scale_factors]
            series[key] = [r.mean_response for r in results]
            read_rates[key] = [r.avg_read_mb_s for r in results]
    tables = [
        format_series(
            f"Figure 13: response time (s) vs scale factor ({n_queries} queries, disk)",
            "SF", list(scale_factors), series,
            note="paper at SF=100: read rate QPipe-SP 97 vs CJOIN 70 MB/s buffered; "
            "216 vs 205 MB/s direct",
        ),
        format_series(
            "Figure 13: average read rate (MB/s)",
            "SF", list(scale_factors), read_rates,
        ),
    ]
    return ExperimentResult(
        "fig13",
        tables,
        {"scale_factors": list(scale_factors), "rt": series, "read_rates": read_rates},
        timings=out.timings(),
    )


# ---------------------------------------------------------------------------
# Figure 14: impact of similarity (16 possible plans, SF=1, disk)
# ---------------------------------------------------------------------------


def fig14_similarity(
    concurrency: Sequence[int] = (1, 8, 64, 256),
    n_plans: int = 16,
    sf: float = 1.0,
    seed: int = 42,
    full: bool = False,
    jobs: int | None = None,
) -> ExperimentResult:
    """Paper Figure 14: 16 possible Q3.2 plans, disk-resident SF=1.

    Expectations at 256 queries: CJOIN-SP < QPipe-SP < CJOIN < QPipe-CS;
    QPipe-SP beats plain CJOIN (high similarity favors SP's result reuse);
    CJOIN-SP shares whole CJOIN packets (~239 times in the paper)."""
    if full:
        concurrency = (1, 2, 4, 8, 16, 32, 64, 128, 256)
    dataset = DatasetSpec("ssb", sf, seed)
    configs = (QPIPE_CS, QPIPE_SP, CJOIN, CJOIN_SP)
    specs = [
        CellSpec(
            key=f"{cfg.name}/n{n}",
            config=cfg,
            dataset=dataset,
            workload=WorkloadSpec("q32-plans", n=n, n_plans=min(n_plans, n), seed=seed),
            storage=disk_config(),
        )
        for n in concurrency
        for cfg in configs
    ]
    out = _sweep(specs, jobs)
    cells: dict[str, list[RunResult]] = {
        cfg.name: [out.cell(f"{cfg.name}/n{n}") for n in concurrency] for cfg in configs
    }
    rt = _rt_series(cells)
    hi = len(concurrency) - 1
    tables = [
        format_series(
            f"Figure 14: response time (s), {n_plans} possible plans (SF={sf:g}, disk)",
            "queries", list(concurrency), rt,
            note="paper at 256q: QPipe-CS 50s, QPipe-SP 13s, CJOIN 14s, CJOIN-SP 12s",
        ),
        format_table(
            f"Figure 14 measurements at {concurrency[hi]} queries",
            ["config", "avg cores", "read MB/s", "cjoin shares"],
            [
                [
                    c.name,
                    cells[c.name][hi].avg_cores_used,
                    cells[c.name][hi].avg_read_mb_s,
                    cells[c.name][hi].sharing.get("cjoin", 0),
                ]
                for c in configs
            ],
            note="paper: CJOIN-SP shares CJOIN packets 239 times at 256 queries",
        ),
    ]
    return ExperimentResult(
        "fig14",
        tables,
        {"concurrency": list(concurrency), "rt": rt, "cells": cells},
        timings=out.timings(),
    )


# ---------------------------------------------------------------------------
# Figure 15: number of possible plans at very high concurrency
# ---------------------------------------------------------------------------


def fig15_plan_variety(
    n_queries: int = 128,
    plan_counts: Sequence[int | None] = (1, 32, 128, None),
    sf: float = 10.0,
    seed: int = 42,
    full: bool = False,
    jobs: int | None = None,
) -> ExperimentResult:
    """Paper Figure 15: 512 queries over SF=100 (buffer pool ~10% of the
    database), varying the number of possible plans (None = fully random).

    Expectations: QPipe-SP wins at extreme similarity (1 plan) and degrades
    as variety grows; CJOIN is nearly flat; CJOIN-SP improves on CJOIN by
    20-48% whenever common sub-plans exist and never does worse."""
    if full:
        n_queries, sf = 512, 100.0
        plan_counts = (1, 128, 256, 512, None)
    ds = generate_ssb(sf, seed)  # parent-side: the buffer-pool bound needs its size
    bp = max(ds.real_bytes * 0.10, 1 * GB)
    storage = disk_config(bufferpool_bytes=bp, os_cache_bytes=bp)
    dataset = DatasetSpec("ssb", sf, seed)
    configs = (QPIPE_SP, CJOIN, CJOIN_SP)
    xs = ["Random" if count is None else str(count) for count in plan_counts]

    def _workload(count: int | None) -> WorkloadSpec:
        if count is None:
            return WorkloadSpec("q32-random", n=n_queries, seed=seed)
        return WorkloadSpec("q32-plans", n=n_queries, n_plans=count, seed=seed)

    specs = [
        CellSpec(
            key=f"{cfg.name}/p{x}",
            config=cfg,
            dataset=dataset,
            workload=_workload(count),
            storage=storage,
        )
        for x, count in zip(xs, plan_counts)
        for cfg in configs
    ]
    out = _sweep(specs, jobs)
    cells: dict[str, list[RunResult]] = {
        cfg.name: [out.cell(f"{cfg.name}/p{x}") for x in xs] for cfg in configs
    }
    rt = _rt_series(cells)
    improvements = [
        100 * (1 - rt["CJOIN-SP"][i] / rt["CJOIN"][i]) for i in range(len(xs))
    ]
    tables = [
        format_series(
            f"Figure 15: response time (s), {n_queries} queries (SF={sf:g}, BP~10%)",
            "plans", xs, rt,
            note="paper: CJOIN-SP improves CJOIN by 20-48% with common sub-plans",
        ),
        format_table(
            "Figure 15: sharing opportunities",
            ["plans", "QPipe-SP hj1/hj2/hj3", "CJOIN-SP packets", "CJOIN-SP gain %"],
            [
                [
                    xs[i],
                    "/".join(
                        str(cells["QPipe-SP"][i].sharing.get(f"join:hj{d}", 0))
                        for d in (1, 2, 3)
                    ),
                    cells["CJOIN-SP"][i].sharing.get("cjoin", 0),
                    improvements[i],
                ]
                for i in range(len(xs))
            ],
            note="paper (512q): QPipe-SP 1/0/510 ... 362/82/5; CJOIN-SP 510..12 shares",
        ),
    ]
    return ExperimentResult(
        "fig15",
        tables,
        {"plans": xs, "rt": rt, "improvements": improvements, "cells": cells},
        timings=out.timings(),
    )


# ---------------------------------------------------------------------------
# Figure 16: SSB query mix -- response time and throughput vs Postgres
# ---------------------------------------------------------------------------


def fig16_mix(
    concurrency: Sequence[int] = (1, 16, 128),
    clients: Sequence[int] = (1, 16, 160),
    sf: float = 30.0,
    seed: int = 42,
    duration: float = 600.0,
    full: bool = False,
    jobs: int | None = None,
) -> ExperimentResult:
    """Paper Figure 16: mix of SSB Q1.1/Q2.1/Q3.2, disk-resident SF=30;
    left: batch response times; right: closed-loop throughput.

    Expectations: Postgres (mature, query-centric) wins at 1-2 queries but
    contends beyond; QPipe-SP in between; CJOIN-SP best at high
    concurrency, and its *throughput keeps rising* with clients while the
    query-centric engines flatten or degrade."""
    if full:
        concurrency = (1, 2, 4, 8, 16, 32, 64, 128, 256)
        clients = (1, 16, 64, 160, 256)
        duration = 1800.0
    dataset = DatasetSpec("ssb", sf, seed)
    storage = disk_config()
    selectors = {"Postgres": POSTGRES, "QPipe-SP": QPIPE_SP, "CJOIN-SP": CJOIN_SP}
    specs = [
        CellSpec(
            key=f"batch/{name}/n{n}",
            config=sel,
            dataset=dataset,
            workload=WorkloadSpec("ssb-mix", n=n, seed=seed),
            storage=storage,
        )
        for n in concurrency
        for name, sel in selectors.items()
    ] + [
        CellSpec(
            key=f"closed/{name}/c{c}",
            config=sel,
            dataset=dataset,
            workload=WorkloadSpec("mix-factory", seed=seed),
            storage=storage,
            mode="closed",
            n_clients=c,
            duration=duration,
        )
        for c in clients
        for name, sel in selectors.items()
    ]
    out = _sweep(specs, jobs)
    cells: dict[str, list[RunResult]] = {
        name: [out.cell(f"batch/{name}/n{n}") for n in concurrency] for name in selectors
    }
    rt = _rt_series(cells)
    tables = [
        format_series(
            f"Figure 16 (left): SSB mix response time (s), SF={sf:g}, disk",
            "queries", list(concurrency), rt,
        )
    ]
    tput: dict[str, list[float]] = {
        name: [out.cell(f"closed/{name}/c{c}").queries_per_hour for c in clients]
        for name in selectors
    }
    tables.append(
        format_series(
            f"Figure 16 (right): throughput (queries/hour), {duration:g}s closed loop",
            "clients", list(clients), tput,
            note="paper: CJOIN-SP throughput keeps increasing; "
            "query-centric engines degrade with many clients",
        )
    )
    return ExperimentResult(
        "fig16",
        tables,
        {"concurrency": list(concurrency), "rt": rt, "clients": list(clients), "throughput": tput, "cells": cells},
        timings=out.timings(),
    )


# ---------------------------------------------------------------------------
# Table 1: rules of thumb (derived)
# ---------------------------------------------------------------------------


def table1_rules_of_thumb(
    low: int = 4,
    high: int = 256,
    sf: float = 1.0,
    seed: int = 42,
    jobs: int | None = None,
) -> ExperimentResult:
    """Paper Table 1, derived from measurements: pick the best engine
    configuration at low and at high concurrency (plus shared scans in the
    I/O layer) from an actual sweep over the paper's low-similarity
    random-predicate workload (the regime Table 1 generalizes over).

    Expectation: low concurrency -> query-centric operators + SP;
    high concurrency -> GQP (shared operators) + SP; shared scans always."""
    dataset = DatasetSpec("ssb", sf, seed)
    configs = (QPIPE, QPIPE_CS, QPIPE_SP, CJOIN, CJOIN_SP)
    regimes = (("low", low), ("high", high))
    specs = [
        CellSpec(
            key=f"{label}/{cfg.name}",
            config=cfg,
            dataset=dataset,
            workload=WorkloadSpec("q32-random", n=n, seed=seed),
            storage=disk_config(),
        )
        for label, n in regimes
        for cfg in configs
    ]
    out = _sweep(specs, jobs)
    verdicts = []
    winners: dict[str, str] = {}
    for label, n in regimes:
        results = {cfg.name: out.cell(f"{label}/{cfg.name}") for cfg in configs}
        best = min(results.values(), key=lambda r: r.mean_response)
        winners[label] = best.config_name
        verdicts.append([label, n, best.config_name] + [results[c.name].mean_response for c in configs])
    table = format_table(
        "Table 1 (derived): best sharing strategy by concurrency regime",
        ["regime", "queries", "winner", *[c.name for c in configs]],
        verdicts,
        note="paper: low -> query-centric + SP; high -> GQP + SP; shared scans in the I/O layer always",
    )
    return ExperimentResult(
        "table1", [table], {"winners": winners, "rows": verdicts}, timings=out.timings()
    )


# ---------------------------------------------------------------------------
# Section 4.1 ablation: SPL maximum size
# ---------------------------------------------------------------------------


def spl_max_size_ablation(
    max_pages: Sequence[int] = (1, 2, 8, 64, 512),
    n_queries: int = 8,
    sf: float = 1.0,
    seed: int = 42,
    jobs: int | None = None,
) -> ExperimentResult:
    """Paper Section 4.1 (no graph shown): varying the SPL bound from tiny
    to effectively unbounded "does not heavily affect performance" -- which
    is why the paper picks 256 KB (8 pages).

    Expectation: response time roughly flat across bounds."""
    import dataclasses

    dataset = DatasetSpec("tpch", sf, seed)
    specs = [
        CellSpec(
            key=f"mp{mp}",
            config=dataclasses.replace(QPIPE_CS, spl_max_pages=mp),
            dataset=dataset,
            workload=WorkloadSpec("tpch-q1", n=n_queries, seed=seed),
            storage=MEMORY,
        )
        for mp in max_pages
    ]
    out = _sweep(specs, jobs)
    rts = [out.cell(f"mp{mp}").mean_response for mp in max_pages]
    table = format_series(
        f"SPL maximum size ablation ({n_queries} identical Q1, CS(SPL))",
        "max_pages", list(max_pages), {"response_s": rts},
        note="paper: SPL size does not heavily affect performance (256KB chosen)",
    )
    return ExperimentResult(
        "spl_maxsize", [table], {"max_pages": list(max_pages), "rt": rts},
        timings=out.timings(),
    )
