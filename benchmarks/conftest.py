"""Shared helpers for the benchmark suite.

Every bench target regenerates one table/figure of the paper (fast
parameters by default; set ``REPRO_FULL=1`` for the paper-scale sweeps
recorded in EXPERIMENTS.md).  Rendered tables are printed and archived
under ``benchmarks/out/``.
"""

import os
import pathlib

import pytest

FULL = bool(os.environ.get("REPRO_FULL"))
OUT_DIR = pathlib.Path(__file__).parent / "out"


@pytest.fixture(scope="session")
def full_mode() -> bool:
    return FULL


@pytest.fixture(scope="session")
def save_report():
    OUT_DIR.mkdir(exist_ok=True)

    def _save(name: str, text: str) -> None:
        suffix = "full" if FULL else "fast"
        (OUT_DIR / f"{name}.{suffix}.txt").write_text(text + "\n")
        print()
        print(text)

    return _save


@pytest.fixture
def once(benchmark):
    """Run the experiment exactly once under pytest-benchmark timing
    (simulated experiments are deterministic; repeated rounds would only
    re-measure the host machine)."""

    def _once(fn, *args, **kwargs):
        return benchmark.pedantic(fn, args=args, kwargs=kwargs, rounds=1, iterations=1)

    return _once
