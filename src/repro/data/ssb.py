"""Star Schema Benchmark (SSB) data generator.

SSB (O'Neil et al., 2009) is TPC-H with ``lineitem``/``orders`` merged into a
``lineorder`` fact table and four dimensions: ``date``, ``customer``,
``supplier`` and ``part``.  Real cardinalities:

===========  ======================  =======================
table        real rows               generated rows (capped)
===========  ======================  =======================
lineorder    6,000,000 x SF          min(6000 x SF, 60,000)
customer     30,000 x SF             min(600 x SF, 3,000)
supplier     2,000 x SF              min(200 x SF, 2,000)
part         200,000 x (1+log2 SF)   min(800 x (1+log2 SF), 2,400)
date         2,556                   2,555 (7 x 365)
===========  ======================  =======================

The per-table ``row_weight`` (real/generated) makes simulated charges match
paper-scale volumes; value *distributions* (25 nations in 5 regions, 10
cities per nation, uniform foreign keys) follow the SSB spec so that
selectivities and join fan-outs are preserved.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache

from repro.data.rng import make_rng
from repro.sim.fastpath import packed_storage_active
from repro.storage.schema import Column, Schema
from repro.storage.table import Table

#: The five SSB regions, each with five nations.
SSB_REGIONS = ("AFRICA", "AMERICA", "ASIA", "EUROPE", "MIDDLE EAST")

SSB_NATIONS = (
    # AFRICA
    "ALGERIA", "ETHIOPIA", "KENYA", "MOROCCO", "MOZAMBIQUE",
    # AMERICA
    "ARGENTINA", "BRAZIL", "CANADA", "PERU", "UNITED STATES",
    # ASIA
    "CHINA", "INDIA", "INDONESIA", "JAPAN", "VIETNAM",
    # EUROPE
    "FRANCE", "GERMANY", "ROMANIA", "RUSSIA", "UNITED KINGDOM",
    # MIDDLE EAST
    "EGYPT", "IRAN", "IRAQ", "JORDAN", "SAUDI ARABIA",
)

#: Cities per nation (SSB spec: ten, named <nation prefix><digit>).
CITIES_PER_NATION = 10

YEARS = tuple(range(1992, 1999))  # 1992..1998

_REGION_OF_NATION = {n: SSB_REGIONS[i // 5] for i, n in enumerate(SSB_NATIONS)}


def nation_region(nation: str) -> str:
    return _REGION_OF_NATION[nation]


def nation_cities(nation: str) -> tuple[str, ...]:
    prefix = nation[:9].ljust(9, " ")
    return tuple(f"{prefix}{k}" for k in range(CITIES_PER_NATION))


ALL_CITIES = tuple(c for n in SSB_NATIONS for c in nation_cities(n))


# ---------------------------------------------------------------------------
# Schemas (row_bytes are real on-disk widths; SF=30 totals ~21 GB as in the
# paper's "scanning all tables reads 21GB").
# ---------------------------------------------------------------------------

LINEORDER_SCHEMA = Schema(
    [
        Column("lo_orderkey"),
        Column("lo_custkey"),
        Column("lo_suppkey"),
        Column("lo_partkey"),
        Column("lo_orderdate"),
        Column("lo_quantity"),
        Column("lo_extendedprice", "float"),
        Column("lo_discount", "float"),
        Column("lo_revenue", "float"),
        Column("lo_supplycost", "float"),
    ],
    row_bytes=100.0,
)

CUSTOMER_SCHEMA = Schema(
    [
        Column("c_custkey"),
        Column("c_name", "str"),
        Column("c_city", "str"),
        Column("c_nation", "str"),
        Column("c_region", "str"),
    ],
    row_bytes=140.0,
)

SUPPLIER_SCHEMA = Schema(
    [
        Column("s_suppkey"),
        Column("s_name", "str"),
        Column("s_city", "str"),
        Column("s_nation", "str"),
        Column("s_region", "str"),
    ],
    row_bytes=140.0,
)

PART_SCHEMA = Schema(
    [
        Column("p_partkey"),
        Column("p_name", "str"),
        Column("p_mfgr", "str"),
        Column("p_category", "str"),
        Column("p_brand1", "str"),
    ],
    row_bytes=150.0,
)

DATE_SCHEMA = Schema(
    [
        Column("d_datekey"),
        Column("d_year"),
        Column("d_yearmonthnum"),
        Column("d_weeknuminyear"),
    ],
    row_bytes=100.0,
)


@dataclass(frozen=True)
class SsbDataset:
    """One generated SSB database."""

    sf: float
    seed: int
    lineorder: Table
    customer: Table
    supplier: Table
    part: Table
    date: Table

    @property
    def tables(self) -> dict[str, Table]:
        return {
            "lineorder": self.lineorder,
            "customer": self.customer,
            "supplier": self.supplier,
            "part": self.part,
            "date": self.date,
        }

    @property
    def real_bytes(self) -> float:
        return sum(t.real_bytes for t in self.tables.values())


# ---------------------------------------------------------------------------
# Generation
# ---------------------------------------------------------------------------


def _gen_rows(real: float, base: float, cap: float, sf: float) -> tuple[int, float]:
    """(generated row count, row weight) for a table of ``real`` real rows."""
    gen = int(min(max(base * sf, base), cap))
    return gen, real / gen


def _log2_factor(sf: float) -> float:
    import math

    return 1.0 + (math.log2(sf) if sf > 1 else 0.0)


def _make_date() -> Table:
    rows = []
    for year in YEARS:
        for day in range(365):
            month = day // 31 + 1  # 12 approximate months
            datekey = year * 10000 + month * 100 + (day % 31 + 1)
            rows.append((datekey, year, year * 100 + month, day // 7 + 1))
    # real date table has 2556 rows; we generate 2555, weight ~1.
    return Table("date", DATE_SCHEMA, rows, row_weight=2556.0 / len(rows))


def _make_customer(sf: float, seed: int) -> Table:
    rng = make_rng(seed, "customer")
    gen, weight = _gen_rows(30_000 * sf, 600, 3_000, sf)
    rows = []
    for key in range(1, gen + 1):
        nation = SSB_NATIONS[rng.randrange(len(SSB_NATIONS))]
        city = nation_cities(nation)[rng.randrange(CITIES_PER_NATION)]
        rows.append((key, f"Customer#{key:09d}", city, nation, nation_region(nation)))
    return Table("customer", CUSTOMER_SCHEMA, rows, row_weight=weight)


def _make_supplier(sf: float, seed: int) -> Table:
    rng = make_rng(seed, "supplier")
    gen, weight = _gen_rows(2_000 * sf, 200, 2_000, sf)
    rows = []
    for key in range(1, gen + 1):
        nation = SSB_NATIONS[rng.randrange(len(SSB_NATIONS))]
        city = nation_cities(nation)[rng.randrange(CITIES_PER_NATION)]
        rows.append((key, f"Supplier#{key:09d}", city, nation, nation_region(nation)))
    return Table("supplier", SUPPLIER_SCHEMA, rows, row_weight=weight)


def _make_part(sf: float, seed: int) -> Table:
    rng = make_rng(seed, "part")
    factor = _log2_factor(sf)
    gen, weight = _gen_rows(200_000 * factor, 800 * factor, 2_400, max(sf, 1.0))
    rows = []
    for key in range(1, gen + 1):
        mfgr_num = rng.randrange(1, 6)
        cat_num = rng.randrange(1, 6)
        brand_num = rng.randrange(1, 41)
        mfgr = f"MFGR#{mfgr_num}"
        category = f"MFGR#{mfgr_num}{cat_num}"
        brand = f"{category}{brand_num:02d}"
        rows.append((key, f"Part#{key:07d}", mfgr, category, brand))
    return Table("part", PART_SCHEMA, rows, row_weight=weight)


def _make_lineorder(
    sf: float, seed: int, customer: Table, supplier: Table, part: Table, date: Table
) -> Table:
    rng = make_rng(seed, "lineorder")
    gen, weight = _gen_rows(6_000_000 * sf, 6_000, 60_000, sf)
    datekeys = [row[0] for row in date.iter_rows()]
    ncust, nsupp, npart, ndate = len(customer), len(supplier), len(part), len(datekeys)
    rows = []
    randrange = rng.randrange
    for key in range(1, gen + 1):
        quantity = randrange(1, 51)
        extendedprice = float(randrange(90_000, 1_100_000)) / 100.0
        discount = float(randrange(0, 11))
        revenue = extendedprice * (100.0 - discount) / 100.0
        rows.append(
            (
                key,
                randrange(1, ncust + 1),
                randrange(1, nsupp + 1),
                randrange(1, npart + 1),
                datekeys[randrange(ndate)],
                quantity,
                extendedprice,
                discount,
                revenue,
                extendedprice * 0.6,
            )
        )
    return Table("lineorder", LINEORDER_SCHEMA, rows, row_weight=weight)


def generate_ssb(sf: float = 1.0, seed: int = 42) -> SsbDataset:
    """Generate (and memoize) an SSB database at scale factor ``sf``.

    Tables are immutable, so the cached dataset is safe to share across
    simulation runs.  The memo key includes the effective packed-storage
    flag: table layout is baked in at build time, so a packed-mode build
    must never be served to a boxed-mode caller (and vice versa) when
    both modes run in one process (A/B benches, golden tests)."""
    return _generate_ssb(sf, seed, packed_storage_active())


@lru_cache(maxsize=8)
def _generate_ssb(sf: float, seed: int, _packed: bool) -> SsbDataset:
    if sf <= 0:
        raise ValueError("scale factor must be positive")
    date = _make_date()
    customer = _make_customer(sf, seed)
    supplier = _make_supplier(sf, seed)
    part = _make_part(sf, seed)
    lineorder = _make_lineorder(sf, seed, customer, supplier, part, date)
    return SsbDataset(
        sf=sf,
        seed=seed,
        lineorder=lineorder,
        customer=customer,
        supplier=supplier,
        part=part,
        date=date,
    )
