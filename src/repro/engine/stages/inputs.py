"""Consumer-side input wrapper: read + fused selection.

Selections never get their own packets (see :mod:`repro.query.plan`); the
consuming operator reads its input through a :class:`FilteredInput`, which
charges the consumer's per-tuple read cost and -- when the input was wrapped
in SelectNodes -- evaluates the fused predicate, charging per predicate
term.  Keeping predicate evaluation on the *consumer* side is what lets a
raw circular scan be shared by queries with different predicates."""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Iterator

from repro.engine.exchange import END
from repro.query.expr import And, Expr
from repro.query.plan import PlanNode, SelectNode
from repro.storage.page import Batch

if TYPE_CHECKING:  # pragma: no cover
    from repro.sim.costmodel import CostModel


def unwrap_selects(node: PlanNode) -> tuple[PlanNode, Expr | None]:
    """Strip a chain of SelectNodes, folding predicates into one conjunction
    (outermost select evaluated last, matching plan semantics)."""
    predicate: Expr | None = None
    while isinstance(node, SelectNode):
        predicate = node.predicate if predicate is None else And(node.predicate, predicate)
        node = node.child
    return node, predicate


class FilteredInput:
    """A reader plus an optional fused predicate."""

    def __init__(
        self,
        reader: Any,
        cost: "CostModel",
        predicate: Expr | None,
        schema,
        charge_read: bool = True,
    ):
        self.reader = reader
        self.cost = cost
        self.schema = schema
        self.charge_read = charge_read
        self.terms = predicate.terms if predicate is not None else 0
        self._pred = predicate.compile(schema) if predicate is not None else None

    def read(self) -> Iterator[Any]:
        """Next (filtered) batch, or END."""
        batch = yield from self.reader.read()
        if batch is END:
            return END
        n = len(batch.rows)
        if self.charge_read and n:
            yield self.cost.read(n, batch.weight)
        if self._pred is None or n == 0:
            return batch
        yield self.cost.predicate(n, batch.weight, max(self.terms, 1))
        pred = self._pred
        kept = [r for r in batch.rows if pred(r)]
        return Batch(kept, batch.weight)
