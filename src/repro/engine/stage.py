"""Stage base: packet admission, sharing detection, worker spawning.

Each stage keeps a registry of in-flight host packets keyed by plan
signature.  Admitting a packet whose signature matches a registered host
*inside the host's Window of Opportunity* attaches it as a satellite: its
whole sub-plan is cancelled and its consumers reuse the host's results
(paper Section 2.3).

On top of the WoP, cache-eligible stages consult the shared result cache
(:mod:`repro.cache`) on dispatch.  A probe *hit* replays the materialized
pages through the packet's own exchange at memory-read cost -- the whole
sub-plan is cancelled exactly as for a satellite, but with no host required
to be in flight: sharing beyond the Window of Opportunity.  A probe *miss*
that becomes a host additionally spills its output into the cache through
one extra SPL consumer; the SPL's pull model keeps the producer's critical
path untouched (the Section 4 argument) and its bounded size still governs
producer pacing.

Under query folding (``EngineConfig.query_folding``; see
:mod:`repro.query.subsume`), both layers also match by *subsumption*.  When
no exact host or cache entry exists, admission searches the registry for a
host whose plan subsumes the packet's and -- if one is inside its WoP --
attaches through a residual operator: a worker streams the host's output
through the compiled post-filter (or roll-up re-aggregation) into the
packet's own exchange, at memory-read + residual cost instead of the whole
sub-plan.  Failing that, the result cache is probed for a *subsuming* entry
and replayed the same way.  The folded packet still registers its own exact
signature (identical arrivals attach to it) and still spills to the cache,
so one broad host seeds both sharing layers for its whole cone of narrower
queries.  Admission order: exact cache hit, exact WoP attach, subsuming WoP
fold, subsuming cache fold, then query-centric.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Generator, Iterator

from repro.engine.exchange import END
from repro.engine.packet import Packet
from repro.engine.wop import STAGE_WOP, WindowOfOpportunity
from repro.query.plan import referenced_tables
from repro.query.subsume import FoldPlan, FoldPlanner, ResidualOperator
from repro.sim.commands import CPU
from repro.storage.page import Batch

if TYPE_CHECKING:  # pragma: no cover
    from repro.cache import CacheEntry, ResultCache
    from repro.engine.qpipe import QPipeEngine
    from repro.query.plan import PlanNode
    from repro.query.star import Query


class Stage:
    """One relational-operator stage of the QPipe engine."""

    def __init__(self, engine: "QPipeEngine", name: str):
        self.engine = engine
        self.name = name
        self.wop = STAGE_WOP.get(name, WindowOfOpportunity.NONE)
        self._registry: dict[tuple, Packet] = {}
        self.packets_admitted = 0
        self.packets_shared = 0
        self.packets_cached = 0
        self.packets_folded = 0  # attached to a subsuming in-flight host
        self.packets_fold_cached = 0  # served from a subsuming cache entry

    # ------------------------------------------------------------------
    @property
    def sp_enabled(self) -> bool:
        cfg = self.engine.config
        return {
            "tablescan": cfg.sp_scan,
            "join": cfg.sp_join,
            "aggregate": cfg.sp_agg,
            "sort": cfg.sp_sort,
            "cjoin": cfg.sp_cjoin,
        }.get(self.name, False)

    def result_cache(self) -> "ResultCache | None":
        """The shared result cache, when one exists and this stage is
        cache-eligible (None otherwise -- the zero-cost default path)."""
        if self.name not in self.engine.config.result_cache_stages:
            return None
        return self.engine.storage.result_cache

    def make_packet(self, node: "PlanNode", query: "Query") -> Packet:
        return Packet(node, query, self.name, self.wop)

    def admit(self, packet: Packet) -> bool:
        """Register ``packet``; returns True if its sub-plan must not be
        built -- it attached as a satellite (exactly or through a fold),
        or it is served from the result cache (exactly or folded)."""
        self.packets_admitted += 1
        cache = self.result_cache()
        if cache is not None:
            entry = cache.probe(packet.signature)
            if entry is not None:
                packet.exchange = self.engine.new_exchange(
                    f"{self.name}.p{packet.packet_id}"
                )
                self.packets_cached += 1
                packet.query.cache_served = True
                self._record_cache_hit(packet)
                self.spawn_worker(packet, self._replay_cached(packet, entry))
                return True
        if self.sp_enabled:
            host = self._registry.get(packet.signature)
            if host is not None and host.can_attach():
                host.attach_satellite(packet)
                self.packets_shared += 1
                self._record_sharing(packet)
                return True
        fold_on = self.engine.config.use_query_folding()
        if fold_on and self.sp_enabled and self._try_fold_host(packet, cache):
            return True
        if fold_on and cache is not None and self._try_fold_cached(packet, cache):
            return True
        packet.exchange = self.engine.new_exchange(f"{self.name}.p{packet.packet_id}")
        if self.sp_enabled:
            # Replaces a host that fell out of its WoP, if any.
            self._registry[packet.signature] = packet
        if cache is not None and self._fill_eligible(packet, cache):
            self.engine.sim.spawn(
                self._fill_cache(packet, cache),
                name=f"cachefill-{self.name}-p{packet.packet_id}",
            )
        return False

    def unregister(self, packet: Packet) -> None:
        """Remove a host from the registry (step WoP: on first output)."""
        if self._registry.get(packet.signature) is packet:
            del self._registry[packet.signature]

    def spawn_worker(self, packet: Packet, gen: Generator[Any, Any, Any]) -> None:
        self.engine.sim.spawn(
            gen,
            name=f"q{packet.query.query_id}-{self.name}-p{packet.packet_id}",
            query_id=packet.query.query_id,
        )

    # ------------------------------------------------------------------
    # Result cache: replay (hit) and spill (fill-on-miss)
    # ------------------------------------------------------------------
    def _fill_eligible(self, packet: Packet, cache: "ResultCache") -> bool:
        """Spill this host's output into the cache?  Only through an SPL
        (a pull-model extra consumer is free for the producer; a FIFO
        satellite would push copy costs onto its critical path), and only
        once per signature at a time."""
        if packet.exchange.kind != "spl":
            return False
        return cache.begin_fill(packet.signature)

    def _replay_cached(self, packet: Packet, entry: "CacheEntry") -> Iterator[Any]:
        """Worker for a cache hit: replay the materialized pages through
        the packet's exchange at memory-read cost, then close."""
        cost = self.engine.cost
        exchange = packet.exchange
        yield CPU(cost.cache_probe, "misc")
        for batch in entry.batches:
            yield CPU(cost.cache_replay_page, "misc")
            yield cost.read(len(batch), batch.weight)
            yield from exchange.emit(Batch(list(batch.rows), batch.weight))
        packet.mark_started()
        exchange.close()
        packet.finished = True

    def _fill_cache(self, packet: Packet, cache: "ResultCache") -> Iterator[Any]:
        """Worker for a fillable miss: one extra consumer on the host's
        SPL accumulates its pages and commits them at completion.  A spill
        that outgrows the per-entry bound is abandoned (pages are still
        drained so the bounded SPL never blocks on the cache)."""
        sim = self.engine.sim
        cost = self.engine.cost
        key = packet.signature
        reader = packet.exchange.open_reader()
        start = sim.now
        row_bytes = max(packet.node.schema.row_bytes, 1.0)
        batches: list[Batch] = []
        nbytes = 0.0
        abandoned = False
        try:
            while True:
                batch = yield from reader.read()
                if batch is END:
                    break
                if abandoned:
                    continue
                nbytes += len(batch) * batch.weight * row_bytes
                if not cache.fits_entry(nbytes):
                    abandoned = True
                    batches = []
                    continue
                yield CPU(cost.cache_store_page, "misc")
                batches.append(Batch(list(batch.rows), batch.weight))
            if not abandoned:
                cache.admit(
                    key,
                    batches,
                    nbytes,
                    cost_seconds=sim.now - start,
                    tables=referenced_tables(packet.node),
                    stage=self.name,
                    node=packet.node,
                )
        finally:
            cache.end_fill(key)

    # ------------------------------------------------------------------
    # Query folding (repro.query.subsume): subsumption attach and replay
    # ------------------------------------------------------------------
    def _try_fold_host(self, packet: Packet, cache: "ResultCache | None") -> bool:
        """Search the registry for the cheapest host whose plan subsumes
        this packet's and attach through a residual operator.  The fold
        reader is opened *here*, before the host can emit -- a host that
        has already started emitting is skipped (pages before the attach
        point would be lost)."""
        planner = FoldPlanner(packet.node)
        for sig, host in self._registry.items():
            if sig == packet.signature:
                continue  # exact attach was already tried (and missed)
            if host.started_emitting or not host.can_attach():
                continue
            exchange = host.exchange
            if exchange is None or exchange.kind != "spl":
                continue  # pull-model only: a FIFO host would pay the copies
            planner.consider(host.node, host, tie_break=(host.packet_id,))
        best = planner.best()
        if best is None:
            return False
        host, plan = best
        reader = host.exchange.open_reader()
        packet.exchange = self.engine.new_exchange(f"{self.name}.p{packet.packet_id}")
        self.packets_folded += 1
        self.engine.sim.metrics.bump(f"fold_attach:{self._sharing_label(packet)}")
        # The folded packet is a full host for its own exact signature:
        # identical arrivals attach to it, and it may spill to the cache.
        self._registry[packet.signature] = packet
        if cache is not None and self._fill_eligible(packet, cache):
            self.engine.sim.spawn(
                self._fill_cache(packet, cache),
                name=f"cachefill-{self.name}-p{packet.packet_id}",
            )
        self.spawn_worker(
            packet, self._fold_from_host(packet, host, reader, plan, planner.examined)
        )
        return True

    def _fold_from_host(
        self,
        packet: Packet,
        host: Packet,
        reader: Any,
        plan: FoldPlan,
        examined: int,
    ) -> Iterator[Any]:
        """Worker for a host fold: stream the host's output through the
        compiled residual operator into this packet's own exchange.  The
        packet pays the fold search, a memory read per page, the residual
        predicate per term, and -- for roll-ups -- re-aggregation per
        surviving group; the host's critical path is untouched (one more
        SPL reader under the pull model)."""
        cost = self.engine.cost
        exchange = packet.exchange
        op = ResidualOperator(
            plan,
            host.node.schema,
            batch_kernels=self.engine.config.use_batch_kernels(),
        )
        yield cost.fold_search(examined)
        terms = plan.residual_terms
        first = True
        while True:
            batch = yield from reader.read()
            if batch is END:
                break
            n = len(batch)
            if n == 0:
                continue
            yield cost.read(n, batch.weight)
            if terms:
                yield cost.predicate(n, batch.weight, terms)
            if op.regrouping:
                merged = op.absorb(list(batch.rows))
                if merged:
                    yield cost.aggregate(merged, batch.weight, op.n_measures)
                continue
            rows = op.apply(list(batch.rows))
            if rows:
                if first:
                    first = False
                    packet.mark_started()
                    self.unregister(packet)
                yield from exchange.emit(Batch(rows, batch.weight))
        if op.regrouping:
            packet.mark_started()
            self.unregister(packet)
            yield from exchange.emit(Batch(op.finalize(), 1.0))
        else:
            packet.mark_started()
            self.unregister(packet)
        exchange.close()
        packet.finished = True

    def _try_fold_cached(self, packet: Packet, cache: "ResultCache") -> bool:
        """Probe the result cache for a *subsuming* entry (exact probe
        already missed) and replay it through the residual operator."""
        hit = cache.probe_subsuming(packet.node)
        if hit is None:
            return False
        entry, plan, examined = hit
        packet.exchange = self.engine.new_exchange(f"{self.name}.p{packet.packet_id}")
        self.packets_fold_cached += 1
        packet.query.cache_served = True
        self.engine.sim.metrics.bump(f"fold_cache_hit:{self._sharing_label(packet)}")
        self.spawn_worker(packet, self._replay_folded(packet, entry, plan, examined))
        return True

    def _replay_folded(
        self, packet: Packet, entry: "CacheEntry", plan: FoldPlan, examined: int
    ) -> Iterator[Any]:
        """Worker for a folded cache hit: like :meth:`_replay_cached`, but
        every page passes through the residual operator first."""
        cost = self.engine.cost
        exchange = packet.exchange
        op = ResidualOperator(
            plan,
            entry.node.schema,
            batch_kernels=self.engine.config.use_batch_kernels(),
        )
        yield cost.fold_search(examined)
        yield CPU(cost.cache_probe, "misc")
        terms = plan.residual_terms
        for batch in entry.batches:
            yield CPU(cost.cache_replay_page, "misc")
            n = len(batch)
            yield cost.read(n, batch.weight)
            if terms and n:
                yield cost.predicate(n, batch.weight, terms)
            if op.regrouping:
                merged = op.absorb(list(batch.rows))
                if merged:
                    yield cost.aggregate(merged, batch.weight, op.n_measures)
            else:
                rows = op.apply(list(batch.rows))
                if rows:
                    yield from exchange.emit(Batch(rows, batch.weight))
        if op.regrouping:
            yield from exchange.emit(Batch(op.finalize(), 1.0))
        packet.mark_started()
        exchange.close()
        packet.finished = True

    # ------------------------------------------------------------------
    def _sharing_label(self, packet: Packet) -> str:
        label = getattr(packet.node, "label", None)
        return f"{self.name}:{label}" if label else self.name

    def _record_sharing(self, packet: Packet) -> None:
        self.engine.sim.metrics.record_sharing(self._sharing_label(packet))

    def _record_cache_hit(self, packet: Packet) -> None:
        self.engine.sim.metrics.bump(f"result_cache_hit:{self._sharing_label(packet)}")

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<Stage {self.name} hosts={len(self._registry)}>"
