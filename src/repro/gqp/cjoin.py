"""The CJOIN pipeline: shared selections + shared hash-joins for star
queries, evaluated by a single always-on dataflow (see package docstring).

Thread structure (all simulated, all daemons):

* 1 preprocessor -- circular fact scan, admission batching, page tagging;
* ``filter_workers`` workers -- move fact pages through the filter chain
  (the paper's *horizontal* configuration; the per-page ``filter_sync_page``
  charge models their queue synchronization, one of CJOIN's inherent
  bookkeeping costs);
* ``distributor_parts`` workers -- route joined tuples to query outputs.

Admission (Section 3.1/3.2) pauses the pipeline: it waits for in-flight
pages to drain, clears retired bitmap slots, scans the referenced dimension
tables through the buffer pool (so file-system caching -- or its absence
under direct I/O -- shows up exactly as in the paper's Figure 13), inserts
or re-annotates selected dimension tuples in the filter hash tables, and
records the new query's point of entry on the fact table's circular scan.
"""

from __future__ import annotations

from operator import itemgetter
from typing import TYPE_CHECKING, Any, Callable, Iterator

from repro.sim.commands import CPU, CPU_FUSED, SLEEP, CpuCommand
from repro.sim.sync import Channel, Condition
from repro.gqp.bitmap import SlotAllocator
from repro.gqp.ordering import ChainOrderer
from repro.query.expr import column_indices, row_key_fn
from repro.storage.arrangements import ARRANGEMENTS
from repro.storage.packed import as_list
from repro.storage.page import Batch, ColumnBatch
from repro.storage.prefetch import PageSource

if TYPE_CHECKING:  # pragma: no cover
    from repro.engine.packet import Packet
    from repro.engine.qpipe import QPipeEngine
    from repro.query.plan import CJoinNode
    from repro.storage.table import Table


class _Entry:
    """One dimension tuple resident in a filter's hash table."""

    __slots__ = ("row", "bitmap")

    def __init__(self, row: tuple, bitmap: int):
        self.row = row
        self.bitmap = bitmap


class Filter:
    """Shared scan + shared selection + shared hash-join for one dimension
    (CJOIN groups the three into a 'filter')."""

    __slots__ = (
        "dim_name",
        "fact_fk_idx",
        "dim_key_idx",
        "weight",
        "ht",
        "pass_mask",
        "referencing",
        "fk_get",
        "ewma_pass",
        "probe_rows",
        "pass_rows",
    )

    def __init__(self, dim_name: str, fact_fk_idx: int, dim_key_idx: int, weight: float):
        self.dim_name = dim_name
        self.fact_fk_idx = fact_fk_idx
        self.dim_key_idx = dim_key_idx
        self.weight = weight  # dim row weight, for bookkeeping charges
        self.ht: dict[Any, _Entry] = {}
        self.pass_mask = 0  # bits of queries that do not reference this dim
        self.referencing: set[int] = set()  # slots that do
        self.fk_get = itemgetter(fact_fk_idx)  # FK column extractor (kernels)
        #: observed selectivity (see repro.gqp.ordering): EWMA of per-page
        #: pass rates, plus cumulative probe/pass row counts.  Maintained
        #: only when adaptive ordering is on; stats retire with the filter.
        self.ewma_pass: float | None = None
        self.probe_rows = 0
        self.pass_rows = 0

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<Filter {self.dim_name} entries={len(self.ht)}>"


class _QueryState:
    """Runtime state of one admitted star query."""

    __slots__ = (
        "packet",
        "slot",
        "bit",
        "pages_left",
        "outstanding",
        "no_more_pages",
        "projector",
        "fact_pred",
        "fact_pred_terms",
        "done",
        "agg_node",
        "agg_group_idx",
        "agg_key_fn",
        "agg_value_fns",
        "agg_groups",
    )

    def __init__(self, packet: "Packet", slot: int, pages_left: int):
        self.packet = packet
        self.slot = slot
        self.bit = 1 << slot  # slot mask, hoisted out of the per-page loops
        self.pages_left = pages_left  # fact pages until the scan wraps to the entry point
        self.outstanding = 0  # addressed pages not yet distributed
        self.no_more_pages = False
        self.projector: Callable | None = None
        self.fact_pred: Callable | None = None
        self.fact_pred_terms = 0
        self.done = False
        # DataPath-style shared aggregation (running sums per group & query);
        # None when the query's aggregation runs query-centric above the GQP.
        self.agg_node = None
        self.agg_group_idx: tuple[int, ...] = ()
        self.agg_key_fn: Callable | None = None
        self.agg_value_fns: list[Callable | None] = []
        self.agg_groups: dict | None = None


class _WorkItem:
    """One tagged fact page moving through the pipeline.

    Surviving tuples are carried as three *parallel lists* -- ``rows``
    (fact rows), ``bms`` (per-row query bitmaps) and ``dims`` (per-row
    tuples of joined dimension rows) -- instead of a list of triples, so
    the distributor's bitmap pass is a single comprehension over ``bms``
    with no per-row unpacking."""

    __slots__ = (
        "batch",
        "mask",
        "addressed",
        "filters",
        "filter_pos",
        "high_slots",
        "rows",
        "bms",
        "dims",
        "live",
    )

    def __init__(
        self,
        batch: Batch,
        mask: int,
        addressed: list[_QueryState],
        filters: list[Filter],
        filter_pos: dict[str, int],
        high_slots: int,
    ):
        self.batch = batch
        self.mask = mask
        self.addressed = addressed
        self.filters = filters
        self.filter_pos = filter_pos
        self.high_slots = high_slots
        self.rows: list[tuple] = []
        self.bms: list[int] = []
        self.dims: list[tuple] = []
        #: OR of the surviving rows' bitmaps (maintained by the columnar
        #: kernels only; drives the irrelevant-filter short-circuit)
        self.live = mask


class CJoinPipeline:
    """The always-on GQP for one fact table."""

    def __init__(self, engine: "QPipeEngine", fact_table: "Table"):
        self.engine = engine
        self.sim = engine.sim
        self.cost = engine.cost
        self.storage = engine.storage
        self.fact = fact_table
        cfg = engine.config

        self.filters: dict[str, Filter] = {}  # insertion-ordered chain
        #: snapshot of the filter chain handed to every work item.  The
        #: chain only changes during admission/retirement (pipeline paused),
        #: so the preprocessor reuses one (list, position-map) pair instead
        #: of rebuilding both for every fact page; work items must treat
        #: them as read-only.
        self._chain_snapshot: tuple[list[Filter], dict[str, int]] | None = None
        #: host-side memo of admission dim-scan selections, keyed by
        #: (dim table, predicate) -- predicates compare structurally, and
        #: random workloads draw them from small per-dimension vocabularies,
        #: so repeat admissions skip the predicate pass.  Every simulated
        #: charge (page reads, scan and predicate cycles) is still paid per
        #: admission; only the Python list comprehension is reused.  Entries
        #: are read-only downstream (_apply_admission never mutates them).
        self._dim_sel_cache: dict[tuple, list] = {}
        self.active: dict[int, _QueryState] = {}
        self.pending: list["Packet"] = []
        self.slots = SlotAllocator()

        #: adaptive data plane (repro.gqp.ordering): both default off, in
        #: which case the chain stays in plan-insertion order and every
        #: charge is bit-identical to the reference implementation.
        self.filter_kernels = cfg.use_gqp_filter_kernels()
        self._vertical = cfg.cjoin_threads == "vertical"
        self.orderer: ChainOrderer | None = (
            ChainOrderer(
                alpha=cfg.gqp_selectivity_alpha,
                interval=cfg.gqp_reorder_interval,
                hysteresis=cfg.gqp_order_hysteresis,
            )
            if cfg.use_gqp_adaptive_ordering()
            else None
        )

        self._page_chan = Channel(self.sim, capacity=4, name=f"cjoin.{fact_table.name}.pages")
        self._dist_chan = Channel(self.sim, capacity=8, name=f"cjoin.{fact_table.name}.dist")
        self.inflight = 0
        self._work = Condition(self.sim, "cjoin.work")
        self._idle = Condition(self.sim, "cjoin.idle")
        self._pause_requested = False
        self._paused = False
        self._pause_cond = Condition(self.sim, "cjoin.paused")
        self._resume_cond = Condition(self.sim, "cjoin.resume")
        self._source: PageSource | None = None

        self._vchans: list[Channel] = []
        self.sim.spawn(self._preprocessor(), f"cjoin-{fact_table.name}-pre", daemon=True)
        self.sim.spawn(self._admission_worker(), f"cjoin-{fact_table.name}-adm", daemon=True)
        if cfg.cjoin_threads == "vertical":
            self._ensure_vertical_worker(0)
            self.sim.spawn(
                self._vertical_worker(0), f"cjoin-{fact_table.name}-vflt0", daemon=True
            )
        else:
            for i in range(cfg.filter_workers):
                self.sim.spawn(self._filter_worker(), f"cjoin-{fact_table.name}-flt{i}", daemon=True)
        for i in range(cfg.distributor_parts):
            self.sim.spawn(self._distributor_part(), f"cjoin-{fact_table.name}-dist{i}", daemon=True)

    # ------------------------------------------------------------------
    def submit(self, packet: "Packet") -> None:
        """Queue a CJOIN packet for the next admission batch."""
        self.pending.append(packet)
        self._work.notify_all()

    def _filter_chain(self) -> tuple[list[Filter], dict[str, int]]:
        """The cached (chain, name->position) snapshot for work items."""
        snap = self._chain_snapshot
        if snap is None:
            filters = list(self.filters.values())
            snap = (filters, {name: i for i, name in enumerate(self.filters)})
            self._chain_snapshot = snap
        return snap

    def _observe(self, flt: Filter, n_in: int, n_out: int) -> None:
        """Feed one filter application's (rows in, rows out) to the chain
        orderer and surface the running selectivity through the metrics
        counters.  No-op (and no counters) without adaptive ordering, so
        default-mode metrics stay bit-identical."""
        orderer = self.orderer
        if orderer is None or n_in <= 0:
            return
        orderer.observe(flt, n_in, n_out)
        metrics = self.sim.metrics
        name = flt.dim_name
        metrics.bump(f"cjoin_filter_probes.{name}", n_in)
        metrics.bump(f"cjoin_filter_passes.{name}", n_out)
        metrics.set_count(
            f"cjoin_filter_pass_permille.{name}", int(round(flt.ewma_pass * 1000))
        )

    def _reorder_chain(self) -> CpuCommand | None:
        """Re-sort ``self.filters`` most-selective-first (hysteresis
        permitting) and return the bookkeeping charge, or ``None`` when the
        order stands.  In-flight work items keep the snapshot they were
        tagged with, so a re-sort only affects pages not yet preprocessed."""
        order = self.orderer.propose(list(self.filters.values()))
        if order is None:
            return None
        self.filters = {name: self.filters[name] for name in order}
        self._chain_snapshot = None
        self.sim.metrics.bump("cjoin_chain_reorders")
        return self.cost.reorder(len(order))

    # ------------------------------------------------------------------
    # Preprocessor
    # ------------------------------------------------------------------
    def _preprocessor(self) -> Iterator[Any]:
        sim = self.sim
        cost = self.cost
        while True:
            if self._pause_requested:
                # Admission needs the pipeline quiescent: drain in-flight
                # pages, park, and wait to be resumed.
                while self.inflight > 0:
                    yield from self._idle.wait()
                self._paused = True
                self._pause_cond.notify_all()
                while self._pause_requested:
                    yield from self._resume_cond.wait()
                self._paused = False
                continue
            addressable = [s for s in self.active.values() if not s.no_more_pages]
            if not addressable:
                yield from self._work.wait()
                continue
            if self._source is None:
                self._source = PageSource(
                    sim, self.storage, self.fact, 0, name=f"cjoin.{self.fact.name}"
                )
            page = yield from self._source.next()
            yield cost.preprocess(len(page), page.weight)
            orderer = self.orderer
            if orderer is not None and not self._vertical and orderer.tick_page():
                # Horizontal logical tick: every ``gqp_reorder_interval``
                # pages the preprocessor may re-sort the chain; pages
                # already in flight keep their own snapshot.
                reorder_cmd = self._reorder_chain()
                if reorder_cmd is not None:
                    yield reorder_cmd
            mask = 0
            addressed: list[_QueryState] = []
            for state in addressable:
                mask |= state.bit
                state.outstanding += 1
                state.pages_left -= 1
                if state.pages_left == 0:
                    state.no_more_pages = True  # wrapped to its point of entry
                addressed.append(state)
            filters, filter_pos = self._filter_chain()
            item = _WorkItem(
                batch=page.to_batch(self.engine.config.use_columnar_pages()),
                mask=mask,
                addressed=addressed,
                filters=filters,
                filter_pos=filter_pos,
                high_slots=max(self.slots.high_water, 1),
            )
            self.inflight += 1
            yield from self._page_chan.put(item)

    # ------------------------------------------------------------------
    # Admission (pipeline paused)
    # ------------------------------------------------------------------
    def _admission_worker(self) -> Iterator[Any]:
        """Admit pending packets in batches.

        Following the original CJOIN, the expensive part of admission --
        scanning the referenced dimension tables and evaluating each new
        query's selection predicates -- happens *asynchronously* while the
        pipeline keeps flowing ("parts of the admission phase ... can be
        done asynchronously while CJOIN is running").  Only the brief filter
        re-adjustment needs the pipeline paused and drained.  Queries
        arriving during an admission form the next batch."""
        sim = self.sim
        cost = self.cost
        batched = self.engine.config.gqp_batched_execution
        while True:
            if not self.pending:
                yield from self._work.wait()
                continue
            if batched and self.active:
                # SharedDB-style generations: the next batch starts only
                # when every query of the current one has completed (its
                # latency is dominated by the longest-running member).
                yield from self._work.wait()
                continue
            batch, self.pending = self.pending, []
            t0 = sim.now
            # ---- phase A (pipeline running): per-query dimension scans ---
            prepared: list[tuple["Packet", list[tuple[Any, list[tuple]]]]] = []
            for packet in batch:
                node, _agg = self._split_node(packet)
                plans = []
                for dimspec in node.dims:
                    selected = yield from self._scan_dim_selected(dimspec)
                    plans.append((dimspec, selected))
                prepared.append((packet, plans))
            # ---- phase B (pipeline paused): re-adjust filters ------------
            self._pause_requested = True
            self._work.notify_all()  # wake an idle preprocessor to park
            while not self._paused:
                yield from self._pause_cond.wait()
            yield from self._reclaim_retired_slots()
            touched: set[str] = set()
            for packet, plans in prepared:
                yield from self._apply_admission(packet, plans)
                touched.update(d.dim_table for d, _ in plans)
            if self.orderer is not None and self._vertical:
                # Vertical logical tick: the per-position workers hand
                # pages stage to stage, so the chain only re-sorts while
                # the pipeline is provably drained -- at admission pauses.
                reorder_cmd = self._reorder_chain()
                if reorder_cmd is not None:
                    yield reorder_cmd
            # The pipeline stall itself (re-adjusting filters, 3.1 (e)).
            yield SLEEP(cost.admission_pause + cost.admission_pause_per_filter * len(touched))
            self._pause_requested = False
            self._resume_cond.notify_all()
            self._work.notify_all()
            sim.metrics.add_duration("cjoin_admission", sim.now - t0)
            sim.metrics.bump("cjoin_admission_batches")
            sim.metrics.bump("cjoin_queries_admitted", len(batch))

    def _scan_dim_selected(self, dimspec) -> Iterator[Any]:
        """Phase A: scan one dimension table for one query and return its
        selected rows.  Every admitted query pays this scan (Section 3.1
        lists it among the per-query admission costs -- the cost CJOIN-SP
        avoids for identical packets); the physical I/O is shared through
        the buffer pool."""
        cost = self.cost
        dim = self.storage.table(dimspec.dim_table)
        kernel = None
        terms = 0
        cached = None
        cache_key = None
        if dimspec.predicate is not None:
            terms = dimspec.predicate.terms
            cache_key = (dimspec.dim_table, dimspec.predicate)
            cached = self._dim_sel_cache.get(cache_key)
            if cached is None and self.engine.config.use_query_folding():
                # Query folding: derive this selection from a subsuming
                # sibling selection or a sorted arrangement variant
                # instead of compiling a fresh predicate kernel.  The page
                # loop below still charges every scan/predicate cycle
                # (kernel stays None), so simulated ticks are unchanged.
                cached = self._fold_dim_selected(dim, dimspec)
            if cached is None:
                if self.engine.config.use_batch_kernels():
                    kernel = dimspec.predicate.compile_batch(dim.schema)
                else:
                    pred = dimspec.predicate.compile(dim.schema)
                    kernel = lambda rows, _p=pred: [r for r in rows if _p(r)]  # noqa: E731
        fuse = self.engine.config.use_fuse_charges()
        # Fuse mode: prepay the next page's buffer-pool latch charge at the
        # tail of this page's scan/predicate command -- only pure compute
        # happens in between, so the charge instants are unchanged and one
        # simulator event per page disappears (admission scans every dim
        # page per admitted query, the hottest page loop in CJOIN).
        prepay = self.storage.latch_prepay_charge() if fuse else None
        fused_cmds: dict[int, Any] = {}
        last = dim.num_pages - 1
        prepaid = False
        selected: list[tuple] = []
        for page_index in range(dim.num_pages):
            page = yield from self.storage.read_page(dim, page_index, latch_prepaid=prepaid)
            rows = page.rows
            n = len(rows)
            if dimspec.predicate is not None:
                scan_cmd = cost.scan(n, page.weight)
                pred_cmd = cost.predicate(n, page.weight, max(terms, 1))
                if fuse:
                    if prepay is not None and page_index < last:
                        cmd = fused_cmds.get(n)
                        if cmd is None:
                            cmd = fused_cmds[n] = CPU_FUSED(scan_cmd, pred_cmd, prepay)
                        prepaid = True
                    else:
                        cmd = CPU_FUSED(scan_cmd, pred_cmd)
                        prepaid = False
                    yield cmd
                else:
                    yield scan_cmd
                    yield pred_cmd
                if kernel is not None:
                    selected.extend(kernel(rows))
            else:
                if prepay is not None and page_index < last:
                    cmd = fused_cmds.get(n)
                    if cmd is None:
                        cmd = fused_cmds[n] = CPU_FUSED(cost.scan(n, page.weight), prepay)
                    prepaid = True
                else:
                    cmd = cost.scan(n, page.weight)
                    prepaid = False
                yield cmd
                selected.extend(rows)
        if cached is not None:
            return cached
        if cache_key is not None:
            self._dim_sel_cache[cache_key] = selected
        return selected

    def _fold_dim_selected(self, dim, dimspec) -> list | None:
        """Derive one admission's dim-scan selection from already-shared
        state (query folding, host-side only -- no simulated charges):

        * **sibling selection** -- a ``_dim_sel_cache`` entry whose
          predicate *subsumes* this one filters down to exactly this
          selection (fewer rows touched than a full re-scan);
        * **range probe** -- when the predicate splits into a closed range
          on one column plus a residual, the shared arrangement keyed by
          that column serves the positions from its sorted variant
          (:meth:`~repro.storage.arrangements.Arrangement.range_positions`),
          re-sorted to table order.

        Returns ``None`` when neither applies (the caller compiles the
        ordinary predicate kernel).  The derived list is memoized under
        this exact predicate, seeding later exact hits and further folds."""
        from repro.query.subsume import predicate_subsumes, split_range

        predicate = dimspec.predicate
        metrics = self.sim.metrics
        provider: list | None = None
        for (tname, prov_pred), rows in self._dim_sel_cache.items():
            if tname != dimspec.dim_table:
                continue
            if predicate_subsumes(prov_pred, predicate)[0]:
                if provider is None or len(rows) < len(provider):
                    provider = rows
        if provider is not None:
            pred = predicate.compile(dim.schema)
            selected = [r for r in provider if pred(r)]
            self._dim_sel_cache[(dimspec.dim_table, predicate)] = selected
            metrics.bump("cjoin_fold_dim_sibling")
            return selected
        if not self.engine.config.use_arrangements():
            return None
        sr = split_range(predicate)
        if sr is None:
            return None
        col, lo, hi, residual = sr
        arr = ARRANGEMENTS.acquire(dim, col)
        try:
            # Positions come back in key order; table order (= scan order)
            # is restored by sorting, keeping the derived list identical
            # to what the page-by-page predicate scan would select.
            positions = sorted(arr.range_positions(lo, hi, residual))
            rows_src = arr.rows
            selected = [rows_src[p] for p in positions]
        finally:
            ARRANGEMENTS.release(arr)
        self._dim_sel_cache[(dimspec.dim_table, predicate)] = selected
        metrics.bump("cjoin_fold_dim_range")
        return selected

    def _apply_admission(self, packet: "Packet", plans: list[tuple[Any, list[tuple]]]) -> Iterator[Any]:
        """Phase B (paused): allocate the query's bitmap slot, extend the
        filters with its selected dimension tuples, and register its point
        of entry on the circular fact scan."""
        cost = self.cost
        fuse = self.engine.config.use_fuse_charges()
        node, agg_node = self._split_node(packet)
        slot = self.slots.alloc()
        bit = 1 << slot
        referenced = {d.dim_table for d, _ in plans}
        use_arr = self.engine.config.use_arrangements()
        for dimspec, selected in plans:
            flt = self._ensure_filter(dimspec)
            key_idx = flt.dim_key_idx
            ht = flt.ht
            inserts = 0
            annotations = 0
            arr = None
            if use_arr:
                # Shared arrangement: the dimension's key extraction is
                # memoized per predicate, and base-key uniqueness makes
                # every selected subset unique, so the set-equality check
                # below is skipped (it would always pass).  All admission
                # charges (dim scans above, hashing/build/bitmap below)
                # are still paid per admitted query -- only the Python
                # key list is reused across concurrent admissions.
                arr = ARRANGEMENTS.acquire(
                    self.storage.table(dimspec.dim_table), dimspec.dim_key
                )
            if arr is not None and arr.unique:
                keys = arr.keys_for(selected, dimspec.predicate)
                unique = True
            else:
                keys = [r[key_idx] for r in selected]
                unique = len(set(keys)) == len(keys)
            if arr is not None:
                # Transient pin: held only across the key extraction; the
                # extended filter owns its own _Entry table afterwards.
                ARRANGEMENTS.release(arr)
            if unique:
                # Unique keys (dimensions keyed by primary key -- the
                # common case): probe the hash table in one C-level map
                # pass, then branch only on the precomputed entries.
                entries = list(map(ht.get, keys))
                inserts = entries.count(None)
                annotations = len(keys) - inserts
                for key, r, entry in zip(keys, selected, entries):
                    if entry is None:
                        ht[key] = _Entry(r, bit)
                    else:
                        entry.bitmap |= bit
            else:
                for key, r in zip(keys, selected):
                    entry = ht.get(key)
                    if entry is None:
                        ht[key] = _Entry(r, bit)
                        inserts += 1
                    else:
                        entry.bitmap |= bit
                        annotations += 1
            cmds: list[CpuCommand] = []
            if inserts:
                cmds.append(cost.hashing(inserts, flt.weight))
                cmds.append(cost.build(inserts, flt.weight))
            if annotations:
                cmds.append(
                    CPU(cost.admission_bitmap * annotations * flt.weight, "joins")
                )
            if cmds:
                # Pure bookkeeping between the charges (pipeline paused):
                # fuse them into one event per extended filter.
                if fuse and len(cmds) > 1:
                    yield CPU_FUSED(*cmds)
                else:
                    for cmd in cmds:
                        yield cmd
        for name, flt in self.filters.items():
            if name in referenced:
                flt.referencing.add(slot)
            else:
                flt.pass_mask |= bit
        state = _QueryState(packet, slot, pages_left=self.fact.num_pages)
        state.projector = self._make_projector(node)
        if node.fact_predicate is not None:
            state.fact_pred = node.fact_predicate.compile(self.fact.schema)
            state.fact_pred_terms = node.fact_predicate.terms
        if agg_node is not None:
            schema = node.schema  # the projected (payload) schema
            state.agg_node = agg_node
            state.agg_group_idx = schema.indices(agg_node.group_by)
            state.agg_key_fn = row_key_fn(state.agg_group_idx)
            state.agg_value_fns = [
                a.expr.compile(schema) if a.expr is not None else None
                for a in agg_node.aggregates
            ]
            state.agg_groups = {}
        self.active[slot] = state

    def _ensure_filter(self, dimspec) -> Filter:
        flt = self.filters.get(dimspec.dim_table)
        if flt is None:
            dim = self.storage.table(dimspec.dim_table)
            flt = Filter(
                dim_name=dimspec.dim_table,
                fact_fk_idx=self.fact.schema.index(dimspec.fact_fk),
                dim_key_idx=dim.schema.index(dimspec.dim_key),
                weight=dim.row_weight,
            )
            # Every currently active query predates this filter, hence does
            # not reference it and must pass through freely.
            for state in self.active.values():
                flt.pass_mask |= state.bit
            self.filters[dimspec.dim_table] = flt
            self._chain_snapshot = None  # chain grew: work items need a fresh snapshot
        return flt

    def _reclaim_retired_slots(self) -> Iterator[Any]:
        """Clear the bits of completed queries from every filter entry and
        recycle their slots (done with the pipeline paused)."""
        cost = self.cost
        stale = self.slots.retired_mask()
        if not stale:
            return
        keep = ~stale
        for flt in self.filters.values():
            entries = len(flt.ht)
            dead = []
            for key, entry in flt.ht.items():
                entry.bitmap &= keep
                if entry.bitmap == 0:
                    dead.append(key)
            for key in dead:
                del flt.ht[key]
            flt.pass_mask &= keep
            flt.referencing -= {s for s in flt.referencing if stale >> s & 1}
            if entries:
                yield CPU(cost.admission_bitmap * entries * flt.weight, "joins")
        # Drop filters no longer referenced by any live query.
        dropped = [n for n, f in self.filters.items() if not f.referencing]
        for name in dropped:
            del self.filters[name]
        if dropped:
            self._chain_snapshot = None
        self.slots.reclaim()

    # ------------------------------------------------------------------
    # Filter workers (horizontal configuration)
    # ------------------------------------------------------------------
    def _apply_one_filter(self, item: _WorkItem, flt: Filter) -> Iterator[Any]:
        """Probe one filter with the item's surviving tuples (generator:
        charges the shared-operator costs); updates the item's parallel
        survivor lists in place.

        The survivor pass runs before the cycle charges so all of them
        (including the survivor-count-dependent ``emit_join``) can be fused
        into one simulator event; the computation is pure Python between
        yields, so the charge values, their order, and every simulated tick
        are identical to the unfused sequence."""
        cost = self.cost
        w = item.batch.weight
        rows = item.rows
        n = len(rows)
        if n == 0:
            return
        get = flt.ht.get
        fk = flt.fact_fk_idx
        pass_mask = flt.pass_mask
        new_rows: list[tuple] = []
        new_bms: list[int] = []
        new_dims: list[tuple] = []
        add_row = new_rows.append
        add_bm = new_bms.append
        add_dim = new_dims.append
        for row, bm, dims in zip(rows, item.bms, item.dims):
            entry = get(row[fk])
            if entry is None:
                bm &= pass_mask
                dim_row = None
            else:
                bm &= entry.bitmap | pass_mask
                dim_row = entry.row
            if bm:
                add_row(row)
                add_bm(bm)
                add_dim(dims + (dim_row,))
        self._observe(flt, n, len(new_rows))
        cmds = [
            cost.hashing(n, w),
            cost.probe(n, w, shared=True),
            cost.bitmap_and(n, w, item.high_slots),
        ]
        if new_rows:
            # Materializing the joined tuple (attaching the dimension
            # payload) costs the same as a query-centric join's output
            # materialization.
            cmds.append(cost.emit_join(len(new_rows), w))
        if self.engine.config.use_fuse_charges():
            yield CPU_FUSED(*cmds)
        else:
            for cmd in cmds:
                yield cmd
        item.rows, item.bms, item.dims = new_rows, new_bms, new_dims

    # ------------------------------------------------------------------
    # Columnar filter kernels (gqp_filter_kernels)
    # ------------------------------------------------------------------
    def _filter_kernel(self, item: _WorkItem, flt: Filter, cmds: list[CpuCommand]) -> None:
        """Columnar version of :meth:`_apply_one_filter`: hoists the FK
        column once, probes with a pre-bound ``dict.get`` over the column,
        and appends its charges to ``cmds`` instead of yielding them (the
        caller fuses the whole chain's charges into one event).

        Short-circuit: a filter whose ``pass_mask`` covers every *live*
        bit on the page cannot kill a tuple and no surviving query reads
        its dimension payload -- the kernel only appends the positional
        placeholder column (chain positions must stay aligned with the
        snapshot's ``filter_pos``) and charges nothing, which is the one
        way kernels mode changes simulated charges."""
        rows = item.rows
        n = len(rows)
        if n == 0:
            return
        pass_mask = flt.pass_mask
        if item.live & ~pass_mask == 0:
            item.dims = [d + (None,) for d in item.dims]
            self.sim.metrics.bump("cjoin_filters_skipped")
            return
        cost = self.cost
        batch = item.batch
        w = batch.weight
        if type(batch) is ColumnBatch and n == len(batch):
            # First filter of a columnar page: the FK keys come straight
            # off the page's column vector -- no per-row tuple access.
            # Packed vectors decode once per page (memoized) so revisits
            # probe cached boxed keys.
            entries = list(map(flt.ht.get, as_list(batch.column(flt.fact_fk_idx))))
        else:
            entries = list(map(flt.ht.get, map(flt.fk_get, rows)))  # hoisted FK probe
        new_rows: list[tuple] = []
        new_bms: list[int] = []
        new_dims: list[tuple] = []
        add_row = new_rows.append
        add_bm = new_bms.append
        add_dim = new_dims.append
        live = 0
        for row, bm, dim, entry in zip(rows, item.bms, item.dims, entries):
            if entry is None:
                bm &= pass_mask
                dim_row = None
            else:
                bm &= entry.bitmap | pass_mask
                dim_row = entry.row
            if bm:
                add_row(row)
                add_bm(bm)
                add_dim(dim + (dim_row,))
                live |= bm
        self._observe(flt, n, len(new_rows))
        cmds.append(cost.hashing(n, w))
        cmds.append(cost.probe(n, w, shared=True))
        cmds.append(cost.bitmap_and(n, w, item.high_slots))
        if new_rows:
            cmds.append(cost.emit_join(len(new_rows), w))
        item.rows, item.bms, item.dims = new_rows, new_bms, new_dims
        item.live = live

    def _apply_chain_kernel(
        self, item: _WorkItem, prefix: CpuCommand | None = None
    ) -> Iterator[Any]:
        """Drive the whole chain through the columnar kernels, fusing the
        bitmap-AND charge groups of consecutive filters into one simulator
        event (charge values and their order match the per-filter path;
        only skipped filters' charges are elided).  ``prefix`` (fuse mode
        only) is the caller's page-sync charge, riding at the head of the
        fused command -- its charge instant is unchanged and one more
        simulator event per page disappears."""
        cmds: list[CpuCommand] = [] if prefix is None else [prefix]
        base = len(cmds)
        for flt in item.filters:
            if not item.rows:
                break
            self._filter_kernel(item, flt, cmds)
        if len(cmds) > base:
            if self.engine.config.use_fuse_charges():
                yield CPU_FUSED(*cmds)
            else:
                for cmd in cmds:
                    yield cmd
        elif prefix is not None:
            yield prefix

    def _filter_worker(self) -> Iterator[Any]:
        """Horizontal configuration: each worker carries a page through the
        whole filter chain."""
        cost = self.cost
        # The per-page sync charge is immutable -- build it once.  In fuse
        # mode (with the chain kernels and no adaptive orderer, whose EWMA
        # folds are order-sensitive across workers) it rides at the head of
        # the chain's fused command instead of being its own event.
        sync = CPU(cost.filter_sync_page, "locks")
        while True:
            item = yield from self._page_chan.get()
            if item is Channel.CLOSED:  # pragma: no cover - pipeline never closes
                return
            fuse_sync = (
                self.filter_kernels
                and self.orderer is None
                and self.engine.config.use_fuse_charges()
            )
            if not fuse_sync:
                yield sync
            rows = item.batch.rows
            item.rows = rows
            item.bms = [item.mask] * len(rows)
            item.dims = [()] * len(rows)
            if self.filter_kernels:
                yield from self._apply_chain_kernel(
                    item, prefix=sync if fuse_sync else None
                )
            else:
                for flt in item.filters:
                    if not item.rows:
                        break
                    yield from self._apply_one_filter(item, flt)
            yield from self._dist_chan.put(item)

    def _vertical_worker(self, position: int) -> Iterator[Any]:
        """Vertical configuration (Section 5.2.2): one thread per filter
        *position*; pages are handed from stage to stage through bounded
        channels, paying the hand-off synchronization at every stage."""
        cost = self.cost
        in_chan = self._page_chan if position == 0 else self._vchans[position]
        sync = CPU(cost.filter_sync_page, "locks")
        while True:
            item = yield from in_chan.get()
            if item is Channel.CLOSED:  # pragma: no cover
                return
            use_kernel = self.filter_kernels and position < len(item.filters)
            fuse_sync = (
                use_kernel
                and self.orderer is None
                and self.engine.config.use_fuse_charges()
            )
            if not fuse_sync:
                yield sync
            if position == 0:
                rows = item.batch.rows
                item.rows = rows
                item.bms = [item.mask] * len(rows)
                item.dims = [()] * len(rows)
            if position < len(item.filters):
                if use_kernel:
                    cmds: list[CpuCommand] = [sync] if fuse_sync else []
                    base = len(cmds)
                    self._filter_kernel(item, item.filters[position], cmds)
                    if len(cmds) > base:
                        if self.engine.config.use_fuse_charges():
                            yield CPU_FUSED(*cmds)
                        else:
                            for cmd in cmds:
                                yield cmd
                    elif fuse_sync:
                        yield sync
                else:
                    yield from self._apply_one_filter(item, item.filters[position])
            if position + 1 < len(item.filters):
                self._ensure_vertical_worker(position + 1)
                yield from self._vchans[position + 1].put(item)
            else:
                yield from self._dist_chan.put(item)

    def _ensure_vertical_worker(self, position: int) -> None:
        while len(self._vchans) <= position:
            k = len(self._vchans)
            self._vchans.append(
                Channel(self.sim, capacity=4, name=f"cjoin.{self.fact.name}.v{k}")
            )
            if k > 0:
                self.sim.spawn(
                    self._vertical_worker(k),
                    f"cjoin-{self.fact.name}-vflt{k}",
                    daemon=True,
                )

    # ------------------------------------------------------------------
    # Distributor parts
    # ------------------------------------------------------------------
    def _distributor_part(self) -> Iterator[Any]:
        cost = self.cost
        while True:
            item = yield from self._dist_chan.get()
            if item is Channel.CLOSED:  # pragma: no cover
                return
            w = item.batch.weight
            rows = item.rows
            bms = item.bms
            dims = item.dims
            filter_pos = item.filter_pos
            fuse = self.engine.config.use_fuse_charges()
            for state in item.addressed:
                # The bitmap pass is one comprehension over the parallel
                # ``bms`` list with the query's bit pre-bound -- no per-row
                # triple unpacking.  Charges for the selection, routing and
                # (optional) shared-aggregation update fuse into one event;
                # values and order match the unfused sequence exactly.
                bit = state.bit
                pred = state.fact_pred
                sel = [j for j, bm in enumerate(bms) if bm & bit]
                cmds = []
                if sel and pred is not None:
                    cmds.append(cost.predicate(len(sel), w, max(state.fact_pred_terms, 1)))
                    sel = [j for j in sel if pred(rows[j])]
                out = None
                if sel:
                    project = state.projector
                    out = [project(rows[j], dims[j], filter_pos) for j in sel]
                    cmds.append(cost.distribute(len(out), w))
                    if state.agg_groups is not None:
                        cmds.append(CPU(
                            (cost.hash_func + cost.agg_update
                             + cost.agg_per_function * len(state.agg_node.aggregates))
                            * len(out) * w,
                            "aggregation",
                        ))
                if cmds:
                    if fuse:
                        yield CPU_FUSED(*cmds)
                    else:
                        for cmd in cmds:
                            yield cmd
                if out:
                    if state.agg_groups is not None:
                        # Shared aggregation: fold into running sums instead
                        # of emitting (the packet's step WoP stays open for
                        # the whole execution -- results are buffered).
                        self._fold_aggregates(state, out, w)
                    else:
                        packet = state.packet
                        if not packet.started_emitting:
                            packet.mark_started()
                            if self.engine.cjoin_stage is not None:
                                self.engine.cjoin_stage.unregister(packet)
                        yield from packet.exchange.emit(Batch(out, w))
                state.outstanding -= 1
                if state.no_more_pages and state.outstanding == 0 and not state.done:
                    yield from self._complete(state)
            self.inflight -= 1
            if self.inflight == 0:
                self._idle.notify_all()

    def _fold_aggregates(self, state: _QueryState, rows: list[tuple], weight: float) -> None:
        from repro.engine.stages.aggregate import _Accumulator

        specs = state.agg_node.aggregates
        nspecs = len(specs)
        groups = state.agg_groups
        key_of = state.agg_key_fn or row_key_fn(state.agg_group_idx)
        fns = state.agg_value_fns
        for r in rows:
            key = key_of(r)
            acc = groups.get(key)
            if acc is None:
                acc = groups[key] = _Accumulator(nspecs)
            for i, fn in enumerate(fns):
                spec = specs[i]
                if spec.func == "count":
                    acc.counts[i] += weight
                    continue
                v = fn(r)
                if spec.func in ("sum", "avg"):
                    acc.sums[i] += v * weight
                    acc.counts[i] += weight
                elif spec.func == "min":
                    acc.mins[i] = v if acc.mins[i] is None else min(acc.mins[i], v)
                else:
                    acc.maxs[i] = v if acc.maxs[i] is None else max(acc.maxs[i], v)

    def _complete(self, state: _QueryState) -> Iterator[Any]:
        state.done = True
        packet = state.packet
        if state.agg_groups is not None:
            from repro.engine.stages.aggregate import _finalize

            specs = state.agg_node.aggregates
            out_rows = [
                key + tuple(_finalize(specs[i], acc, i) for i in range(len(specs)))
                for key, acc in state.agg_groups.items()
            ]
            packet.mark_started()
            if self.engine.cjoin_stage is not None:
                self.engine.cjoin_stage.unregister(packet)
            if out_rows:
                yield from packet.exchange.emit(Batch(out_rows, weight=1.0))
        packet.exchange.close()
        packet.finished = True
        if self.engine.cjoin_stage is not None:
            self.engine.cjoin_stage.unregister(packet)
        del self.active[state.slot]
        self.slots.retire(state.slot)
        self._work.notify_all()

    # ------------------------------------------------------------------
    def _split_node(self, packet: "Packet") -> tuple["CJoinNode", Any]:
        """A pipeline packet carries either a bare CJoinNode or -- with
        shared aggregation -- an AggregateNode directly above one."""
        from repro.query.plan import AggregateNode

        node = packet.node
        if isinstance(node, AggregateNode):
            return node.child, node
        return node, None

    def _make_projector(self, node: "CJoinNode") -> Callable:
        fact_idx = column_indices(self.fact.schema, node.fact_payload)
        dim_proj: list[tuple[str, tuple[int, ...]]] = []
        for d in node.dims:
            dim_schema = self.storage.table(d.dim_table).schema
            dim_proj.append((d.dim_table, column_indices(dim_schema, d.payload)))

        def project(fact_row: tuple, dims: tuple, filter_pos: dict[str, int]) -> tuple:
            out = [fact_row[i] for i in fact_idx]
            for name, idxs in dim_proj:
                if idxs:
                    dim_row = dims[filter_pos[name]]
                    out.extend(dim_row[i] for i in idxs)
            return tuple(out)

        return project
