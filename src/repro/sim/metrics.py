"""Metrics collected during a simulation run.

These mirror the measurements reported in the paper's evaluation tables:

* CPU time broken down by category (Hashing / Joins / Aggregation / Scans /
  Locks / Misc), summed over all cores -- the paper gathered these with
  Intel VTune; we account them at the cost-model charge sites.
* per-query CPU time, for debugging and ablations;
* average cores used and average read rate over the activity period.
"""

from __future__ import annotations

import math
from collections import defaultdict
from dataclasses import dataclass, field
from typing import Any

#: Canonical breakdown categories, in the paper's Figure 11 legend order.
CATEGORIES = ("hashing", "joins", "aggregation", "scans", "locks", "misc")

#: The percentiles every report carries, in SLO-dashboard order.  One
#: definition for the whole package: the service layer, the JSON exporters
#: and the shard tier all serialize the same block shape.
REPORT_PERCENTILES = (("p50", 0.50), ("p95", 0.95), ("p99", 0.99))


def percentile(values: list[float], p: float) -> float:
    """Linear-interpolated percentile of ``values`` at fraction ``p``.

    The canonical percentile implementation for the whole package (the
    batch runner and the service layer both report through it)."""
    if not values:
        raise ValueError("empty values")
    if not 0.0 <= p <= 1.0:
        raise ValueError("p must be in [0, 1]")
    xs = sorted(values)
    k = (len(xs) - 1) * p
    f = math.floor(k)
    c = min(f + 1, len(xs) - 1)
    return xs[f] + (xs[c] - xs[f]) * (k - f)


def percentile_block(
    values: list[float],
    percentiles: tuple[tuple[str, float], ...] = REPORT_PERCENTILES,
    include_count: bool = False,
) -> dict[str, float]:
    """The canonical ``{"p50": ..., "p95": ..., "p99": ...}`` report block.

    Every percentile block the package serializes -- service latency and
    queue-wait reports, per-run response-time exports, the shard tier's
    per-shard views -- comes from this one helper, so they all agree on
    names, order and the all-zeros shape for empty inputs (an idle report
    stays well-formed)."""
    out: dict[str, float] = {}
    if include_count:
        out["count"] = float(len(values))
    for name, p in percentiles:
        out[name] = percentile(values, p) if values else 0.0
    return out


@dataclass
class Metrics:
    """Accumulated counters for one simulation run."""

    #: cycles charged per breakdown category
    cpu_cycles_by_category: dict[str, float] = field(default_factory=lambda: defaultdict(float))
    #: cycles charged per (query_id, category)
    cpu_cycles_by_query: dict[tuple[int | None, str], float] = field(
        default_factory=lambda: defaultdict(float)
    )
    #: number of sharing events recorded per label (e.g. "join-depth-1")
    sharing_events: dict[str, int] = field(default_factory=lambda: defaultdict(int))
    #: arbitrary named durations (e.g. CJOIN admission time)
    durations: dict[str, float] = field(default_factory=lambda: defaultdict(float))
    #: arbitrary named counts (e.g. buffer pool hits/misses)
    counts: dict[str, int] = field(default_factory=lambda: defaultdict(int))

    def charge_cpu(self, cycles: float, category: str, query_id: int | None) -> None:
        """Record ``cycles`` against ``category`` (and the owning query)."""
        self.cpu_cycles_by_category[category] += cycles
        self.cpu_cycles_by_query[(query_id, category)] += cycles

    def record_sharing(self, label: str, n: int = 1) -> None:
        """Count a simultaneous-pipelining attach (host gained a satellite)."""
        self.sharing_events[label] += n

    def add_duration(self, label: str, seconds: float) -> None:
        self.durations[label] += seconds

    def bump(self, label: str, n: int = 1) -> None:
        self.counts[label] += n

    def set_count(self, label: str, value: int) -> None:
        """Set a gauge-style count to an absolute value (last write wins),
        e.g. the running per-filter selectivity estimates."""
        self.counts[label] = value

    # ------------------------------------------------------------------
    def to_dict(self, hz: float | None = None) -> dict[str, Any]:
        """A plain-dict (JSON-safe) view of the accumulated counters.

        Subclasses (e.g. the service layer's ``ServiceMetrics``) extend the
        returned dict with their own measurements; ``bench.export``
        serializes whatever this returns."""
        out: dict[str, Any] = {
            "cpu_cycles_by_category": dict(self.cpu_cycles_by_category),
            "sharing_events": dict(self.sharing_events),
            "durations": dict(self.durations),
            "counts": dict(self.counts),
        }
        if hz is not None:
            out["cpu_seconds_by_category"] = self.cpu_seconds_by_category(hz)
            out["total_cpu_seconds"] = self.total_cpu_seconds(hz)
        return out

    # ------------------------------------------------------------------
    def cpu_seconds_by_category(self, hz: float) -> dict[str, float]:
        """Convert the per-category cycle counts to seconds of one core at
        ``hz`` -- directly comparable to the paper's stacked CPU-time bars."""
        return {cat: self.cpu_cycles_by_category.get(cat, 0.0) / hz for cat in CATEGORIES}

    def total_cpu_seconds(self, hz: float) -> float:
        return sum(self.cpu_cycles_by_category.values()) / hz
