"""Deterministic random-number helpers.

Every generator in this package takes an explicit integer seed; nothing in
the library consults global random state, so experiments are exactly
reproducible run-to-run.
"""

from __future__ import annotations

import random
import zlib


def make_rng(seed: int, *salt: object) -> random.Random:
    """A `random.Random` seeded from ``seed`` and an optional salt tuple
    (so sub-generators draw independent, reproducible streams).

    The salt is folded in with CRC32 over its repr -- stable across
    processes, unlike ``hash()`` on strings."""
    if salt:
        seed = (seed * 0x9E3779B1 + zlib.crc32(repr(salt).encode())) & 0x7FFFFFFF
    return random.Random(seed)
