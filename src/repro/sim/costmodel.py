"""Calibrated cost model: CPU cycles and I/O bytes per unit of real work.

Scale substitution
------------------
Generated tables are ~1/1000 of real SSB/TPC-H sizes (pure-Python row
processing cannot run 512 concurrent queries over 6M-row tables).  Every
generated row carries a *row weight* -- how many real rows it represents --
and all charges below are **cycles per real tuple**, multiplied by the weight
at the charge site.  I/O is likewise charged in *real* bytes.

Calibration
-----------
Constants are chosen so that the headline absolute numbers land in the
paper's range on the 24-core 1.86 GHz machine (see DESIGN.md §2):

* TPC-H Q1, SF=1, memory-resident, 1 query  ->  a few seconds;
* 64 identical Q1 with push-based circular-scan SP  ->  tens of seconds,
  producer-bound at ~3 cores (Figure 6a);
* the same with pull-based SPL  ->  ~8 s at ~19 cores (Figure 6b).

The *shape* of every experiment (who wins, crossovers, rough factors) comes
from the engine structure, not from these constants; the constants only set
absolute magnitudes.  All of them are plain dataclass fields, so ablation
benches can sweep them.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.sim.commands import CPU, CpuCommand


@dataclass(frozen=True)
class CostModel:
    """Cycles per real tuple (or per page / per event where noted)."""

    # ---- scans -------------------------------------------------------
    scan_tuple: float = 500.0  # extract one tuple via the storage manager
    pred_term: float = 60.0  # evaluate one predicate term on a tuple
    read_tuple: float = 50.0  # a consumer reading a shared/exchanged tuple
    bufferpool_page: float = 12_000.0  # per-page buffer pool bookkeeping (per generated page)

    # ---- hash joins ----------------------------------------------------
    hash_func: float = 75.0  # hash() -- the paper's "Hashing" bucket
    hash_equal: float = 40.0  # equal() on a candidate match -- "Hashing"
    build_insert: float = 150.0  # insert into hash table -- "Joins"
    probe_visit: float = 200.0  # probe bookkeeping per input tuple -- "Joins"
    join_emit: float = 500.0  # materialize one joined output tuple (copy + alloc)

    # ---- aggregation / sort -------------------------------------------
    agg_update: float = 120.0  # group lookup bookkeeping per input tuple
    agg_per_function: float = 40.0  # per aggregate function updated
    sort_per_item_log: float = 60.0  # n log2 n comparison-swap unit

    # ---- pipelined exchange -------------------------------------------
    #: push-based SP: copy one tuple into ONE satellite's FIFO (memcpy plus
    #: buffer management; comparable to hash-join probe work per tuple)
    copy_tuple: float = 300.0
    fifo_page_overhead: float = 20_000.0  # FIFO put+get per generated page
    spl_emit_page: float = 15_000.0  # SPL producer append per generated page
    spl_read_page: float = 10_000.0  # SPL consumer advance per generated page
    spl_lock_cycles: float = 3_000.0  # SPL lock acquisition (category "locks")

    # ---- CJOIN / GQP ---------------------------------------------------
    bitmap_word: float = 25.0  # bitwise AND per 64-query bitmap word
    #: extra bookkeeping per *shared* probe: the hash table holds the union
    #: of the dimension tuples selected by all queries (larger and
    #: cache-hostile), entries carry bitmaps, and the horizontal pipeline
    #: contends while passing tuples between threads.  The paper measures
    #: this as CJOIN's "Joins" CPU exceeding even 8 concurrent query-centric
    #: joins (Figure 11), i.e. roughly an order of magnitude per tuple.
    shared_probe_extra: float = 1800.0
    distribute_tuple: float = 100.0  # distributor: per (tuple, relevant query)
    #: preprocessor work per fact tuple: tuple extraction plus circular-scan
    #: management (points of entry, finalization checks) -- the paper notes
    #: these responsibilities "slow down the circular scan significantly"
    preprocessor_tuple: float = 620.0
    filter_sync_page: float = 8_000.0  # horizontal config: per-page queue sync
    admission_bitmap: float = 60.0  # extend one dim tuple's bitmap by one query
    admission_pause: float = 4e-3  # seconds of full pipeline stall per batch
    admission_pause_per_filter: float = 1e-3  # extra stall per touched filter
    #: adaptive ordering: re-sorting the shared filter chain, per filter in
    #: the chain (selectivity bookkeeping + snapshot invalidation); charged
    #: only when ``gqp_adaptive_ordering`` actually applies a re-sort
    reorder_per_filter: float = 2_500.0

    # ---- shared result cache (repro.cache) ------------------------------
    #: signature lookup on stage dispatch (hash of an interned plan tuple)
    cache_probe: float = 5_000.0
    #: replaying one cached page through an exchange: a memory read plus
    #: list-cursor bookkeeping -- comparable to an SPL consumer advance
    cache_replay_page: float = 8_000.0
    #: copying one produced page into the cache store (fill consumer)
    cache_store_page: float = 10_000.0

    # ---- subsumption folding (repro.query.subsume) ----------------------
    #: testing one candidate provider for subsumption at admission: walk
    #: two plan signatures, merge per-column constraint maps -- a bit more
    #: than a plain signature hash probe
    fold_probe: float = 6_000.0
    #: one-time setup of a successful fold: compile the residual kernel,
    #: open a reader on the host exchange / cached entry
    fold_attach: float = 30_000.0

    # ---- shard scatter (repro.shard) ------------------------------------
    #: per-page bookkeeping of placing one fact page on a shard at
    #: start-up (placement computation + page metadata)
    scatter_page: float = 25_000.0
    #: per *shipped* byte of building a shard's fact partition -- zero for
    #: zero-copy range views of packed buffers, real buffer bytes for hash
    #: gathers (see :func:`repro.shard.partition.partition_shipping`)
    scatter_byte: float = 2.0
    #: per real row of building one shared join arrangement (hash the key
    #: plus one index insert -- the same work a query-centric build pays
    #: per tuple, paid ONCE per (table, key) instead of once per query)
    arrange_row: float = 225.0

    # ---- packet / plan management --------------------------------------
    packet_dispatch: float = 400_000.0  # per packet: create+queue+teardown (cycles)

    # ---- baseline ("mature system") scaling ----------------------------
    volcano_cpu_factor: float = 0.55  # Postgres stand-in: cheaper per-tuple code

    def __post_init__(self) -> None:
        # Memo table for the command builders below.  Hot loops rebuild the
        # same charge (same n / weight) hundreds of thousands of times per
        # run; CpuCommand is immutable by contract, so handing back the
        # cached instance is safe and the cycles float -- computed once by
        # the exact same expression -- is bit-identical.
        object.__setattr__(self, "_memo", {})

    # ------------------------------------------------------------------
    # Convenience CpuCommand builders.  ``n`` is a count of *generated*
    # tuples, ``weight`` the table's real-rows-per-generated-row factor.
    # ------------------------------------------------------------------
    def scan(self, n: float, weight: float) -> CpuCommand:
        memo = self._memo
        key = ("scan", n, weight)
        cmd = memo.get(key)
        if cmd is None:
            cmd = memo[key] = CPU(self.scan_tuple * n * weight, "scans")
        return cmd

    def predicate(self, n: float, weight: float, terms: int = 1) -> CpuCommand:
        memo = self._memo
        key = ("pred", n, weight, terms)
        cmd = memo.get(key)
        if cmd is None:
            cmd = memo[key] = CPU(self.pred_term * terms * n * weight, "scans")
        return cmd

    def read(self, n: float, weight: float) -> CpuCommand:
        memo = self._memo
        key = ("read", n, weight)
        cmd = memo.get(key)
        if cmd is None:
            cmd = memo[key] = CPU(self.read_tuple * n * weight, "misc")
        return cmd

    def hashing(self, n: float, weight: float, equals: float = 0.0) -> CpuCommand:
        memo = self._memo
        key = ("hash", n, weight, equals)
        cmd = memo.get(key)
        if cmd is None:
            cmd = memo[key] = CPU(
                (self.hash_func * n + self.hash_equal * equals) * weight, "hashing"
            )
        return cmd

    def build(self, n: float, weight: float) -> CpuCommand:
        memo = self._memo
        key = ("build", n, weight)
        cmd = memo.get(key)
        if cmd is None:
            cmd = memo[key] = CPU(self.build_insert * n * weight, "joins")
        return cmd

    def probe(self, n: float, weight: float, shared: bool = False) -> CpuCommand:
        memo = self._memo
        key = ("probe", n, weight, shared)
        cmd = memo.get(key)
        if cmd is None:
            per = self.probe_visit + (self.shared_probe_extra if shared else 0.0)
            cmd = memo[key] = CPU(per * n * weight, "joins")
        return cmd

    def emit_join(self, n: float, weight: float) -> CpuCommand:
        memo = self._memo
        key = ("emit", n, weight)
        cmd = memo.get(key)
        if cmd is None:
            cmd = memo[key] = CPU(self.join_emit * n * weight, "joins")
        return cmd

    def aggregate(self, n: float, weight: float, functions: int = 1) -> CpuCommand:
        memo = self._memo
        key = ("agg", n, weight, functions)
        cmd = memo.get(key)
        if cmd is None:
            cmd = memo[key] = CPU(
                (self.agg_update + self.agg_per_function * functions) * n * weight,
                "aggregation",
            )
        return cmd

    def sort(self, n: float, weight: float) -> CpuCommand:
        """n log2 n comparison work for sorting ``n`` tuples."""
        import math

        memo = self._memo
        key = ("sort", n, weight)
        cmd = memo.get(key)
        if cmd is None:
            work = n * max(math.log2(n), 1.0) * self.sort_per_item_log * weight
            cmd = memo[key] = CPU(work, "aggregation")
        return cmd

    def copy(self, n: float, weight: float) -> CpuCommand:
        memo = self._memo
        key = ("copy", n, weight)
        cmd = memo.get(key)
        if cmd is None:
            cmd = memo[key] = CPU(self.copy_tuple * n * weight, "misc")
        return cmd

    def bitmap_and(self, n: float, weight: float, nqueries: int) -> CpuCommand:
        memo = self._memo
        key = ("band", n, weight, nqueries)
        cmd = memo.get(key)
        if cmd is None:
            words = max(1, (nqueries + 63) // 64)
            cmd = memo[key] = CPU(self.bitmap_word * words * n * weight, "joins")
        return cmd

    def distribute(self, tuple_query_pairs: float, weight: float) -> CpuCommand:
        memo = self._memo
        key = ("dist", tuple_query_pairs, weight)
        cmd = memo.get(key)
        if cmd is None:
            cmd = memo[key] = CPU(self.distribute_tuple * tuple_query_pairs * weight, "misc")
        return cmd

    def preprocess(self, n: float, weight: float) -> CpuCommand:
        memo = self._memo
        key = ("prep", n, weight)
        cmd = memo.get(key)
        if cmd is None:
            cmd = memo[key] = CPU(self.preprocessor_tuple * n * weight, "scans")
        return cmd

    def scatter_cycles(self, pages: float, shipped_bytes: float) -> float:
        """Cycles to materialize one shard's fact partition: per-page
        placement bookkeeping plus per-byte copy cost for whatever the
        partition build actually shipped.  Returned as a raw cycle count
        (not a :class:`CpuCommand`): the shard tier charges it on the
        front end's *virtual timeline* (via the shard backlog), not
        through a simulator."""
        return self.scatter_page * pages + self.scatter_byte * shipped_bytes

    def arrange_cycles(self, rows: float) -> float:
        """Cycles to build one shared join arrangement over ``rows`` real
        rows (hash + insert per row).  Returned as a raw cycle count (not
        a :class:`CpuCommand`): the shard tier charges it once at start-up
        on the front end's *virtual timeline* (via the shard backlog,
        exactly like :meth:`scatter_cycles`); reusing queries pay only
        their probe cost, which is already in their simulated service
        times."""
        return self.arrange_row * rows

    def fold_search(self, candidates: float) -> CpuCommand:
        """Subsumption search over ``candidates`` providers plus the
        one-time attach cost of the fold it found.  Charged only on
        *successful* folds (a failed search rides the packet-dispatch
        charge the query-centric path pays anyway)."""
        memo = self._memo
        key = ("fold", candidates)
        cmd = memo.get(key)
        if cmd is None:
            cmd = memo[key] = CPU(
                self.fold_probe * max(candidates, 1.0) + self.fold_attach, "misc"
            )
        return cmd

    def reorder(self, n_filters: float) -> CpuCommand:
        memo = self._memo
        key = ("reord", n_filters)
        cmd = memo.get(key)
        if cmd is None:
            cmd = memo[key] = CPU(self.reorder_per_filter * n_filters, "misc")
        return cmd


#: Default calibration used throughout tests and benchmarks.
DEFAULT_COST_MODEL = CostModel()
