"""Engine configurations.

The paper's Section 5.1 compares five configurations of the integrated
QPipe+CJOIN engine; Figure 6 additionally varies the SP communication model
(push-based FIFO vs pull-based SPL).  All of them are instances of
:class:`EngineConfig`:

* ``QPIPE``     -- no sharing at all (the query-centric baseline),
* ``QPIPE_CS``  -- SP for the table-scan stage only (circular scans),
* ``QPIPE_SP``  -- + SP for the join stage,
* ``CJOIN``     -- star-query joins routed to the shared CJOIN pipeline,
* ``CJOIN_SP``  -- + SP for the CJOIN stage itself.

SP for aggregation and sort stages exists but is off in every preset, as in
the paper ("this is done on purpose to isolate the benefits of SP for joins
only").
"""

from __future__ import annotations

from dataclasses import dataclass, replace

# Fast-path defaults (the vectorized data plane and the simulator's fused
# CPU charges).  Both are *wall-clock* optimizations: simulated results are
# bit-identical either way (tests/engine/test_golden_determinism.py holds
# them to that).  They live in repro.sim.fastpath (the simulator consults
# fuse_charges itself); re-exported here because engine code and benchmarks
# treat them as engine configuration.
from repro.sim.fastpath import (  # noqa: F401  (re-exports)
    arrangements_default,
    batch_kernels_default,
    columnar_pages_default,
    fast_path,
    fuse_charges_default,
    gqp_adaptive_ordering_default,
    gqp_filter_kernels_default,
    gqp_plane,
    packed_storage_active,
    packed_storage_default,
    query_folding_default,
    set_gqp_plane,
)


@dataclass(frozen=True)
class EngineConfig:
    """Knobs of one engine configuration."""

    name: str = "QPipe"
    #: SP per stage
    sp_scan: bool = False  # circular scans (linear WoP)
    sp_join: bool = False  # join stage (step WoP)
    sp_agg: bool = False  # off in all paper experiments
    sp_sort: bool = False  # off in all paper experiments
    #: route star-query joins to the CJOIN global query plan
    use_cjoin: bool = False
    sp_cjoin: bool = False  # SP on whole CJOIN packets (step WoP)
    #: SP communication model: 'spl' (pull) or 'fifo' (push)
    comm: str = "spl"
    #: run-time prediction model for *push-based* SP (Johnson et al. [14]):
    #: attach a satellite only when forwarding beats private evaluation on
    #: the current load.  Ignored under 'spl' (pull-based sharing has no
    #: serialization point, so sharing is always beneficial -- the paper's
    #: argument for not needing a model at all).
    sp_prediction: bool = False
    #: SPL bound in pages (paper: 256 KB / 32 KB pages = 8)
    spl_max_pages: int = 8
    #: FIFO buffer bound in pages
    fifo_capacity: int = 8
    #: CJOIN thread configuration (paper Section 5.2.2): "horizontal" --
    #: a pool of ``filter_workers`` threads each carrying a page through
    #: the whole filter chain -- or "vertical" -- one thread *per filter*,
    #: pages handed between them ("these configurations, however, do not
    #: necessarily provide better performance").
    cjoin_threads: str = "horizontal"
    filter_workers: int = 4
    distributor_parts: int = 2
    #: DataPath-style shared aggregation (paper Section 2.4): fold each
    #: star query's aggregation into the GQP -- the distributor keeps "a
    #: running sum for each group and query" and emits finalized rows at
    #: query completion, eliminating the per-query aggregation packets.
    shared_aggregation: bool = False
    #: SharedDB-style batched execution (paper Section 2.4): admit new
    #: queries only when the current generation has fully completed.  The
    #: paper's noted drawback emerges: "a new query may suffer increased
    #: latency, and the latency of a batch is dominated by the
    #: longest-running query."  Off by default (CJOIN admits continuously).
    gqp_batched_execution: bool = False
    #: stages whose packets may probe/fill the shared result cache (when
    #: the storage manager carries one; see repro.cache).  Materialization
    #: points with small outputs and large recompute costs by default --
    #: aggregate/sort roots serve whole recurring queries from cache, and
    #: CJOIN packets cover the GQP route.  Raw scans are never cached (the
    #: buffer pool already holds base pages); 'join' may be opted in, at
    #: the price of spilling potentially fact-sized intermediate results.
    result_cache_stages: tuple[str, ...] = ("aggregate", "sort", "cjoin")
    #: wall-clock fast paths (None = follow the module-level default; see
    #: ``fast_path`` above).  ``batch_kernels`` routes per-row hot loops
    #: through ``Expr.compile_batch`` vectorized kernels; ``fuse_charges``
    #: lets workers yield fused CPU commands (one event per charge *group*).
    #: Neither changes a single simulated tick.
    batch_kernels: bool | None = None
    fuse_charges: bool | None = None
    #: columnar pages (None = follow the process-wide default): scans emit
    #: ``ColumnBatch`` column views and the stages run late-materialized --
    #: selection vectors instead of filtered row lists, join tails instead
    #: of wide output tuples.  Charges are computed from row counts, which
    #: the columnar plane keeps identical, so like the other fast-path
    #: flags it never changes a simulated tick.
    columnar_pages: bool | None = None
    #: packed column storage (None = follow the process-wide default):
    #: tables hold typed ``array`` / dictionary-encoded column vectors
    #: (see ``repro.storage.packed``) and selection runs on codes and
    #: memoized predicate bitmaps.  The layout is decided when a table is
    #: *built*, so this knob matters to dataset generation and the shard
    #: partitioner rather than to per-engine execution; it rides along
    #: here so sweeps and workers capture/replay one coherent flag set.
    packed_storage: bool | None = None
    #: shared join arrangements (None = follow the process-wide default):
    #: the hash-join stage and CJOIN admission probe one refcounted
    #: build-side index per (table, key column) from
    #: :data:`repro.storage.arrangements.ARRANGEMENTS` instead of each
    #: query building its own.  Every simulated charge is still paid per
    #: query (only the host-side structure is shared), so like the other
    #: fast-path flags it never changes a simulated tick.
    arrangements: bool | None = None
    #: subsumption-based query folding (None = follow the process-wide
    #: default, ``REPRO_FOLD``): admission, the result cache, and the
    #: arrangement cache match by *subsumption* (:mod:`repro.query.subsume`)
    #: in addition to exact signatures -- a satellite attaches to a
    #: superset host through a residual post-filter, a cache probe answers
    #: from a superset entry, a range probe rides a sibling arrangement.
    #: Folding skips sub-plan work, so unlike the flags above it *changes
    #: simulated timing*; query results stay bit-identical (golden suite
    #: fingerprint-asserts both planes).
    query_folding: bool | None = None
    #: the adaptive GQP data plane (None = follow the process-wide default;
    #: see ``gqp_plane`` / ``set_gqp_plane``).  Unlike the fast-path flags,
    #: these *change simulated results* when enabled: ``gqp_adaptive_ordering``
    #: re-sorts the CJOIN filter chain most-selective-first at logical-tick
    #: boundaries, and ``gqp_filter_kernels`` probes filters columnar-style
    #: and skips filters irrelevant to every surviving query on a page.
    #: Both default off, keeping default runs bit-identical to the golden
    #: metrics snapshot.
    gqp_adaptive_ordering: bool | None = None
    gqp_filter_kernels: bool | None = None
    #: adaptive-ordering tuning: re-sort check cadence in preprocessor pages
    #: (the horizontal config's logical tick; the vertical config re-sorts
    #: at admission pauses), EWMA smoothing of observed per-filter pass
    #: rates, and the pass-rate margin an adjacent filter pair must be out
    #: of order by before the chain re-sorts (hysteresis against thrash).
    gqp_reorder_interval: int = 16
    gqp_selectivity_alpha: float = 0.3
    gqp_order_hysteresis: float = 0.05

    def use_batch_kernels(self) -> bool:
        return batch_kernels_default() if self.batch_kernels is None else self.batch_kernels

    def use_fuse_charges(self) -> bool:
        return fuse_charges_default() if self.fuse_charges is None else self.fuse_charges

    def use_columnar_pages(self) -> bool:
        return columnar_pages_default() if self.columnar_pages is None else self.columnar_pages

    def use_packed_storage(self) -> bool:
        if self.packed_storage is None:
            return packed_storage_default() and self.use_columnar_pages()
        return self.packed_storage

    def use_arrangements(self) -> bool:
        return arrangements_default() if self.arrangements is None else self.arrangements

    def use_query_folding(self) -> bool:
        return query_folding_default() if self.query_folding is None else self.query_folding

    def use_gqp_adaptive_ordering(self) -> bool:
        if self.gqp_adaptive_ordering is None:
            return gqp_adaptive_ordering_default()
        return self.gqp_adaptive_ordering

    def use_gqp_filter_kernels(self) -> bool:
        if self.gqp_filter_kernels is None:
            return gqp_filter_kernels_default()
        return self.gqp_filter_kernels

    def __post_init__(self) -> None:
        if self.comm not in ("spl", "fifo"):
            raise ValueError("comm must be 'spl' or 'fifo'")
        if self.spl_max_pages < 1 or self.fifo_capacity < 1:
            raise ValueError("buffer bounds must be >= 1")
        if self.filter_workers < 1 or self.distributor_parts < 1:
            raise ValueError("CJOIN needs at least one worker of each kind")
        if self.sp_cjoin and not self.use_cjoin:
            raise ValueError("sp_cjoin requires use_cjoin")
        if self.shared_aggregation and not self.use_cjoin:
            raise ValueError("shared_aggregation requires use_cjoin")
        if self.gqp_batched_execution and not self.use_cjoin:
            raise ValueError("gqp_batched_execution requires use_cjoin")
        if self.cjoin_threads not in ("horizontal", "vertical"):
            raise ValueError("cjoin_threads must be 'horizontal' or 'vertical'")
        if self.gqp_reorder_interval < 1:
            raise ValueError("gqp_reorder_interval must be >= 1")
        if not 0.0 < self.gqp_selectivity_alpha <= 1.0:
            raise ValueError("gqp_selectivity_alpha must be in (0, 1]")
        if not 0.0 <= self.gqp_order_hysteresis < 1.0:
            raise ValueError("gqp_order_hysteresis must be in [0, 1)")
        allowed = {"tablescan", "join", "aggregate", "sort", "cjoin"}
        unknown = set(self.result_cache_stages) - allowed
        if unknown:
            raise ValueError(f"unknown result_cache_stages: {sorted(unknown)}")
        if "tablescan" in self.result_cache_stages:
            raise ValueError("raw scans are served by the buffer pool, not the result cache")

    def with_comm(self, comm: str) -> "EngineConfig":
        return replace(self, comm=comm, name=f"{self.name} ({comm.upper()})")


#: The paper's five configurations (Section 5.1).
QPIPE = EngineConfig(name="QPipe")
QPIPE_CS = EngineConfig(name="QPipe-CS", sp_scan=True)
QPIPE_SP = EngineConfig(name="QPipe-SP", sp_scan=True, sp_join=True)
CJOIN = EngineConfig(name="CJOIN", sp_scan=True, use_cjoin=True)
CJOIN_SP = EngineConfig(name="CJOIN-SP", sp_scan=True, use_cjoin=True, sp_cjoin=True)

PAPER_CONFIGS = (QPIPE, QPIPE_CS, QPIPE_SP, CJOIN, CJOIN_SP)
