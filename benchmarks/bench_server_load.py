"""Service-layer load sweep: static vs adaptive routing under open-loop
Poisson arrivals.

The query-centric path absorbs roughly ``cores / (2 x response_time)``
queries per second; past that the paper's answer is the GQP.  The sweep
crosses that capacity point and checks the service-level claims:

* below saturation both policies serve query-centric with identical,
  low latency;
* in the transition region the static in-flight threshold trips on
  Poisson bunching and pays the GQP's batching latency too early, while
  the adaptive policy's sustained-pressure EWMA holds the query-centric
  route -- lower p95;
* at saturation (the highest swept rate) the adaptive policy matches or
  beats static p95 latency while routing the bulk of the stream through
  the shared GQP.
"""

from repro.bench.reporting import format_table
from repro.data import generate_ssb
from repro.server import serve

FAST_RATES = (8.0, 12.0, 24.0)
FULL_RATES = (4.0, 8.0, 12.0, 16.0, 24.0)
POLICIES = ("static", "adaptive")


def sweep(full: bool = False):
    rates = FULL_RATES if full else FAST_RATES
    duration = 10.0 if full else 5.0
    tables = generate_ssb(0.5, seed=23).tables
    cells = {}
    for rate in rates:
        for policy in POLICIES:
            cells[(rate, policy)] = serve(
                tables,
                policy=policy,
                arrival="poisson",
                rate=rate,
                duration=duration,
                seed=1,
                workload="ssb-mix",
            )
    return rates, cells


def render(rates, cells) -> str:
    rows = []
    for rate in rates:
        for policy in POLICIES:
            r = cells[(rate, policy)]
            lat = r.metrics.latency_percentiles()
            rows.append(
                [
                    rate,
                    policy,
                    r.metrics.completed,
                    r.metrics.routed.get("gqp", 0),
                    f"{lat['p50']:.3f}",
                    f"{lat['p95']:.3f}",
                    f"{lat['p99']:.3f}",
                    f"{r.throughput_qps:.2f}",
                ]
            )
    return format_table(
        "server load sweep: Poisson arrivals, ssb-mix",
        ["rate", "policy", "done", "gqp", "p50", "p95", "p99", "q/s"],
        rows,
    )


def bench_server_load(once, save_report, full_mode):
    rates, cells = once(sweep, full=full_mode)
    save_report("server_load", render(rates, cells))

    top = rates[-1]
    static, adaptive = cells[(top, "static")], cells[(top, "adaptive")]
    # The headline: at saturation the adaptive policy matches or beats the
    # static threshold's tail latency ...
    assert (
        adaptive.metrics.latency_percentiles()["p95"]
        <= static.metrics.latency_percentiles()["p95"]
    )
    # ... without giving up throughput ...
    assert adaptive.throughput_qps >= 0.95 * static.throughput_qps
    # ... and it got there by actually using the GQP for the bulk of the
    # stream, not by refusing load: nothing was dropped or shed.
    assert adaptive.metrics.routed.get("gqp", 0) > adaptive.metrics.routed.get("query-centric", 0)
    assert adaptive.metrics.dropped == 0 and adaptive.metrics.timed_out == 0

    # Below saturation both policies serve query-centric at identical
    # (sub-second) latency: the service layer adds no overhead.
    low = rates[0]
    for policy in POLICIES:
        m = cells[(low, policy)].metrics
        assert m.routed.get("gqp", 0) <= m.routed.get("query-centric", 0) // 10
        assert m.latency_percentiles()["p95"] < 1.0
