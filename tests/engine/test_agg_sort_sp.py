"""SP for the aggregation and sort stages.

The paper keeps these off in every experiment ("to isolate the benefits of
SP for joins"), but the engine supports them; these tests pin down that
enabling them never changes results and that sharing actually happens.
"""

import dataclasses

import pytest

from repro.baselines import evaluate_plan
from repro.data import generate_ssb, generate_tpch
from repro.engine import QPIPE_SP, QPipeEngine
from repro.query.ssb_queries import q32
from repro.query.tpch_queries import tpch_q1_plan
from repro.sim import Simulator
from repro.sim.costmodel import DEFAULT_COST_MODEL
from repro.sim.machine import MachineSpec
from repro.storage import StorageConfig, StorageManager

FULL_SP = dataclasses.replace(QPIPE_SP, name="QPipe-SP+", sp_agg=True, sp_sort=True)


@pytest.fixture(scope="module")
def ssb():
    return generate_ssb(0.5, seed=91)


def norm(rows):
    return sorted(
        tuple(round(v, 6) if isinstance(v, float) else v for v in row) for row in rows
    )


def make_engine(tables, config):
    sim = Simulator(MachineSpec())
    storage = StorageManager(sim, DEFAULT_COST_MODEL, tables, StorageConfig(resident="memory"))
    return sim, QPipeEngine(sim, storage, config)


class TestAggSortSharing:
    def test_identical_queries_share_at_top_and_match_oracle(self, ssb):
        spec = q32("CHINA", "FRANCE", 1993, 1996)
        oracle = norm(evaluate_plan(spec.to_query_centric_plan(ssb.tables)))
        sim, eng = make_engine(ssb.tables, FULL_SP)
        handles = [eng.submit(spec) for _ in range(5)]
        sim.run()
        for h in handles:
            assert norm(h.results) == oracle
        share = eng.sharing_summary()
        # With sort SP on, identical plans now share at the very top.
        assert share.get("sort", 0) == 4
        # Deeper operators were cancelled along with the satellites.
        assert "join:hj3" not in share

    def test_agg_sharing_when_sorts_differ(self, ssb):
        """Same aggregation, different sort direction: share at aggregate."""
        from repro.query.plan import SortNode

        spec = q32("CHINA", "FRANCE", 1993, 1996)
        base = spec.to_query_centric_plan(ssb.tables)
        assert isinstance(base, SortNode)
        flipped = SortNode(base.child, (("d_year", False),))
        sim, eng = make_engine(ssb.tables, FULL_SP)
        h1 = eng.submit_plan(base)
        h2 = eng.submit_plan(flipped)
        sim.run()
        share = eng.sharing_summary()
        assert share.get("aggregate", 0) == 1
        assert norm(h1.results) == norm(h2.results)

    def test_tpch_q1_agg_sharing_saves_cpu(self):
        ds = generate_tpch(0.5, seed=4)
        plan = tpch_q1_plan(ds.lineitem)
        oracle = norm(evaluate_plan(plan))

        def run(config, n):
            sim, eng = make_engine(ds.tables, config)
            hs = [eng.submit_plan(plan) for _ in range(n)]
            sim.run()
            for h in hs:
                assert norm(h.results) == oracle
            return sum(sim.metrics.cpu_cycles_by_category.values())

        with_sp = run(FULL_SP, 6)
        without = run(QPIPE_SP, 6)
        # Q1 is scan+agg: sharing the aggregation eliminates most work.
        assert with_sp < 0.5 * without

    def test_late_arrival_after_emit_does_not_attach(self, ssb):
        """Step-window safety: a query arriving after the host sort emitted
        must recompute, not receive empty results."""
        spec = q32("CHINA", "FRANCE", 1993, 1996)
        oracle = norm(evaluate_plan(spec.to_query_centric_plan(ssb.tables)))
        sim, eng = make_engine(ssb.tables, FULL_SP)
        h1 = eng.submit(spec)
        holder = {}

        def late():
            from repro.sim.commands import SLEEP

            yield from h1.wait()  # host completely done
            yield SLEEP(0.1)
            holder["h"] = eng.submit(spec)

        sim.spawn(late(), "late")
        sim.run()
        assert norm(holder["h"].results) == oracle
        assert len(holder["h"].results) > 0
