"""Plain-text rendering of experiment results (the tables/series the paper
plots).  Every experiment prints rows in the same x-axis order the paper
uses, so shapes can be compared side by side with the published figures."""

from __future__ import annotations

from typing import Any, Sequence


def format_table(
    title: str,
    columns: Sequence[str],
    rows: Sequence[Sequence[Any]],
    note: str | None = None,
) -> str:
    """Render an aligned ASCII table."""
    cells = [[_fmt(c) for c in row] for row in rows]
    headers = [str(c) for c in columns]
    widths = [len(h) for h in headers]
    for row in cells:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    sep = "-+-".join("-" * w for w in widths)
    lines = [f"== {title} =="]
    lines.append(" | ".join(h.ljust(w) for h, w in zip(headers, widths)))
    lines.append(sep)
    for row in cells:
        lines.append(" | ".join(c.rjust(w) for c, w in zip(row, widths)))
    if note:
        lines.append(f"note: {note}")
    return "\n".join(lines)


def format_series(title: str, x_name: str, xs: Sequence[Any], series: dict[str, Sequence[float]], note: str | None = None) -> str:
    """Render named series against a shared x axis."""
    columns = [x_name] + list(series)
    rows = [[x] + [series[name][i] for name in series] for i, x in enumerate(xs)]
    return format_table(title, columns, rows, note)


def _fmt(value: Any) -> str:
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) >= 1000:
            return f"{value:,.0f}"
        if abs(value) >= 10:
            return f"{value:.1f}"
        return f"{value:.3f}"
    return str(value)


def format_sweep_summary(rows: Sequence[dict[str, Any]]) -> str:
    """Per-experiment wall-clock summary of a fabric sweep (``repro sweep``
    and ``benchmarks/run_full.sh`` end with one of these)."""
    return format_table(
        "sweep wall-clock summary",
        ["experiment", "cells", "jobs", "retried", "wall (s)"],
        [
            [r["experiment"], r["cells"], r["jobs"], r.get("retried", 0), r["wall_s"]]
            for r in rows
        ],
    )


def format_cell_timings(experiment: str, timings: dict[str, Any], top: int = 0) -> str:
    """Per-cell host attribution table (slowest first); ``top`` limits the
    row count, 0 shows every cell."""
    cells = timings.get("cells", {})
    ordered = sorted(cells.items(), key=lambda kv: -kv[1]["wall_s"])
    if top:
        ordered = ordered[:top]
    return format_table(
        f"{experiment}: per-cell timing (jobs={timings.get('jobs', 1)}, "
        f"total {timings.get('wall_s', 0):g}s)",
        ["cell", "wall (s)", "worker", "retried"],
        [[k, v["wall_s"], v["worker"], v["retried"]] for k, v in ordered],
    )
