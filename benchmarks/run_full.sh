#!/bin/sh
# Paper-scale sweeps (REPRO_FULL=1), one figure at a time so partial
# progress is preserved.  Logs to benchmarks/out/full_run.log.
#
# Set REPRO_JOBS=N to run each figure's cells across N worker processes
# on the parallel fabric (results are byte-identical to a serial run);
# REPRO_PROGRESS=1 adds ordered per-cell progress lines to the log.
# REPRO_GQP_ORDERING=adaptive / REPRO_GQP_KERNELS=1 switch the GQP data
# plane (default: static chain order, row-wise probes — the paper's
# configuration; see docs/performance.md).
# Exits non-zero at the first failing figure -- a failed cell raises a
# structured SweepError rather than silently truncating a figure.
set -u
cd /root/repo
export PYTHONPATH="src${PYTHONPATH:+:$PYTHONPATH}"

LOG=benchmarks/out/full_run.log
mkdir -p benchmarks/out
: "${REPRO_JOBS:=1}"
export REPRO_JOBS

# GQP data-plane knobs ride through to every figure (and, via the fabric's
# flag capture, to every worker process) when set by the caller.
# REPRO_FOLD=0 rides through the same way: the similarity figures then
# measure exact-match sharing only (no subsumption folding).
[ -n "${REPRO_GQP_ORDERING:-}" ] && export REPRO_GQP_ORDERING
[ -n "${REPRO_GQP_KERNELS:-}" ] && export REPRO_GQP_KERNELS
[ -n "${REPRO_FOLD:-}" ] && export REPRO_FOLD

echo "=== FULL RUN start $(date +%T) jobs=${REPRO_JOBS}" \
     "gqp=${REPRO_GQP_ORDERING:-static}/kernels=${REPRO_GQP_KERNELS:-0}" \
     "fold=${REPRO_FOLD:-1} ===" >> "$LOG"
summary=""
for f in fig6_push_vs_pull fig11_selectivity fig10_concurrency fig12_selectivity_conc \
         fig13_scalefactor fig14_similarity fig15_plans fig16_mix; do
  echo "=== $f start $(date +%T) ===" >> "$LOG"
  t0=$(date +%s)
  REPRO_FULL=1 python -m pytest "benchmarks/bench_${f}.py" --benchmark-only \
      -p no:cacheprovider -q >> "$LOG" 2>&1
  rc=$?
  dt=$(( $(date +%s) - t0 ))
  echo "=== $f done $(date +%T) rc=$rc wall=${dt}s ===" >> "$LOG"
  summary="${summary}$(printf '%-24s %6ss  rc=%s' "$f" "$dt" "$rc")
"
  if [ "$rc" -ne 0 ]; then
    echo "=== FULL RUN ABORTED at $f (rc=$rc) ===" >> "$LOG"
    printf 'per-figure wall clock (jobs=%s):\n%s' "$REPRO_JOBS" "$summary" | tee -a "$LOG"
    exit "$rc"
  fi
done
echo "=== ALL FULL RUNS COMPLETE ===" >> "$LOG"
printf 'per-figure wall clock (jobs=%s):\n%s' "$REPRO_JOBS" "$summary" | tee -a "$LOG"
