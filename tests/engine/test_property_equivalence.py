"""Property-based cross-engine equivalence.

Hypothesis generates small random star schemas (fact + dimensions with
random contents) and random star queries over them; every engine shape --
query-centric without sharing, with SP, the CJOIN GQP, and the Volcano
baseline -- must produce the reference evaluator's exact result multiset.

This is the paper's implicit invariant (sharing never changes answers)
exercised far from the SSB happy path: skewed keys, dangling foreign keys,
empty selections, single-row dimensions.
"""

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.baselines import VolcanoEngine, evaluate_plan
from repro.engine import CJOIN_SP, QPIPE, QPIPE_SP, QPipeEngine
from repro.query.expr import Between, Col
from repro.query.plan import AggSpec, DimJoinSpec
from repro.query.star import StarQuerySpec
from repro.sim import Simulator
from repro.sim.costmodel import DEFAULT_COST_MODEL
from repro.sim.machine import MachineSpec
from repro.storage import StorageConfig, StorageManager
from repro.storage.schema import Column, Schema
from repro.storage.table import Table


def norm(rows):
    return sorted(
        tuple(round(v, 6) if isinstance(v, float) else v for v in row) for row in rows
    )


# ---------------------------------------------------------------------------
# Schema/workload generation
# ---------------------------------------------------------------------------

def dim_schema(i: int) -> Schema:
    """Per-dimension column names (joins concatenate schemas, so names must
    be unique across the star -- SSB guarantees this with its prefixes)."""
    return Schema(
        [Column(f"d{i}_key"), Column(f"d{i}_attr"), Column(f"d{i}_val")], row_bytes=24.0
    )


@st.composite
def star_case(draw):
    """A random (tables, spec) pair."""
    n_dims = draw(st.integers(1, 3))
    dims = {}
    dim_sizes = []
    for i in range(n_dims):
        size = draw(st.integers(1, 25))
        rows = [
            (k, draw(st.integers(0, 9)), draw(st.integers(0, 100)))
            for k in range(1, size + 1)
        ]
        dims[f"dim{i}"] = Table(
            f"dim{i}", dim_schema(i), rows, row_weight=draw(st.sampled_from([1.0, 10.0]))
        )
        dim_sizes.append(size)

    fact_cols = [Column("f_key")]
    fact_cols += [Column(f"fk{i}") for i in range(n_dims)]
    fact_cols += [Column("f_group"), Column("f_val", "float")]
    fact_schema = Schema(fact_cols, row_bytes=40.0)
    n_fact = draw(st.integers(1, 120))
    fact_rows = []
    for k in range(n_fact):
        row = [k]
        for i in range(n_dims):
            # Allow dangling keys (no matching dimension row).
            row.append(draw(st.integers(0, dim_sizes[i] + 2)))
        row.append(draw(st.integers(0, 3)))
        row.append(float(draw(st.integers(0, 1000))))
        fact_rows.append(tuple(row))
    fact = Table("fact", fact_schema, fact_rows, row_weight=draw(st.sampled_from([1.0, 100.0])))

    dim_specs = []
    for i in range(n_dims):
        lo = draw(st.integers(0, 9))
        hi = draw(st.integers(lo, 9))
        dim_specs.append(
            DimJoinSpec(
                f"dim{i}",
                f"fk{i}",
                f"d{i}_key",
                Between(f"d{i}_attr", lo, hi),
                payload=(f"d{i}_val",) if draw(st.booleans()) else (),
            )
        )
    group_by = ("f_group",) if draw(st.booleans()) else ()
    spec = StarQuerySpec(
        fact_table="fact",
        dims=tuple(dim_specs),
        group_by=group_by,
        aggregates=(
            AggSpec("sum", Col("f_val"), "total"),
            AggSpec("count", None, "n"),
        ),
        label="prop",
    )
    tables = {"fact": fact, **dims}
    return tables, spec


def run_qpipe(tables, spec, config):
    sim = Simulator(MachineSpec(cores=8))
    storage = StorageManager(sim, DEFAULT_COST_MODEL, tables, StorageConfig(resident="memory"))
    eng = QPipeEngine(sim, storage, config)
    handles = [eng.submit(spec) for _ in range(2)]  # two, to exercise sharing
    sim.run()
    return [norm(h.results) for h in handles]


class TestEquivalence:
    @settings(
        max_examples=25,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
    )
    @given(case=star_case())
    def test_all_engines_match_oracle(self, case):
        tables, spec = case
        oracle = norm(evaluate_plan(spec.to_query_centric_plan(tables)))
        # GQP plan through the oracle too (independent code path).
        assert norm(evaluate_plan(spec.to_gqp_plan(tables))) == oracle

        for config in (QPIPE, QPIPE_SP, CJOIN_SP):
            for result in run_qpipe(tables, spec, config):
                assert result == oracle, config.name

        sim = Simulator(MachineSpec(cores=8))
        storage = StorageManager(sim, DEFAULT_COST_MODEL, tables, StorageConfig(resident="memory"))
        pg = VolcanoEngine(sim, storage)
        h = pg.submit(spec)
        sim.run()
        assert norm(h.results) == oracle

    @settings(
        max_examples=10,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
    )
    @given(case=star_case(), delay=st.sampled_from([0.0, 0.01, 0.5]))
    def test_staggered_arrivals_preserve_results(self, case, delay):
        """Arrival timing (and hence which WoPs are open) must never change
        answers."""
        tables, spec = case
        oracle = norm(evaluate_plan(spec.to_query_centric_plan(tables)))
        sim = Simulator(MachineSpec(cores=8))
        storage = StorageManager(sim, DEFAULT_COST_MODEL, tables, StorageConfig(resident="memory"))
        eng = QPipeEngine(sim, storage, CJOIN_SP)
        handles = []

        def submitter():
            from repro.sim.commands import SLEEP

            for _ in range(3):
                handles.append(eng.submit(spec))
                yield SLEEP(delay)

        sim.spawn(submitter(), "sub")
        sim.run()
        for h in handles:
            assert norm(h.results) == oracle
