"""Tests for the bounded admission queue."""

import pytest

from repro.bench.workload import QueryJob
from repro.query.ssb_queries import q32
from repro.server.admission import AdmissionQueue, QueuedQuery
from repro.server.metrics import ServiceMetrics
from repro.sim import Simulator
from repro.sim.machine import MachineSpec


def make_queue(capacity):
    sim = Simulator(MachineSpec(cores=2))
    metrics = ServiceMetrics()
    return sim, metrics, AdmissionQueue(sim, capacity, metrics)


def item(seq, arrival=0.0, deadline=None):
    job = QueryJob(spec=q32("CHINA", "FRANCE", 1993, 1996))
    return QueuedQuery(seq=seq, job=job, arrival_time=arrival, deadline=deadline)


class TestBounds:
    def test_offers_admit_until_capacity_then_drop(self):
        _sim, metrics, q = make_queue(3)
        outcomes = [q.offer(item(i)) for i in range(5)]
        assert outcomes == [True, True, True, False, False]
        assert metrics.admitted == 3
        assert metrics.dropped == 2
        assert q.depth == 3

    def test_capacity_validated(self):
        with pytest.raises(ValueError):
            make_queue(0)

    def test_offer_never_blocks(self):
        # try_put semantics: a full queue returns False immediately; the
        # open-loop arrival source must not stall in simulated time.
        _sim, _metrics, q = make_queue(1)
        assert q.offer(item(0)) is True
        assert q.offer(item(1)) is False


class TestDequeue:
    def test_fifo_order_and_closed_sentinel(self):
        sim, _metrics, q = make_queue(4)
        for i in range(3):
            q.offer(item(i))
        q.close()
        seen = []

        def consumer():
            while True:
                got = yield from q.get()
                if got is AdmissionQueue.CLOSED:
                    return
                seen.append(got.seq)

        sim.spawn(consumer(), "consumer")
        sim.run()
        assert seen == [0, 1, 2]

    def test_get_blocks_until_offer(self):
        sim, _metrics, q = make_queue(2)
        seen = []

        def consumer():
            got = yield from q.get()
            seen.append((got.seq, sim.now))

        def producer():
            from repro.sim.commands import SLEEP

            yield SLEEP(1.5)
            q.offer(item(9))
            q.close()

        sim.spawn(consumer(), "consumer")
        sim.spawn(producer(), "producer")
        sim.run()
        assert seen == [(9, 1.5)]


class TestDeadlines:
    def test_expiry(self):
        it = item(0, arrival=1.0, deadline=2.0)
        assert not it.expired(2.0)
        assert it.expired(2.5)

    def test_no_deadline_never_expires(self):
        assert not item(0).expired(1e9)
