"""The adaptive GQP data plane: selectivity-ordered chains + columnar kernels.

Three contracts under test:

* **Correctness** -- adaptive ordering and the columnar kernels never
  change a query's result rows (vs the reference evaluator), in either
  thread configuration, across admissions, retirements and reorders.
* **Charge equivalence** -- with kernels on and no skipped filter, the
  simulated metrics are *bit-identical* to the default per-row path (the
  PR 3 fusion contract extended across the whole chain); with everything
  off, no new counters appear at all (the golden snapshot stays valid).
* **Determinism** -- re-sorts happen at logical ticks only: the same
  seed gives the same metrics on every rerun, and hysteresis keeps
  near-equal chains from thrashing.
"""

import json

import pytest

from repro.baselines import evaluate_plan
from repro.data import generate_ssb
from repro.engine import CJOIN, CJOIN_SP, QPipeEngine
from repro.gqp.ordering import ChainOrderer
from repro.query.expr import Between, Cmp, Col
from repro.query.plan import AggSpec, DimJoinSpec
from repro.query.ssb_queries import q32
from repro.query.star import StarQuerySpec
from repro.sim import Simulator
from repro.sim.costmodel import DEFAULT_COST_MODEL
from repro.sim.machine import MachineSpec
from repro.storage import StorageConfig, StorageManager

import dataclasses


@pytest.fixture(scope="module")
def ssb():
    return generate_ssb(0.5, seed=13)


def norm(rows):
    return sorted(
        tuple(round(v, 6) if isinstance(v, float) else v for v in row) for row in rows
    )


def make_engine(ssb, config=CJOIN):
    sim = Simulator(MachineSpec())
    storage = StorageManager(
        sim, DEFAULT_COST_MODEL, ssb.tables, StorageConfig(resident="memory")
    )
    return sim, QPipeEngine(sim, storage, config)


def skewed_spec(nation="CHINA", region="ASIA"):
    """Worst-first dimension order: pass-everything date filter first,
    region filter second, most-selective nation filter last."""
    return StarQuerySpec(
        fact_table="lineorder",
        dims=(
            DimJoinSpec("date", "lo_orderdate", "d_datekey",
                        Between("d_year", 1992, 1998), payload=("d_year",)),
            DimJoinSpec("customer", "lo_custkey", "c_custkey",
                        Cmp("=", "c_region", region), payload=("c_city",)),
            DimJoinSpec("supplier", "lo_suppkey", "s_suppkey",
                        Cmp("=", "s_nation", nation), payload=("s_city",)),
        ),
        group_by=("c_city", "s_city", "d_year"),
        aggregates=(AggSpec("sum", Col("lo_revenue"), "revenue"),),
        label="skewed",
    )


ADAPTIVE = dataclasses.replace(
    CJOIN, gqp_adaptive_ordering=True, gqp_filter_kernels=True, gqp_reorder_interval=8
)
KERNELS_ONLY = dataclasses.replace(CJOIN, gqp_filter_kernels=True)


def run_specs(ssb, config, specs):
    sim, eng = make_engine(ssb, config)
    handles = [eng.submit(s) for s in specs]
    sim.run()
    return sim, [norm(h.results) for h in handles]


class TestCorrectness:
    def test_adaptive_matches_oracle(self, ssb):
        specs = [skewed_spec("CHINA", "ASIA"), skewed_spec("FRANCE", "EUROPE")]
        _, results = run_specs(ssb, ADAPTIVE, specs)
        for spec, rows in zip(specs, results):
            oracle = norm(evaluate_plan(spec.to_query_centric_plan(ssb.tables)))
            assert rows == oracle

    def test_adaptive_reorders_most_selective_first(self, ssb):
        sim, eng = make_engine(ssb, ADAPTIVE)
        handles = [eng.submit(skewed_spec()) for _ in range(4)]
        sim.run()
        assert all(h.done for h in handles)
        assert sim.metrics.counts["cjoin_chain_reorders"] >= 1
        pipeline = eng.cjoin_stage.pipeline_for("lineorder")
        # The chain drained (filters drop with their last query), but the
        # orderer saw the skew: the supplier filter passed the fewest rows.
        assert pipeline.orderer is not None
        assert pipeline.orderer.reorders >= 1
        probes = {
            k.split(".")[1]: v
            for k, v in sim.metrics.counts.items()
            if k.startswith("cjoin_filter_probes.")
        }
        passes = {
            k.split(".")[1]: v
            for k, v in sim.metrics.counts.items()
            if k.startswith("cjoin_filter_passes.")
        }
        rate = {d: passes[d] / probes[d] for d in probes}
        assert rate["supplier"] < rate["customer"] < rate["date"]
        # After the re-sort, later filters see fewer rows than the static
        # chain would feed them: supplier now probes *more* rows than date
        # (it runs first), instead of the skew's worst-first order.
        assert probes["supplier"] >= probes["date"]

    def test_vertical_config_adaptive(self, ssb):
        """The vertical configuration re-sorts only at admission pauses;
        results stay correct across the reorder."""
        vertical = dataclasses.replace(ADAPTIVE, cjoin_threads="vertical")
        specs = [skewed_spec("CHINA", "ASIA"), skewed_spec("JAPAN", "ASIA")]
        sim, eng = make_engine(ssb, vertical)
        first = eng.submit(specs[0])
        # Second query arrives mid-flight: its admission pause is the
        # vertical logical tick that may re-sort the (observed) chain.
        def late():
            from repro.sim.commands import SLEEP

            yield SLEEP(0.3)
            handles.append(eng.submit(specs[1]))

        handles = [first]
        sim.spawn(late(), "late-submitter")
        sim.run()
        assert all(h.done for h in handles)
        for spec, h in zip(specs, handles):
            oracle = norm(evaluate_plan(spec.to_query_centric_plan(ssb.tables)))
            assert norm(h.results) == oracle

    def test_kernels_skip_filters_irrelevant_to_page(self, ssb):
        """A page whose live queries all pass a filter (pass_mask covers
        every live bit) skips it outright: once the only query referencing
        customer/supplier completes, the later query's pages cross those
        still-installed filters for free -- with correct results."""
        a = q32("CHINA", "FRANCE", 1993, 1996)
        b = StarQuerySpec(
            fact_table="lineorder",
            dims=(
                DimJoinSpec("date", "lo_orderdate", "d_datekey",
                            Between("d_year", 1994, 1995), payload=("d_year",)),
            ),
            group_by=("d_year",),
            aggregates=(AggSpec("sum", Col("lo_revenue"), "revenue"),),
            label="date-only",
        )
        sim, eng = make_engine(ssb, KERNELS_ONLY)
        ha = eng.submit(a)
        handles: list = []

        def late():
            from repro.sim.commands import SLEEP

            # Admit b in a later batch: its circular scan extends past a's
            # completion, so its tail pages carry only b's bit -- which the
            # customer/supplier pass_masks cover entirely.
            yield SLEEP(0.3)
            handles.append(eng.submit(b))

        sim.spawn(late(), "late-submitter")
        sim.run()
        assert norm(ha.results) == norm(evaluate_plan(a.to_query_centric_plan(ssb.tables)))
        # Revenue sums reach ~2e9: accumulation *order* (pages vs oracle)
        # legitimately moves the last bits, so compare with rel tolerance.
        got = sorted(handles[0].results)
        want = sorted(evaluate_plan(b.to_query_centric_plan(ssb.tables)))
        assert len(got) == len(want)
        for g, w in zip(got, want):
            assert g == pytest.approx(w, rel=1e-9)
        assert sim.metrics.counts["cjoin_filters_skipped"] > 0


class TestChargeEquivalence:
    def test_kernels_only_metrics_bit_identical_without_skips(self, ssb):
        """Every query references every filter -> no skip can fire, and the
        chain-fused charges must be tick-identical to the per-filter path."""
        specs = [skewed_spec("CHINA", "ASIA"), skewed_spec("FRANCE", "EUROPE")]
        base_sim, base_res = run_specs(ssb, CJOIN, specs)
        kern_sim, kern_res = run_specs(ssb, KERNELS_ONLY, specs)
        assert kern_res == base_res
        assert json.dumps(kern_sim.metrics.to_dict(), sort_keys=True) == json.dumps(
            base_sim.metrics.to_dict(), sort_keys=True
        )
        assert kern_sim.now == base_sim.now

    def test_default_mode_has_no_adaptive_counters(self, ssb):
        sim, _ = run_specs_sim(ssb, CJOIN)
        for label in sim.metrics.counts:
            assert not label.startswith(("cjoin_filter_probes", "cjoin_filter_passes",
                                         "cjoin_filter_pass_permille",
                                         "cjoin_chain_reorders", "cjoin_filters_skipped"))


def run_specs_sim(ssb, config):
    sim, eng = make_engine(ssb, config)
    h = eng.submit(skewed_spec())
    sim.run()
    return sim, h


class TestDeterminism:
    def test_adaptive_rerun_identical(self, ssb):
        specs = [skewed_spec("CHINA", "ASIA"), skewed_spec("FRANCE", "EUROPE")]
        sims = [run_specs(ssb, ADAPTIVE, specs)[0] for _ in range(2)]
        a, b = (json.dumps(s.metrics.to_dict(), sort_keys=True) for s in sims)
        assert a == b
        assert sims[0].now == sims[1].now


class TestSlotInteraction:
    def test_retirement_with_reordered_chain_clears_stale_bits(self, ssb):
        """Two queries complete (their slots retire), the chain has
        re-sorted in between, and a later admission reclaims the slots: no
        filter -- wherever it now sits in the chain -- may keep a retired
        bit, and the query on the recycled slot must be correct.

        Stale-bit clearing is *deferred* until the next admission pause, so
        the snapshot must be taken inside the simulation right after that
        admission, not at end of run."""
        sim, eng = make_engine(ssb, ADAPTIVE)
        h1 = eng.submit(skewed_spec("CHINA", "ASIA"))
        h2 = eng.submit(skewed_spec("FRANCE", "EUROPE"))
        later: list = []
        snapshots: list = []

        def late():
            from repro.sim.commands import SLEEP

            while not (h1.done and h2.done):
                yield SLEEP(0.2)
            # Both slots retired.  The next admission reclaims them while
            # (possibly) re-sorting the chain.
            later.append(eng.submit(skewed_spec("JAPAN", "ASIA")))
            pipeline = eng.cjoin_stage.pipeline_for("lineorder")
            while not pipeline.active:
                yield SLEEP(0.05)
            live_mask = sum(1 << s for s in pipeline.active)
            stale = 0
            for flt in pipeline.filters.values():
                for entry in flt.ht.values():
                    stale |= entry.bitmap & ~live_mask
                stale |= flt.pass_mask & ~live_mask
            snapshots.append((stale, pipeline.slots.retired_mask()))

        sim.spawn(late(), "late-submitter")
        sim.run()
        assert h1.done and h2.done and later and later[0].done
        assert sim.metrics.counts["cjoin_chain_reorders"] >= 1
        assert snapshots, "snapshot generator never observed the admission"
        stale, retired = snapshots[0]
        assert stale == 0, f"stale bits {stale:#b} survived the reclaiming admission"
        assert retired == 0, "retired slots not reclaimed at the admission"
        oracle = norm(
            evaluate_plan(skewed_spec("JAPAN", "ASIA").to_query_centric_plan(ssb.tables))
        )
        assert norm(later[0].results) == oracle


class TestChainOrderer:
    def test_unobserved_filters_sort_last(self):
        class F:
            def __init__(self, name, ewma):
                self.dim_name = name
                self.ewma_pass = ewma
                self.probe_rows = self.pass_rows = 0

        orderer = ChainOrderer(hysteresis=0.05)
        out = orderer.propose([F("a", None), F("b", 0.1)])
        assert out == ["b", "a"]

    def test_hysteresis_suppresses_near_equal_swaps(self):
        class F:
            def __init__(self, name, ewma):
                self.dim_name = name
                self.ewma_pass = ewma

        orderer = ChainOrderer(hysteresis=0.05)
        # Out of order, but within the margin: no thrash.
        assert orderer.propose([F("a", 0.52), F("b", 0.50)]) is None
        assert orderer.reorders == 0
        # Beyond the margin: re-sort, most selective first.
        assert orderer.propose([F("a", 0.60), F("b", 0.50)]) == ["b", "a"]
        assert orderer.reorders == 1

    def test_stable_tiebreak_on_equal_rates(self):
        class F:
            def __init__(self, name, ewma):
                self.dim_name = name
                self.ewma_pass = ewma

        orderer = ChainOrderer(hysteresis=0.0)
        # b must move ahead of a, but the two 0.5s keep their relative order.
        out = orderer.propose([F("a", 0.5), F("c", 0.5), F("b", 0.1)])
        assert out == ["b", "a", "c"]

    def test_ewma_folding(self):
        class F:
            dim_name = "x"
            ewma_pass = None
            probe_rows = 0
            pass_rows = 0

        f = F()
        orderer = ChainOrderer(alpha=0.5)
        orderer.observe(f, 100, 50)
        assert f.ewma_pass == pytest.approx(0.5)
        orderer.observe(f, 100, 100)
        assert f.ewma_pass == pytest.approx(0.75)
        assert f.probe_rows == 200 and f.pass_rows == 150
        orderer.observe(f, 0, 0)  # empty pages fold nothing
        assert f.ewma_pass == pytest.approx(0.75)

    def test_tick_interval(self):
        orderer = ChainOrderer(interval=4)
        ticks = [orderer.tick_page() for _ in range(8)]
        assert ticks == [False, False, False, True, False, False, False, True]
