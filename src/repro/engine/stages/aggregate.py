"""The aggregation stage (hash group-by, step WoP).

Blocking operator: all results are emitted after the input drains, so the
whole execution is inside the step Window of Opportunity -- an identical
packet arriving any time before completion reuses the full result."""

from __future__ import annotations

from typing import Any, Iterator

from repro.sim.commands import CPU, CPU_FUSED
from repro.engine.exchange import END
from repro.engine.packet import Packet
from repro.engine.stage import Stage
from repro.engine.stages.inputs import FilteredInput
from repro.query.expr import column_indices, row_key_fn, value_column
from repro.query.plan import AggregateNode, AggSpec
from repro.storage.page import Batch, ColumnBatch


class _Accumulator:
    """Accumulators for one group (one slot per aggregate spec)."""

    __slots__ = ("sums", "counts", "mins", "maxs")

    def __init__(self, n: int):
        self.sums = [0.0] * n
        self.counts = [0] * n
        self.mins: list[Any] = [None] * n
        self.maxs: list[Any] = [None] * n


def accumulate_columnar(
    batch: ColumnBatch,
    n: int,
    w: float,
    group_idx: tuple[int, ...],
    specs,
    value_fns,
    schema,
    groups: dict,
) -> None:
    """Late-materialized accumulation: gather group-key and value columns
    once per batch, then fold -- no per-row tuples, no per-row closure
    calls.  Accumulation order (batch order, per group) matches the
    row-wise loop exactly, so every float result is bit-identical."""
    col_of = batch.column
    if len(group_idx) > 1:
        keys = list(zip(*(col_of(i) for i in group_idx)))
    elif group_idx:
        keys = [(v,) for v in col_of(group_idx[0])]
    else:
        keys = None
    nspecs = len(specs)
    vcols: list = []
    rows = None
    for spec, fn in zip(specs, value_fns):
        if spec.expr is None:
            vcols.append(None)
            continue
        vc = value_column(spec.expr, schema, col_of, n)
        if vc is None:
            # No column form for this expression shape: fall back to the
            # row closure over materialized rows (values are identical).
            if rows is None:
                rows = batch.rows
            vc = [fn(r) for r in rows]
        vcols.append(vc)
    get_group = groups.get
    if nspecs == 1 and keys is not None and specs[0].func in ("sum", "avg"):
        # The workload's common shape: one weighted sum/avg per group.
        vc = vcols[0]
        for key, v in zip(keys, vc):
            acc = get_group(key)
            if acc is None:
                acc = groups[key] = _Accumulator(1)
            acc.sums[0] += v * w
            acc.counts[0] += w
        return
    for p in range(n):
        key = keys[p] if keys is not None else ()
        acc = get_group(key)
        if acc is None:
            acc = groups[key] = _Accumulator(nspecs)
        for i in range(nspecs):
            spec = specs[i]
            if spec.func == "count":
                acc.counts[i] += w
                continue
            v = vcols[i][p]
            if spec.func in ("sum", "avg"):
                acc.sums[i] += v * w
                acc.counts[i] += w
            elif spec.func == "min":
                acc.mins[i] = v if acc.mins[i] is None else min(acc.mins[i], v)
            else:
                acc.maxs[i] = v if acc.maxs[i] is None else max(acc.maxs[i], v)


def _finalize(spec: AggSpec, acc: _Accumulator, i: int) -> Any:
    if spec.func == "sum":
        return acc.sums[i]
    if spec.func == "count":
        return acc.counts[i]
    if spec.func == "avg":
        return acc.sums[i] / acc.counts[i] if acc.counts[i] else 0.0
    if spec.func == "min":
        return acc.mins[i]
    return acc.maxs[i]


class AggregateStage(Stage):
    """The hash group-by aggregation stage (step WoP)."""
    def __init__(self, engine):
        super().__init__(engine, "aggregate")

    def run(self, packet: Packet, child_input: FilteredInput) -> None:
        self.spawn_worker(packet, self._work(packet, child_input))

    def _work(self, packet: Packet, child_input: FilteredInput) -> Iterator[Any]:
        node: AggregateNode = packet.node
        cost = self.engine.cost
        exchange = packet.exchange
        yield CPU(cost.packet_dispatch, "misc")

        schema = child_input.schema
        group_idx = column_indices(schema, node.group_by)
        value_fns = [a.expr.compile(schema) if a.expr is not None else None for a in node.aggregates]
        specs = node.aggregates
        nspecs = len(specs)
        groups: dict[tuple, _Accumulator] = {}
        fuse = self.engine.config.use_fuse_charges()
        # Group-key extraction hoisted out of the per-row loop; keys stay
        # tuples (out_rows concatenates them) even for a single column.
        key_of = row_key_fn(group_idx)
        get_group = groups.get

        while True:
            # Fast mode: the input hands back its per-batch charge so it
            # rides in front of our aggregation charge (see join._work).
            if fuse:
                batch, fc = yield from child_input.read_fused()
            else:
                batch = yield from child_input.read()
                fc = None
            if batch is END:
                break
            n, w = len(batch), batch.weight
            if not n:
                if fc is not None:
                    yield child_input.fuse_next_lock(fc)
                continue
            # Group-table hashing counts as aggregation work (the paper's
            # "Hashing" bucket covers hash-join hash()/equal() only).
            if fuse:
                hash_cmd = CPU(cost.hash_func * n * w, "aggregation")
                agg_cmd = cost.aggregate(n, w, functions=nspecs)
                if fc is not None:
                    cmd = CPU_FUSED(fc, hash_cmd, agg_cmd)
                else:
                    cmd = CPU_FUSED(hash_cmd, agg_cmd)
                # Accumulation is pure computation; nothing is emitted
                # until END, so the next read's lock charge rides along.
                yield child_input.fuse_next_lock(cmd)
            else:
                yield CPU(cost.hash_func * n * w, "aggregation")
                yield cost.aggregate(n, w, functions=nspecs)
            if isinstance(batch, ColumnBatch):
                accumulate_columnar(
                    batch, n, w, group_idx, specs, value_fns, schema, groups
                )
                continue
            for r in batch.rows:
                key = key_of(r)
                acc = get_group(key)
                if acc is None:
                    acc = groups[key] = _Accumulator(nspecs)
                # ``w`` rows of real data stand behind each generated row:
                # additive aggregates scale by the weight so results match
                # what the represented real table would produce.
                for i, fn in enumerate(value_fns):
                    spec = specs[i]
                    if spec.func == "count":
                        acc.counts[i] += w
                        continue
                    v = fn(r)
                    if spec.func in ("sum", "avg"):
                        acc.sums[i] += v * w
                        acc.counts[i] += w
                    elif spec.func == "min":
                        acc.mins[i] = v if acc.mins[i] is None else min(acc.mins[i], v)
                    else:
                        acc.maxs[i] = v if acc.maxs[i] is None else max(acc.maxs[i], v)

        out_rows = [
            key + tuple(_finalize(specs[i], acc, i) for i in range(nspecs))
            for key, acc in groups.items()
        ]
        packet.mark_started()
        self.unregister(packet)
        if out_rows:
            yield from exchange.emit(Batch(out_rows, weight=1.0))
        exchange.close()
        packet.finished = True
