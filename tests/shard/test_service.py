"""End-to-end shard service: determinism, admission semantics, pressure.

These spawn real worker processes (small scale factor, short windows) and
assert the headline contract: N-shard runs produce byte-identical merged
results and fingerprints to 1-shard runs, while the virtual timeline keeps
the single-process tier's admission semantics (drops, deadlines,
backpressure) and scales throughput with the shard count.
"""

from __future__ import annotations

import pytest

from repro.server.config import ServiceConfig
from repro.server.router import ShardBacklog
from repro.shard import serve_sharded

SF = 0.2
FAST = dict(duration=1.0, rate=4.0, sf=SF, workload="q32-random", arrival="uniform")


@pytest.fixture(scope="module")
def one_shard_report():
    return serve_sharded(1, **FAST)


@pytest.mark.parametrize("shards", [2, 3])
def test_nshard_results_byte_identical_to_one_shard(one_shard_report, shards):
    report = serve_sharded(shards, **FAST)
    assert report.fingerprint_lines() == one_shard_report.fingerprint_lines()
    for a, b in zip(report.results, one_shard_report.results):
        assert a.rows == b.rows  # not just the digests: the rows themselves


def test_partition_modes_agree(one_shard_report):
    report = serve_sharded(2, partition="range", **FAST)
    assert report.fingerprint_lines() == one_shard_report.fingerprint_lines()


def test_shard_engines_agree(one_shard_report):
    report = serve_sharded(2, engine="qpipe-sp", **FAST)
    assert report.fingerprint_lines() == one_shard_report.fingerprint_lines()


def test_runs_replay_exactly():
    a = serve_sharded(2, **FAST)
    b = serve_sharded(2, **FAST)
    assert a.fingerprint_lines() == b.fingerprint_lines()
    assert a.metrics.latencies == b.metrics.latencies
    assert a.sim_seconds == b.sim_seconds


def test_throughput_scales_with_shards():
    # At a saturating arrival rate the virtual window is drain-bound, so
    # more shards => shorter window => higher completed-per-second.
    qps = {
        n: serve_sharded(n, duration=0.5, rate=40.0, sf=SF, workload="q32-random").throughput_qps
        for n in (1, 2)
    }
    assert qps[2] > qps[1]


def test_admission_semantics_on_the_virtual_timeline():
    # A tight queue bound + deadline + in-flight cap under a burst: the
    # same shedding behavior the single-process service has.
    config = ServiceConfig(queue_capacity=2, max_in_flight=1, queue_timeout=0.05)
    report = serve_sharded(
        2,
        duration=1.0,
        rate=30.0,
        sf=SF,
        workload="q32-random",
        arrival="burst",
        config=config,
    )
    m = report.metrics
    assert m.arrived > m.admitted  # queue bound dropped some at the door
    assert m.dropped == m.arrived - m.admitted
    assert m.timed_out > 0  # deadline shed queued work
    assert m.completed + m.timed_out + m.failed == m.admitted  # clean drain
    assert m.failed == 0


def test_report_shapes(one_shard_report):
    report = serve_sharded(2, **FAST)
    d = report.to_dict()
    assert d["n_shards"] == 2
    shards = d["shards"]
    assert set(shards["service_seconds"]) == {"shard0", "shard1"}
    for block in shards["service_seconds"].values():
        assert {"count", "p50", "p95", "p99"} <= set(block)
    assert sum(report.metrics.straggler_counts.values()) == report.metrics.completed
    assert report.render()  # renders without raising
    lines = report.fingerprint_lines()
    assert all(len(line.split()) == 2 for line in lines)


def test_explicit_plan_jobs_are_rejected():
    from repro.bench.workload import QueryJob
    from repro.shard.service import ShardService
    from repro.shard.spec import ShardConfig
    from repro.parallel.cells import DatasetSpec
    from repro.server.arrivals import UniformArrivals

    config = ShardConfig(n_shards=1, dataset=DatasetSpec("ssb", SF, 42))
    with ShardService(config) as service:
        with pytest.raises(ValueError, match="star-query specs"):
            service.run(lambda k: QueryJob(plan=object()), UniformArrivals(100.0), 0.05)


# ---------------------------------------------------------------------------
# ShardBacklog (the per-shard pressure signal)
# ---------------------------------------------------------------------------


def test_backlog_fifo_horizons():
    b = ShardBacklog(2)
    assert b.dispatch(0, ready_time=1.0, cost_s=2.0) == (1.0, 3.0)
    # FIFO: the next dispatch waits for the horizon, not the ready time.
    assert b.dispatch(0, ready_time=1.5, cost_s=1.0) == (3.0, 4.0)
    assert b.dispatch(1, ready_time=1.5, cost_s=0.5) == (1.5, 2.0)
    assert b.backlog(2.0) == [2.0, 0.0]
    assert b.pressure(2.0) == 2.0
    assert b.predicted_completion(2.0) == pytest.approx(4.0 + max(b.svc_ewma))


def test_backlog_rejects_empty():
    with pytest.raises(ValueError):
        ShardBacklog(0)
