"""The hash-join stage (query-centric joins, step WoP).

One worker per host packet: build a hash table from the (filtered) build
input, then stream the probe input.  Cost charges split per the paper's
breakdown: ``hash()``/``equal()`` cycles under "hashing", build/probe
bookkeeping and output materialization under "joins"."""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Iterator

from repro.sim.commands import CPU
from repro.engine.exchange import END
from repro.engine.packet import Packet
from repro.engine.stage import Stage
from repro.engine.stages.inputs import FilteredInput
from repro.storage.page import Batch

if TYPE_CHECKING:  # pragma: no cover
    from repro.query.plan import HashJoinNode


class HashJoinStage(Stage):
    """The query-centric hash-join stage (step WoP)."""
    def __init__(self, engine):
        super().__init__(engine, "join")

    def run(self, packet: Packet, probe_input: FilteredInput, build_input: FilteredInput) -> None:
        self.spawn_worker(packet, self._work(packet, probe_input, build_input))

    def _work(
        self, packet: Packet, probe_input: FilteredInput, build_input: FilteredInput
    ) -> Iterator[Any]:
        node: "HashJoinNode" = packet.node
        cost = self.engine.cost
        exchange = packet.exchange
        yield CPU(cost.packet_dispatch, "misc")

        # ---- build phase --------------------------------------------
        build_key = build_input.schema.index(node.build_key)
        table: dict[Any, list[tuple]] = {}
        while True:
            batch = yield from build_input.read()
            if batch is END:
                break
            rows = batch.rows
            if not rows:
                continue
            n, w = len(rows), batch.weight
            yield cost.hashing(n, w)
            yield cost.build(n, w)
            for r in rows:
                table.setdefault(r[build_key], []).append(r)

        # ---- probe phase --------------------------------------------
        probe_key = probe_input.schema.index(node.probe_key)
        get = table.get
        while True:
            batch = yield from probe_input.read()
            if batch is END:
                break
            rows = batch.rows
            if not rows:
                continue
            n, w = len(rows), batch.weight
            out: list[tuple] = []
            for r in rows:
                matches = get(r[probe_key])
                if matches:
                    for m in matches:
                        out.append(r + m)
            yield cost.hashing(n, w, equals=len(out))
            yield cost.probe(n, w)
            if out:
                yield cost.emit_join(len(out), w)
                if not packet.started_emitting:
                    packet.mark_started()
                    self.unregister(packet)  # step WoP closes
                yield from exchange.emit(Batch(out, w))

        exchange.close()
        packet.finished = True
        self.unregister(packet)
