"""Service-layer configuration knobs.

:class:`ServiceConfig` gathers everything the admission gate and the
dispatcher consult: queue bound, in-flight cap (backpressure) and the
per-query queueing deadline.  The routing policy is configured separately
(:mod:`repro.server.router`) so the same service config can be swept across
policies in benchmarks.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class ServiceConfig:
    """Admission and dispatch knobs for one :class:`~repro.server.service.QueryService`."""

    #: maximum queries waiting in the admission queue; arrivals beyond it
    #: are dropped (counted, never errored -- load is shed gracefully).
    queue_capacity: int = 64
    #: maximum queries concurrently submitted to the engines; the
    #: dispatcher exerts backpressure (holds the queue) at this bound.
    #: ``None`` means the engines absorb everything the queue releases.
    max_in_flight: int | None = None
    #: per-query queueing deadline in simulated seconds: a query that has
    #: waited longer than this when the dispatcher reaches it is shed
    #: (counted as timed out) instead of executed.  ``None`` disables.
    queue_timeout: float | None = None

    def __post_init__(self) -> None:
        if self.queue_capacity < 1:
            raise ValueError("queue_capacity must be >= 1")
        if self.max_in_flight is not None and self.max_in_flight < 1:
            raise ValueError("max_in_flight must be >= 1 or None")
        if self.queue_timeout is not None and self.queue_timeout <= 0:
            raise ValueError("queue_timeout must be positive or None")
