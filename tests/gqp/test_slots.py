"""Unit and property tests for the query-slot allocator.

``SlotAllocator._free`` is a min-heap: ``alloc`` must always hand out the
*lowest* safely reusable slot (retired slots are unusable until
``reclaim``), in O(log n) instead of the sort-per-alloc it once was.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.gqp.bitmap import SlotAllocator


class TestBasics:
    def test_fresh_slots_are_sequential(self):
        alloc = SlotAllocator()
        assert [alloc.alloc() for _ in range(4)] == [0, 1, 2, 3]
        assert alloc.high_water == 4
        assert alloc.live == 4

    def test_retired_slot_not_reused_before_reclaim(self):
        alloc = SlotAllocator()
        s = alloc.alloc()
        alloc.retire(s)
        assert alloc.alloc() == 1  # slot 0 still quarantined
        assert alloc.retired_mask() == 1 << s

    def test_reclaim_returns_lowest_first(self):
        alloc = SlotAllocator()
        for _ in range(5):
            alloc.alloc()
        for s in (3, 0, 4):
            alloc.retire(s)
        assert sorted(alloc.reclaim()) == [0, 3, 4]
        assert alloc.retired_mask() == 0
        # Lowest free slot first, regardless of retirement order.
        assert alloc.alloc() == 0
        assert alloc.alloc() == 3
        assert alloc.alloc() == 4
        assert alloc.alloc() == 5  # heap drained: back to fresh slots

    def test_retire_unknown_slot_raises(self):
        alloc = SlotAllocator()
        with pytest.raises(ValueError):
            alloc.retire(0)
        alloc.alloc()
        with pytest.raises(ValueError):
            alloc.retire(1)
        with pytest.raises(ValueError):
            alloc.retire(-1)


#: scripts are sequences of operations; alloc carries no argument, retire
#: picks (by index) one of the currently-live slots, reclaim flushes.
_OPS = st.lists(
    st.one_of(
        st.just(("alloc",)),
        st.tuples(st.just("retire"), st.integers(min_value=0)),
        st.just(("reclaim",)),
    ),
    max_size=60,
)


class TestProperties:
    @settings(max_examples=200, deadline=None)
    @given(_OPS)
    def test_alloc_always_lowest_safe_slot(self, ops):
        """Whatever the alloc/retire/reclaim interleaving, every ``alloc``
        returns the lowest slot that is neither live nor quarantined --
        and never a slot whose stale bits could still be in flight."""
        alloc = SlotAllocator()
        live: set[int] = set()
        retired: set[int] = set()
        high = 0
        for op in ops:
            if op[0] == "alloc":
                s = alloc.alloc()
                candidates = set(range(high)) - live - retired
                expected = min(candidates) if candidates else high
                assert s == expected, f"alloc gave {s}, lowest safe is {expected}"
                assert s not in live and s not in retired
                live.add(s)
                high = max(high, s + 1)
            elif op[0] == "retire":
                if not live:
                    continue
                s = sorted(live)[op[1] % len(live)]
                alloc.retire(s)
                live.discard(s)
                retired.add(s)
            else:
                got = set(alloc.reclaim())
                assert got == retired
                retired.clear()
            # Invariants after every step.
            assert alloc.live == len(live)
            assert alloc.high_water == high
            assert alloc.retired_mask() == sum(1 << s for s in retired)
