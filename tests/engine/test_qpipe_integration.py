"""Integration tests: full queries through every engine configuration.

The central invariant -- sharing must never change answers -- is asserted by
running the same workload through all configurations (both communication
models) and comparing against the independent reference evaluator.
"""

import dataclasses
import random

import pytest

from repro.baselines import VolcanoEngine, evaluate_plan
from repro.data import generate_ssb, generate_tpch
from repro.engine import CJOIN, CJOIN_SP, QPIPE, QPIPE_CS, QPIPE_SP, QPipeEngine
from repro.query.ssb_queries import q11, q21, q32, random_q32
from repro.query.tpch_queries import tpch_q1_plan
from repro.sim import Simulator
from repro.sim.costmodel import DEFAULT_COST_MODEL
from repro.sim.machine import MachineSpec
from repro.storage import StorageConfig, StorageManager

ALL_CONFIGS = (QPIPE, QPIPE_CS, QPIPE_SP, CJOIN, CJOIN_SP)


@pytest.fixture(scope="module")
def ssb():
    return generate_ssb(0.5, seed=21)


def norm(rows):
    """Order-insensitive, float-tolerant normal form of a result set."""
    return sorted(
        tuple(round(v, 6) if isinstance(v, float) else v for v in row) for row in rows
    )


def make_engine(ssb, config, resident="memory"):
    sim = Simulator(MachineSpec())
    storage = StorageManager(
        sim, DEFAULT_COST_MODEL, ssb.tables, StorageConfig(resident=resident)
    )
    return sim, QPipeEngine(sim, storage, config)


class TestCorrectnessMatrix:
    @pytest.mark.parametrize("config", ALL_CONFIGS, ids=lambda c: c.name)
    @pytest.mark.parametrize("comm", ["spl", "fifo"])
    def test_q32_matches_oracle(self, ssb, config, comm):
        spec = q32("CHINA", "FRANCE", 1993, 1996)
        oracle = norm(evaluate_plan(spec.to_query_centric_plan(ssb.tables)))
        sim, eng = make_engine(ssb, dataclasses.replace(config, comm=comm))
        handles = [eng.submit(spec) for _ in range(3)]
        sim.run()
        for h in handles:
            assert norm(h.results) == oracle

    @pytest.mark.parametrize("config", ALL_CONFIGS, ids=lambda c: c.name)
    def test_mixed_workload_matches_oracle(self, ssb, config):
        rng = random.Random(4)
        specs = [random_q32(rng) for _ in range(4)]
        specs += [q11(1993, 1.0, 3.0, 25), q21("MFGR#12", "AMERICA")]
        oracles = [norm(evaluate_plan(s.to_query_centric_plan(ssb.tables))) for s in specs]
        sim, eng = make_engine(ssb, config)
        handles = [eng.submit(s) for s in specs]
        sim.run()
        for h, o in zip(handles, oracles):
            assert norm(h.results) == o

    def test_gqp_plan_oracle_agrees_with_query_centric_oracle(self, ssb):
        """The reference evaluator itself is cross-checked on both plan
        shapes."""
        for spec in (q32("CHINA", "FRANCE", 1993, 1996), q11(1994, 2.0, 4.0, 30)):
            a = norm(evaluate_plan(spec.to_query_centric_plan(ssb.tables)))
            b = norm(evaluate_plan(spec.to_gqp_plan(ssb.tables)))
            assert a == b

    def test_disk_resident_results_identical(self, ssb):
        spec = q32("CHINA", "FRANCE", 1993, 1996)
        oracle = norm(evaluate_plan(spec.to_query_centric_plan(ssb.tables)))
        for config in (QPIPE_SP, CJOIN_SP):
            sim, eng = make_engine(ssb, config, resident="disk")
            h = eng.submit(spec)
            sim.run()
            assert norm(h.results) == oracle

    def test_volcano_matches_oracle(self, ssb):
        spec = q32("CHINA", "FRANCE", 1993, 1996)
        oracle = norm(evaluate_plan(spec.to_query_centric_plan(ssb.tables)))
        sim = Simulator(MachineSpec())
        storage = StorageManager(sim, DEFAULT_COST_MODEL, ssb.tables, StorageConfig())
        pg = VolcanoEngine(sim, storage)
        h = pg.submit(spec)
        sim.run()
        assert norm(h.results) == oracle

    def test_tpch_q1_all_comms(self):
        ds = generate_tpch(0.5, seed=9)
        plan = tpch_q1_plan(ds.lineitem)
        oracle = norm(evaluate_plan(plan))
        assert oracle  # non-empty result
        for comm in ("spl", "fifo"):
            for config in (QPIPE, QPIPE_CS):
                sim = Simulator(MachineSpec())
                storage = StorageManager(sim, DEFAULT_COST_MODEL, ds.tables, StorageConfig())
                eng = QPipeEngine(sim, storage, dataclasses.replace(config, comm=comm))
                hs = [eng.submit_plan(plan) for _ in range(4)]
                sim.run()
                for h in hs:
                    assert norm(h.results) == oracle


class TestSharingBehavior:
    def test_no_sharing_without_sp(self, ssb):
        spec = q32("CHINA", "FRANCE", 1993, 1996)
        sim, eng = make_engine(ssb, QPIPE)
        for _ in range(4):
            eng.submit(spec)
        sim.run()
        assert eng.sharing_summary() == {}

    def test_circular_scan_shares_across_different_predicates(self, ssb):
        """Linear WoP: scans share even when queries differ entirely."""
        sim, eng = make_engine(ssb, QPIPE_CS)
        eng.submit(q32("CHINA", "FRANCE", 1993, 1996))
        eng.submit(q32("JAPAN", "BRAZIL", 1992, 1994))
        sim.run()
        share = eng.sharing_summary()
        # Second query re-used all four table scans.
        assert share.get("tablescan", 0) == 4

    def test_join_sharing_counts_by_depth(self, ssb):
        sim, eng = make_engine(ssb, QPIPE_SP)
        spec = q32("CHINA", "FRANCE", 1993, 1996)
        for _ in range(5):
            eng.submit(spec)
        sim.run()
        share = eng.sharing_summary()
        # Identical plans share at the top join (hj3); deeper joins are
        # cancelled along with the satellites' sub-plans.
        assert share.get("join:hj3", 0) == 4
        assert "join:hj1" not in share

    def test_partial_subplan_sharing(self, ssb):
        """Queries identical up to the second join share hj2 only."""
        sim, eng = make_engine(ssb, QPIPE_SP)
        eng.submit(q32("CHINA", "FRANCE", 1993, 1996))
        eng.submit(q32("CHINA", "FRANCE", 1992, 1996))  # different date pred
        sim.run()
        share = eng.sharing_summary()
        assert share.get("join:hj2", 0) == 1
        assert "join:hj3" not in share

    def test_cjoin_sp_shares_identical_packets(self, ssb):
        spec = q32("CHINA", "FRANCE", 1993, 1996)
        sim, eng = make_engine(ssb, CJOIN_SP)
        for _ in range(6):
            eng.submit(spec)
        sim.run()
        assert eng.sharing_summary().get("cjoin", 0) == 5
        # Only one admission batch with one real query happened.
        assert sim.metrics.counts["cjoin_queries_admitted"] == 1

    def test_cjoin_without_sp_admits_all(self, ssb):
        spec = q32("CHINA", "FRANCE", 1993, 1996)
        sim, eng = make_engine(ssb, CJOIN)
        for _ in range(6):
            eng.submit(spec)
        sim.run()
        assert sim.metrics.counts["cjoin_queries_admitted"] == 6

    def test_sharing_never_changes_results_property(self, ssb):
        """Randomized mini-property: any workload produces identical result
        multisets under QPIPE and QPIPE_SP."""
        rng = random.Random(77)
        specs = [random_q32(rng) for _ in range(6)]
        results = {}
        for config in (QPIPE, QPIPE_SP):
            sim, eng = make_engine(ssb, config)
            handles = [eng.submit(s) for s in specs]
            sim.run()
            results[config.name] = [norm(h.results) for h in handles]
        assert results["QPipe"] == results["QPipe-SP"]


class TestPerformanceShape:
    """Coarse sanity checks of the headline performance relations (the
    precise curves live in benchmarks/)."""

    def test_sp_saves_cpu_at_high_similarity(self, ssb):
        spec = q32("CHINA", "FRANCE", 1993, 1996)

        def total_cpu(config):
            sim, eng = make_engine(ssb, config)
            for _ in range(8):
                eng.submit(spec)
            sim.run()
            return sum(sim.metrics.cpu_cycles_by_category.values())

        assert total_cpu(QPIPE_SP) < 0.5 * total_cpu(QPIPE)

    def test_shared_scan_reduces_disk_traffic(self, ssb):
        spec = q32("CHINA", "FRANCE", 1993, 1996)

        def bytes_read(config):
            sim, eng = make_engine(ssb, config, resident="disk")
            for _ in range(6):
                eng.submit(spec)
            sim.run()
            return sim.disk.bytes_delivered

        assert bytes_read(QPIPE_CS) < 0.5 * bytes_read(QPIPE)

    def test_cjoin_slower_at_one_query_faster_at_many(self, ssb):
        rng = random.Random(5)
        specs = [random_q32(rng) for _ in range(48)]

        def avg_rt(config, n):
            sim, eng = make_engine(ssb, config)
            hs = [eng.submit(s) for s in specs[:n]]
            sim.run()
            return sum(h.response_time for h in hs) / n

        assert avg_rt(CJOIN, 1) > avg_rt(QPIPE_SP, 1)
        assert avg_rt(CJOIN, 48) < avg_rt(QPIPE, 48)
