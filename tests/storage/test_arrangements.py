"""Property + lifecycle suite for shared join arrangements
(:mod:`repro.storage.arrangements`).

Two layers of guarantees:

* **Probe equivalence** (hypothesis, over arbitrary generated tables in
  every layout): the arrangement's hash variant returns exactly the
  positions a naive per-query dict build would; the sorted variant's
  range lookups return exactly what a naive filter keeps; the memoized
  single-match views equal freshly-built ones for any predicate.
* **Lifecycle**: refcounts pin holders, ``StorageManager.notify_update``
  drops cached arrangements while concurrent holders finish on their
  pinned snapshot, the next acquire rebuilds, and a regenerated table
  under the same name evicts the stale index.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.query.expr import Between, Cmp
from repro.sim.costmodel import DEFAULT_COST_MODEL
from repro.sim.engine import Simulator
from repro.sim.machine import MachineSpec
from repro.storage.arrangements import (
    ARRANGEMENTS,
    Arrangement,
    ArrangementCache,
    single_match_table,
)
from repro.storage.manager import StorageConfig, StorageManager
from repro.storage.packed import DICT_MAX_CARD, is_packed
from repro.storage.schema import Column, Schema
from repro.storage.table import Table

SCHEMA = Schema([Column("k"), Column("v"), Column("w")], row_bytes=24)

#: Possibly-duplicated keys: exercises the non-unique path and multi-match
#: position lists.
rows_strategy = st.lists(
    st.tuples(st.integers(0, 15), st.integers(-5, 5), st.integers(0, 3)),
    max_size=120,
)


def unique_rows(keys_base: int, vals: list[int]) -> list[tuple]:
    """Rows with a guaranteed-unique key column (dimension shape)."""
    return [(keys_base + j, v, j % 4) for j, v in enumerate(vals)]


def build_table(rows, packed: bool, tpp: int = 7) -> Table:
    return Table("dim", SCHEMA, rows, tuples_per_page=tpp, packed=packed)


# ----------------------------------------------------------------------
# Hash variant: arrangement probe == naive per-query build.
# ----------------------------------------------------------------------
@settings(max_examples=80, deadline=None)
@given(rows=rows_strategy, packed=st.booleans(), tpp=st.integers(1, 17))
def test_positions_equal_naive_build(rows, packed, tpp):
    arr = Arrangement(build_table(rows, packed, tpp), "k")
    naive: dict = {}
    for pos, r in enumerate(rows):
        naive.setdefault(r[0], []).append(pos)
    assert arr.positions == naive
    assert arr.unique == all(len(ps) == 1 for ps in naive.values())
    assert arr.layout == ("packed" if packed and rows else "boxed")
    for k in list(naive) + [-99]:
        assert arr.lookup_positions(k) == naive.get(k, [])
    assert arr.rows == rows


@settings(max_examples=60, deadline=None)
@given(
    vals=st.lists(st.integers(-5, 5), max_size=80),
    packed=st.booleans(),
    cutoff=st.integers(-6, 6),
)
def test_single_view_equals_fresh_single_match_table(vals, packed, cutoff):
    rows = unique_rows(100, vals)
    arr = Arrangement(build_table(rows, packed), "k")
    assert arr.unique
    # Full view == the hoisted single_match_table over a naive build.
    naive = {r[0]: [r] for r in rows}
    assert arr.single_view() == single_match_table(naive)
    # Predicated view == filter-then-build, and it is memoized: equal
    # predicates (Expr hashes structurally) return the identical object.
    pred = Cmp("<=", "v", cutoff)
    view = arr.single_view(pred)
    assert view == {r[0]: r for r in rows if r[1] <= cutoff}
    assert arr.single_view(Cmp("<=", "v", cutoff)) is view


@settings(max_examples=40, deadline=None)
@given(rows=st.lists(st.tuples(st.just(1), st.integers(0, 3), st.just(0)), min_size=2, max_size=20))
def test_single_view_refuses_non_unique_keys(rows):
    arr = Arrangement(build_table(rows, packed=False), "k")
    assert not arr.unique
    try:
        arr.single_view()
        raise AssertionError("expected ValueError on non-unique keys")
    except ValueError:
        pass


@settings(max_examples=40, deadline=None)
@given(vals=st.lists(st.integers(-5, 5), max_size=60), cutoff=st.integers(-6, 6))
def test_keys_for_matches_selected_and_memoizes(vals, cutoff):
    rows = unique_rows(0, vals)
    arr = Arrangement(build_table(rows, packed=False), "k")
    pred = Cmp(">", "v", cutoff)
    selected = [r for r in rows if r[1] > cutoff]
    keys = arr.keys_for(selected, pred)
    assert keys == [r[0] for r in selected]
    assert arr.keys_for(selected, Cmp(">", "v", cutoff)) is keys
    # A different selection length under another predicate recomputes
    # instead of serving the stale memo.
    other = [r for r in rows if r[1] >= cutoff]
    assert arr.keys_for(other, Between("v", cutoff, 99)) == [r[0] for r in other]


# ----------------------------------------------------------------------
# Sorted variant: range lookups == naive filter.
# ----------------------------------------------------------------------
@settings(max_examples=80, deadline=None)
@given(
    rows=rows_strategy,
    packed=st.booleans(),
    lo=st.integers(-2, 16),
    span=st.integers(0, 8),
)
def test_range_positions_equal_naive_filter(rows, packed, lo, span):
    hi = lo + span
    arr = Arrangement(build_table(rows, packed), "k")
    got = arr.range_positions(lo, hi)
    expected = [pos for pos, r in enumerate(rows) if lo <= r[0] <= hi]
    # Ascending key order; ties in table order (sorted() is stable).
    assert sorted(got) == expected
    assert [rows[p][0] for p in got] == sorted(rows[p][0] for p in got)
    assert set(got) == set(expected)


def test_dictionary_fallback_boundary_probes_exactly():
    """DICT_MAX_CARD+1 distinct keys push a packed column past dictionary
    encoding into typed arrays -- the arrangement must probe identically
    on both sides of the boundary."""
    n = DICT_MAX_CARD + 1  # 257: typed-array (array('q')) territory
    rows = unique_rows(1000, list(range(n)))
    for packed in (False, True):
        t = build_table(rows, packed, tpp=64)
        if packed:
            assert any(is_packed(c) for c in t.columns())
        arr = Arrangement(t, "k")
        assert arr.unique and len(arr.positions) == n
        assert arr.single_view() == {r[0]: r for r in rows}
        assert arr.range_positions(1000, 1009) == list(range(10))
    small = unique_rows(0, list(range(DICT_MAX_CARD - 1)))
    arr_small = Arrangement(build_table(small, packed=True, tpp=64), "k")
    assert arr_small.single_view() == {r[0]: r for r in small}


# ----------------------------------------------------------------------
# Lifecycle: refcounts, invalidation, rebuilds.
# ----------------------------------------------------------------------
def test_acquire_hit_and_refcounts():
    cache = ArrangementCache()
    t = build_table(unique_rows(0, [1, 2, 3]), packed=False)
    a1 = cache.acquire(t, "k")
    a2 = cache.acquire(t, "k")
    assert a1 is a2 and a1.refcount == 2
    assert cache.stats() == {
        "hits": 1, "builds": 1, "evictions": 0, "invalidations": 0, "entries": 1,
        "fold_views": 0, "fold_ranges": 0,
    }
    cache.release(a1)
    cache.release(a2)
    assert a1.refcount == 0 and cache.pinned() == 0
    # Released but still cached: the next acquire is another hit.
    assert cache.acquire(t, "k") is a1 and cache.hits == 2


def test_invalidate_drops_entry_but_holders_keep_snapshot():
    cache = ArrangementCache()
    t = build_table(unique_rows(0, [4, 5, 6]), packed=False)
    held = cache.acquire(t, "k")
    view = held.single_view()
    dropped = cache.invalidate_table("dim")
    assert dropped == 1 and cache.get("dim", "k") is None
    assert cache.evictions == 1 and cache.invalidations == 1
    # The concurrent holder finishes on its pinned snapshot untouched.
    assert held.refcount == 1 and held.single_view() is view
    assert view[0] == (0, 4, 0)
    cache.release(held)
    # The next query rebuilds against the (new) table.
    rebuilt = cache.acquire(t, "k")
    assert rebuilt is not held and cache.builds == 2


def test_stale_table_identity_evicts_and_rebuilds():
    cache = ArrangementCache()
    old = build_table(unique_rows(0, [1]), packed=False)
    new = build_table(unique_rows(0, [1]), packed=True)  # regenerated layout
    a_old = cache.acquire(old, "k")
    cache.release(a_old)
    a_new = cache.acquire(new, "k")
    assert a_new is not a_old and a_new.table is new
    assert a_new.layout == "packed" and a_old.layout == "boxed"
    assert cache.evictions == 1 and cache.builds == 2 and cache.hits == 0


def test_notify_update_invalidates_arrangements():
    """The storage manager's update hook reaches the process-wide cache
    (and keeps its return-value contract: result-cache drops only)."""
    sim = Simulator(MachineSpec(cores=2, hz=2e9))
    t = build_table(unique_rows(0, [7, 8]), packed=False)
    storage = StorageManager(
        sim, DEFAULT_COST_MODEL, {"dim": t}, StorageConfig(resident="memory")
    )
    before = ARRANGEMENTS.stats()
    held = ARRANGEMENTS.acquire(t, "k")
    assert ARRANGEMENTS.get("dim", "k") is held
    assert storage.notify_update("dim") == 0  # no result cache configured
    assert ARRANGEMENTS.get("dim", "k") is None
    after = ARRANGEMENTS.stats()
    assert after["invalidations"] - before["invalidations"] == 1
    assert held.refcount == 1  # holder unaffected
    ARRANGEMENTS.release(held)
