"""TPC-H Q1 (the pricing summary report), used by the paper's Figure 6
push- vs pull-based SP experiment with *identical* concurrent instances.

Q1 is not a star query: it is a pure scan + predicate + 8-way aggregation
over ``lineitem``, which makes the table-scan stage (circular scan, linear
WoP) the only sharing opportunity -- exactly what Figure 6 isolates.
"""

from __future__ import annotations

from repro.data.tpch import Q1_SHIPDATE_CUTOFF
from repro.query.expr import Arith, Cmp, Col, Const
from repro.query.plan import AggregateNode, AggSpec, PlanNode, ScanNode, SelectNode, SortNode
from repro.storage.table import Table


def tpch_q1_plan(lineitem: Table, shipdate_cutoff: int = Q1_SHIPDATE_CUTOFF) -> PlanNode:
    """The TPC-H Q1 plan over a generated lineitem table."""
    disc_price = Arith(
        "*", Col("l_extendedprice"), Arith("-", Const(1.0), Col("l_discount"))
    )
    charge = Arith("*", disc_price, Arith("+", Const(1.0), Col("l_tax")))
    scan = SelectNode(ScanNode(lineitem), Cmp("<=", "l_shipdate", shipdate_cutoff))
    agg = AggregateNode(
        scan,
        group_by=("l_returnflag", "l_linestatus"),
        aggregates=(
            AggSpec("sum", Col("l_quantity"), "sum_qty"),
            AggSpec("sum", Col("l_extendedprice"), "sum_base_price"),
            AggSpec("sum", disc_price, "sum_disc_price"),
            AggSpec("sum", charge, "sum_charge"),
            AggSpec("avg", Col("l_quantity"), "avg_qty"),
            AggSpec("avg", Col("l_extendedprice"), "avg_price"),
            AggSpec("avg", Col("l_discount"), "avg_disc"),
            AggSpec("count", None, "count_order"),
        ),
    )
    return SortNode(agg, (("l_returnflag", True), ("l_linestatus", True)))
