"""Tests for the prefetching page source."""

import pytest

from repro.sim import Simulator
from repro.sim.costmodel import CostModel
from repro.sim.machine import DiskSpec, MachineSpec
from repro.storage import StorageConfig, StorageManager
from repro.storage.prefetch import PageSource
from repro.storage.schema import Column, Schema
from repro.storage.table import Table


def make_env(resident="disk", direct_io=False, prefetch_window=4, bandwidth=100e6):
    sim = Simulator(
        MachineSpec(cores=4, hz=1e9, oversub_penalty=0.0, disks=(DiskSpec(bandwidth=bandwidth),))
    )
    schema = Schema([Column("x")], row_bytes=1000.0)
    table = Table("t", schema, [(i,) for i in range(120)], row_weight=100, tuples_per_page=10)
    storage = StorageManager(
        sim,
        CostModel(),
        {"t": table},
        StorageConfig(resident=resident, direct_io=direct_io, prefetch_window=prefetch_window),
    )
    return sim, storage, table


class TestPageSource:
    def test_pages_in_circular_order(self):
        sim, storage, table = make_env(resident="memory")
        got = []

        def worker():
            src = PageSource(sim, storage, table, start=10)
            for _ in range(table.num_pages + 2):
                page = yield from src.next()
                got.append(page.index)
            src.close()

        sim.spawn(worker(), "w")
        sim.run()
        assert got == [10, 11, 0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11]

    def test_empty_table_rejected(self):
        sim, storage, _ = make_env(resident="memory")
        empty = Table("e", Schema([Column("x")]), [])
        with pytest.raises(ValueError):
            PageSource(sim, storage, empty)

    def test_prefetch_overlaps_io_with_cpu(self):
        """With read-ahead, total time ~ max(io, cpu); synchronous (direct
        I/O) pays io + cpu per page."""
        from repro.sim.commands import CPU

        def run(direct_io):
            sim, storage, table = make_env(direct_io=direct_io, prefetch_window=4)
            done = {}

            def worker():
                src = PageSource(sim, storage, table, 0)
                for _ in range(table.num_pages):
                    page = yield from src.next()
                    yield CPU(1e7)  # 10ms of processing per page
                src.close()
                done["t"] = sim.now

            sim.spawn(worker(), "w")
            sim.run()
            return done["t"]

        buffered = run(False)
        direct = run(True)
        assert buffered < direct * 0.85

    def test_direct_io_has_no_fetcher_thread(self):
        sim, storage, table = make_env(direct_io=True)
        src = PageSource(sim, storage, table)
        assert src._chan is None

    def test_memory_resident_has_no_fetcher(self):
        sim, storage, table = make_env(resident="memory")
        src = PageSource(sim, storage, table)
        assert src._chan is None

    def test_close_stops_fetcher_cleanly(self):
        sim, storage, table = make_env()
        positions = []

        def worker():
            src = PageSource(sim, storage, table, 0)
            page = yield from src.next()
            positions.append(page.index)
            src.close()

        sim.spawn(worker(), "w")
        sim.run()  # must terminate: fetcher is a daemon and exits on close
        assert positions == [0]
