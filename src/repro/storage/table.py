"""Tables: immutable paged storage, row- or column-built.

A table's rows are generated at ~1/1000 of the paper's real cardinality;
``row_weight`` records how many real rows each generated row represents so
that CPU charges (cycles x weight) and I/O charges (bytes x weight) match
paper-scale volumes.

Pages are :class:`~repro.storage.page.ColumnPage` -- dual row/column
representation, each direction lazy.  :meth:`Table.from_columns` builds a
table *column-wise* (pages slice the column vectors; row tuples are never
materialized unless a row consumer forces them) -- the zero-copy path the
shard tier uses to hand out fact partitions.
"""

from __future__ import annotations

from typing import Any, Iterator, Sequence

from repro.sim.fastpath import packed_storage_active
from repro.storage import packed as packedmod
from repro.storage.page import Page
from repro.storage.schema import Schema

#: Generated tuples per page.  Real pages are 32 KB; this is the *batch*
#: granularity of the simulation (one generated page stands for the run of
#: real 32 KB pages holding `TUPLES_PER_PAGE * row_weight` rows).
TUPLES_PER_PAGE = 64


class Table:
    """An immutable, paged relational table."""

    def __init__(
        self,
        name: str,
        schema: Schema,
        rows: Sequence[tuple],
        row_weight: float = 1.0,
        tuples_per_page: int = TUPLES_PER_PAGE,
        packed: bool | None = None,
    ):
        if row_weight <= 0:
            raise ValueError("row_weight must be positive")
        if tuples_per_page < 1:
            raise ValueError("tuples_per_page must be >= 1")
        for row in rows[:1]:
            if len(row) != len(schema):
                raise ValueError(
                    f"row arity {len(row)} does not match schema arity {len(schema)}"
                )
        self.name = name
        self.schema = schema
        self.row_weight = float(row_weight)
        self.tuples_per_page = tuples_per_page
        self.pages: list[Page] = []
        self._cols: tuple[Sequence[Any], ...] | None = None
        rows = list(rows)
        if packed is None:
            packed = packed_storage_active()
        if packed and rows and len(schema):
            # Pack once at load: whole-table typed/dictionary vectors;
            # pages hold zero-copy slices (memoryview for arrays, shared
            # value tables for dictionary codes).  Row tuples decode
            # lazily through the page cache when a row consumer asks.
            self._cols = packedmod.pack_columns(
                [list(c) for c in zip(*rows)], schema
            )
            for start in range(0, len(rows), tuples_per_page):
                end = min(start + tuples_per_page, len(rows))
                self.pages.append(
                    Page(
                        table_name=name,
                        index=len(self.pages),
                        rows=None,
                        weight=self.row_weight,
                        real_bytes=(end - start) * self.row_weight * schema.row_bytes,
                        columns=tuple(col[start:end] for col in self._cols),
                    )
                )
        else:
            for start in range(0, len(rows), tuples_per_page):
                chunk = rows[start : start + tuples_per_page]
                self.pages.append(
                    Page(
                        table_name=name,
                        index=len(self.pages),
                        rows=chunk,
                        weight=self.row_weight,
                        real_bytes=len(chunk) * self.row_weight * schema.row_bytes,
                    )
                )
        self.num_rows = len(rows)

    # ------------------------------------------------------------------
    @classmethod
    def from_columns(
        cls,
        name: str,
        schema: Schema,
        columns: Sequence[Sequence[Any]],
        row_weight: float = 1.0,
        tuples_per_page: int = TUPLES_PER_PAGE,
        packed: bool | None = None,
    ) -> "Table":
        """Build a table from per-column vectors without materializing row
        tuples.  Pages slice the vectors (a C-level operation per column
        per page -- zero-copy ``memoryview`` slices for packed arrays);
        page structure, weights and byte accounting are identical to the
        row constructor's, so simulated charges do not depend on which
        way a table was built.  Already-packed input vectors (shard
        partitions slicing/gathering a packed parent) are kept as-is;
        plain vectors are packed when the packed fast path is active."""
        if len(columns) != len(schema):
            raise ValueError(
                f"column count {len(columns)} does not match schema arity {len(schema)}"
            )
        table = cls.__new__(cls)
        if row_weight <= 0:
            raise ValueError("row_weight must be positive")
        if tuples_per_page < 1:
            raise ValueError("tuples_per_page must be >= 1")
        table.name = name
        table.schema = schema
        table.row_weight = float(row_weight)
        table.tuples_per_page = tuples_per_page
        table.pages = []
        n = len(columns[0]) if columns else 0
        for col in columns:
            if len(col) != n:
                raise ValueError("ragged columns")
        if packed is None:
            packed = packed_storage_active()
        if packed:
            columns = packedmod.pack_columns(columns, schema)
        table._cols = tuple(columns)
        for start in range(0, n, tuples_per_page):
            end = min(start + tuples_per_page, n)
            table.pages.append(
                Page(
                    table_name=name,
                    index=len(table.pages),
                    rows=None,
                    weight=table.row_weight,
                    real_bytes=(end - start) * table.row_weight * schema.row_bytes,
                    columns=tuple(col[start:end] for col in columns),
                )
            )
        table.num_rows = n
        return table

    # ------------------------------------------------------------------
    @property
    def num_pages(self) -> int:
        return len(self.pages)

    @property
    def real_rows(self) -> float:
        """Number of real rows this table represents."""
        return self.num_rows * self.row_weight

    @property
    def real_bytes(self) -> float:
        """Real on-disk size in bytes."""
        return sum(p.real_bytes for p in self.pages)

    def page(self, index: int) -> Page:
        return self.pages[index]

    def iter_rows(self) -> Iterator[tuple]:
        for p in self.pages:
            yield from p.rows

    def columns(self) -> tuple[Sequence[Any], ...]:
        """Full-table column vectors (concatenated page columns, cached).
        Zero-copy shard partitioning gathers from these; building them in
        the parent before forking workers ships them copy-on-write."""
        cols = self._cols
        if cols is None:
            acc: list[list[Any]] = [[] for _ in self.schema.columns]
            for page in self.pages:
                for out, col in zip(acc, page.columns):
                    out.extend(col)
            cols = self._cols = tuple(acc)
        return cols

    def warm_columns(self) -> None:
        """Materialize the column caches (table- and page-level) so forked
        workers inherit them copy-on-write instead of each rebuilding."""
        self.columns()
        for page in self.pages:
            page.columns  # noqa: B018 - property access populates the cache

    # ------------------------------------------------------------------
    def packed_columns(self) -> list[Any]:
        """The columns in their tightest faithful representation (see
        :func:`repro.storage.packed.pack_column`): dictionary codes for
        low-cardinality columns, ``array`` buffers for numeric kinds,
        boxed lists only as the fallback.  When the table was built with
        packed storage on, this *is* the live hot-path representation;
        otherwise it is computed on the fly for the memory report."""
        return [
            packedmod.pack_column(col, cd.kind)
            for col, cd in zip(self.columns(), self.schema.columns)
        ]

    def memory_footprint(self) -> dict[str, Any]:
        """Resident bytes of the two layouts: ``rows_bytes`` counts the
        per-row tuple objects plus boxed numeric elements (what a tuple
        forest keeps alive); ``columns_bytes`` counts the packed columns
        *honestly* -- array buffers, dictionary code bytes, value tables
        and their boxed numeric entries, not just the outer containers.
        String payloads are excluded from both (shared references either
        way).  ``column_layouts`` breaks the packed side down by
        representation."""
        import sys

        numeric = tuple(c.kind in ("int", "float") for c in self.schema.columns)
        rows_bytes = 0
        for page in self.pages:
            rows = page.rows
            rows_bytes += sys.getsizeof(rows)
            for r in rows:
                rows_bytes += sys.getsizeof(r)
                for v, is_num in zip(r, numeric):
                    if is_num:
                        rows_bytes += sys.getsizeof(v)
        layouts = {"dict": 0, "array": 0, "boxed": 0}
        columns_bytes = 0
        for col, cd in zip(self.packed_columns(), self.schema.columns):
            columns_bytes += packedmod.column_nbytes(col, cd.kind)
            t = type(col)
            if t is packedmod.DictColumn:
                layouts["dict"] += 1
            elif t is packedmod.PackedNumeric:
                layouts["array"] += 1
            else:
                layouts["boxed"] += 1
        return {
            "rows_bytes": rows_bytes,
            "columns_bytes": columns_bytes,
            "column_layouts": layouts,
        }

    def __len__(self) -> int:
        return self.num_rows

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"<Table {self.name} rows={self.num_rows} (x{self.row_weight:g} real)"
            f" pages={self.num_pages}>"
        )
