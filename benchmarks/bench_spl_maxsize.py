"""Paper Section 4.1 ablation: the SPL maximum size barely matters.

The paper varied the SPL bound up to 512 MB for 8 concurrent queries and
"observed that changing the maximum size of the SPL does not heavily
affect performance", settling on 256 KB.  Shape claim checked: response
time varies by < 25% from the smallest to the largest bound.
"""

from repro.bench.experiments import spl_max_size_ablation


def bench_spl_max_size(once, save_report):
    result = once(spl_max_size_ablation)
    save_report("spl_maxsize", result.render())

    rts = result.data["rt"]
    assert max(rts) < 1.25 * min(rts)
