"""Tests for the open-loop arrival processes."""

import itertools

import pytest

from repro.server.arrivals import (
    ARRIVALS,
    BurstArrivals,
    PoissonArrivals,
    TraceArrivals,
    UniformArrivals,
    make_arrivals,
)


def take(process, n):
    return list(itertools.islice(process.gaps(), n))


class TestPoisson:
    def test_deterministic_in_seed(self):
        assert take(PoissonArrivals(8.0, seed=7), 50) == take(PoissonArrivals(8.0, seed=7), 50)

    def test_seed_changes_stream(self):
        assert take(PoissonArrivals(8.0, seed=7), 50) != take(PoissonArrivals(8.0, seed=8), 50)

    def test_mean_gap_matches_rate(self):
        gaps = take(PoissonArrivals(10.0, seed=1), 4000)
        assert sum(gaps) / len(gaps) == pytest.approx(0.1, rel=0.1)

    def test_rejects_bad_rate(self):
        with pytest.raises(ValueError):
            PoissonArrivals(0.0)


class TestUniform:
    def test_constant_gaps(self):
        assert take(UniformArrivals(4.0), 5) == [0.25] * 5


class TestBurst:
    def test_pattern_and_average_rate(self):
        gaps = take(BurstArrivals(8.0, burst=4), 8)
        # quiet gap, then burst-1 back-to-back, repeating.
        assert gaps == [0.5, 0.0, 0.0, 0.0, 0.5, 0.0, 0.0, 0.0]
        assert 8 / sum(gaps) == pytest.approx(8.0)

    def test_rejects_bad_burst(self):
        with pytest.raises(ValueError):
            BurstArrivals(8.0, burst=0)


class TestTrace:
    def test_absolute_times_to_gaps(self):
        assert take(TraceArrivals([0.5, 0.5, 2.0]), 3) == [0.5, 0.0, 1.5]

    def test_finite(self):
        assert take(TraceArrivals([1.0]), 5) == [1.0]

    def test_rejects_decreasing(self):
        with pytest.raises(ValueError):
            TraceArrivals([1.0, 0.5])

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            TraceArrivals([-1.0, 0.5])

    def test_from_file(self, tmp_path):
        f = tmp_path / "trace.txt"
        f.write_text("# arrival times\n0.5\n\n1.5  # second query\n")
        assert TraceArrivals.from_file(f).times == [0.5, 1.5]


class TestFactory:
    def test_all_kinds_constructible(self, tmp_path):
        f = tmp_path / "t.txt"
        f.write_text("1.0\n")
        for kind in ARRIVALS:
            proc = make_arrivals(kind, 4.0, seed=1, trace_path=str(f))
            assert proc.name == kind

    def test_unknown_kind(self):
        with pytest.raises(ValueError, match="unknown arrival"):
            make_arrivals("fractal", 4.0)

    def test_trace_needs_path(self):
        with pytest.raises(ValueError, match="trace"):
            make_arrivals("trace", 4.0)
