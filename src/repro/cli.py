"""Command-line interface: ``python -m repro <command>``.

Commands
--------
``run``
    Run a workload on one engine configuration and print the measurements::

        python -m repro run --config qpipe-sp --workload q32-random -n 64
        python -m repro run --config cjoin-sp --workload ssb-mix -n 32 --disk

``query``
    Run one SSB query (any of the thirteen) and print its result rows::

        python -m repro query Q3.2 --config cjoin-sp --sf 1

``experiment``
    Regenerate a paper figure/table::

        python -m repro experiment fig6
        python -m repro experiment fig10 --full

``sweep``
    Regenerate many figures/tables at once on the parallel fabric, with
    ordered per-cell progress and a wall-clock summary::

        python -m repro sweep --jobs 4                 # every experiment
        python -m repro sweep fig10 fig13 --jobs 4 --full
        python -m repro sweep fig13 --jobs 2 --json-dir out/

``serve``
    Run the admission-controlled query service against an open-loop
    arrival stream and print service-level metrics::

        python -m repro serve --policy adaptive --arrival poisson --rate 8 --duration 5
        python -m repro serve --policy static --arrival burst --rate 16 --duration 10 --json

``list``
    Show available engine configurations, workloads, experiments,
    routing policies and arrival processes.
"""

from __future__ import annotations

import argparse
import sys
from typing import Callable

from repro.bench import runner as _runner
from repro.bench import workload as _workload
from repro.bench.reporting import format_table
from repro.data.ssb import generate_ssb
from repro.data.tpch import generate_tpch
from repro.engine.config import CJOIN, CJOIN_SP, QPIPE, QPIPE_CS, QPIPE_SP
from repro.sim.machine import GB
from repro.storage.manager import StorageConfig

import dataclasses as _dc

CONFIGS = {
    "qpipe": QPIPE,
    "qpipe-cs": QPIPE_CS,
    "qpipe-sp": QPIPE_SP,
    "cjoin": CJOIN,
    "cjoin-sp": CJOIN_SP,
    "cjoin-sp-shagg": _dc.replace(
        CJOIN_SP, shared_aggregation=True, name="CJOIN-SP+shagg"
    ),
    "postgres": _runner.POSTGRES,
    "hybrid": _runner.HYBRID,
}

WORKLOADS = ("q32-random", "q32-plans", "q32-selectivity", "ssb-mix", "tpch-q1")


def _experiments() -> dict[str, Callable]:
    from repro.bench import ablations, experiments

    return {
        "fig2": experiments.fig2_wop,
        "fig6": experiments.fig6_push_vs_pull,
        "fig10": experiments.fig10_concurrency,
        "fig11": experiments.fig11_selectivity,
        "fig12": experiments.fig12_selectivity_concurrency,
        "fig13": experiments.fig13_scale_factor,
        "fig14": experiments.fig14_similarity,
        "fig15": experiments.fig15_plan_variety,
        "fig16": experiments.fig16_mix,
        "table1": experiments.table1_rules_of_thumb,
        "spl-maxsize": experiments.spl_max_size_ablation,
        "ablate-distributor": ablations.ablate_distributor_parts,
        "ablate-filters": ablations.ablate_filter_workers,
        "ablate-oversub": ablations.ablate_oversubscription,
        "ablate-prediction": ablations.ablate_prediction_model,
        "ablate-hybrid": ablations.ablate_hybrid_routing,
        "ablate-threads": ablations.ablate_thread_configuration,
        "ablate-batching": ablations.ablate_batched_execution,
        "interarrival": ablations.interarrival_sweep,
    }


def _storage_config(args) -> StorageConfig:
    cache_mb = getattr(args, "result_cache_mb", 0.0)
    cache_kwargs = {
        "result_cache_bytes": cache_mb * 1024 * 1024,
        "result_cache_policy": getattr(args, "cache_policy", "benefit"),
    }
    if args.disk:
        return StorageConfig(
            resident="disk",
            bufferpool_bytes=args.bufferpool_gb * GB,
            direct_io=args.direct_io,
            **cache_kwargs,
        )
    return StorageConfig(resident="memory", **cache_kwargs)


def _apply_gqp_plane(args) -> None:
    """Apply ``--gqp-ordering`` / ``--gqp-kernels`` to the process-wide
    adaptive-GQP defaults.  The engine presets leave the corresponding
    ``EngineConfig`` fields at ``None``, so this one call reaches every
    engine a command builds -- including the CJOIN-SP configs hard-wired
    inside the hybrid and service routers.  The environment variables make
    spawned sweep workers inherit the choice."""
    import os

    from repro.engine.config import set_gqp_plane

    ordering = getattr(args, "gqp_ordering", None)
    if ordering is not None:
        set_gqp_plane(adaptive_ordering=(ordering == "adaptive"))
        os.environ["REPRO_GQP_ORDERING"] = ordering
    if getattr(args, "gqp_kernels", None):
        set_gqp_plane(filter_kernels=True)
        os.environ["REPRO_GQP_KERNELS"] = "1"


def _build_workload(args):
    if args.workload == "tpch-q1":
        dataset = generate_tpch(args.sf, args.seed)
        return dataset.tables, _workload.tpch_q1_workload(args.n, dataset)
    dataset = generate_ssb(args.sf, args.seed)
    if args.workload == "q32-random":
        jobs = _workload.q32_random_workload(args.n, args.seed)
    elif args.workload == "q32-plans":
        jobs = _workload.q32_limited_plans_workload(args.n, args.plans, args.seed)
    elif args.workload == "q32-selectivity":
        jobs = _workload.q32_selectivity_workload(args.n, args.selectivity, args.seed)
    elif args.workload == "ssb-mix":
        jobs = _workload.ssb_mix_workload(args.n, args.seed)
    else:  # pragma: no cover - argparse restricts choices
        raise SystemExit(f"unknown workload {args.workload}")
    return dataset.tables, jobs


# ---------------------------------------------------------------------------
# Commands
# ---------------------------------------------------------------------------


def cmd_run(args) -> int:
    """Run one workload on one engine configuration and print metrics."""
    _apply_gqp_plane(args)
    tables, jobs = _build_workload(args)
    result = _runner.run_batch(tables, CONFIGS[args.config], jobs, _storage_config(args))
    rows = [
        ["configuration", result.config_name],
        ["queries", result.n_queries],
        ["mean response (s)", result.mean_response],
        ["stdev response (s)", result.stdev_response],
        ["makespan (s)", result.sim_seconds],
        ["avg cores used", result.avg_cores_used],
        ["avg read MB/s", result.avg_read_mb_s],
        ["total CPU (core-s)", result.total_cpu_seconds],
        ["CJOIN admission (s)", result.admission_seconds],
    ]
    print(format_table(f"{args.workload} x{args.n} on {result.config_name}", ["metric", "value"], rows))
    if result.sharing:
        print()
        print(
            format_table(
                "sharing events",
                ["stage", "count"],
                sorted(result.sharing.items()),
            )
        )
    return 0


def cmd_query(args) -> int:
    """Run one SSB query and print its result rows."""
    from repro.engine.qpipe import QPipeEngine
    from repro.query.ssb_suite import default_instance
    from repro.sim.costmodel import DEFAULT_COST_MODEL
    from repro.sim.engine import Simulator
    from repro.sim.machine import PAPER_MACHINE
    from repro.storage.manager import StorageManager

    spec = default_instance(args.name)
    dataset = generate_ssb(args.sf, args.seed)
    sim = Simulator(PAPER_MACHINE)
    storage = StorageManager(sim, DEFAULT_COST_MODEL, dataset.tables, _storage_config(args))
    selector = CONFIGS[args.config]
    if not hasattr(selector, "name"):
        raise SystemExit("query command needs a QPipe engine config (not postgres/hybrid)")
    engine = QPipeEngine(sim, storage, selector)
    handle = engine.submit(spec)
    sim.run()
    print(f"{args.name} on {selector.name}: {len(handle.results)} rows "
          f"in {handle.response_time:.2f} simulated seconds")
    schema = handle.root_packet.node.schema
    print(format_table("results", list(schema.names), handle.results[: args.limit]))
    if len(handle.results) > args.limit:
        print(f"... and {len(handle.results) - args.limit} more rows")
    return 0


def _experiment_kwargs(fn, full: bool, jobs: int | None) -> dict:
    """Pass ``full``/``jobs`` only to experiments that take them (fig2 and
    other derived tables have no sweep to parallelize)."""
    import inspect

    params = inspect.signature(fn).parameters
    kwargs = {}
    if full and "full" in params:
        kwargs["full"] = True
    if jobs is not None and "jobs" in params:
        kwargs["jobs"] = jobs
    return kwargs


def cmd_experiment(args) -> int:
    """Regenerate a paper figure/table (optionally charted / as JSON)."""
    experiments = _experiments()
    fn = experiments[args.name]
    result = fn(**_experiment_kwargs(fn, args.full, args.jobs))
    print(result.render())
    if args.chart:
        from repro.bench.charts import chart_for

        chart = chart_for(result)
        if chart:
            print()
            print(chart)
        else:
            print("\n(no chartable response-time series in this experiment)")
    if args.json:
        from repro.bench.export import experiment_to_json

        print()
        print(experiment_to_json(result))
    return 0


def cmd_sweep(args) -> int:
    """Regenerate many figures/tables at once on the parallel fabric.

    Runs each named experiment (default: all of them) with ``--jobs``
    worker processes, prints ordered per-cell progress (unless
    ``--quiet``), optionally writes per-experiment JSON artifacts, and
    ends with a wall-clock summary table."""
    import os
    import time

    from repro.bench.reporting import format_sweep_summary
    from repro.parallel import JOBS_ENV, SweepError, resolve_jobs

    _apply_gqp_plane(args)
    experiments = _experiments()
    names = args.names or list(experiments)
    unknown = [n for n in names if n not in experiments]
    if unknown:
        raise SystemExit(
            f"repro sweep: unknown experiment(s) {', '.join(unknown)} "
            f"(see: repro list)"
        )
    if args.jobs is not None:
        # Library sweeps read REPRO_JOBS when no explicit jobs arg is
        # given; exporting here covers experiments without a jobs kwarg
        # calling into nested sweeps, and keeps child tooling consistent.
        os.environ[JOBS_ENV] = str(args.jobs)
    if not args.quiet:
        os.environ["REPRO_PROGRESS"] = "1"
    if args.timeout is not None:
        os.environ["REPRO_CELL_TIMEOUT"] = str(args.timeout)
    jobs = resolve_jobs(args.jobs)

    if args.json_dir:
        os.makedirs(args.json_dir, exist_ok=True)

    rows = []
    failed = False
    for name in names:
        fn = experiments[name]
        kwargs = _experiment_kwargs(fn, args.full, jobs)
        print(f"=== {name} (jobs={jobs}) ===")
        start = time.perf_counter()
        try:
            result = fn(**kwargs)
        except SweepError as exc:
            failed = True
            print(f"repro sweep: {name} failed: {exc}")
            rows.append(
                {
                    "experiment": name,
                    "cells": "failed",
                    "jobs": jobs,
                    "wall_s": round(time.perf_counter() - start, 2),
                }
            )
            if args.fail_fast:
                break
            continue
        wall = time.perf_counter() - start
        if not args.quiet:
            print(result.render())
            print()
        timings = result.timings or {}
        cells = timings.get("cells", {})
        retried = sum(1 for c in cells.values() if c.get("retried"))
        rows.append(
            {
                "experiment": name,
                "cells": len(cells) if cells else "-",
                "jobs": timings.get("jobs", "-"),
                "retried": retried,
                "wall_s": round(wall, 2),
            }
        )
        if args.json_dir:
            from repro.bench.export import experiment_to_json, timings_to_json

            path = os.path.join(args.json_dir, f"{name}.json")
            with open(path, "w") as fh:
                fh.write(experiment_to_json(result) + "\n")
            if timings:
                with open(os.path.join(args.json_dir, f"{name}.cells.json"), "w") as fh:
                    fh.write(timings_to_json(result) + "\n")

    print(format_sweep_summary(rows))
    return 1 if failed else 0


def cmd_serve(args) -> int:
    """Serve an open-loop query stream through the admission-controlled
    service layer and print (or dump as JSON) the service metrics."""
    from repro.server.config import ServiceConfig
    from repro.server.service import serve

    _apply_gqp_plane(args)
    if args.shards is not None:
        return _serve_sharded(args)
    if args.fingerprints is not None:
        raise SystemExit("repro serve: --fingerprints needs --shards N")
    try:
        config = ServiceConfig(
            queue_capacity=args.queue_capacity,
            max_in_flight=args.max_in_flight,
            queue_timeout=args.timeout,
        )
        dataset = generate_ssb(args.sf, args.seed)
        report = serve(
            dataset.tables,
            policy=args.policy,
            arrival=args.arrival,
            rate=args.rate,
            duration=args.duration,
            seed=args.seed,
            workload=args.workload,
            config=config,
            storage_config=_storage_config(args),
            threshold=args.threshold,
            trace_path=args.trace,
        )
    except (ValueError, OSError) as exc:
        raise SystemExit(f"repro serve: {exc}")
    if args.json:
        from repro.bench.export import metrics_to_json

        print(
            metrics_to_json(
                report.metrics,
                hz=report.machine_hz,
                window=report.window,
                extra=report.header(),
            )
        )
    else:
        print(report.render())
    return 0


def _serve_sharded(args) -> int:
    """``serve --shards N``: the scatter/gather tier.  Admission knobs are
    shared with the unsharded path; routing-policy and result-cache flags
    do not apply (each shard runs one engine; there is no route choice)."""
    from repro.server.config import ServiceConfig
    from repro.shard import serve_sharded

    try:
        config = ServiceConfig(
            queue_capacity=args.queue_capacity,
            max_in_flight=args.max_in_flight,
            queue_timeout=args.timeout,
        )
        report = serve_sharded(
            shards=args.shards,
            partition=args.partition,
            engine=args.shard_engine,
            arrival=args.arrival,
            rate=args.rate,
            duration=args.duration,
            seed=args.seed,
            workload=args.workload,
            sf=args.sf,
            config=config,
            shard_timeout_s=args.shard_timeout,
            trace_path=args.trace,
        )
    except (ValueError, OSError) as exc:
        raise SystemExit(f"repro serve: {exc}")
    if args.fingerprints is not None:
        report.write_fingerprints(args.fingerprints)
    if args.json:
        from repro.bench.export import metrics_to_json

        print(
            metrics_to_json(
                report.metrics,
                hz=report.machine_hz,
                window=report.window,
                extra=report.header(),
            )
        )
    else:
        print(report.render())
    return 0


def cmd_list(_args) -> int:
    """List engine configurations, workloads, experiments, routing
    policies and arrival processes."""
    from repro.cache import CACHE_POLICIES
    from repro.server.arrivals import ARRIVALS
    from repro.server.router import POLICIES
    from repro.server.service import SERVE_WORKLOADS

    print(format_table("engine configurations", ["name"], [[n] for n in CONFIGS]))
    print()
    print(format_table("workloads", ["name"], [[n] for n in WORKLOADS]))
    print()
    print(format_table("workloads (serve)", ["name"], [[n] for n in SERVE_WORKLOADS]))
    print()
    print(format_table("experiments", ["name"], [[n] for n in _experiments()]))
    print()
    print(format_table("policies (serve)", ["name", "strategy"], [[n, d] for n, d in POLICIES.items()]))
    print()
    print(format_table("arrivals (serve)", ["name"], [[n] for n in ARRIVALS]))
    print()
    print(
        format_table(
            "cache policies (--cache-policy)",
            ["name", "strategy"],
            [[n, d] for n, d in CACHE_POLICIES.items()],
        )
    )
    print()
    print(
        format_table(
            "shard tier (serve --shards N)",
            ["knob", "choices"],
            [
                ["--partition", "hash (spread, default) | range (contiguous blocks)"],
                ["--shard-engine", "cjoin-sp (default) | qpipe-sp, one engine per shard"],
                ["--fingerprints PATH", "per-query sha256 lines; identical for any N"],
            ],
        )
    )
    print()
    print(
        format_table(
            "GQP data plane (--gqp-ordering / --gqp-kernels)",
            ["knob", "behavior"],
            [
                ["static", "filter chain stays in plan-insertion order (default)"],
                ["adaptive", "chain re-sorts most-selective-first at logical ticks"],
                ["--gqp-kernels", "columnar FK probing + pass-mask filter skipping"],
            ],
        )
    )
    print()
    print(
        format_table(
            "fast-path planes (env escape hatches; all default on)",
            ["env", "plane"],
            [
                ["REPRO_COLUMNAR=0", "columnar pages -> row batches"],
                ["REPRO_PACKED=0", "packed column vectors -> boxed lists"],
                ["REPRO_ARRANGE=0", "shared join arrangements -> private builds"],
                ["REPRO_FOLD=0", "subsumption query folding -> exact-match "
                 "sharing only (WoP, cache, arrangements)"],
            ],
        )
    )
    return 0


# ---------------------------------------------------------------------------


def _add_gqp_flags(p: argparse.ArgumentParser) -> None:
    """The adaptive-GQP data plane knobs (see: repro list)."""
    p.add_argument("--gqp-ordering", choices=("static", "adaptive"), default=None,
                   help="CJOIN filter-chain ordering (default: static)")
    p.add_argument("--gqp-kernels", action="store_true", default=None,
                   help="columnar CJOIN filter kernels (batch FK probe, "
                   "chain-fused charges, pass-mask filter skipping)")


def build_parser() -> argparse.ArgumentParser:
    """Build the argparse command tree."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Reproduction of 'Sharing Data and Work Across Concurrent "
        "Analytical Queries' (VLDB 2013) on a simulated multicore server.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_run = sub.add_parser("run", help="run a workload on one engine configuration")
    p_run.add_argument("--config", choices=sorted(CONFIGS), default="qpipe-sp")
    p_run.add_argument("--workload", choices=WORKLOADS, default="q32-random")
    p_run.add_argument("-n", type=int, default=16, help="number of queries")
    p_run.add_argument("--sf", type=float, default=1.0, help="scale factor")
    p_run.add_argument("--seed", type=int, default=42)
    p_run.add_argument("--plans", type=int, default=16, help="distinct plans (q32-plans)")
    p_run.add_argument("--selectivity", type=float, default=0.10, help="fact selectivity (q32-selectivity)")
    p_run.add_argument("--disk", action="store_true", help="disk-resident database")
    p_run.add_argument("--direct-io", action="store_true", help="bypass the OS cache")
    p_run.add_argument("--bufferpool-gb", type=float, default=48.0)
    p_run.add_argument("--result-cache-mb", type=float, default=0.0,
                       help="shared result cache budget in MB (0 disables)")
    p_run.add_argument("--cache-policy", choices=("lru", "benefit"), default="benefit",
                       help="result-cache eviction policy (see: repro list)")
    p_run.add_argument("--profile", action="store_true",
                       help="cProfile the run and print the hottest functions")
    _add_gqp_flags(p_run)
    p_run.set_defaults(fn=cmd_run)

    p_query = sub.add_parser("query", help="run one SSB query and print its rows")
    p_query.add_argument("name", help="SSB query name, e.g. Q3.2")
    p_query.add_argument("--config", choices=sorted(CONFIGS), default="qpipe-sp")
    p_query.add_argument("--sf", type=float, default=1.0)
    p_query.add_argument("--seed", type=int, default=42)
    p_query.add_argument("--limit", type=int, default=20, help="max rows to print")
    p_query.add_argument("--disk", action="store_true")
    p_query.add_argument("--direct-io", action="store_true")
    p_query.add_argument("--bufferpool-gb", type=float, default=48.0)
    p_query.set_defaults(fn=cmd_query)

    p_exp = sub.add_parser("experiment", help="regenerate a paper figure/table")
    p_exp.add_argument("name", choices=sorted(_experiments()))
    p_exp.add_argument("--full", action="store_true", help="paper-scale parameters")
    p_exp.add_argument("--jobs", type=int, default=None,
                       help="worker processes for the sweep (default: REPRO_JOBS or 1)")
    p_exp.add_argument("--chart", action="store_true", help="also draw an ASCII chart")
    p_exp.add_argument("--json", action="store_true", help="also dump machine-readable JSON")
    p_exp.set_defaults(fn=cmd_experiment)

    p_sweep = sub.add_parser(
        "sweep",
        help="regenerate many figures/tables on the parallel fabric",
        description="Run each named experiment (default: all) with --jobs "
        "worker processes; results are byte-identical for any jobs count.",
    )
    p_sweep.add_argument("names", nargs="*", metavar="experiment",
                         help="experiments to run (default: all; see: repro list)")
    p_sweep.add_argument("--jobs", type=int, default=None,
                         help="worker processes (default: REPRO_JOBS or 1)")
    p_sweep.add_argument("--full", action="store_true", help="paper-scale parameters")
    p_sweep.add_argument("--timeout", type=float, default=None,
                         help="per-cell wall-clock budget (s)")
    p_sweep.add_argument("--json-dir", default=None,
                         help="write <name>.json (+ <name>.cells.json timing "
                         "attribution) artifacts into this directory")
    p_sweep.add_argument("--quiet", action="store_true",
                         help="suppress per-cell progress and rendered tables")
    p_sweep.add_argument("--fail-fast", action="store_true",
                         help="stop at the first failed experiment")
    _add_gqp_flags(p_sweep)
    p_sweep.set_defaults(fn=cmd_sweep)

    p_serve = sub.add_parser(
        "serve", help="serve an open-loop query stream through the service layer"
    )
    # policy/arrival are validated by the service registries (not argparse
    # choices) so unknown names exit with a one-line message, and new
    # policies need registering in exactly one place.
    p_serve.add_argument("--policy", default="adaptive", help="routing policy (see: repro list)")
    p_serve.add_argument("--arrival", default="poisson", help="arrival process (see: repro list)")
    p_serve.add_argument("--rate", type=float, default=8.0, help="mean arrivals per second")
    p_serve.add_argument("--duration", type=float, default=10.0, help="serving window (simulated s)")
    p_serve.add_argument("--workload", default="ssb-mix",
                         help="query stream: ssb-mix, q32-random, recurring:<rate> "
                         "or folding:<overlap>")
    p_serve.add_argument("--sf", type=float, default=1.0, help="scale factor")
    p_serve.add_argument("--seed", type=int, default=42)
    p_serve.add_argument("--queue-capacity", type=int, default=64, help="admission queue bound")
    p_serve.add_argument("--max-in-flight", type=int, default=None, help="in-flight cap (backpressure)")
    p_serve.add_argument("--timeout", type=float, default=None, help="queueing deadline (s); late queries are shed")
    p_serve.add_argument("--threshold", type=int, default=None, help="routing threshold override")
    p_serve.add_argument("--trace", default=None, help="arrival-times file (--arrival trace)")
    p_serve.add_argument("--disk", action="store_true", help="disk-resident database")
    p_serve.add_argument("--direct-io", action="store_true", help="bypass the OS cache")
    p_serve.add_argument("--bufferpool-gb", type=float, default=48.0)
    p_serve.add_argument("--result-cache-mb", type=float, default=0.0,
                         help="shared result cache budget in MB (0 disables)")
    p_serve.add_argument("--cache-policy", choices=("lru", "benefit"), default="benefit",
                         help="result-cache eviction policy (see: repro list)")
    p_serve.add_argument("--shards", type=int, default=None,
                         help="serve on N shard worker processes (scatter/gather tier); "
                         "results are byte-identical for any N")
    p_serve.add_argument("--partition", choices=("hash", "range"), default="hash",
                         help="fact-table placement across shards (--shards)")
    p_serve.add_argument("--shard-engine", choices=("cjoin-sp", "qpipe-sp"), default="cjoin-sp",
                         help="per-shard engine configuration (--shards)")
    p_serve.add_argument("--shard-timeout", type=float, default=60.0,
                         help="wall-clock seconds before a stuck shard is killed (--shards)")
    p_serve.add_argument("--fingerprints", default=None, metavar="PATH",
                         help="write one '<seq> <sha256>' line per merged query "
                         "(--shards; CI diffs these across shard counts)")
    p_serve.add_argument("--json", action="store_true", help="dump the report as JSON")
    p_serve.add_argument("--profile", action="store_true",
                         help="cProfile the run and print the hottest functions")
    _add_gqp_flags(p_serve)
    p_serve.set_defaults(fn=cmd_serve)

    p_list = sub.add_parser("list", help="list configurations, workloads, experiments")
    p_list.set_defaults(fn=cmd_list)

    return parser


def _run_profiled(fn, top: int = 25) -> int:
    """Run ``fn`` under cProfile and print the hottest functions (the
    simulator is pure Python: knowing where wall-clock goes is how the
    vectorized data plane and fused charges were found)."""
    import cProfile
    import io
    import pstats

    profiler = cProfile.Profile()
    rc = profiler.runcall(fn)
    stream = io.StringIO()
    stats = pstats.Stats(profiler, stream=stream)
    stats.sort_stats("cumulative").print_stats(top)
    stats.sort_stats("tottime").print_stats(top)
    print(f"\n--- cProfile summary (top {top} by cumulative, then total time) ---")
    print(stream.getvalue())
    return rc


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    if getattr(args, "profile", False):
        return _run_profiled(lambda: args.fn(args))
    return args.fn(args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
