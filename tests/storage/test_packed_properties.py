"""Property suite for packed column vectors (:mod:`repro.storage.packed`).

Holds the invariants the ``packed_storage`` fast path rests on, over
*arbitrary* generated inputs:

* **Round trip** -- ``decode(encode(col)) == col`` element for element,
  with exact types preserved (``1`` / ``1.0`` / ``True`` never alias);
  slices, gathers and iteration agree with the boxed column.
* **Kernel equivalence** -- for any schema, predicate and data, the
  column kernels (``compile_cols``) and mask kernels (``compile_mask``)
  over *packed* vectors keep exactly the positions row-at-a-time
  evaluation keeps, in the same order.
* **Partition-layout equality** -- shard partitions of a packed-built
  table hold row-for-row the same data as partitions of a boxed-built
  table, for either placement mode and any shard count, and range
  partitions of typed arrays ship zero bytes (they are views).
"""

from array import array

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.query.expr import And, Between, Cmp, InSet, Not, Or
from repro.shard.partition import partition_shipping, partition_table
from repro.storage.packed import (
    DICT_MAX_CARD,
    DictColumn,
    PackedNumeric,
    as_list,
    column_nbytes,
    gather_column,
    is_packed,
    pack_column,
)
from repro.storage.page import mask_to_sel, sel_to_mask
from repro.storage.schema import Column, Schema
from repro.storage.table import Table

# ----------------------------------------------------------------------
# Strategies.  Small-int relations (values collide often -> dictionary
# encoding, real selections) over a 3-column schema, plus value soups for
# the round-trip laws.
# ----------------------------------------------------------------------
SCHEMA = Schema([Column("a"), Column("b"), Column("c")], row_bytes=24)

rows_strategy = st.lists(
    st.tuples(st.integers(0, 9), st.integers(-5, 5), st.integers(0, 3)),
    max_size=120,
)

values = st.integers(-6, 10)
col_names = st.sampled_from(["a", "b", "c"])

#: Values a column might hold: exact-type round-tripping is part of the
#: contract, so mix ints, bools, floats and strings in one column.
scalar = st.one_of(
    st.integers(-(2**70), 2**70),  # includes ints that overflow array('q')
    st.booleans(),
    st.floats(allow_nan=False, allow_infinity=True),
    st.text(max_size=6),
    st.none(),
)


def leaf_predicates():
    cmps = st.builds(
        Cmp, st.sampled_from(["<", "<=", "=", "!=", ">=", ">"]), col_names, values
    )
    betweens = st.builds(
        lambda c, lo, span: Between(c, lo, lo + span),
        col_names,
        values,
        st.integers(0, 6),
    )
    insets = st.builds(
        lambda c, vs: InSet(c, tuple(vs)),
        col_names,
        st.lists(values, min_size=1, max_size=4),
    )
    return st.one_of(cmps, betweens, insets)


predicates = st.recursive(
    leaf_predicates(),
    lambda inner: st.one_of(
        st.lists(inner, min_size=1, max_size=3).map(lambda ps: And(*ps)),
        st.lists(inner, min_size=1, max_size=3).map(lambda ps: Or(*ps)),
        inner.map(Not),
    ),
    max_leaves=5,
)


def packed_cols(rows):
    cols = tuple(list(c) for c in zip(*rows)) if rows else ([], [], [])
    return tuple(pack_column(col, cd.kind) for col, cd in zip(cols, SCHEMA.columns))


# ----------------------------------------------------------------------
# Round trip: encode -> decode is the identity, with exact types.
# ----------------------------------------------------------------------
@settings(max_examples=120, deadline=None)
@given(col=st.lists(scalar, max_size=100), kind=st.sampled_from(["int", "float", "str"]))
def test_pack_column_round_trips_exactly(col, kind):
    packed = pack_column(col, kind)
    decoded = list(as_list(packed))
    assert len(decoded) == len(col)
    for orig, back in zip(col, decoded):
        assert type(back) is type(orig)
        assert back == orig or (back != back and orig != orig)


@settings(max_examples=80, deadline=None)
@given(col=st.lists(scalar, max_size=100), data=st.data())
def test_packed_slice_gather_and_iteration_agree_with_boxed(col, data):
    packed = pack_column(col, "int")
    n = len(col)
    assert len(packed) == n
    assert list(packed) == col
    assert [packed[j] for j in range(n)] == col
    lo = data.draw(st.integers(0, n))
    hi = data.draw(st.integers(lo, n))
    assert list(packed[lo:hi]) == col[lo:hi]
    idx = data.draw(st.lists(st.integers(0, n - 1), max_size=40)) if n else []
    assert list(gather_column(packed, idx)) == [col[j] for j in idx]


@settings(max_examples=40, deadline=None)
@given(base=st.integers(-1000, 1000), n=st.integers(257, 400))
def test_high_cardinality_ints_pack_as_typed_arrays(base, n):
    col = [base + j for j in range(n)]  # card > DICT_MAX_CARD
    packed = pack_column(col, "int")
    assert type(packed) is PackedNumeric and packed.typecode == "q"
    assert as_list(packed) == col
    view = packed[7 : n - 3]
    assert type(view.data) is memoryview  # zero-copy slice
    assert list(view) == col[7 : n - 3]
    fcol = [float(v) / 2.0 for v in col]
    fpacked = pack_column(fcol, "float")
    assert type(fpacked) is PackedNumeric and fpacked.typecode == "d"
    assert as_list(fpacked) == fcol


@settings(max_examples=60, deadline=None)
@given(col=st.lists(st.integers(0, 30), min_size=1, max_size=120))
def test_low_cardinality_columns_dictionary_encode(col):
    packed = pack_column(col, "int")
    assert type(packed) is DictColumn
    assert len(packed.dictionary) == len({v for v in col}) <= DICT_MAX_CARD
    assert as_list(packed) == col
    # All slices/gathers share one Dictionary object (memoized pass
    # tables and masks are computed once per table).
    assert packed[: len(col) // 2].dictionary is packed.dictionary
    assert packed.gather([0]).dictionary is packed.dictionary


@settings(max_examples=60, deadline=None)
@given(
    col=st.lists(st.integers(0, 12), min_size=1, max_size=120),
    cutoff=st.integers(-1, 13),
)
def test_dictionary_mask_matches_row_wise_predicate(col, cutoff):
    packed = pack_column(col, "int")
    assert type(packed) is DictColumn
    pred = lambda v: v <= cutoff  # noqa: E731
    expected = [j for j, v in enumerate(col) if pred(v)]
    mask = packed.mask_for(("test-le", cutoff), pred)
    assert mask_to_sel(mask, len(col)) == expected
    # Memoized: the second call must return the identical mask without
    # re-evaluating (hand it a predicate that would change the answer).
    assert packed.mask_for(("test-le", cutoff), lambda v: False) == mask


# ----------------------------------------------------------------------
# Kernel equivalence over PACKED vectors.
# ----------------------------------------------------------------------
@settings(max_examples=120, deadline=None)
@given(rows=rows_strategy, expr=predicates)
def test_column_kernel_on_packed_equals_row_wise(rows, expr):
    kernel = expr.compile_cols(SCHEMA)
    if kernel is None:  # shape has no column form; callers fall back
        return
    pred = expr.compile(SCHEMA)
    cols = packed_cols(rows)
    expected = [j for j, r in enumerate(rows) if pred(r)]
    assert kernel(cols.__getitem__, len(rows)) == expected


@settings(max_examples=120, deadline=None)
@given(rows=rows_strategy, expr=predicates, data=st.data())
def test_column_kernel_on_packed_refines_selection_like_row_wise(rows, expr, data):
    kernel = expr.compile_cols(SCHEMA)
    if kernel is None:
        return
    pred = expr.compile(SCHEMA)
    keep = data.draw(st.lists(st.booleans(), min_size=len(rows), max_size=len(rows)))
    sel = [j for j, k in enumerate(keep) if k]
    cols = packed_cols(rows)
    expected = [j for j in sel if pred(rows[j])]
    assert kernel(cols.__getitem__, len(rows), sel) == expected


@settings(max_examples=120, deadline=None)
@given(rows=rows_strategy, expr=predicates)
def test_mask_kernel_on_packed_equals_row_wise(rows, expr):
    kernel = expr.compile_mask(SCHEMA)
    if kernel is None:  # shape has no mask form; callers fall back
        return
    pred = expr.compile(SCHEMA)
    cols = packed_cols(rows)
    mask = kernel(cols.__getitem__, len(rows))
    if mask is None:  # some column is not dictionary-encoded; legal fallback
        return
    expected = [j for j, r in enumerate(rows) if pred(r)]
    assert mask_to_sel(mask, len(rows)) == expected
    assert sel_to_mask(expected) == mask


# ----------------------------------------------------------------------
# Table integration: packed and boxed builds are indistinguishable.
# ----------------------------------------------------------------------
@settings(max_examples=40, deadline=None)
@given(rows=rows_strategy, tpp=st.integers(1, 17))
def test_packed_table_round_trips_rows_and_columns(rows, tpp):
    packed_t = Table("t", SCHEMA, rows, tuples_per_page=tpp, packed=True)
    boxed_t = Table("t", SCHEMA, rows, tuples_per_page=tpp, packed=False)
    assert list(packed_t.iter_rows()) == rows == list(boxed_t.iter_rows())
    assert packed_t.num_pages == boxed_t.num_pages
    for pp, bp in zip(packed_t.pages, boxed_t.pages):
        assert list(pp.rows) == list(bp.rows)
        assert tuple(map(list, pp.columns)) == tuple(map(list, bp.columns))
        assert pp.real_bytes == bp.real_bytes and pp.weight == bp.weight
    if rows:
        assert all(is_packed(c) for c in packed_t.columns())


@settings(max_examples=40, deadline=None)
@given(
    rows=rows_strategy,
    n_shards=st.integers(1, 5),
    mode=st.sampled_from(["hash", "range"]),
    salt=st.integers(0, 3),
)
def test_partition_layouts_equal_packed_vs_boxed(rows, n_shards, mode, salt):
    packed_t = Table("fact", SCHEMA, rows, tuples_per_page=7, packed=True)
    boxed_t = Table("fact", SCHEMA, rows, tuples_per_page=7, packed=False)
    packed_parts = partition_table(packed_t, n_shards, mode, salt, columnar=True)
    boxed_parts = partition_table(boxed_t, n_shards, mode, salt, columnar=True)
    row_parts = partition_table(boxed_t, n_shards, mode, salt, columnar=False)
    assert len(packed_parts) == len(boxed_parts) == n_shards
    for pp, bp, rp in zip(packed_parts, boxed_parts, row_parts):
        assert list(pp.iter_rows()) == list(bp.iter_rows()) == list(rp.iter_rows())
        assert pp.num_pages == bp.num_pages == rp.num_pages
        assert pp.real_bytes == bp.real_bytes == rp.real_bytes
        # Shards of a packed parent inherit packed layouts.
        if pp.num_rows:
            assert all(is_packed(c) for c in pp.columns())


@settings(max_examples=30, deadline=None)
@given(base=st.integers(0, 100), n=st.integers(258, 350), n_shards=st.integers(1, 4))
def test_range_partitions_of_typed_arrays_ship_zero_bytes(base, n, n_shards):
    """Range partitions slice packed buffers into ``memoryview`` views --
    the scatter accounting must see zero shipped bytes for them, while
    hash gathers ship the full gathered buffers."""
    schema = Schema([Column("k")], row_bytes=8)
    col = [base + j for j in range(n)]  # card > 256 -> array('q')
    table = Table.from_columns("fact", schema, (col,), packed=True)
    assert type(table.columns()[0]) is PackedNumeric
    for shard in partition_table(table, n_shards, "range", 0, columnar=True):
        assert partition_shipping(shard)["shipped_bytes"] == 0
    hashed = partition_table(table, n_shards, "hash", 0, columnar=True)
    assert sum(partition_shipping(s)["shipped_bytes"] for s in hashed) == 8 * n


@settings(max_examples=30, deadline=None)
@given(col=st.lists(st.integers(0, 9), min_size=64, max_size=512))
def test_packed_column_smaller_than_boxed(col):
    """The whole point: at page-scale lengths a packed low-cardinality
    column is strictly smaller than the boxed list (the dictionary's
    fixed overhead only matters on columns of a handful of rows)."""
    packed = pack_column(col, "int")
    assert is_packed(packed)
    assert column_nbytes(packed, "int") < column_nbytes(list(col), "int")


def test_mask_to_sel_matches_naive_reference():
    for mask in (0, 1, 0b1010, (1 << 64) - 1, 1 << 200, 0b1001 << 63):
        for n in (0, 1, 8, 63, 64, 65, 201):
            naive = [j for j in range(n) if mask >> j & 1]
            assert mask_to_sel(mask, n) == naive


def test_bool_int_float_never_alias_in_one_column():
    col = [1, 1.0, True, 0, 0.0, False, "1"]
    packed = pack_column(col, "int")
    decoded = as_list(packed)
    assert [type(v) for v in decoded] == [type(v) for v in col]
    assert all(a is b or a == b for a, b in zip(decoded, col))


def test_array_q_rejects_bool_coercion():
    # A column of genuine bools must not silently become array('q') 0/1s.
    col = [True, False] * 200  # card 2 -> dictionary wins anyway
    packed = pack_column(col, "int")
    assert type(packed) is DictColumn
    assert as_list(packed) == col
    # Force past the dictionary: distinct ints with a stray bool.
    col2 = list(range(300)) + [True]
    packed2 = pack_column(col2, "int")
    assert type(packed2) is list  # faithful fallback, not a 1
    assert packed2[-1] is True


def test_huge_ints_fall_back_to_boxed():
    col = list(range(280)) + [2**70]
    packed = pack_column(col, "int")
    assert type(packed) is list
    assert packed == col


def test_pack_column_passes_through_already_packed():
    pn = PackedNumeric(array("q", range(300)), "q")
    assert pack_column(pn, "int") is pn
    dc = pack_column([1, 2, 1], "int")
    assert pack_column(dc, "int") is dc
