"""The push-based sharing prediction model ("to share or not to share?").

The paper repeatedly contrasts SPL with the run-time prediction model of
Johnson et al. [14], which decides per packet whether *push-based* SP is
worth it: forwarding results serializes the producer, so with spare CPU the
system should parallelize query-centric instead, and share only once
resources saturate.  The paper notes that in Figure 6a "the proposed
prediction model would not share in cases of low concurrency, essentially
falling back to the line of No SP (FIFO), and would share in cases of high
concurrency" -- i.e. it tracks the lower envelope of the two push-based
curves.  (And the paper's point: with SPL you don't need a model at all.)

The model below follows that structure: sharing is predicted beneficial
when the extra serial forwarding work the host would take on is smaller
than the queueing delay the satellite's private evaluation would suffer on
the saturated CPU pool.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover
    from repro.engine.qpipe import QPipeEngine
    from repro.query.plan import ScanNode


def push_sharing_beneficial(engine: "QPipeEngine", node: "ScanNode", n_satellites: int) -> bool:
    """Should a new identical packet attach to a push-based (FIFO) host?

    Parameters
    ----------
    engine:
        The engine (for machine state and cost model).
    node:
        The pivot operator's plan node (a scan for circular scans).
    n_satellites:
        Satellites already attached to the candidate host.

    If the newcomer attaches, the host's critical path carries the scan
    *plus one full output copy per satellite* -- serial work that delays
    everyone behind the host.  If it evaluates privately, it pays the scan
    itself, slowed by whatever the current CPU load does to one more
    runnable thread.  Share iff the forwarding-laden host path is still
    shorter than the slowed-down private path: with an idle machine
    (slowdown ~1) any satellite makes sharing lose; once the pool is
    saturated, private evaluation queues and sharing wins.
    """
    cost = engine.cost
    cpu = engine.sim.cpu
    table = node.table
    tuples = table.num_rows * table.row_weight
    copy_cycles = cost.copy_tuple * tuples + cost.fifo_page_overhead * table.num_pages
    scan_cycles = cost.scan_tuple * tuples + cost.bufferpool_page * table.num_pages
    # Host path if we attach: its scan + a copy for every satellite incl. us.
    shared_path = scan_cycles + (n_satellites + 1) * copy_cycles
    # Private path: our own scan on the loaded machine.
    runnable = cpu.runnable + 1  # the would-be private worker
    slowdown = max(1.0, runnable / cpu.cores)
    if runnable > cpu.cores and cpu.oversub_penalty > 0:
        slowdown *= 1.0 + cpu.oversub_penalty * (runnable / cpu.cores - 1.0) ** cpu.oversub_exponent
    private_path = scan_cycles * slowdown
    return shared_path < private_path
