"""Fact-table partitioning for the shard tier.

Star schemas shard the classic way: the **fact table is partitioned**, the
(small) **dimensions are replicated** to every shard.  Joins then never
cross shards -- each worker evaluates the full join tree over its fact
slice -- and the union of per-shard join outputs equals the unsharded join
output, row for row.  Two placement modes:

* ``hash`` -- row ``i`` goes to ``crc32((salt, i)) % n``: spreads any
  generation-order locality evenly, the default.
* ``range`` -- contiguous blocks of near-equal size (shard ``k`` gets rows
  ``[k*ceil, ...)``): preserves page locality, the layout a clustered
  fact table would have.

Both are **true partitions** -- every row is assigned to exactly one shard
for any shard count (the property test in ``tests/shard`` proves it) --
and both are pure functions of ``(n_rows, n_shards, salt)``, so the parent
and every worker independently compute identical placements from the
dataset spec alone; no row data ever crosses a pipe.
"""

from __future__ import annotations

import zlib

from repro.sim.fastpath import columnar_pages_default
from repro.storage import packed as packedmod
from repro.storage.table import Table

__all__ = [
    "PARTITION_MODES",
    "assign_shards",
    "partition_shipping",
    "partition_table",
    "shard_tables",
]

#: CLI-selectable placement modes.
PARTITION_MODES = ("hash", "range")


def assign_shards(n_rows: int, n_shards: int, mode: str = "hash", salt: int = 0) -> list[int]:
    """The shard id of each row index (a pure, process-stable function)."""
    if n_shards < 1:
        raise ValueError("n_shards must be >= 1")
    if mode == "hash":
        # CRC32 like make_rng's salt fold: stable across processes and
        # Python versions, unlike hash().
        return [
            zlib.crc32(repr((salt, i)).encode()) % n_shards for i in range(n_rows)
        ]
    if mode == "range":
        block = -(-n_rows // n_shards) if n_rows else 1  # ceil division
        return [min(i // block, n_shards - 1) for i in range(n_rows)]
    raise ValueError(f"unknown partition mode {mode!r} (choose from: {', '.join(PARTITION_MODES)})")


def partition_table(
    table: Table,
    n_shards: int,
    mode: str = "hash",
    salt: int = 0,
    columnar: bool | None = None,
) -> list[Table]:
    """Split ``table`` into ``n_shards`` tables (same name, schema, row
    weight and page granularity; possibly empty -- a shard with no fact
    rows is legal and handled by the worker).

    With the columnar plane on (the default), shards are built column-wise
    from the parent table's cached column vectors and row tuples are never
    materialized: ``range`` mode *slices* each vector (one C-level copy of
    the references per column per shard -- the page-range path), ``hash``
    mode *gathers* through a per-shard index list.  Both feed
    :meth:`Table.from_columns`, whose pages carry the same row counts,
    weights and byte accounting as the row constructor's, so simulated
    results are identical to the row path (the shard fingerprint test in
    ``tests/shard`` holds both layouts to one snapshot)."""
    if columnar is None:
        columnar = columnar_pages_default()
    if columnar:
        cols = table.columns()
        n = table.num_rows
        builds: list[tuple] = []
        if mode == "range":
            block = -(-n // n_shards) if n else 1
            for k in range(n_shards):
                start = min(k * block, n)
                end = n if k == n_shards - 1 else min((k + 1) * block, n)
                builds.append(tuple(col[start:end] for col in cols))
        elif mode == "hash":
            assignment = assign_shards(n, n_shards, mode, salt)
            index: list[list[int]] = [[] for _ in range(n_shards)]
            for i, shard in enumerate(assignment):
                index[shard].append(i)
            for idx in index:
                # gather_column keeps packed layouts packed: dictionary
                # columns gather their byte codes (sharing the value
                # table), typed arrays gather into typed arrays -- the
                # shard inherits the parent's representation instead of
                # falling back to boxed lists.
                builds.append(
                    tuple(packedmod.gather_column(col, idx) for col in cols)
                )
        else:
            raise ValueError(
                f"unknown partition mode {mode!r} (choose from: {', '.join(PARTITION_MODES)})"
            )
        return [
            Table.from_columns(
                table.name,
                table.schema,
                shard_cols,
                row_weight=table.row_weight,
                tuples_per_page=table.tuples_per_page,
            )
            for shard_cols in builds
        ]
    assignment = assign_shards(table.num_rows, n_shards, mode, salt)
    buckets: list[list[tuple]] = [[] for _ in range(n_shards)]
    for row, shard in zip(table.iter_rows(), assignment):
        buckets[shard].append(row)
    return [
        Table(
            table.name,
            table.schema,
            rows,
            row_weight=table.row_weight,
            tuples_per_page=table.tuples_per_page,
        )
        for rows in buckets
    ]


def partition_shipping(shard: Table) -> dict[str, int]:
    """What building this shard's fact partition actually *shipped*:
    ``{"rows", "pages", "shipped_bytes"}``.

    Packed buffers make byte counts real, so the accounting inspects the
    shard's live column representations instead of assuming a layout:

    * ``PackedNumeric`` backed by a ``memoryview`` -- a zero-copy range
      slice into the parent's buffer: **0 bytes shipped**;
    * ``PackedNumeric`` owning its array -- a hash gather: the full
      buffer was copied;
    * ``DictColumn`` -- the code bytes were copied (slice or gather),
      the dictionary value table stays shared: ``len(codes)`` bytes;
    * boxed column vectors -- one machine-word reference per cell;
    * row-built shards (columnar plane off) -- one reference per row
      (the tuples themselves are shared with the parent table).

    The scatter-cost model charges these bytes (plus a per-page term) on
    each shard's virtual timeline at service start-up; see
    :class:`repro.shard.service.ShardService`."""
    word = 8  # CPython reference width on every supported platform
    cols = shard._cols
    if cols is None:
        return {
            "rows": shard.num_rows,
            "pages": shard.num_pages,
            "shipped_bytes": word * shard.num_rows,
        }
    shipped = 0
    for col in cols:
        t = type(col)
        if t is packedmod.PackedNumeric:
            if type(col.data) is not memoryview:
                shipped += col.nbytes
        elif t is packedmod.DictColumn:
            shipped += len(col.codes)
        else:
            shipped += word * len(col)
    return {
        "rows": shard.num_rows,
        "pages": shard.num_pages,
        "shipped_bytes": shipped,
    }


def shard_tables(
    tables: dict[str, Table],
    fact_table: str,
    shard_id: int,
    n_shards: int,
    mode: str = "hash",
    salt: int = 0,
    columnar: bool | None = None,
) -> dict[str, Table]:
    """One shard's view of the database: its fact partition plus every
    dimension replicated (shared by reference -- tables are immutable).
    ``columnar`` picks the partition build (see :func:`partition_table`);
    the shard worker passes its shipped flag so the layout follows the
    *parent's* mode, not the worker process's import-time default."""
    if fact_table not in tables:
        raise ValueError(f"unknown fact table {fact_table!r}")
    if not 0 <= shard_id < n_shards:
        raise ValueError(f"shard_id {shard_id} out of range for {n_shards} shards")
    out = dict(tables)
    out[fact_table] = partition_table(
        tables[fact_table], n_shards, mode, salt, columnar=columnar
    )[shard_id]
    return out
