"""Tests for the SSB and TPC-H dataset generators."""

import pytest

from repro.data.ssb import (
    ALL_CITIES,
    CITIES_PER_NATION,
    SSB_NATIONS,
    SSB_REGIONS,
    generate_ssb,
    nation_cities,
    nation_region,
)
from repro.data.tpch import generate_tpch


class TestSsbStructure:
    def test_nation_region_structure(self):
        assert len(SSB_NATIONS) == 25
        assert len(SSB_REGIONS) == 5
        assert nation_region("FRANCE") == "EUROPE"
        assert nation_region("PERU") == "AMERICA"

    def test_cities(self):
        cities = nation_cities("CHINA")
        assert len(cities) == CITIES_PER_NATION
        assert len(set(cities)) == CITIES_PER_NATION
        assert len(ALL_CITIES) == 250
        assert len(set(ALL_CITIES)) == 250


class TestSsbGeneration:
    def test_sf1_cardinalities_and_weights(self):
        ds = generate_ssb(1.0, seed=7)
        assert ds.lineorder.num_rows == 6000
        assert ds.lineorder.real_rows == pytest.approx(6_000_000)
        assert ds.customer.num_rows == 600
        assert ds.customer.real_rows == pytest.approx(30_000)
        assert ds.supplier.num_rows == 200
        assert ds.supplier.real_rows == pytest.approx(2_000)
        assert ds.date.num_rows == 2555

    def test_large_sf_is_capped_with_weight(self):
        ds = generate_ssb(100.0, seed=7)
        assert ds.lineorder.num_rows == 60_000
        assert ds.lineorder.real_rows == pytest.approx(600_000_000)
        assert ds.customer.num_rows == 3_000
        assert ds.customer.real_rows == pytest.approx(3_000_000)

    def test_sf30_total_bytes_near_paper(self):
        """Paper: 'scanning all tables reads 21GB of data' at SF=30."""
        ds = generate_ssb(30.0, seed=7)
        gb = ds.real_bytes / (1 << 30)
        assert 15 < gb < 27

    def test_foreign_keys_resolve(self):
        ds = generate_ssb(1.0, seed=7)
        custkeys = {r[0] for r in ds.customer.iter_rows()}
        suppkeys = {r[0] for r in ds.supplier.iter_rows()}
        datekeys = {r[0] for r in ds.date.iter_rows()}
        sch = ds.lineorder.schema
        ic, isu, idt = sch.index("lo_custkey"), sch.index("lo_suppkey"), sch.index("lo_orderdate")
        for row in ds.lineorder.iter_rows():
            assert row[ic] in custkeys
            assert row[isu] in suppkeys
            assert row[idt] in datekeys

    def test_nation_selectivity_roughly_uniform(self):
        ds = generate_ssb(1.0, seed=7)
        inat = ds.customer.schema.index("c_nation")
        counts = {}
        for row in ds.customer.iter_rows():
            counts[row[inat]] = counts.get(row[inat], 0) + 1
        # 600 customers over 25 nations: expect ~24 each; allow wide slack.
        assert len(counts) >= 20
        assert max(counts.values()) < 60

    def test_determinism_and_memoization(self):
        a = generate_ssb(1.0, seed=7)
        b = generate_ssb(1.0, seed=7)
        assert a is b  # lru_cache
        c = generate_ssb(1.0, seed=8)
        assert list(a.lineorder.iter_rows())[:5] != list(c.lineorder.iter_rows())[:5]

    def test_invalid_sf(self):
        with pytest.raises(ValueError):
            generate_ssb(0)

    def test_revenue_consistent_with_price_and_discount(self):
        ds = generate_ssb(1.0, seed=7)
        sch = ds.lineorder.schema
        ip, idis, irev = (
            sch.index("lo_extendedprice"),
            sch.index("lo_discount"),
            sch.index("lo_revenue"),
        )
        for row in list(ds.lineorder.iter_rows())[:100]:
            assert row[irev] == pytest.approx(row[ip] * (100 - row[idis]) / 100)


class TestTpch:
    def test_cardinality_and_weight(self):
        ds = generate_tpch(1.0, seed=7)
        assert ds.lineitem.num_rows == 6000
        assert ds.lineitem.real_rows == pytest.approx(6_000_000)

    def test_q1_predicate_selectivity_high(self):
        """Q1 keeps ~97-98% of lineitem (shipdate <= 1998-09-02)."""
        from repro.data.tpch import Q1_SHIPDATE_CUTOFF

        ds = generate_tpch(1.0, seed=7)
        i = ds.lineitem.schema.index("l_shipdate")
        frac = sum(1 for r in ds.lineitem.iter_rows() if r[i] <= Q1_SHIPDATE_CUTOFF) / len(
            ds.lineitem
        )
        assert 0.9 < frac < 1.0

    def test_flags_domain(self):
        ds = generate_tpch(1.0, seed=7)
        sch = ds.lineitem.schema
        irf, ils = sch.index("l_returnflag"), sch.index("l_linestatus")
        assert {r[irf] for r in ds.lineitem.iter_rows()} <= {"A", "N", "R"}
        assert {r[ils] for r in ds.lineitem.iter_rows()} <= {"F", "O"}
