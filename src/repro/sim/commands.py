"""Commands that simulated threads yield to the event loop.

A simulated thread is a Python generator.  Whenever it needs simulated time
to pass it ``yield``\\ s one of the command objects below and is resumed by
:class:`~repro.sim.engine.Simulator` once the command completes:

* :class:`CpuCommand` -- burn CPU cycles on the (shared) core pool.
* :class:`IoCommand` -- read bytes from a disk device.
* :class:`SleepCommand` -- wait for a fixed simulated duration.
* :data:`BLOCK` -- park until another thread calls ``sim.unblock(thread)``;
  the building block for all higher-level synchronization in
  :mod:`repro.sim.sync`.

The lowercase factory aliases (:func:`CPU`, :func:`IO`, :func:`SLEEP`) are
what engine code uses, e.g. ``yield CPU(1_000_000, "hashing")``.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True, slots=True)
class CpuCommand:
    """Consume ``cycles`` CPU cycles, attributed to a breakdown ``category``.

    Categories mirror the paper's Figure 11/12 CPU-time breakdown:
    ``hashing``, ``joins``, ``aggregation``, ``scans``, ``locks``, ``misc``.
    """

    cycles: float
    category: str = "misc"


@dataclass(frozen=True, slots=True)
class IoCommand:
    """Read ``nbytes`` from disk device ``device`` (a name registered on the
    simulator).  ``sequential=False`` models random access and is charged a
    device-specific penalty."""

    device: str
    nbytes: float
    sequential: bool = True


@dataclass(frozen=True, slots=True)
class SleepCommand:
    """Suspend the thread for ``delay`` simulated seconds."""

    delay: float


class _BlockCommand:
    """Singleton command: park until explicitly unblocked."""

    __slots__ = ()

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return "BLOCK"


#: Yield this to park the current thread until ``sim.unblock(thread)``.
BLOCK = _BlockCommand()


def CPU(cycles: float, category: str = "misc") -> CpuCommand:
    """Factory for :class:`CpuCommand` (reads naturally at yield sites)."""
    return CpuCommand(cycles, category)


def IO(device: str, nbytes: float, sequential: bool = True) -> IoCommand:
    """Factory for :class:`IoCommand`."""
    return IoCommand(device, nbytes, sequential)


def SLEEP(delay: float) -> SleepCommand:
    """Factory for :class:`SleepCommand`."""
    return SleepCommand(delay)


Command = CpuCommand | IoCommand | SleepCommand | _BlockCommand
