"""Extension experiment: interarrival delay vs sharing opportunities.

The paper submits each batch at once "so all queries with common sub-plans
arrive surely inside the WoP" and notes that variable interarrival delays
decrease SP's opportunities (deferring the study to the original QPipe
paper).  This bench runs that study on our engine.

Shape claims checked:
* step-WoP join sharing decays as the delay grows and eventually dies;
* linear-WoP circular-scan sharing survives much longer (any overlapping
  execution can join the circle);
* mean response rises as sharing is lost.
"""

from repro.bench.ablations import interarrival_sweep


def bench_interarrival_sweep(once, save_report):
    result = once(interarrival_sweep)
    save_report("interarrival", result.render())

    joins = result.data["join_shares"]
    scans = result.data["scan_shares"]
    rts = result.data["rt"]
    # Joins: maximal at zero delay, gone at the largest delay.
    assert joins[0] == max(joins)
    assert joins[-1] < joins[0]
    # Scans: still sharing at delays where join sharing already collapsed.
    assert scans[-2] > joins[-2]
    # Lost sharing costs response time.
    assert rts[-1] >= rts[0] * 0.95
