"""Ablation benches for the design choices DESIGN.md calls out (not paper
figures; they isolate the mechanisms behind them)."""

from repro.bench.ablations import (
    ablate_batched_execution,
    ablate_distributor_parts,
    ablate_filter_workers,
    ablate_hybrid_routing,
    ablate_oversubscription,
    ablate_prediction_model,
    ablate_thread_configuration,
)


def bench_ablate_distributor_parts(once, save_report):
    result = once(ablate_distributor_parts)
    save_report("ablate_distributor", result.render())
    rts = result.data["rt"]
    # A single-threaded distributor is a bottleneck at high selectivity.
    assert rts[0] > 1.2 * rts[-1]


def bench_ablate_filter_workers(once, save_report):
    result = once(ablate_filter_workers)
    save_report("ablate_filters", result.render())
    rts = result.data["rt"]
    assert rts[0] > rts[-1]  # more workers never hurt here


def bench_ablate_oversubscription(once, save_report):
    result = once(ablate_oversubscription)
    save_report("ablate_oversub", result.render())
    rts = result.data["rt"]
    # Fair-share only (k=0) cannot produce the paper's collapse.
    assert rts[0] < rts[1] < rts[2]


def bench_ablate_prediction_model(once, save_report):
    result = once(ablate_prediction_model)
    save_report("ablate_prediction", result.render())
    rt = result.data["rt"]
    for i in range(len(result.data["concurrency"])):
        envelope = min(rt["QPipe (FIFO)"][i], rt["QPipe-CS (FIFO)"][i])
        assert rt["CS (FIFO+pred)"][i] <= 1.3 * envelope


def bench_ablate_thread_configuration(once, save_report):
    result = once(ablate_thread_configuration)
    save_report("ablate_threads", result.render())
    rt = result.data["rt"]
    # Paper: neither configuration necessarily wins.  Under low-selectivity
    # workloads the first filter dominates, so the vertical chain's serial
    # first stage trails the horizontal pool -- within the same order of
    # magnitude at every concurrency level.
    for h, v in zip(rt["horizontal"], rt["vertical"]):
        assert 0.25 < v / h < 4.0


def bench_ablate_batched_execution(once, save_report):
    result = once(ablate_batched_execution)
    save_report("ablate_batching", result.render())
    rt = result.data["rt"]
    # Simultaneous arrivals: one generation, batching costs ~nothing.
    assert rt["CJOIN (batched)"][0] <= 1.05 * rt["CJOIN (continuous)"][0]
    # Staggered arrivals: late queries wait for the running generation --
    # batching is never cheaper and clearly worse somewhere in the sweep.
    ratios = [b / c for b, c in zip(rt["CJOIN (batched)"], rt["CJOIN (continuous)"])]
    assert all(r >= 0.99 for r in ratios)
    assert max(ratios[1:]) > 1.15


def bench_ablate_hybrid_routing(once, save_report):
    result = once(ablate_hybrid_routing)
    save_report("ablate_hybrid", result.render())
    rt = result.data["rt"]
    for i in range(len(result.data["concurrency"])):
        best = min(rt["QPipe-SP"][i], rt["CJOIN-SP"][i])
        assert rt["Hybrid"][i] <= 1.5 * best
