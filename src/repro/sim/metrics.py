"""Metrics collected during a simulation run.

These mirror the measurements reported in the paper's evaluation tables:

* CPU time broken down by category (Hashing / Joins / Aggregation / Scans /
  Locks / Misc), summed over all cores -- the paper gathered these with
  Intel VTune; we account them at the cost-model charge sites.
* per-query CPU time, for debugging and ablations;
* average cores used and average read rate over the activity period.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass, field

#: Canonical breakdown categories, in the paper's Figure 11 legend order.
CATEGORIES = ("hashing", "joins", "aggregation", "scans", "locks", "misc")


@dataclass
class Metrics:
    """Accumulated counters for one simulation run."""

    #: cycles charged per breakdown category
    cpu_cycles_by_category: dict[str, float] = field(default_factory=lambda: defaultdict(float))
    #: cycles charged per (query_id, category)
    cpu_cycles_by_query: dict[tuple[int | None, str], float] = field(
        default_factory=lambda: defaultdict(float)
    )
    #: number of sharing events recorded per label (e.g. "join-depth-1")
    sharing_events: dict[str, int] = field(default_factory=lambda: defaultdict(int))
    #: arbitrary named durations (e.g. CJOIN admission time)
    durations: dict[str, float] = field(default_factory=lambda: defaultdict(float))
    #: arbitrary named counts (e.g. buffer pool hits/misses)
    counts: dict[str, int] = field(default_factory=lambda: defaultdict(int))

    def charge_cpu(self, cycles: float, category: str, query_id: int | None) -> None:
        """Record ``cycles`` against ``category`` (and the owning query)."""
        self.cpu_cycles_by_category[category] += cycles
        self.cpu_cycles_by_query[(query_id, category)] += cycles

    def record_sharing(self, label: str, n: int = 1) -> None:
        """Count a simultaneous-pipelining attach (host gained a satellite)."""
        self.sharing_events[label] += n

    def add_duration(self, label: str, seconds: float) -> None:
        self.durations[label] += seconds

    def bump(self, label: str, n: int = 1) -> None:
        self.counts[label] += n

    # ------------------------------------------------------------------
    def cpu_seconds_by_category(self, hz: float) -> dict[str, float]:
        """Convert the per-category cycle counts to seconds of one core at
        ``hz`` -- directly comparable to the paper's stacked CPU-time bars."""
        return {cat: self.cpu_cycles_by_category.get(cat, 0.0) / hz for cat in CATEGORIES}

    def total_cpu_seconds(self, hz: float) -> float:
        return sum(self.cpu_cycles_by_category.values()) / hz
