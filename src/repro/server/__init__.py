"""The query service layer: admission control, adaptive routing, SLOs.

The paper's engines execute *batches*; this package serves *streams*.  An
open-loop arrival process (:mod:`repro.server.arrivals`) feeds a bounded
admission queue (:mod:`repro.server.admission`); a routing policy
(:mod:`repro.server.router`) picks query-centric SP or the shared GQP per
query -- the paper's concluding recommendation, generalized from
``HybridEngine``'s static threshold to a feedback controller -- and
:class:`~repro.server.metrics.ServiceMetrics` reports what a serving
system is judged on: latency percentiles, throughput and shed load.

Typical use::

    from repro.data import generate_ssb
    from repro.server import serve

    report = serve(generate_ssb(1.0, seed=42).tables,
                   policy="adaptive", arrival="poisson",
                   rate=8.0, duration=10.0)
    print(report.render())
"""

from repro.server.admission import AdmissionQueue, QueuedQuery
from repro.server.arrivals import (
    ARRIVALS,
    ArrivalProcess,
    BurstArrivals,
    PoissonArrivals,
    TraceArrivals,
    UniformArrivals,
    make_arrivals,
)
from repro.server.config import ServiceConfig
from repro.server.metrics import ServiceMetrics
from repro.server.router import (
    GQP,
    POLICIES,
    QUERY_CENTRIC,
    AdaptivePolicy,
    RoutingPolicy,
    StaticThresholdPolicy,
    make_policy,
    spec_features,
)
from repro.server.service import (
    SERVE_WORKLOADS,
    QueryService,
    ServiceReport,
    job_factory,
    recurring_job_factory,
    serve,
)

__all__ = [
    "ARRIVALS",
    "AdaptivePolicy",
    "AdmissionQueue",
    "ArrivalProcess",
    "BurstArrivals",
    "GQP",
    "POLICIES",
    "PoissonArrivals",
    "QUERY_CENTRIC",
    "QueryService",
    "QueuedQuery",
    "RoutingPolicy",
    "SERVE_WORKLOADS",
    "ServiceConfig",
    "ServiceMetrics",
    "ServiceReport",
    "StaticThresholdPolicy",
    "TraceArrivals",
    "UniformArrivals",
    "job_factory",
    "make_arrivals",
    "make_policy",
    "recurring_job_factory",
    "serve",
    "spec_features",
]
