"""Buffer pool with LRU replacement.

The unit of residency is the generated page (a stand-in for the run of real
32 KB pages it represents; see DESIGN.md).  Each access charges per-page
bookkeeping CPU under a latch, so many concurrent scanner threads contend --
one of the degradation mechanisms the paper attributes to the query-centric
model ("scanner threads compete for bringing pages into the buffer pool").
"""

from __future__ import annotations

from collections import OrderedDict
from typing import TYPE_CHECKING, Any, Iterator

from repro.sim.commands import BLOCK, CPU
from repro.sim.sync import Lock
from repro.storage.cache import OsPageCache
from repro.storage.page import Page

if TYPE_CHECKING:  # pragma: no cover
    from repro.sim.costmodel import CostModel
    from repro.sim.engine import Simulator
    from repro.storage.table import Table


class BufferPool:
    """Byte-capacity LRU buffer pool above the OS page cache."""

    def __init__(
        self,
        sim: "Simulator",
        cost: "CostModel",
        capacity_bytes: float,
        os_cache: OsPageCache,
    ):
        if capacity_bytes <= 0:
            raise ValueError("capacity must be positive")
        self.sim = sim
        self.cost = cost
        self.capacity_bytes = capacity_bytes
        self.os_cache = os_cache
        self._resident: OrderedDict[tuple[str, int], float] = OrderedDict()
        self._bytes = 0.0
        self._latch = Lock(sim, name="bufferpool", acquire_cycles=cost.bufferpool_page * 0.25)
        # Fixed per-page lookup charge, built once (hot path yields the
        # cached immutable instance).
        self._page_charge = CPU(self.cost.bufferpool_page * 0.75, "scans")
        self.hits = 0
        self.misses = 0

    # ------------------------------------------------------------------
    @property
    def resident_bytes(self) -> float:
        return self._bytes

    @property
    def latch_charge(self):
        """The latch acquisition charge (a cached immutable CpuCommand, or
        None when acquisition is free).  Callers in fuse mode may *prepay*
        it by fusing it into the tail of the CPU command that immediately
        precedes their next ``read_page(..., latch_prepaid=True)`` -- legal
        because the charge is the first thing ``read_page`` yields, so its
        completion instant and the latch-take order are unchanged."""
        return self._latch.charge_cmd

    def read_page(
        self,
        table: "Table",
        page_index: int,
        ram_resident: bool = False,
        direct_io: bool = False,
        sequential: bool = True,
        latch_prepaid: bool = False,
    ) -> Iterator[Any]:
        """Fetch a page (generator); returns the :class:`Page`.

        ``ram_resident`` models the paper's RAM-drive experiments: the page
        is always a hit and no I/O is possible.  ``direct_io`` bypasses the
        OS cache (but not the buffer pool -- Shore-MT still buffers).
        ``latch_prepaid`` means the caller already charged
        :attr:`latch_charge` (fused into its preceding command)."""
        page = table.page(page_index)
        key = (table.name, page_index)
        # Inline latch protocol (one acquisition per page read); the yields
        # match ``yield from self._latch.acquire()`` exactly.
        latch = self._latch
        me = self.sim.current
        if not latch_prepaid and latch.charge_cmd is not None:
            yield latch.charge_cmd
        if not latch.take_or_enqueue(me):
            yield BLOCK
            latch.confirm_after_block(me)
        try:
            yield self._page_charge
            if ram_resident:
                self.hits += 1
                self.sim.metrics.bump("bufferpool_hits")
                return page
            if key in self._resident:
                self.hits += 1
                self.sim.metrics.bump("bufferpool_hits")
                self._resident.move_to_end(key)
                return page
            self.misses += 1
            self.sim.metrics.bump("bufferpool_misses")
        finally:
            self._latch.release()
        # I/O happens outside the latch (Shore-MT releases during fetch).
        if direct_io:
            yield from self.os_cache.read_direct(page.real_bytes, sequential)
        else:
            yield from self.os_cache.read(key, page.real_bytes, sequential)
        yield from self._latch.acquire()
        try:
            self._insert(key, page.real_bytes)
        finally:
            self._latch.release()
        return page

    # ------------------------------------------------------------------
    def _insert(self, key: tuple[str, int], nbytes: float) -> None:
        if key in self._resident:
            self._resident.move_to_end(key)
            return
        self._resident[key] = nbytes
        self._bytes += nbytes
        while self._bytes > self.capacity_bytes and len(self._resident) > 1:
            _old, old_bytes = self._resident.popitem(last=False)
            self._bytes -= old_bytes

    @property
    def latch_contentions(self) -> int:
        return self._latch.contentions
