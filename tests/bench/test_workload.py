"""Tests for workload generators."""

import pytest

from repro.bench.workload import (
    QueryJob,
    mix_spec_factory,
    q32_limited_plans_workload,
    q32_random_workload,
    q32_selectivity_workload,
    ssb_mix_workload,
    tpch_q1_workload,
)
from repro.data import generate_tpch


class TestQueryJob:
    def test_requires_exactly_one_payload(self):
        from repro.data import generate_ssb
        from repro.query.ssb_queries import q32

        with pytest.raises(ValueError):
            QueryJob()
        spec = q32("CHINA", "FRANCE", 1993, 1995)
        plan = spec.to_query_centric_plan(generate_ssb(0.5, seed=21).tables)
        with pytest.raises(ValueError):
            QueryJob(spec=spec, plan=plan)


class TestGenerators:
    def test_random_workload_deterministic(self):
        a = q32_random_workload(10, seed=3)
        b = q32_random_workload(10, seed=3)
        assert [j.spec.signature for j in a] == [j.spec.signature for j in b]
        c = q32_random_workload(10, seed=4)
        assert [j.spec.signature for j in a] != [j.spec.signature for j in c]

    def test_limited_plans_distinct_pool(self):
        jobs = q32_limited_plans_workload(64, 8, seed=5)
        assert len(jobs) == 64
        sigs = {j.spec.signature for j in jobs}
        assert len(sigs) == 8
        # Round-robin: every plan appears 8 times.
        from collections import Counter

        counts = Counter(j.spec.signature for j in jobs)
        assert set(counts.values()) == {8}

    def test_limited_plans_validation(self):
        with pytest.raises(ValueError):
            q32_limited_plans_workload(8, 0)

    def test_selectivity_workload_labels(self):
        jobs = q32_selectivity_workload(4, 0.10, seed=2)
        assert len(jobs) == 4
        assert all("sel" in j.spec.label for j in jobs)

    def test_tpch_workload_identical_plans(self):
        ds = generate_tpch(0.5, seed=2)
        jobs = tpch_q1_workload(5, ds)
        assert len({id(j.plan) for j in jobs}) == 1  # literally the same plan

    def test_mix_round_robin(self):
        jobs = ssb_mix_workload(9, seed=1)
        labels = [j.spec.label for j in jobs]
        assert labels[0::3] == ["Q1.1"] * 3
        assert labels[1::3] == ["Q2.1"] * 3
        assert labels[2::3] == ["Q3.2"] * 3

    def test_mix_spec_factory_deterministic_streams(self):
        f = mix_spec_factory(seed=9)
        assert f(0, 0).signature == f(0, 0).signature
        assert f(0, 0).signature != f(0, 1).signature
