"""Generalized-processor-sharing (GPS) model of a multicore CPU.

The simulated server has ``cores`` identical cores at ``hz`` cycles/second.
At any instant, the ``R`` runnable threads each progress at rate
``hz * min(1, cores / R)`` -- i.e. cores are shared perfectly and fairly.
This fluid model captures exactly the phenomena the paper measures:

* a query-centric engine with more runnable threads than cores (e.g. 256
  concurrent plans on 24 cores) sees per-thread slowdown of ``R / cores``;
* a serialized producer (push-based SP) caps utilization at a few cores no
  matter how many consumers wait.

Implementation: completion in O(log n) per event via a *cumulative service*
counter.  ``service`` is the number of cycles every pool member has received
since the pool was created.  A thread entering with ``w`` cycles of work at
service level ``S`` completes when ``service == S + w``; membership changes
only rescale ``d(service)/dt``, never the completion *order*, so a heap keyed
by target service level suffices.
"""

from __future__ import annotations

import heapq
import math
from typing import TYPE_CHECKING, Callable

if TYPE_CHECKING:  # pragma: no cover
    from repro.sim.task import SimThread


class CpuPool:
    """Fluid-shared pool of CPU cores.

    Parameters
    ----------
    cores:
        Number of hardware contexts (paper: 24, hyper-threading disabled).
    hz:
        Core clock in cycles per second (paper: 1.86 GHz).
    """

    def __init__(
        self,
        cores: int,
        hz: float,
        oversub_penalty: float = 0.35,
        oversub_exponent: float = 2.0,
    ):
        if cores < 1:
            raise ValueError("need at least one core")
        if hz <= 0:
            raise ValueError("clock speed must be positive")
        if oversub_penalty < 0:
            raise ValueError("oversub_penalty must be >= 0")
        if oversub_exponent < 1:
            raise ValueError("oversub_exponent must be >= 1")
        self.cores = cores
        self.hz = hz
        self.oversub_penalty = oversub_penalty
        self.oversub_exponent = oversub_exponent
        self.service = 0.0  # per-thread cumulative service, in cycles
        self._last_update = 0.0
        # Memoized per-thread rates indexed by member count (index 0 is a
        # placeholder; _rate early-returns 0.0 for an empty pool).
        self._rates: list[float] = [0.0]
        # (target service, seq, thread, on_done, remaining fused parts)
        self._heap: list[tuple[float, int, "SimThread", Callable[[], None], tuple]] = []
        self._seq = 0
        self._version = 0  # invalidates scheduled completion events
        #: metrics hook for fused charges: called as ``charge(thread,
        #: cycles, category)`` exactly when a fused part *starts* -- the
        #: same instant its unfused equivalent would have been dispatched.
        self.charge: Callable[["SimThread", float, str], None] | None = None
        # ---- armed-event dedup (owned by Simulator._arm_pool fast path):
        # time of the single live completion event, a token invalidating
        # superseded events, and the freshest (time, version) estimate.
        self.armed_when: float | None = None
        self.arm_token = 0
        self.fresh_when: float | None = None
        self.fresh_version = -1
        # ---- metrics -------------------------------------------------
        self.util_integral = 0.0  # integral of busy cores over time
        self.busy_time = 0.0  # wall time with >= 1 runnable thread

    # ------------------------------------------------------------------
    @property
    def runnable(self) -> int:
        """Number of threads currently in the pool."""
        return len(self._heap)

    def _rate(self) -> float:
        """Current per-thread progress rate in cycles/second.

        When the pool is oversubscribed (R > cores) real machines degrade
        *superlinearly* -- context switching, cache pollution, scheduler and
        latch contention compound (the paper reports up to 50% response-time
        standard deviation in this regime).  We model it as a throughput
        multiplier ``1 / (1 + k * (R/cores - 1)^p)`` with
        ``k = oversub_penalty`` and ``p = oversub_exponent``: mild at 2-3x
        oversubscription, severe beyond; cores still *appear* fully busy
        (utilization metrics are unaffected)."""
        n = len(self._heap)
        if n == 0:
            return 0.0
        rates = self._rates
        if n < len(rates):
            return rates[n]
        return self._rate_for(n)

    def _rate_for(self, n: int) -> float:
        """Compute (and memoize) the per-thread rate for ``n`` members.

        The rate is a pure function of the member count (hz, cores and the
        oversubscription penalty are fixed per pool), so each distinct ``n``
        is computed exactly once -- same expression, same float -- and hot
        paths index the memo table directly."""
        rates = self._rates
        while len(rates) <= n:
            m = len(rates)
            rate = self.hz * min(1.0, self.cores / m)
            if m > self.cores and self.oversub_penalty > 0:
                excess = m / self.cores - 1.0
                rate /= 1.0 + self.oversub_penalty * excess**self.oversub_exponent
            rates.append(rate)
        return rates[n]

    def advance(self, now: float) -> None:
        """Bring the service counter (and metrics) up to simulated ``now``."""
        dt = now - self._last_update
        if dt < 0:
            raise AssertionError(f"time went backwards: {self._last_update} -> {now}")
        if dt > 0:
            n = len(self._heap)
            if n:
                self.service += self._rate() * dt
                self.util_integral += min(n, self.cores) * dt
                self.busy_time += dt
            self._last_update = now

    # ------------------------------------------------------------------
    def add(
        self,
        now: float,
        thread: "SimThread",
        cycles: float,
        on_done: Callable[[], None],
        rest: tuple = (),
    ) -> None:
        """Enter ``thread`` into the pool for ``cycles`` of work; call
        ``on_done`` (engine resume hook) when the work completes.  ``rest``
        carries the remaining ``(cycles, category)`` parts of a fused
        command, consumed sequentially before ``on_done`` fires."""
        self.advance(now)
        target = self.service + max(cycles, 0.0)
        self._seq += 1
        heapq.heappush(self._heap, (target, self._seq, thread, on_done, rest))
        self._version += 1

    def next_completion(self, now: float) -> float | None:
        """Simulated time of the earliest completion, or None if idle."""
        self.advance(now)
        if not self._heap:
            return None
        target = self._heap[0][0]
        rate = self._rate()
        remaining = max(target - self.service, 0.0)
        if rate == 0:  # pragma: no cover - defensive; heap nonempty => rate>0
            return None
        return now + remaining / rate

    def pop_completed(self, now: float) -> list[tuple["SimThread", Callable[[], None]]]:
        """Remove and return every thread whose work is complete at ``now``.

        An entry that still carries fused parts does not resume its thread;
        instead its returned callable charges the next part and re-enters
        the pool.  The caller invokes the callables in completion order, so
        both the metrics-charge order and the pool insertion order are
        exactly what the unfused charge sequence would have produced."""
        self.advance(now)
        done: list[tuple["SimThread", Callable[[], None]]] = []
        eps = 1e-9 * max(1.0, abs(self.service))
        while self._heap and self._heap[0][0] <= self.service + eps:
            _, _, thread, on_done, rest = heapq.heappop(self._heap)
            if rest:
                done.append((thread, self._part_continuation(now, thread, on_done, rest)))
            else:
                done.append((thread, on_done))
        if done:
            self._version += 1
        return done

    def _part_continuation(
        self, now: float, thread: "SimThread", on_done: Callable[[], None], rest: tuple
    ) -> Callable[[], None]:
        """Continuation for the next part of a fused charge: meter it and
        re-enter the pool, mirroring what dispatching it separately would
        have done at this exact instant."""

        def start_next_part() -> None:
            cycles, category = rest[0]
            if self.charge is not None:
                self.charge(thread, cycles, category)
            self.add(now, thread, cycles, on_done, rest[1:])

        return start_next_part

    @property
    def version(self) -> int:
        """Monotonic counter bumped on every membership change; scheduled
        completion events carry the version they were computed under and are
        discarded if it no longer matches."""
        return self._version

    # ------------------------------------------------------------------
    def avg_cores_used(self, window: float) -> float:
        """Average number of busy cores over ``window`` seconds (the paper's
        'Avg. # Cores Used' measurement, averaged over the activity period)."""
        if window <= 0:
            return 0.0
        return self.util_integral / window

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<CpuPool {self.cores}c@{self.hz / 1e9:.2f}GHz runnable={self.runnable}>"


def cycles_for_seconds(hz: float, seconds: float) -> float:
    """Convenience: cycles corresponding to ``seconds`` of one core."""
    if math.isinf(seconds):
        raise ValueError("seconds must be finite")
    return hz * seconds
