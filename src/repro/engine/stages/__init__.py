"""Operator stages of the QPipe engine."""

from repro.engine.stages.aggregate import AggregateStage
from repro.engine.stages.inputs import FilteredInput
from repro.engine.stages.join import HashJoinStage
from repro.engine.stages.scan import TableScanStage
from repro.engine.stages.sort import SortStage

__all__ = [
    "AggregateStage",
    "FilteredInput",
    "HashJoinStage",
    "SortStage",
    "TableScanStage",
]
