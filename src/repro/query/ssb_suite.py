"""The complete Star Schema Benchmark query suite (all thirteen queries).

The paper's evaluation instantiates Q1.1, Q2.1 and Q3.2; a usable SSB
engine needs the four full flights (O'Neil et al., 2009):

* **Flight 1** (Q1.1-Q1.3): revenue gained from discount bands -- one date
  join plus fact-table predicates, single aggregate, no group-by.
* **Flight 2** (Q2.1-Q2.3): revenue by year and brand for narrowing part
  filters (category -> brand range -> single brand) and a supplier region.
* **Flight 3** (Q3.1-Q3.4): revenue by customer/supplier geography over a
  year range, at narrowing granularity (region -> nation -> city -> month).
* **Flight 4** (Q4.1-Q4.3): profit (revenue - supply cost) drill-downs over
  all four dimensions.

Each builder returns a :class:`~repro.query.star.StarQuerySpec`, so every
query runs unchanged on the query-centric engines *and* the CJOIN GQP.
"""

from __future__ import annotations

import random

from repro.data.ssb import SSB_NATIONS, SSB_REGIONS, YEARS, nation_cities
from repro.query.expr import And, Arith, Between, Cmp, Col, InSet, Or
from repro.query.plan import AggSpec, DimJoinSpec
from repro.query.star import StarQuerySpec

__all__ = [
    "q11", "q12", "q13",
    "q21", "q22", "q23",
    "q31", "q32", "q33", "q34",
    "q41", "q42", "q43",
    "ALL_SSB_QUERIES", "default_instance", "random_instance",
]

# Flight 1 and the paper's three templates live in ssb_queries; re-exported
# here so the suite is complete from one module.
from repro.query.ssb_queries import q11, q21, q32  # noqa: E402


def _date_dim(predicate=None, payload=("d_year",)) -> DimJoinSpec:
    return DimJoinSpec("date", "lo_orderdate", "d_datekey", predicate, payload)


def _revenue() -> tuple[AggSpec, ...]:
    return (AggSpec("sum", Col("lo_revenue"), "revenue"),)


def _profit() -> tuple[AggSpec, ...]:
    return (
        AggSpec(
            "sum",
            Arith("-", Col("lo_revenue"), Col("lo_supplycost")),
            "profit",
        ),
    )


# ---------------------------------------------------------------------------
# Flight 1: discount-band revenue (fact predicates; single sum)
# ---------------------------------------------------------------------------


def q12(yearmonthnum: int = 199401) -> StarQuerySpec:
    """Q1.2: one month, discount 4-6, quantity 26-35."""
    return StarQuerySpec(
        fact_table="lineorder",
        dims=(_date_dim(Cmp("=", "d_yearmonthnum", yearmonthnum), payload=()),),
        group_by=(),
        aggregates=(
            AggSpec("sum", Arith("*", Col("lo_extendedprice"), Col("lo_discount")), "revenue"),
        ),
        fact_predicate=And(
            Between("lo_discount", 4.0, 6.0), Between("lo_quantity", 26, 35)
        ),
        label="Q1.2",
    )


def q13(weeknum: int = 6, year: int = 1994) -> StarQuerySpec:
    """Q1.3: one week of one year, discount 5-7, quantity 26-35."""
    return StarQuerySpec(
        fact_table="lineorder",
        dims=(
            _date_dim(
                And(Cmp("=", "d_weeknuminyear", weeknum), Cmp("=", "d_year", year)),
                payload=(),
            ),
        ),
        group_by=(),
        aggregates=(
            AggSpec("sum", Arith("*", Col("lo_extendedprice"), Col("lo_discount")), "revenue"),
        ),
        fact_predicate=And(
            Between("lo_discount", 5.0, 7.0), Between("lo_quantity", 26, 35)
        ),
        label="Q1.3",
    )


# ---------------------------------------------------------------------------
# Flight 2: revenue by year and brand
# ---------------------------------------------------------------------------


def _q2_template(part_predicate, region: str, label: str) -> StarQuerySpec:
    return StarQuerySpec(
        fact_table="lineorder",
        dims=(
            DimJoinSpec("part", "lo_partkey", "p_partkey", part_predicate, ("p_brand1",)),
            DimJoinSpec(
                "supplier", "lo_suppkey", "s_suppkey", Cmp("=", "s_region", region), ()
            ),
            _date_dim(),
        ),
        group_by=("d_year", "p_brand1"),
        aggregates=_revenue(),
        order_by=(("d_year", True), ("p_brand1", True)),
        label=label,
    )


def q22(brand_low: str = "MFGR#2221", brand_high: str = "MFGR#2228", region: str = "ASIA") -> StarQuerySpec:
    """Q2.2: a lexicographic brand range in one supplier region."""
    return _q2_template(
        And(Cmp(">=", "p_brand1", brand_low), Cmp("<=", "p_brand1", brand_high)),
        region,
        "Q2.2",
    )


def q23(brand: str = "MFGR#2239", region: str = "EUROPE") -> StarQuerySpec:
    """Q2.3: a single brand in one supplier region."""
    return _q2_template(Cmp("=", "p_brand1", brand), region, "Q2.3")


# ---------------------------------------------------------------------------
# Flight 3: revenue by customer/supplier geography
# ---------------------------------------------------------------------------


def q31(region: str = "ASIA", year_low: int = 1992, year_high: int = 1997) -> StarQuerySpec:
    """Q3.1: customer and supplier nations within one region."""
    return StarQuerySpec(
        fact_table="lineorder",
        dims=(
            DimJoinSpec(
                "supplier", "lo_suppkey", "s_suppkey", Cmp("=", "s_region", region), ("s_nation",)
            ),
            DimJoinSpec(
                "customer", "lo_custkey", "c_custkey", Cmp("=", "c_region", region), ("c_nation",)
            ),
            _date_dim(Between("d_year", year_low, year_high)),
        ),
        group_by=("c_nation", "s_nation", "d_year"),
        aggregates=_revenue(),
        order_by=(("d_year", True), ("revenue", False)),
        label="Q3.1",
    )


def q33(
    city_a: str | None = None,
    city_b: str | None = None,
    year_low: int = 1992,
    year_high: int = 1997,
) -> StarQuerySpec:
    """Q3.3: two specific cities on both sides."""
    cities = nation_cities("UNITED KINGDOM")
    city_a = city_a or cities[1]
    city_b = city_b or cities[5]
    pair = InSet("c_city", [city_a, city_b])
    pair_s = InSet("s_city", [city_a, city_b])
    return StarQuerySpec(
        fact_table="lineorder",
        dims=(
            DimJoinSpec("supplier", "lo_suppkey", "s_suppkey", pair_s, ("s_city",)),
            DimJoinSpec("customer", "lo_custkey", "c_custkey", pair, ("c_city",)),
            _date_dim(Between("d_year", year_low, year_high)),
        ),
        group_by=("c_city", "s_city", "d_year"),
        aggregates=_revenue(),
        order_by=(("d_year", True), ("revenue", False)),
        label="Q3.3",
    )


def q34(yearmonthnum: int = 199712) -> StarQuerySpec:
    """Q3.4: the two-city pair during a single month."""
    cities = nation_cities("UNITED KINGDOM")
    pair = InSet("c_city", [cities[1], cities[5]])
    pair_s = InSet("s_city", [cities[1], cities[5]])
    return StarQuerySpec(
        fact_table="lineorder",
        dims=(
            DimJoinSpec("supplier", "lo_suppkey", "s_suppkey", pair_s, ("s_city",)),
            DimJoinSpec("customer", "lo_custkey", "c_custkey", pair, ("c_city",)),
            _date_dim(Cmp("=", "d_yearmonthnum", yearmonthnum), payload=("d_year",)),
        ),
        group_by=("c_city", "s_city", "d_year"),
        aggregates=_revenue(),
        order_by=(("d_year", True), ("revenue", False)),
        label="Q3.4",
    )


# ---------------------------------------------------------------------------
# Flight 4: profit drill-downs over all four dimensions
# ---------------------------------------------------------------------------


def q41(customer_region: str = "AMERICA", supplier_region: str = "AMERICA") -> StarQuerySpec:
    """Q4.1: profit by year and customer nation, mfgr 1 or 2 parts."""
    return StarQuerySpec(
        fact_table="lineorder",
        dims=(
            DimJoinSpec(
                "customer",
                "lo_custkey",
                "c_custkey",
                Cmp("=", "c_region", customer_region),
                ("c_nation",),
            ),
            DimJoinSpec(
                "supplier",
                "lo_suppkey",
                "s_suppkey",
                Cmp("=", "s_region", supplier_region),
                (),
            ),
            DimJoinSpec(
                "part",
                "lo_partkey",
                "p_partkey",
                Or(Cmp("=", "p_mfgr", "MFGR#1"), Cmp("=", "p_mfgr", "MFGR#2")),
                (),
            ),
            _date_dim(),
        ),
        group_by=("d_year", "c_nation"),
        aggregates=_profit(),
        order_by=(("d_year", True), ("c_nation", True)),
        label="Q4.1",
    )


def q42(
    customer_region: str = "AMERICA",
    supplier_region: str = "AMERICA",
    years: tuple[int, int] = (1997, 1998),
) -> StarQuerySpec:
    """Q4.2: profit by year, supplier nation and part category."""
    return StarQuerySpec(
        fact_table="lineorder",
        dims=(
            DimJoinSpec(
                "customer",
                "lo_custkey",
                "c_custkey",
                Cmp("=", "c_region", customer_region),
                (),
            ),
            DimJoinSpec(
                "supplier",
                "lo_suppkey",
                "s_suppkey",
                Cmp("=", "s_region", supplier_region),
                ("s_nation",),
            ),
            DimJoinSpec(
                "part",
                "lo_partkey",
                "p_partkey",
                Or(Cmp("=", "p_mfgr", "MFGR#1"), Cmp("=", "p_mfgr", "MFGR#2")),
                ("p_category",),
            ),
            _date_dim(InSet("d_year", list(years))),
        ),
        group_by=("d_year", "s_nation", "p_category"),
        aggregates=_profit(),
        order_by=(("d_year", True), ("s_nation", True), ("p_category", True)),
        label="Q4.2",
    )


def q43(
    supplier_nation: str = "UNITED STATES",
    category: str = "MFGR#14",
    years: tuple[int, int] = (1997, 1998),
) -> StarQuerySpec:
    """Q4.3: profit by year, supplier city and brand, one nation/category."""
    return StarQuerySpec(
        fact_table="lineorder",
        dims=(
            DimJoinSpec(
                "supplier",
                "lo_suppkey",
                "s_suppkey",
                Cmp("=", "s_nation", supplier_nation),
                ("s_city",),
            ),
            DimJoinSpec(
                "part",
                "lo_partkey",
                "p_partkey",
                Cmp("=", "p_category", category),
                ("p_brand1",),
            ),
            _date_dim(InSet("d_year", list(years))),
        ),
        group_by=("d_year", "s_city", "p_brand1"),
        aggregates=_profit(),
        order_by=(("d_year", True), ("s_city", True), ("p_brand1", True)),
        label="Q4.3",
    )


#: name -> zero-argument default instance builder, all thirteen queries.
ALL_SSB_QUERIES = {
    "Q1.1": lambda: q11(1993, 1.0, 3.0, 25),
    "Q1.2": q12,
    "Q1.3": q13,
    "Q2.1": lambda: q21("MFGR#12", "AMERICA"),
    "Q2.2": q22,
    "Q2.3": q23,
    "Q3.1": q31,
    "Q3.2": lambda: q32("UNITED STATES", "CHINA", 1992, 1997),
    "Q3.3": q33,
    "Q3.4": q34,
    "Q4.1": q41,
    "Q4.2": q42,
    "Q4.3": q43,
}


def default_instance(name: str) -> StarQuerySpec:
    """The default instance of SSB query ``name`` (e.g. ``"Q2.2"``)."""
    try:
        return ALL_SSB_QUERIES[name]()
    except KeyError:
        raise KeyError(f"unknown SSB query {name!r}; have {sorted(ALL_SSB_QUERIES)}") from None


def random_instance(name: str, rng: random.Random) -> StarQuerySpec:
    """A randomized instance of SSB query ``name`` (random predicates drawn
    from each template's natural parameter domain)."""
    if name == "Q1.1":
        from repro.query.ssb_queries import random_q11

        return random_q11(rng)
    if name == "Q1.2":
        return q12(rng.choice(YEARS) * 100 + rng.randrange(1, 13))
    if name == "Q1.3":
        return q13(rng.randrange(1, 53), rng.choice(YEARS))
    if name == "Q2.1":
        from repro.query.ssb_queries import random_q21

        return random_q21(rng)
    if name == "Q2.2":
        mfgr, cat = rng.randrange(1, 6), rng.randrange(1, 6)
        lo = rng.randrange(1, 33)
        return q22(
            f"MFGR#{mfgr}{cat}{lo:02d}", f"MFGR#{mfgr}{cat}{lo + 7:02d}", rng.choice(SSB_REGIONS)
        )
    if name == "Q2.3":
        mfgr, cat, b = rng.randrange(1, 6), rng.randrange(1, 6), rng.randrange(1, 41)
        return q23(f"MFGR#{mfgr}{cat}{b:02d}", rng.choice(SSB_REGIONS))
    if name == "Q3.1":
        y1 = rng.randrange(YEARS[0], YEARS[-1])
        return q31(rng.choice(SSB_REGIONS), y1, rng.randrange(y1, YEARS[-1] + 1))
    if name == "Q3.2":
        from repro.query.ssb_queries import random_q32

        return random_q32(rng)
    if name == "Q3.3":
        nation = rng.choice(SSB_NATIONS)
        cities = nation_cities(nation)
        a, b = rng.sample(list(cities), 2)
        y1 = rng.randrange(YEARS[0], YEARS[-1])
        return q33(a, b, y1, rng.randrange(y1, YEARS[-1] + 1))
    if name == "Q3.4":
        return q34(rng.choice(YEARS) * 100 + rng.randrange(1, 13))
    if name == "Q4.1":
        return q41(rng.choice(SSB_REGIONS), rng.choice(SSB_REGIONS))
    if name == "Q4.2":
        y = rng.randrange(YEARS[0], YEARS[-1])
        return q42(rng.choice(SSB_REGIONS), rng.choice(SSB_REGIONS), (y, y + 1))
    if name == "Q4.3":
        y = rng.randrange(YEARS[0], YEARS[-1])
        cat = f"MFGR#{rng.randrange(1, 6)}{rng.randrange(1, 6)}"
        return q43(rng.choice(SSB_NATIONS), cat, (y, y + 1))
    raise KeyError(f"unknown SSB query {name!r}")
