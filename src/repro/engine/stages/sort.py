"""The sort stage (linear WoP in the paper; SP off in all its experiments).

Fully blocking: collect, sort, emit.  Multi-key ordering with mixed
ascending/descending directions is implemented as successive stable sorts
from the least-significant key to the most-significant."""

from __future__ import annotations

from typing import Any, Iterator

from repro.sim.commands import CPU
from repro.engine.exchange import END
from repro.engine.packet import Packet
from repro.engine.stage import Stage
from repro.engine.stages.inputs import FilteredInput
from repro.query.plan import SortNode
from repro.storage.page import Batch


class SortStage(Stage):
    """The sort stage (see module docstring for WoP notes)."""
    def __init__(self, engine):
        super().__init__(engine, "sort")
        # The paper assigns sorts a *linear* WoP (a satellite may attach
        # mid-sort and re-issue the missed prefix).  Re-production is not
        # implemented here -- SP for the sort stage is off in every paper
        # experiment -- so packets attach conservatively within the *step*
        # window only (before the host's single emission), which is always
        # correct.
        from repro.engine.wop import WindowOfOpportunity

        self.wop = WindowOfOpportunity.STEP

    def run(self, packet: Packet, child_input: FilteredInput) -> None:
        self.spawn_worker(packet, self._work(packet, child_input))

    def _work(self, packet: Packet, child_input: FilteredInput) -> Iterator[Any]:
        node: SortNode = packet.node
        cost = self.engine.cost
        exchange = packet.exchange
        yield CPU(cost.packet_dispatch, "misc")

        schema = child_input.schema
        rows: list[tuple] = []
        weight = 1.0
        while True:
            batch = yield from child_input.read()
            if batch is END:
                break
            if batch.rows:
                rows.extend(batch.rows)
                weight = batch.weight

        if rows:
            yield cost.sort(len(rows), weight)
            for col, ascending in reversed(node.keys):
                i = schema.index(col)
                rows.sort(key=lambda r, i=i: r[i], reverse=not ascending)
        packet.mark_started()
        self.unregister(packet)
        if rows:
            yield from exchange.emit(Batch(rows, weight))
        exchange.close()
        packet.finished = True
