"""Query-slot allocation for tuple bitmaps.

Tuples flowing through the CJOIN pipeline carry a bitmap (a Python int):
bit ``i`` means "relevant to the query in slot ``i``".  Slots of completed
queries are *retired* and only reused after the next admission clears their
stale bits from every filter's hash-table entries (clearing happens while
the pipeline is paused, so in-flight tuples never see a recycled bit)."""

from __future__ import annotations

import heapq


class SlotAllocator:
    """Allocates query bitmap slots with deferred reuse.

    ``_free`` is a min-heap, so ``alloc`` is O(log n) instead of the
    sort-per-call it used to be; lowest-slot-first reuse keeps bitmaps
    narrow (``high_water`` bounds every bitmap-AND's word count)."""

    def __init__(self) -> None:
        self._free: list[int] = []  # min-heap of reusable slots
        self._retired: list[int] = []
        self._next = 0
        self._live = 0

    # ------------------------------------------------------------------
    def alloc(self) -> int:
        """Allocate the lowest safely reusable slot."""
        self._live += 1
        if self._free:
            return heapq.heappop(self._free)
        slot = self._next
        self._next += 1
        return slot

    def retire(self, slot: int) -> None:
        """Mark a completed query's slot; unusable until ``reclaim``."""
        if slot < 0 or slot >= self._next:
            raise ValueError(f"slot {slot} was never allocated")
        self._live -= 1
        self._retired.append(slot)

    def reclaim(self) -> list[int]:
        """Move retired slots to the free list (call with the pipeline
        paused, after clearing their bits); returns the reclaimed slots."""
        reclaimed, self._retired = self._retired, []
        for slot in reclaimed:
            heapq.heappush(self._free, slot)
        return reclaimed

    # ------------------------------------------------------------------
    @property
    def high_water(self) -> int:
        """Number of bitmap slots in use (bitmap width in bits)."""
        return self._next

    @property
    def live(self) -> int:
        return self._live

    def retired_mask(self) -> int:
        """Bitmask of retired-but-not-yet-reclaimed slots."""
        mask = 0
        for s in self._retired:
            mask |= 1 << s
        return mask
