"""Relational schemas.

Rows are plain Python tuples; a :class:`Schema` maps column names to tuple
positions and records the *real* byte width of a row (used for I/O and
buffer-pool accounting at the paper's scale -- see the scale substitution in
DESIGN.md).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Sequence


@dataclass(frozen=True)
class Column:
    """One column: a name and a coarse type tag ('int', 'float', 'str')."""

    name: str
    kind: str = "int"

    def __post_init__(self) -> None:
        if self.kind not in ("int", "float", "str"):
            raise ValueError(f"unknown column kind {self.kind!r}")


class Schema:
    """An ordered set of uniquely named columns.

    Parameters
    ----------
    columns:
        Column definitions, in tuple position order.
    row_bytes:
        Real on-disk width of one row in bytes (for I/O accounting).
    """

    __slots__ = ("columns", "row_bytes", "_index")

    def __init__(self, columns: Sequence[Column], row_bytes: float = 100.0):
        if row_bytes <= 0:
            raise ValueError("row_bytes must be positive")
        names = [c.name for c in columns]
        if len(set(names)) != len(names):
            dupes = sorted({n for n in names if names.count(n) > 1})
            raise ValueError(f"duplicate column names: {dupes}")
        self.columns = tuple(columns)
        self.row_bytes = float(row_bytes)
        self._index = {c.name: i for i, c in enumerate(self.columns)}

    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self.columns)

    def __contains__(self, name: str) -> bool:
        return name in self._index

    @property
    def names(self) -> tuple[str, ...]:
        return tuple(c.name for c in self.columns)

    def index(self, name: str) -> int:
        """Tuple position of column ``name``."""
        try:
            return self._index[name]
        except KeyError:
            raise KeyError(f"no column {name!r}; have {self.names}") from None

    def indices(self, names: Iterable[str]) -> tuple[int, ...]:
        return tuple(self.index(n) for n in names)

    def column(self, name: str) -> Column:
        return self.columns[self.index(name)]

    # ------------------------------------------------------------------
    def project(self, names: Sequence[str], row_bytes: float | None = None) -> "Schema":
        """Schema of a projection onto ``names`` (pro-rated row bytes)."""
        cols = [self.column(n) for n in names]
        if row_bytes is None:
            row_bytes = max(1.0, self.row_bytes * len(cols) / max(len(self.columns), 1))
        return Schema(cols, row_bytes)

    def concat(self, other: "Schema") -> "Schema":
        """Schema of a join output (column name sets must be disjoint)."""
        return Schema(self.columns + other.columns, self.row_bytes + other.row_bytes)

    def __eq__(self, other: object) -> bool:
        return isinstance(other, Schema) and self.columns == other.columns

    def __hash__(self) -> int:
        return hash(self.columns)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"Schema({', '.join(self.names)})"
