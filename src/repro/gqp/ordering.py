"""Selectivity-ordered CJOIN filter chains (the adaptive GQP data plane).

The original CJOIN observation: the shared filter chain is a conjunction,
so evaluating the *most selective* filter first kills doomed fact tuples
before they pay the remaining filters' probe, bitmap-AND and hand-off
costs.  Plan-insertion order -- what :class:`~repro.gqp.cjoin.CJoinPipeline`
uses by default -- is whatever order queries happened to list their
dimensions in, which can be arbitrarily bad.

:class:`ChainOrderer` makes the chain adaptive while keeping runs exactly
reproducible:

* every filter application reports ``(rows in, rows out)`` --
  :meth:`observe` folds that into a per-filter EWMA pass rate (stored on
  the :class:`~repro.gqp.cjoin.Filter` itself, so stats retire with the
  filter);
* re-sort decisions happen only at **deterministic logical ticks** --
  every ``interval`` preprocessor pages for the horizontal thread
  configuration, at admission pauses for the vertical one -- never on
  wall clock, so the same seed gives the same chain order on any host,
  worker count, or Python version;
* **hysteresis**: the chain re-sorts only when some adjacent pair is out
  of order by more than ``hysteresis`` in EWMA pass rate; near-equal
  selectivities never thrash the order (and in-flight pages always carry
  the chain snapshot they started with, so a re-sort is invisible to
  them).

The sort is stable with current position as the tie-break, so equal pass
rates preserve their relative order -- another determinism guard.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover
    from repro.gqp.cjoin import Filter


class ChainOrderer:
    """Tracks per-filter selectivity and proposes most-selective-first
    chain orders at logical-tick boundaries."""

    __slots__ = ("alpha", "interval", "hysteresis", "pages", "reorders")

    def __init__(self, alpha: float = 0.3, interval: int = 16, hysteresis: float = 0.05):
        self.alpha = alpha
        self.interval = interval
        self.hysteresis = hysteresis
        self.pages = 0  # preprocessor pages seen (the horizontal logical tick)
        self.reorders = 0  # chain re-sorts actually applied

    # ------------------------------------------------------------------
    def observe(self, flt: "Filter", n_in: int, n_out: int) -> None:
        """Fold one filter application's pass rate into the filter's EWMA.

        ``n_in``/``n_out`` are generated-row counts for one page's
        surviving tuples entering/leaving the filter."""
        if n_in <= 0:
            return
        rate = n_out / n_in
        prev = flt.ewma_pass
        flt.ewma_pass = rate if prev is None else prev + self.alpha * (rate - prev)
        flt.probe_rows += n_in
        flt.pass_rows += n_out

    def tick_page(self) -> bool:
        """Count one preprocessor page; True at re-sort-check boundaries."""
        self.pages += 1
        return self.pages % self.interval == 0

    # ------------------------------------------------------------------
    def propose(self, filters: list["Filter"]) -> list[str] | None:
        """A most-selective-first order for ``filters``, or ``None`` when
        the current order is already within the hysteresis margin.

        Filters with no observations yet (``ewma_pass is None``) are
        treated as pass-everything: they sort last until measured, which
        is both the conservative choice (an unmeasured filter cannot be
        trusted to kill tuples) and a deterministic one."""
        if len(filters) < 2:
            return None
        rates = [1.0 if f.ewma_pass is None else f.ewma_pass for f in filters]
        if all(rates[i] <= rates[i + 1] + self.hysteresis for i in range(len(rates) - 1)):
            return None
        order = sorted(range(len(filters)), key=lambda i: (rates[i], i))
        self.reorders += 1
        return [filters[i].dim_name for i in order]
