"""Pages and batches: dual row/column representation.

A :class:`ColumnPage` (exported as :data:`Page`) is a fixed slice of a
table's rows -- the unit of buffer-pool residency and disk I/O.  It keeps
**both** layouts lazily: a tuple of row tuples and a tuple of per-column
vectors, each derived from the other on first access and cached.  Tables
loaded from rows pay nothing until a columnar consumer asks for
:attr:`ColumnPage.columns`; tables built column-wise (zero-copy shard
partitions, see :func:`repro.shard.partition.partition_table`) never
materialize row tuples unless a row consumer forces them.

A :class:`Batch` is the unit of data flow between operators (through FIFO
buffers and Shared Pages Lists); scan stages turn pages into batches,
operators transform batches.  With the ``columnar_pages`` fast path on,
scans emit :class:`ColumnBatch` instead: base column vectors plus a
*selection vector* (``sel``) of live positions and an optional per-row
``tail`` of join-attached payload tuples.  Selections shrink ``sel``
without touching the columns, joins append to ``tail`` without rebuilding
wide row tuples, and ``.rows`` materializes lazily only at emit points
(sort, client collection, push-SP copies) -- late materialization.

Live masks: the canonical mask over a batch is the selection vector (the
fastest representation for CPython's list comprehensions); the int-bitmap
form used by CJOIN's per-row query bitmaps is available through
:func:`sel_to_mask` / :func:`mask_to_sel` for consumers that AND masks.

Both pages and batches carry a ``weight``: the number of real rows each
generated row represents (see the scale substitution in DESIGN.md), so CPU
and I/O charges reflect paper-scale data volumes.

Immutability contract: ``ColumnPage`` rows/columns are shared, never
copied, between the page and the batches viewing it -- *zero copies*.
Operators must never mutate a batch's ``rows``, ``cols``, ``sel`` or
``tail`` in place (they build new selections and new batches); the one
place that needs a private, independently-owned copy -- push-based SP
fanning a batch out to satellites -- goes through :meth:`Batch.copy` /
:meth:`ColumnBatch.copy` and is charged for it.
"""

from __future__ import annotations

from typing import Any, Sequence

__all__ = [
    "Batch",
    "ColumnBatch",
    "ColumnPage",
    "Page",
    "full_mask",
    "mask_to_sel",
    "sel_to_mask",
]


# ----------------------------------------------------------------------
# Int-bitmap live-mask helpers (CJOIN-style masks <-> selection vectors).
# ----------------------------------------------------------------------
def full_mask(n: int) -> int:
    """The mask with the low ``n`` bits set (every row live)."""
    return (1 << n) - 1


def sel_to_mask(sel: Sequence[int]) -> int:
    """Fold a selection vector into an int bitmap (bit ``j`` = row ``j``)."""
    mask = 0
    for j in sel:
        mask |= 1 << j
    return mask


#: Set-bit offsets within one byte, for byte-at-a-time mask decoding.
_BYTE_SEL: tuple[tuple[int, ...], ...] = tuple(
    tuple(j for j in range(8) if b >> j & 1) for b in range(256)
)


def mask_to_sel(mask: int, n: int) -> list[int]:
    """The ascending positions of set bits among the low ``n`` bits.

    Decodes a byte at a time through a 256-entry offset table instead of
    probing all ``n`` bit positions -- sparse masks (selective
    predicates) cost proportional to survivors, not page size."""
    mask &= (1 << n) - 1
    out: list[int] = []
    base = 0
    table = _BYTE_SEL
    while mask:
        b = mask & 0xFF
        if b:
            out += [base + j for j in table[b]]
        mask >>= 8
        base += 8
    return out


class ColumnPage:
    """An immutable slice of table rows, held row- and column-wise.

    Exactly one of ``rows`` / ``columns`` must be given; the other
    representation is derived lazily on first access and cached (both
    directions are pure ``zip`` transposes, so a round trip reproduces the
    input exactly -- the property suite in ``tests/storage`` holds it to
    that)."""

    __slots__ = ("table_name", "index", "weight", "real_bytes", "_rows", "_cols")

    def __init__(
        self,
        table_name: str,
        index: int,
        rows: Sequence[tuple] | None,
        weight: float,
        real_bytes: float,
        columns: Sequence[Sequence[Any]] | None = None,
    ):
        if (rows is None) == (columns is None):
            raise ValueError("exactly one of rows/columns must be given")
        self.table_name = table_name
        self.index = index
        self.weight = weight
        self.real_bytes = real_bytes
        self._rows = None if rows is None else tuple(rows)
        self._cols = None if columns is None else tuple(columns)

    # -- construction ---------------------------------------------------
    @classmethod
    def from_rows(
        cls,
        rows: Sequence[tuple],
        table_name: str = "",
        index: int = 0,
        weight: float = 1.0,
        real_bytes: float = 0.0,
    ) -> "ColumnPage":
        return cls(table_name, index, rows, weight, real_bytes)

    @classmethod
    def from_columns(
        cls,
        columns: Sequence[Sequence[Any]],
        table_name: str = "",
        index: int = 0,
        weight: float = 1.0,
        real_bytes: float = 0.0,
    ) -> "ColumnPage":
        return cls(table_name, index, None, weight, real_bytes, columns=columns)

    # -- representations ------------------------------------------------
    @property
    def rows(self) -> tuple[tuple, ...]:
        """Row tuples (materialized from the columns on first access)."""
        rows = self._rows
        if rows is None:
            rows = self._rows = tuple(zip(*self._cols))
        return rows

    @property
    def columns(self) -> tuple[Sequence[Any], ...]:
        """Per-column vectors (materialized from the rows on first access)."""
        cols = self._cols
        if cols is None:
            cols = self._cols = tuple(zip(*self._rows))
        return cols

    def to_rows(self) -> list[tuple]:
        """A fresh list of this page's row tuples (property-test hook)."""
        return list(self.rows)

    def __len__(self) -> int:
        rows = self._rows
        if rows is not None:
            return len(rows)
        cols = self._cols
        return len(cols[0]) if cols else 0

    # -- batches --------------------------------------------------------
    def to_batch(self, columnar: bool = False) -> "Batch | ColumnBatch":
        """A Batch viewing this page -- zero-copy: the batch shares the
        page's row tuple / column vectors (safe because batches are never
        mutated in place; see the module docstring).  ``columnar=True``
        hands out a :class:`ColumnBatch` over the page's columns whose
        ``.rows`` resolves through the page cache, so repeated circular
        scans materialize row tuples at most once per page."""
        if columnar:
            return ColumnBatch(self.columns, None, self.weight, src=self)
        return Batch(self.rows, self.weight)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<Page {self.table_name}[{self.index}] rows={len(self)}>"


#: Backwards-compatible name: pages have been columnar since this class
#: grew its dual representation, but the engine still says "Page".
Page = ColumnPage


class Batch:
    """A batch of tuples flowing between operators.

    ``rows`` may be a list or (for zero-copy page views) a tuple; either
    way it must be treated as immutable by consumers."""

    __slots__ = ("rows", "weight", "meta")

    def __init__(self, rows: Sequence[tuple], weight: float = 1.0, meta: Any = None):
        self.rows = rows
        self.weight = weight
        self.meta = meta

    def __len__(self) -> int:
        return len(self.rows)

    def copy(self) -> "Batch":
        """A shallow copy (what push-based SP pays cycles to produce)."""
        return Batch(list(self.rows), self.weight, self.meta)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<Batch rows={len(self.rows)} weight={self.weight}>"


class ColumnBatch:
    """A late-materialized batch: base columns + selection vector + tail.

    Logical row ``p`` (``0 <= p < len(self)``) is::

        tuple(col[sel[p]] for col in cols) + tail[p]

    with ``sel is None`` meaning the identity selection (all base rows in
    order) and ``tail is None`` meaning no join-attached payload.  The
    base ``cols`` are shared, never copied: a selection produces a new
    batch with a smaller ``sel`` over the *same* columns, and a hash join
    produces a new ``sel`` (probe-side positions, one per match) plus a
    ``tail`` of matched build rows -- no wide output tuples.

    ``column(i)`` gathers one logical column; ``.rows`` materializes the
    full row view once and caches it (consumers that need tuples -- sort,
    client result collection, push-SP copies -- pay only at that point).
    """

    __slots__ = ("cols", "sel", "tail", "weight", "meta", "_rows", "_src")

    def __init__(
        self,
        cols: tuple[Sequence[Any], ...],
        sel: Sequence[int] | None = None,
        weight: float = 1.0,
        tail: Sequence[tuple] | None = None,
        meta: Any = None,
        src: ColumnPage | None = None,
    ):
        if tail is not None and sel is None:
            raise ValueError("a tail requires an explicit selection vector")
        self.cols = cols
        self.sel = sel
        self.tail = tail
        self.weight = weight
        self.meta = meta
        self._rows = None
        self._src = src

    def __len__(self) -> int:
        sel = self.sel
        if sel is not None:
            return len(sel)
        cols = self.cols
        return len(cols[0]) if cols else 0

    @property
    def arity(self) -> int:
        tail = self.tail
        return len(self.cols) + (len(tail[0]) if tail else 0)

    @property
    def live_mask(self) -> int:
        """The selection as an int bitmap over the base rows."""
        sel = self.sel
        if sel is None:
            cols = self.cols
            return full_mask(len(cols[0]) if cols else 0)
        return sel_to_mask(sel)

    def column(self, i: int) -> Sequence[Any]:
        """Logical column ``i``, gathered through the selection vector.

        For a full batch (``sel is None``) this is the base vector itself,
        zero-copy; treat it as read-only."""
        cols = self.cols
        nb = len(cols)
        if i < nb:
            col = cols[i]
            sel = self.sel
            if sel is None:
                return col
            return [col[j] for j in sel]
        k = i - nb
        tail = self.tail
        if tail is None:
            raise IndexError(f"column {i} out of range for arity {nb}")
        return [t[k] for t in tail]

    def take(self, positions: list[int]) -> "ColumnBatch":
        """The sub-batch at the given logical positions (a selection pass
        result), sharing the base columns."""
        sel = self.sel
        new_sel = positions if sel is None else [sel[p] for p in positions]
        tail = self.tail
        new_tail = None if tail is None else [tail[p] for p in positions]
        return ColumnBatch(self.cols, new_sel, self.weight, new_tail, self.meta)

    def take_mask(self, mask: int) -> "ColumnBatch":
        """The sub-batch whose logical positions are the set bits of
        ``mask`` (bit ``p`` = logical row ``p``) -- the bitmap-native
        selection path mask kernels feed (equivalent to ``take`` of the
        mask's ascending positions)."""
        return self.take(mask_to_sel(mask, len(self)))

    @property
    def rows(self) -> Sequence[tuple]:
        """The materialized row view (computed once, then cached)."""
        rows = self._rows
        if rows is not None:
            return rows
        src = self._src
        if src is not None and self.sel is None and self.tail is None:
            # Page view: resolve through (and populate) the page's cache.
            rows = src.rows
        else:
            cols = self.cols
            sel = self.sel
            if not cols:
                base: Any = [()] * len(self)
            elif sel is None:
                base = list(zip(*cols))
            else:
                base = list(zip(*([col[j] for j in sel] for col in cols)))
            tail = self.tail
            if tail is not None:
                base = [b + t for b, t in zip(base, tail)]
            rows = base
        self._rows = rows
        return rows

    def copy(self) -> "ColumnBatch":
        """A privately-owned selection/tail copy (base columns stay shared
        -- they are immutable; what push-based SP pays cycles for is the
        per-row bookkeeping, same as the row form's shallow copy)."""
        sel = self.sel
        tail = self.tail
        return ColumnBatch(
            self.cols,
            None if sel is None else list(sel),
            self.weight,
            None if tail is None else list(tail),
            self.meta,
            src=self._src,
        )

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"<ColumnBatch rows={len(self)} arity={self.arity}"
            f" weight={self.weight}>"
        )
