"""Workload generators for the paper's experiments.

All generators are deterministic in their seed.  A workload is a list of
:class:`QueryJob`\\ s; each job carries either a star-query spec (compiled
per engine configuration at submit time) or an explicit plan (TPC-H Q1).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.data.rng import make_rng
from repro.data.ssb import SsbDataset
from repro.data.tpch import TpchDataset
from repro.query.plan import PlanNode
from repro.query.ssb_queries import (
    q32_selectivity,
    random_q11,
    random_q21,
    random_q32,
)
from repro.query.star import StarQuerySpec
from repro.query.tpch_queries import tpch_q1_plan


@dataclass(frozen=True)
class QueryJob:
    """One query to submit: a spec (star query) or an explicit plan."""

    spec: StarQuerySpec | None = None
    plan: PlanNode | None = None
    label: str = ""

    def __post_init__(self) -> None:
        if (self.spec is None) == (self.plan is None):
            raise ValueError("exactly one of spec/plan must be given")


# ---------------------------------------------------------------------------
# SSB Q3.2 workloads (sensitivity analysis, Section 5.2)
# ---------------------------------------------------------------------------


def q32_random_workload(n: int, seed: int = 1) -> list[QueryJob]:
    """``n`` random Q3.2 instances: the low-similarity workload of the
    concurrency experiments (Figure 10); fact selectivity 0.02%-0.16%."""
    rng = make_rng(seed, "q32-random")
    return [QueryJob(spec=random_q32(rng)) for _ in range(n)]


def q32_limited_plans_workload(n: int, n_plans: int, seed: int = 1) -> list[QueryJob]:
    """``n`` Q3.2 instances drawn round-robin from a pool of ``n_plans``
    distinct plans -- the similarity knob of Figures 14/15."""
    if n_plans < 1:
        raise ValueError("need at least one plan")
    rng = make_rng(seed, "q32-plans", n_plans)
    pool: list[StarQuerySpec] = []
    signatures: set[tuple] = set()
    attempts = 0
    while len(pool) < n_plans:
        spec = random_q32(rng)
        attempts += 1
        if spec.signature not in signatures:
            signatures.add(spec.signature)
            pool.append(spec)
        if attempts > 100 * n_plans:
            raise RuntimeError(f"cannot draw {n_plans} distinct Q3.2 plans")
    return [QueryJob(spec=pool[i % n_plans]) for i in range(n)]


def q32_selectivity_workload(n: int, selectivity: float, seed: int = 1) -> list[QueryJob]:
    """``n`` modified-Q3.2 instances targeting a fact-tuple ``selectivity``
    (Figures 11/12); predicates are disjoint random disjunctions, so the
    similarity factor is minimal."""
    rng = make_rng(seed, "q32-sel", selectivity)
    return [QueryJob(spec=q32_selectivity(selectivity, rng)) for _ in range(n)]


# ---------------------------------------------------------------------------
# TPC-H Q1 (Figure 6) and the SSB mix (Figure 16)
# ---------------------------------------------------------------------------


def tpch_q1_workload(n: int, dataset: TpchDataset) -> list[QueryJob]:
    """``n`` *identical* TPC-H Q1 instances (Figure 6 shares the scan)."""
    plan = tpch_q1_plan(dataset.lineitem)
    return [QueryJob(plan=plan, label="Q1") for _ in range(n)]


def ssb_mix_workload(n: int, seed: int = 1) -> list[QueryJob]:
    """``n`` queries instantiated from Q1.1, Q2.1, Q3.2 round-robin with
    random predicates (Figure 16's query mix)."""
    rng = make_rng(seed, "ssb-mix")
    makers = (random_q11, random_q21, random_q32)
    return [QueryJob(spec=makers[i % 3](rng)) for i in range(n)]


def mix_spec_factory(seed: int = 1):
    """A ``(client_id, k) -> StarQuerySpec`` factory for closed-loop clients
    (round-robin over the three templates, per-client RNG streams)."""
    makers = (random_q11, random_q21, random_q32)

    def factory(client_id: int, k: int) -> StarQuerySpec:
        rng = make_rng(seed, "mix-client", client_id, k)
        return makers[(client_id + k) % 3](rng)

    return factory
