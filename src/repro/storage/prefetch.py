"""Circular page source with optional read-ahead.

Used by both the table-scan stage drivers and the CJOIN preprocessor.  With
read-ahead (the OS behavior on buffered sequential scans) a daemon fetcher
keeps up to ``prefetch_window`` pages in flight, overlapping disk time with
the consumer's CPU work; with direct I/O (or a RAM-resident database) reads
are synchronous.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Iterator

from repro.sim.sync import Channel

if TYPE_CHECKING:  # pragma: no cover
    from repro.sim.engine import Simulator
    from repro.storage.manager import StorageManager
    from repro.storage.page import Page
    from repro.storage.table import Table


class PageSource:
    """Yields a table's pages circularly, read-ahead when beneficial."""

    def __init__(
        self,
        sim: "Simulator",
        storage: "StorageManager",
        table: "Table",
        start: int = 0,
        name: str = "pagesource",
    ):
        if table.num_pages == 0:
            raise ValueError(f"table {table.name!r} has no pages")
        self.sim = sim
        self.storage = storage
        self.table = table
        self.position = start % table.num_pages
        self._chan: Channel | None = None
        if (
            not storage.ram_resident
            and not storage.config.direct_io
            and storage.config.prefetch_window > 0
        ):
            self._chan = Channel(sim, capacity=storage.config.prefetch_window, name=f"{name}.ra")
            sim.spawn(self._read_ahead(self.position), name=f"{name}.fetcher", daemon=True)

    # ------------------------------------------------------------------
    @property
    def direct(self) -> bool:
        """True when ``next`` reads synchronously through the buffer pool
        (no read-ahead channel) -- the precondition for latch prepaying."""
        return self._chan is None

    def next(self, latch_prepaid: bool = False) -> Iterator[Any]:
        """Generator: fetch the page at the current position and advance.

        ``latch_prepaid`` is only meaningful on a :attr:`direct` source: it
        means the caller fused the buffer-pool latch charge into the tail
        of its preceding CPU command (see ``BufferPool.latch_charge``)."""
        if self._chan is not None:
            page = yield from self._chan.get()
        else:
            page = yield from self.storage.read_page(
                self.table, self.position, latch_prepaid=latch_prepaid
            )
        self.position = (self.position + 1) % self.table.num_pages
        return page

    def close(self) -> None:
        """Stop the read-ahead fetcher (if any)."""
        if self._chan is not None:
            self._chan.close()

    # ------------------------------------------------------------------
    def _read_ahead(self, start: int) -> Iterator[Any]:
        pos = start
        npages = self.table.num_pages
        chan = self._chan
        while not chan.closed:
            page = yield from self.storage.read_page(self.table, pos)
            try:
                yield from chan.put(page)
            except RuntimeError:
                return  # consumer closed the channel mid-put
            pos = (pos + 1) % npages
