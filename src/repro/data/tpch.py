"""TPC-H ``lineitem`` generator (only the columns TPC-H Q1 touches).

The paper's Figure 6 (push- vs pull-based SP) runs identical TPC-H Q1
queries over an SF=1 memory-resident database.  Q1 is a scan + predicate +
eight-way aggregation over ``lineitem``; no other TPC-H table is needed by
the paper's evaluation.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache

from repro.data.rng import make_rng
from repro.sim.fastpath import packed_storage_active
from repro.storage.schema import Column, Schema
from repro.storage.table import Table

LINEITEM_SCHEMA = Schema(
    [
        Column("l_orderkey"),
        Column("l_quantity"),
        Column("l_extendedprice", "float"),
        Column("l_discount", "float"),
        Column("l_tax", "float"),
        Column("l_returnflag", "str"),
        Column("l_linestatus", "str"),
        Column("l_shipdate"),  # yyyymmdd int
    ],
    row_bytes=120.0,
)

RETURN_FLAGS = ("A", "N", "R")
LINE_STATUSES = ("F", "O")

#: Q1's date constant: l_shipdate <= 1998-12-01 - 90 days ~= 1998-09-02.
Q1_SHIPDATE_CUTOFF = 19980902


@dataclass(frozen=True)
class TpchDataset:
    """A generated TPC-H database (lineitem only)."""

    sf: float
    seed: int
    lineitem: Table

    @property
    def tables(self) -> dict[str, Table]:
        return {"lineitem": self.lineitem}


def generate_tpch(sf: float = 1.0, seed: int = 42) -> TpchDataset:
    """Generate (and memoize) lineitem at scale factor ``sf``.

    Real cardinality 6,000,000 x SF; generated min(6000 x SF, 60000) rows
    with a matching row weight (same scale substitution as SSB).  Like
    :func:`repro.data.ssb.generate_ssb`, the memo key includes the
    effective packed-storage flag (layout is baked in at build time)."""
    return _generate_tpch(sf, seed, packed_storage_active())


@lru_cache(maxsize=8)
def _generate_tpch(sf: float, seed: int, _packed: bool) -> TpchDataset:
    if sf <= 0:
        raise ValueError("scale factor must be positive")
    rng = make_rng(seed, "lineitem")
    gen = int(min(max(6_000 * sf, 6_000), 60_000))
    weight = 6_000_000 * sf / gen
    randrange = rng.randrange
    rows = []
    for key in range(1, gen + 1):
        year = randrange(1992, 1999)
        month = randrange(1, 13)
        day = randrange(1, 29)
        extendedprice = float(randrange(90_000, 1_100_000)) / 100.0
        rows.append(
            (
                key,
                randrange(1, 51),
                extendedprice,
                randrange(0, 11) / 100.0,
                randrange(0, 9) / 100.0,
                RETURN_FLAGS[randrange(3)],
                LINE_STATUSES[randrange(2)],
                year * 10000 + month * 100 + day,
            )
        )
    return TpchDataset(sf=sf, seed=seed, lineitem=Table("lineitem", LINEITEM_SCHEMA, rows, row_weight=weight))
