"""Cell-level determinism: the fabric's core guarantee.

``jobs=N`` must reproduce ``jobs=1`` byte for byte, and a cell's result
must not depend on where in the sweep it ran.  These tests execute real
(small) simulations, so they are the slowest in the fabric suite.
"""

from __future__ import annotations

import pytest

from repro.bench.experiments import fig10_concurrency
from repro.bench.export import experiment_to_json
from repro.bench.workload import (
    q32_limited_plans_workload,
    q32_random_workload,
    q32_selectivity_workload,
    ssb_mix_workload,
)
from repro.data import generate_ssb
from repro.engine.config import CJOIN_SP, fast_path
from repro.parallel import (
    CellSpec,
    DatasetSpec,
    WorkloadSpec,
    current_fast_flags,
    execute_cell,
    run_cells,
)


def _specs(n_cells: int = 3) -> list[CellSpec]:
    """A small real sweep: one cell per concurrency level."""
    return [
        CellSpec(
            key=f"n{n}",
            config=CJOIN_SP,
            dataset=DatasetSpec("ssb", sf=0.5, seed=42),
            workload=WorkloadSpec("q32-random", n=n, seed=42),
        )
        for n in (1, 2, 4)[:n_cells]
    ]


def _fingerprint(outcome, keys):
    return {
        key: (
            outcome.cell(key).response_times,
            outcome.cell(key).sim_seconds,
            outcome.cell(key).cpu_breakdown,
        )
        for key in keys
    }


def test_parallel_equals_serial_fig10_slice():
    """Tentpole acceptance check, in miniature: the same figure sweep at
    ``jobs=1`` and ``jobs=4`` serializes to identical bytes."""
    kwargs = dict(concurrency=(1, 2), sf=0.5, resident=("memory",))
    serial = fig10_concurrency(jobs=1, **kwargs)
    parallel = fig10_concurrency(jobs=4, **kwargs)
    assert experiment_to_json(serial) == experiment_to_json(parallel)
    # Host attribution differs (workers, wall clock) but is excluded from
    # the default artifact; the effective worker counts are still recorded.
    assert serial.timings["jobs"] == 1
    assert parallel.timings["jobs"] > 1


def test_cell_order_permutation_is_a_noop():
    """Seed-derivation audit regression: permuting cell submission order
    must not change any cell's result -- no RNG stream is shared between
    cells."""
    forward = run_cells(_specs(), jobs=1)
    backward = run_cells(list(reversed(_specs())), jobs=1)
    keys = [s.key for s in _specs()]
    assert _fingerprint(forward, keys) == _fingerprint(backward, keys)
    # ... and ordering only affects the merge order, not the contents.
    assert list(forward.results) == keys
    assert list(backward.results) == list(reversed(keys))


def test_workload_specs_match_generators():
    """WorkloadSpec.build regenerates exactly what the serial loops built
    by calling the generators directly."""
    ds = generate_ssb(0.5, 42)
    cases = [
        (WorkloadSpec("q32-random", n=6, seed=7), q32_random_workload(6, 7)),
        (
            WorkloadSpec("q32-plans", n=6, seed=7, n_plans=2),
            q32_limited_plans_workload(6, 2, 7),
        ),
        (
            WorkloadSpec("q32-selectivity", n=4, seed=7, selectivity=0.05),
            q32_selectivity_workload(4, 0.05, 7),
        ),
        (WorkloadSpec("ssb-mix", n=5, seed=7), ssb_mix_workload(5, 7)),
    ]
    for spec, expected in cases:
        assert spec.build(ds) == expected


def test_fast_flags_captured_at_enumeration():
    """A ``with fast_path(...)`` around spec enumeration reaches workers:
    the flags ride in the spec, not in process-global state."""
    with fast_path(batch_kernels=False, fuse_charges=False):
        spec = _specs(1)[0]
        assert spec.fast_flags == (False, False, False, False, False, False)
    # Outside the context the columnar flag falls back to its env default
    # (REPRO_COLUMNAR), so only pin the first two here.
    assert current_fast_flags()[:2] == (True, True)
    # Executing outside the context still replays the captured slow path,
    # and simulated results equal the fast path's (the golden guarantee).
    slow = execute_cell(spec)
    fast = execute_cell(_specs(1)[0])
    assert slow.result.response_times == fast.result.response_times
    assert slow.result.sim_seconds == fast.result.sim_seconds


def test_bad_specs_rejected():
    with pytest.raises(ValueError, match="dataset kind"):
        DatasetSpec("parquet")
    with pytest.raises(ValueError, match="workload kind"):
        WorkloadSpec("nosuch")
    with pytest.raises(ValueError, match="cell mode"):
        CellSpec(
            key="x",
            config=CJOIN_SP,
            dataset=DatasetSpec("ssb", sf=0.5),
            workload=WorkloadSpec("q32-random", n=1),
            mode="open",
        )
    with pytest.raises(ValueError, match="n_clients"):
        CellSpec(
            key="x",
            config=CJOIN_SP,
            dataset=DatasetSpec("ssb", sf=0.5),
            workload=WorkloadSpec("mix-factory"),
            mode="closed",
        )
