"""Reference plan evaluator (correctness oracle).

A direct, non-simulated interpreter of physical plans.  It shares no code
with the staged engine, the CJOIN pipeline or the Volcano baseline, so the
integration suite can assert that all engines -- with and without sharing --
produce byte-identical results.  Sharing must never change answers; this is
the paper's implicit correctness invariant.
"""

from __future__ import annotations

from repro.query.plan import (
    AggregateNode,
    AggSpec,
    CJoinNode,
    HashJoinNode,
    PlanNode,
    ScanNode,
    SelectNode,
    SortNode,
)


def evaluate_plan(plan: PlanNode, row_weight_of: dict[str, float] | None = None) -> list[tuple]:
    """Evaluate ``plan`` and return its rows (weights applied to additive
    aggregates exactly as the engine does, so results are comparable)."""
    rows, _w = _eval(plan)
    return rows


def _eval(node: PlanNode) -> tuple[list[tuple], float]:
    if isinstance(node, ScanNode):
        return list(node.table.iter_rows()), node.table.row_weight
    if isinstance(node, SelectNode):
        rows, w = _eval(node.child)
        pred = node.predicate.compile(node.child.schema)
        return [r for r in rows if pred(r)], w
    if isinstance(node, HashJoinNode):
        probe_rows, w = _eval(node.probe)
        build_rows, _bw = _eval(node.build)
        bkey = node.build.schema.index(node.build_key)
        pkey = node.probe.schema.index(node.probe_key)
        table: dict = {}
        for r in build_rows:
            table.setdefault(r[bkey], []).append(r)
        out = []
        for r in probe_rows:
            for m in table.get(r[pkey], ()):
                out.append(r + m)
        return out, w
    if isinstance(node, CJoinNode):
        return _eval_cjoin(node)
    if isinstance(node, AggregateNode):
        rows, w = _eval(node.child)
        return _aggregate(node, rows, w, node.child.schema), 1.0
    if isinstance(node, SortNode):
        rows, w = _eval(node.child)
        schema = node.child.schema
        for col, ascending in reversed(node.keys):
            i = schema.index(col)
            rows.sort(key=lambda r, i=i: r[i], reverse=not ascending)
        return rows, w
    raise TypeError(f"cannot evaluate {type(node).__name__}")


def _eval_cjoin(node: CJoinNode) -> tuple[list[tuple], float]:
    """Evaluate a CJoinNode the straightforward way: per-dimension lookup
    maps over the fact table, then the node's projection."""
    if not node.dim_tables:
        raise ValueError("CJoinNode evaluation requires resolved dim_tables")
    fact = node.fact_table_obj
    fact_schema = fact.schema
    rows = list(fact.iter_rows())
    if node.fact_predicate is not None:
        pred = node.fact_predicate.compile(fact_schema)
        rows = [r for r in rows if pred(r)]
    lookups = []
    for d, dim_table in zip(node.dims, node.dim_tables):
        dim_schema = dim_table.schema
        key_idx = dim_schema.index(d.dim_key)
        pred = d.predicate.compile(dim_schema) if d.predicate is not None else None
        selected = {
            r[key_idx]: r for r in dim_table.iter_rows() if pred is None or pred(r)
        }
        fk_idx = fact_schema.index(d.fact_fk)
        payload_idx = [dim_schema.index(c) for c in d.payload]
        lookups.append((fk_idx, selected, payload_idx))
    fact_idx = [fact_schema.index(c) for c in node.fact_payload]
    out = []
    for r in rows:
        values = [r[i] for i in fact_idx]
        ok = True
        for fk_idx, selected, payload_idx in lookups:
            dim_row = selected.get(r[fk_idx])
            if dim_row is None:
                ok = False
                break
            values.extend(dim_row[i] for i in payload_idx)
        if ok:
            out.append(tuple(values))
    return out, fact.row_weight


def _aggregate(node: AggregateNode, rows: list[tuple], weight: float, schema) -> list[tuple]:
    group_idx = [schema.index(g) for g in node.group_by]
    fns = [a.expr.compile(schema) if a.expr is not None else None for a in node.aggregates]
    groups: dict[tuple, list] = {}
    for r in rows:
        key = tuple(r[i] for i in group_idx)
        accs = groups.get(key)
        if accs is None:
            accs = groups[key] = [_new_acc(a) for a in node.aggregates]
        for i, a in enumerate(node.aggregates):
            _update(accs[i], a, fns[i], r, weight)
    return [key + tuple(_final(accs[i], a) for i, a in enumerate(node.aggregates)) for key, accs in groups.items()]


def _new_acc(spec: AggSpec) -> dict:
    return {"sum": 0.0, "count": 0, "min": None, "max": None}


def _update(acc: dict, spec: AggSpec, fn, row: tuple, weight: float) -> None:
    if spec.func == "count":
        acc["count"] += weight
        return
    v = fn(row)
    if spec.func in ("sum", "avg"):
        acc["sum"] += v * weight
        acc["count"] += weight
    elif spec.func == "min":
        acc["min"] = v if acc["min"] is None else min(acc["min"], v)
    else:
        acc["max"] = v if acc["max"] is None else max(acc["max"], v)


def _final(acc: dict, spec: AggSpec):
    if spec.func == "sum":
        return acc["sum"]
    if spec.func == "count":
        return acc["count"]
    if spec.func == "avg":
        return acc["sum"] / acc["count"] if acc["count"] else 0.0
    if spec.func == "min":
        return acc["min"]
    return acc["max"]
