#!/usr/bin/env python3
"""A guided tour of the CJOIN global query plan (paper Sections 2.5/3).

Submits three star queries with different shapes to the CJOIN-SP engine,
pauses to inspect the pipeline's internals -- filters, hash-table sizes,
bitmap slots, pass masks -- and shows Simultaneous Pipelining absorbing an
identical packet without a second admission.

    python examples/cjoin_walkthrough.py
"""

from repro.data import generate_ssb
from repro.engine import CJOIN_SP, QPipeEngine
from repro.query.ssb_queries import q11, q32
from repro.sim import Simulator
from repro.sim.costmodel import DEFAULT_COST_MODEL
from repro.sim.machine import PAPER_MACHINE
from repro.storage import StorageConfig, StorageManager


def describe_pipeline(pipeline) -> None:
    print(f"  fact table: {pipeline.fact.name} "
          f"({pipeline.fact.num_pages} pages, circular scan)")
    print(f"  bitmap slots in use: {pipeline.slots.high_water} "
          f"(live queries: {pipeline.slots.live})")
    for name, flt in pipeline.filters.items():
        print(f"  filter[{name}]: {len(flt.ht)} dimension tuples in the shared "
              f"hash table, pass_mask={flt.pass_mask:#x}, "
              f"referenced by slots {sorted(flt.referencing)}")


def main() -> None:
    dataset = generate_ssb(sf=1.0, seed=42)
    sim = Simulator(PAPER_MACHINE)
    storage = StorageManager(sim, DEFAULT_COST_MODEL, dataset.tables,
                             StorageConfig(resident="memory"))
    engine = QPipeEngine(sim, storage, CJOIN_SP)

    q_a = q32("CHINA", "FRANCE", 1993, 1996)      # 3 dimensions
    q_b = q11(1994, 1.0, 3.0, 25)                 # 1 dimension + fact predicate
    q_c = q32("CHINA", "FRANCE", 1993, 1996)      # identical to q_a

    print("Submitting three star queries to one global query plan:")
    print(f"  A: {q_a.label} (supplier, customer, date)")
    print(f"  B: {q_b.label} (date only; lo_discount/lo_quantity predicates "
          "evaluated on CJOIN output)")
    print(f"  C: {q_a.label} again -- identical to A\n")

    h_a = engine.submit(q_a)
    h_b = engine.submit(q_b)
    h_c = engine.submit(q_c)

    def observer():
        from repro.sim.commands import SLEEP

        yield SLEEP(0.5)  # mid-execution
        print(f"t={sim.now:.2f}s -- pipeline state during execution:")
        describe_pipeline(engine.cjoin_stage.pipeline_for("lineorder"))
        shares = sim.metrics.sharing_events.get("cjoin", 0)
        print(f"  CJOIN packets shared by SP: {shares} "
              "(query C attached to A's packet: no admission, no extra bit)\n")

    sim.spawn(observer(), "observer")
    sim.run()

    for name, handle in (("A", h_a), ("B", h_b), ("C", h_c)):
        print(f"query {name}: {len(handle.results):4d} result rows in "
              f"{handle.response_time:.2f}s")
    assert sorted(h_a.results) == sorted(h_c.results)
    print("\nA and C produced identical results -- C paid only for reading "
          "A's Shared Pages List.")
    admitted = sim.metrics.counts["cjoin_queries_admitted"]
    print(f"queries admitted into the GQP: {admitted} (of 3 submitted)")


if __name__ == "__main__":
    main()
