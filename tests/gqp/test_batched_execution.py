"""Tests for SharedDB-style batched execution (paper Section 2.4)."""

import dataclasses

import pytest

from repro.baselines import evaluate_plan
from repro.data import generate_ssb
from repro.engine import CJOIN, QPipeEngine
from repro.query.ssb_queries import q32
from repro.sim import Simulator
from repro.sim.commands import SLEEP
from repro.sim.costmodel import DEFAULT_COST_MODEL
from repro.sim.machine import MachineSpec
from repro.storage import StorageConfig, StorageManager

CJOIN_BATCHED = dataclasses.replace(CJOIN, gqp_batched_execution=True, name="CJOIN-batched")


@pytest.fixture(scope="module")
def ssb():
    return generate_ssb(0.5, seed=61)


def norm(rows):
    return sorted(
        tuple(round(v, 6) if isinstance(v, float) else v for v in row) for row in rows
    )


def make_engine(ssb, config):
    sim = Simulator(MachineSpec())
    storage = StorageManager(sim, DEFAULT_COST_MODEL, ssb.tables, StorageConfig(resident="memory"))
    return sim, QPipeEngine(sim, storage, config)


class TestBatchedExecution:
    def test_results_exact(self, ssb):
        specs = [q32("CHINA", "FRANCE", 1993, 1996), q32("JAPAN", "BRAZIL", 1992, 1995)]
        oracles = [norm(evaluate_plan(s.to_query_centric_plan(ssb.tables))) for s in specs]
        sim, eng = make_engine(ssb, CJOIN_BATCHED)
        handles = [eng.submit(s) for s in specs]
        sim.run()
        for h, o in zip(handles, oracles):
            assert norm(h.results) == o

    def test_late_arrival_waits_for_generation(self, ssb):
        """A query arriving mid-batch is not admitted until the running
        generation completes -- the paper's latency drawback."""
        spec_a = q32("CHINA", "FRANCE", 1993, 1996)
        spec_b = q32("JAPAN", "BRAZIL", 1992, 1995)

        def late_latency(config):
            sim, eng = make_engine(ssb, config)
            h_a = eng.submit(spec_a)
            out = {}

            def late():
                yield SLEEP(0.5)  # mid-execution of A
                h_b = eng.submit(spec_b)
                yield from h_b.wait()
                out["b_latency"] = h_b.response_time
                out["a_finish"] = h_a.query.finish_time
                out["b_submit"] = h_b.query.submit_time

            sim.spawn(late(), "late")
            sim.run()
            return out

        batched = late_latency(CJOIN_BATCHED)
        continuous = late_latency(CJOIN)
        # Batched: B only starts after A's generation finished.
        assert batched["a_finish"] >= batched["b_submit"]
        assert batched["b_latency"] > continuous["b_latency"] * 1.3

    def test_generation_count(self, ssb):
        """Two staggered arrivals => two admission batches under batching;
        simultaneous arrivals => one."""
        sim, eng = make_engine(ssb, CJOIN_BATCHED)
        eng.submit(q32("CHINA", "FRANCE", 1993, 1996))
        eng.submit(q32("JAPAN", "BRAZIL", 1992, 1995))
        sim.run()
        # Both submitted before the pipeline started: one generation.
        assert sim.metrics.counts["cjoin_admission_batches"] == 1

        sim2, eng2 = make_engine(ssb, CJOIN_BATCHED)
        h1 = eng2.submit(q32("CHINA", "FRANCE", 1993, 1996))

        def late():
            yield SLEEP(0.5)
            eng2.submit(q32("JAPAN", "BRAZIL", 1992, 1995))

        sim2.spawn(late(), "late")
        sim2.run()
        assert sim2.metrics.counts["cjoin_admission_batches"] == 2

    def test_validation(self):
        from repro.engine.config import EngineConfig

        with pytest.raises(ValueError, match="gqp_batched_execution"):
            EngineConfig(gqp_batched_execution=True)
