"""Dataset generators: Star Schema Benchmark and TPC-H lineitem.

Generated tables are scaled-down replicas (~1/1000 of real cardinality) with
per-table ``row_weight`` factors so that simulated CPU/I-O charges reflect
paper-scale volumes.  See DESIGN.md ("Data-scale substitution").
"""

from repro.data.ssb import SSB_NATIONS, SSB_REGIONS, SsbDataset, generate_ssb
from repro.data.tpch import TpchDataset, generate_tpch

__all__ = [
    "SSB_NATIONS",
    "SSB_REGIONS",
    "SsbDataset",
    "TpchDataset",
    "generate_ssb",
    "generate_tpch",
]
