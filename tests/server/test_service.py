"""End-to-end tests for the query service: admission bounds, backpressure,
timeout shedding and report consistency on a real (small) SSB database."""

import pytest

from repro.data import generate_ssb
from repro.server import (
    QUERY_CENTRIC,
    QueryService,
    ServiceConfig,
    StaticThresholdPolicy,
    serve,
)
from repro.server.service import job_factory
from repro.server.arrivals import BurstArrivals, PoissonArrivals, TraceArrivals
from repro.sim.machine import MachineSpec

SF = 0.5
MACHINE = MachineSpec()


@pytest.fixture(scope="module")
def ssb():
    return generate_ssb(SF, seed=23)


def run_service(ssb, policy="static", config=ServiceConfig(), arrivals=None, duration=3.0, machine=MACHINE):
    service = QueryService(ssb.tables, policy, config=config, machine=machine)
    arrivals = arrivals or PoissonArrivals(4.0, seed=5)
    service.run(job_factory("ssb-mix", seed=5), arrivals, duration)
    return service


class TestAccounting:
    def test_clean_drain(self, ssb):
        service = run_service(ssb)
        m = service.metrics
        assert m.arrived > 0
        assert m.arrived == m.admitted + m.dropped
        assert m.admitted == m.completed + m.timed_out
        assert m.in_system == 0
        assert service.in_flight == 0
        assert len(m.latencies) == m.completed
        assert all(lat > 0 for lat in m.latencies)

    def test_latency_includes_queue_wait(self, ssb):
        # One-at-a-time dispatch: later queries of a burst wait in queue,
        # and their reported latency starts at *arrival*.
        config = ServiceConfig(max_in_flight=1)
        service = run_service(ssb, config=config, arrivals=BurstArrivals(4.0, burst=4), duration=2.0)
        m = service.metrics
        assert m.completed >= 4
        assert max(m.queue_waits) > 0
        assert max(m.latencies) > max(m.queue_waits)

    def test_deterministic_replay(self, ssb):
        a = run_service(ssb).metrics
        b = run_service(ssb).metrics
        assert a.latencies == b.latencies
        assert a.routed == b.routed


class TestAdmissionBounds:
    def test_queue_full_drops(self, ssb):
        config = ServiceConfig(queue_capacity=2, max_in_flight=1)
        service = run_service(
            ssb, config=config, arrivals=BurstArrivals(8.0, burst=12), duration=2.0
        )
        m = service.metrics
        assert m.dropped > 0
        assert m.arrived == m.admitted + m.dropped
        assert m.admitted == m.completed + m.timed_out

    def test_backpressure_respects_in_flight_cap(self, ssb):
        seen = []

        class Spy(StaticThresholdPolicy):
            def choose(self, spec, in_flight, queue_depth):
                seen.append(in_flight)
                return QUERY_CENTRIC

        config = ServiceConfig(max_in_flight=2)
        run_service(
            ssb,
            policy=Spy(MACHINE),
            config=config,
            arrivals=BurstArrivals(8.0, burst=8),
            duration=2.0,
        )
        assert seen
        # The dispatcher holds queries until a slot frees: at decision
        # time at most cap-1 queries are in flight.
        assert max(seen) <= 1


class TestTimeoutShedding:
    def test_expired_queries_are_shed(self, ssb):
        config = ServiceConfig(max_in_flight=1, queue_timeout=0.05)
        service = run_service(
            ssb, config=config, arrivals=BurstArrivals(8.0, burst=8), duration=2.0
        )
        m = service.metrics
        assert m.timed_out > 0
        assert m.completed > 0  # shed the tail, not the service
        assert m.admitted == m.completed + m.timed_out

    def test_no_timeout_sheds_nothing(self, ssb):
        service = run_service(ssb, config=ServiceConfig(queue_timeout=None))
        assert service.metrics.timed_out == 0


class TestServe:
    def test_report_consistency(self, ssb):
        report = serve(
            ssb.tables, policy="adaptive", arrival="poisson",
            rate=4.0, duration=3.0, seed=5, workload="ssb-mix",
        )
        m = report.metrics
        assert report.policy == "adaptive"
        assert report.sim_seconds >= 3.0 or m.arrived == 0
        assert report.window >= report.duration
        assert report.throughput_qps == pytest.approx(m.completed / report.window)
        d = report.to_dict()
        for key in ("policy", "arrival", "rate", "latency", "throughput_qps",
                    "arrived", "admitted", "dropped", "timed_out", "completed"):
            assert key in d
        text = report.render()
        assert "latency p95 (s)" in text and "adaptive" in text

    def test_trace_driven(self, ssb, tmp_path):
        f = tmp_path / "trace.txt"
        f.write_text("0.1\n0.2\n0.3\n")
        report = serve(
            ssb.tables, policy="static", arrival="trace", rate=1.0,
            duration=None, seed=5, workload="q32-random", trace_path=str(f),
        )
        assert report.metrics.arrived == 3
        assert report.metrics.completed == 3

    def test_unknown_workload(self, ssb):
        with pytest.raises(ValueError, match="unknown serve workload"):
            serve(ssb.tables, workload="tpch-everything", duration=0.5)

    def test_shared_storage_between_routes(self, ssb):
        service = QueryService(ssb.tables, "static", machine=MACHINE)
        assert service.query_centric.storage is service.gqp.storage is service.storage

    def test_jobs_deterministic_per_index(self):
        jobs = job_factory("ssb-mix", seed=9)
        assert jobs(4).spec.signature == job_factory("ssb-mix", seed=9)(4).spec.signature
