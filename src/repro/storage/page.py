"""Pages and batches.

A :class:`Page` is a fixed slice of a table's rows -- the unit of buffer-pool
residency and disk I/O.  A :class:`Batch` is the unit of data flow between
operators (through FIFO buffers and Shared Pages Lists); scan stages turn
pages into batches, operators transform batches.

Both carry a ``weight``: the number of real rows each generated row
represents (see the scale substitution in DESIGN.md), so CPU and I/O charges
reflect paper-scale data volumes.

Immutability contract: ``Page.rows`` is a tuple and :meth:`Page.to_batch`
hands that same tuple to the Batch -- *zero copies*.  Operators must never
mutate a batch's ``rows`` in place (they build new row lists and new
Batches); the one place that needs a private, independently-owned copy --
push-based SP fanning a batch out to satellites -- goes through
:meth:`Batch.copy` and is charged for it.
"""

from __future__ import annotations

from typing import Any, Sequence


class Page:
    """An immutable slice of table rows."""

    __slots__ = ("table_name", "index", "rows", "weight", "real_bytes")

    def __init__(
        self,
        table_name: str,
        index: int,
        rows: Sequence[tuple],
        weight: float,
        real_bytes: float,
    ):
        self.table_name = table_name
        self.index = index
        self.rows = tuple(rows)
        self.weight = weight
        self.real_bytes = real_bytes

    def __len__(self) -> int:
        return len(self.rows)

    def to_batch(self) -> "Batch":
        """A Batch viewing this page's rows -- zero-copy: the Batch shares
        the page's row tuple (safe because batches are never mutated in
        place; see the module docstring)."""
        return Batch(self.rows, self.weight)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<Page {self.table_name}[{self.index}] rows={len(self.rows)}>"


class Batch:
    """A batch of tuples flowing between operators.

    ``rows`` may be a list or (for zero-copy page views) a tuple; either
    way it must be treated as immutable by consumers."""

    __slots__ = ("rows", "weight", "meta")

    def __init__(self, rows: Sequence[tuple], weight: float = 1.0, meta: Any = None):
        self.rows = rows
        self.weight = weight
        self.meta = meta

    def __len__(self) -> int:
        return len(self.rows)

    def copy(self) -> "Batch":
        """A shallow copy (what push-based SP pays cycles to produce)."""
        return Batch(list(self.rows), self.weight, self.meta)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<Batch rows={len(self.rows)} weight={self.weight}>"
