"""The admission gate: a bounded queue between arrivals and the engines.

Arrivals are open-loop -- clients do not wait for capacity -- so the only
two graceful options under overload are *bounding* (drop at the door when
the queue is full) and *shedding* (discard queued work whose deadline
already passed instead of burning resources on a response nobody is waiting
for).  Both are counted in :class:`~repro.server.metrics.ServiceMetrics`;
neither raises.

The queue itself wraps :class:`repro.sim.sync.Channel`; blocking happens in
simulated time on the dispatcher side only (``offer`` never blocks the
arrival source).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Any, Iterator

from repro.sim.sync import Channel

if TYPE_CHECKING:  # pragma: no cover
    from repro.bench.workload import QueryJob
    from repro.server.metrics import ServiceMetrics
    from repro.sim.engine import Simulator


@dataclass(frozen=True)
class QueuedQuery:
    """One admitted query waiting for dispatch."""

    seq: int
    job: "QueryJob"
    arrival_time: float
    #: absolute simulated time after which the query is shed un-run
    deadline: float | None = None

    def expired(self, now: float) -> bool:
        return self.deadline is not None and now > self.deadline


class AdmissionQueue:
    """Bounded FIFO of :class:`QueuedQuery` with drop counting."""

    #: sentinel returned by :meth:`get` once the queue is closed and drained
    CLOSED = Channel.CLOSED

    def __init__(self, sim: "Simulator", capacity: int, metrics: "ServiceMetrics"):
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        self.sim = sim
        self.capacity = capacity
        self.metrics = metrics
        self._chan = Channel(sim, capacity, name="admission")

    def __len__(self) -> int:
        return len(self._chan)

    @property
    def depth(self) -> int:
        return len(self._chan)

    @property
    def closed(self) -> bool:
        return self._chan.closed

    def offer(self, item: QueuedQuery) -> bool:
        """Admit ``item`` if there is room; count a drop (and return False)
        otherwise.  Never blocks: the arrival source is open-loop."""
        if self._chan.try_put(item):
            self.metrics.record_admit()
            return True
        self.metrics.record_drop()
        return False

    def get(self) -> Iterator[Any]:
        """Generator: dequeue the next query (blocks in simulated time;
        returns :data:`CLOSED` once the queue is closed and drained)."""
        item = yield from self._chan.get()
        return item

    def close(self) -> None:
        self._chan.close()
