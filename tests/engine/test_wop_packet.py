"""Tests for Windows of Opportunity, packets and engine config."""

import pytest

from repro.data import generate_ssb
from repro.engine.config import CJOIN_SP, QPIPE_SP, EngineConfig
from repro.engine.packet import Packet
from repro.engine.wop import STAGE_WOP, WindowOfOpportunity, wop_gain
from repro.query.plan import ScanNode
from repro.query.star import Query


class TestWopGain:
    def test_step_full_before_output(self):
        assert wop_gain(WindowOfOpportunity.STEP, 0.0) == 1.0
        assert wop_gain(WindowOfOpportunity.STEP, 0.99) == 1.0

    def test_step_nothing_after_output(self):
        assert wop_gain(WindowOfOpportunity.STEP, 1.0) == 0.0
        assert wop_gain(WindowOfOpportunity.STEP, 0.6, output_start=0.5) == 0.0

    def test_linear_proportional(self):
        assert wop_gain(WindowOfOpportunity.LINEAR, 0.0) == 1.0
        assert wop_gain(WindowOfOpportunity.LINEAR, 0.25) == 0.75
        assert wop_gain(WindowOfOpportunity.LINEAR, 1.0) == 0.0

    def test_none_never_gains(self):
        assert wop_gain(WindowOfOpportunity.NONE, 0.0) == 0.0

    def test_bounds_checked(self):
        with pytest.raises(ValueError):
            wop_gain(WindowOfOpportunity.STEP, 1.5)

    def test_stage_assignment_matches_paper(self):
        assert STAGE_WOP["tablescan"] is WindowOfOpportunity.LINEAR
        assert STAGE_WOP["sort"] is WindowOfOpportunity.LINEAR
        assert STAGE_WOP["join"] is WindowOfOpportunity.STEP
        assert STAGE_WOP["aggregate"] is WindowOfOpportunity.STEP
        assert STAGE_WOP["cjoin"] is WindowOfOpportunity.STEP


class TestPacket:
    def make_packet(self, wop):
        ssb = generate_ssb(0.5, seed=21)
        node = ScanNode(ssb.customer)
        return Packet(node, Query(query_id=0), "tablescan", wop)

    def test_step_wop_closes_on_first_output(self):
        p = self.make_packet(WindowOfOpportunity.STEP)
        assert p.can_attach()
        p.mark_started()
        assert not p.can_attach()

    def test_linear_wop_open_until_finish(self):
        p = self.make_packet(WindowOfOpportunity.LINEAR)
        p.mark_started()
        assert p.can_attach()
        p.finished = True
        assert not p.can_attach()

    def test_satellite_chain_resolves_to_root_host(self):
        a = self.make_packet(WindowOfOpportunity.STEP)
        b = self.make_packet(WindowOfOpportunity.STEP)
        c = self.make_packet(WindowOfOpportunity.STEP)
        a.exchange = object()
        a.attach_satellite(b)
        b.attach_satellite(c)
        assert c.effective_exchange() is a.exchange

    def test_missing_exchange_raises(self):
        p = self.make_packet(WindowOfOpportunity.STEP)
        with pytest.raises(RuntimeError):
            p.effective_exchange()


class TestEngineConfig:
    def test_paper_presets(self):
        assert not QPIPE_SP.use_cjoin and QPIPE_SP.sp_join and QPIPE_SP.sp_scan
        assert CJOIN_SP.use_cjoin and CJOIN_SP.sp_cjoin
        # SP for agg/sort off in every paper preset.
        assert not QPIPE_SP.sp_agg and not QPIPE_SP.sp_sort

    def test_validation(self):
        with pytest.raises(ValueError):
            EngineConfig(comm="tcp")
        with pytest.raises(ValueError):
            EngineConfig(spl_max_pages=0)
        with pytest.raises(ValueError):
            EngineConfig(sp_cjoin=True)  # requires use_cjoin
        with pytest.raises(ValueError):
            EngineConfig(filter_workers=0)

    def test_with_comm(self):
        fifo = QPIPE_SP.with_comm("fifo")
        assert fifo.comm == "fifo"
        assert "FIFO" in fifo.name
