"""Tests for the complete SSB query suite: every query runs on every engine
shape and matches the reference evaluator."""

import random

import pytest

from repro.baselines import evaluate_plan
from repro.data import generate_ssb
from repro.engine import CJOIN_SP, QPIPE_SP, QPipeEngine
from repro.query.ssb_suite import ALL_SSB_QUERIES, default_instance, random_instance
from repro.sim import Simulator
from repro.sim.costmodel import DEFAULT_COST_MODEL
from repro.sim.machine import MachineSpec
from repro.storage import StorageConfig, StorageManager


@pytest.fixture(scope="module")
def ssb():
    return generate_ssb(0.5, seed=101)


def norm(rows):
    return sorted(
        tuple(round(v, 6) if isinstance(v, float) else v for v in row) for row in rows
    )


def run_engine(ssb, config, spec):
    sim = Simulator(MachineSpec())
    storage = StorageManager(sim, DEFAULT_COST_MODEL, ssb.tables, StorageConfig(resident="memory"))
    eng = QPipeEngine(sim, storage, config)
    h = eng.submit(spec)
    sim.run()
    return norm(h.results)


class TestSuiteStructure:
    def test_thirteen_queries(self):
        assert len(ALL_SSB_QUERIES) == 13
        flights = {name[1] for name in ALL_SSB_QUERIES}
        assert flights == {"1", "2", "3", "4"}

    def test_unknown_name_rejected(self):
        with pytest.raises(KeyError):
            default_instance("Q9.9")
        with pytest.raises(KeyError):
            random_instance("Q9.9", random.Random(1))

    def test_flight1_has_fact_predicates_no_groups(self):
        for name in ("Q1.1", "Q1.2", "Q1.3"):
            spec = default_instance(name)
            assert spec.fact_predicate is not None
            assert spec.group_by == ()

    def test_flight4_aggregates_profit(self):
        for name in ("Q4.1", "Q4.2", "Q4.3"):
            spec = default_instance(name)
            assert spec.aggregates[0].name == "profit"
            cols = spec.aggregates[0].expr.columns()
            assert cols == {"lo_revenue", "lo_supplycost"}

    def test_random_instances_deterministic(self):
        for name in ALL_SSB_QUERIES:
            a = random_instance(name, random.Random(7))
            b = random_instance(name, random.Random(7))
            assert a.signature == b.signature, name

    def test_random_instances_vary(self):
        for name in ALL_SSB_QUERIES:
            sigs = {random_instance(name, random.Random(s)).signature for s in range(8)}
            assert len(sigs) > 1, name


@pytest.mark.parametrize("name", sorted(ALL_SSB_QUERIES))
class TestSuiteCorrectness:
    def test_query_centric_matches_oracle(self, ssb, name):
        spec = default_instance(name)
        oracle = norm(evaluate_plan(spec.to_query_centric_plan(ssb.tables)))
        assert run_engine(ssb, QPIPE_SP, spec) == oracle

    def test_gqp_matches_oracle(self, ssb, name):
        spec = default_instance(name)
        oracle = norm(evaluate_plan(spec.to_query_centric_plan(ssb.tables)))
        assert run_engine(ssb, CJOIN_SP, spec) == oracle
