"""The discrete-event loop.

:class:`Simulator` owns the clock, the event heap, the GPS CPU pool and the
disk devices, and drives simulated threads (generators) by interpreting the
commands they yield.  The loop is fully deterministic: ties on the event heap
break by insertion order and nothing consults wall-clock time or unseeded
randomness.
"""

from __future__ import annotations

import heapq
from typing import Any, Callable, ClassVar, Generator

from repro.sim.commands import BLOCK, CpuCommand, IoCommand, SleepCommand
from repro.sim.cpu import CpuPool
from repro.sim.fastpath import fuse_charges_default
from repro.sim.iodev import IoDevice
from repro.sim.machine import PAPER_MACHINE, MachineSpec
from repro.sim.metrics import Metrics
from repro.sim.task import SimThread, ThreadState


class DeadlockError(RuntimeError):
    """Raised when the event heap drains while non-daemon threads are still
    blocked -- in this codebase that always means an engine bug (a buffer
    that was never closed, a lock never released)."""


class SimulationError(RuntimeError):
    """An exception escaped a simulated thread that nobody was joining."""


class Simulator:
    """Event loop for one simulated run.

    Parameters
    ----------
    machine:
        Hardware configuration; defaults to the paper's 24-core testbed.
    """

    _active: ClassVar["Simulator | None"] = None

    def __init__(self, machine: MachineSpec = PAPER_MACHINE):
        self.machine = machine
        self.now = 0.0
        self._heap: list[tuple[float, int, Callable[[], None]]] = []
        self._seq = 0
        self.cpu = CpuPool(
            machine.cores,
            machine.hz,
            oversub_penalty=machine.oversub_penalty,
            oversub_exponent=machine.oversub_exponent,
        )
        self.devices: dict[str, IoDevice] = {
            d.name: IoDevice(
                d.name,
                d.bandwidth,
                seek_penalty=d.seek_penalty,
                min_efficiency=d.min_efficiency,
                random_multiplier=d.random_multiplier,
            )
            for d in machine.disks
        }
        self.metrics = Metrics()
        # Fused CPU charges are metered by the pool at the instant each
        # part starts (identical order and values to unfused dispatch).
        self.cpu.charge = self._charge_part
        self.current: SimThread | None = None
        self.threads: list[SimThread] = []
        self._daemons: set[SimThread] = set()
        self._pending_error: tuple[SimThread, BaseException] | None = None
        self._run_until: float | None = None
        # Snapshot of the fuse_charges fast-path flag, refreshed at run()
        # entry (the flag never flips mid-run; reading it once avoids a
        # dict lookup on every dispatched command).
        self._fuse = fuse_charges_default()
        # True while _resume may take its inline CPU branch: fuse mode and
        # _dispatch not wrapped on the instance (Tracer flips this).
        self._fast_resume = self._fuse
        # Cached metric-dict references (refreshed at run() entry: the
        # service tier swaps sim.metrics for an extended object after
        # construction) -- saves an attribute hop per dispatched command.
        self._by_category = self.metrics.cpu_cycles_by_category
        self._by_query = self.metrics.cpu_cycles_by_query
        Simulator._active = self

    # ------------------------------------------------------------------
    @classmethod
    def current_thread(cls) -> SimThread:
        """The thread currently being stepped (for join registration)."""
        sim = cls._active
        if sim is None or sim.current is None:
            raise RuntimeError("no simulated thread is running")
        return sim.current

    # ------------------------------------------------------------------
    def spawn(
        self,
        gen: Generator[Any, Any, Any],
        name: str,
        query_id: int | None = None,
        daemon: bool = False,
    ) -> SimThread:
        """Create a thread from generator ``gen`` and schedule its first step
        at the current simulated time."""
        thread = SimThread(gen, name, query_id=query_id)
        thread.state = ThreadState.READY
        thread.start_time = self.now
        self.threads.append(thread)
        if daemon:
            self._daemons.add(thread)
        # Resume events are (thread, value, 0) tuples interpreted by the run
        # loop -- no per-event closure allocation (see ``run``).
        self._seq += 1
        heapq.heappush(self._heap, (self.now, self._seq, (thread, None, 0)))
        return thread

    def call_at(self, when: float, fn: Callable[[], None]) -> None:
        """Schedule ``fn`` to run at simulated time ``when``."""
        if when < self.now - 1e-12:
            raise ValueError(f"cannot schedule in the past: {when} < {self.now}")
        self._seq += 1
        heapq.heappush(self._heap, (max(when, self.now), self._seq, fn))

    def unblock(self, thread: SimThread, value: Any = None) -> bool:
        """Wake ``thread`` (previously parked on BLOCK).  Returns False if it
        was not blocked (e.g. already woken) -- callers that must wake exactly
        one thread should check."""
        if thread.state is not ThreadState.BLOCKED:
            return False
        thread.state = ThreadState.READY
        self._seq += 1
        heapq.heappush(self._heap, (self.now, self._seq, (thread, value, 0)))
        return True

    # ------------------------------------------------------------------
    def _resume(self, thread: SimThread, value: Any = None) -> None:
        if thread.state is not ThreadState.READY:
            # A stale wakeup (e.g. thread already finished); ignore.
            return
        prev = self.current
        self.current = thread
        try:
            cmd = thread.gen.send(value)
        except StopIteration as stop:
            self._finish(thread, result=stop.value)
            return
        except BaseException as exc:  # noqa: BLE001 - must capture engine bugs
            self._finish(thread, error=exc)
            return
        finally:
            self.current = prev
        if type(cmd) is CpuCommand and self._fast_resume:
            # Inline copy of _dispatch's fast CPU branch -- every worker
            # yield funnels through here, so the extra call is measurable.
            # Keep in lockstep with _dispatch.  Skipped whenever _dispatch
            # is wrapped on the instance (e.g. an attached Tracer), so
            # hooks keep seeing every command.
            cycles = cmd.cycles
            category = cmd.category
            self._by_category[category] += cycles
            self._by_query[(thread.query_id, category)] += cycles
            rest = cmd.rest
            if cycles <= 0 and not rest:
                thread.state = ThreadState.READY
                self._seq += 1
                heapq.heappush(self._heap, (self.now, self._seq, (thread, None, 0)))
                return
            thread.state = ThreadState.ON_CPU
            pool = self.cpu
            now = self.now
            waker = thread._waker
            if waker is None:
                waker = self._make_waker(thread)
            pheap = pool._heap
            rates = pool._rates
            dt = now - pool._last_update
            if dt > 0:
                n = len(pheap)
                if n:
                    try:
                        r = rates[n]
                    except IndexError:
                        r = pool._rate_for(n)
                    pool.service += r * dt
                    pool.util_integral += min(n, pool.cores) * dt
                    pool.busy_time += dt
                pool._last_update = now
            elif dt < 0:
                raise AssertionError(f"time went backwards: {pool._last_update} -> {now}")
            service = pool.service
            pool._seq += 1
            heapq.heappush(
                pheap,
                (service + (cycles if cycles > 0.0 else 0.0), pool._seq, thread, waker, rest),
            )
            pool._version += 1
            remaining = pheap[0][0] - service
            n = len(pheap)
            try:
                rate = rates[n]
            except IndexError:
                rate = pool._rate_for(n)
            when = now + (remaining if remaining > 0.0 else 0.0) / rate
            pool.fresh_when = when
            pool.fresh_version = pool._version
            armed = pool.armed_when
            if armed is None or when < armed:
                # Strict <: an event already armed at exactly `when` fires
                # at the same instant -- re-pushing would just stale it and
                # cost an extra heap round-trip per command.
                self._push_pool_event(pool, when)
            return
        self._dispatch(thread, cmd)

    def _finish(self, thread: SimThread, result: Any = None, error: BaseException | None = None) -> None:
        thread.result = result
        thread.error = error
        thread.state = ThreadState.FAILED if error else ThreadState.DONE
        thread.finish_time = self.now
        self._daemons.discard(thread)
        joiners, thread._joiners = thread._joiners, []
        for j in joiners:
            self.unblock(j)
        if error is not None and not joiners:
            # Nobody will observe the failure through join(): abort the run.
            if self._pending_error is None:
                self._pending_error = (thread, error)

    def _charge_part(self, thread: SimThread, cycles: float, category: str) -> None:
        self.metrics.charge_cpu(cycles, category, thread.query_id)

    def _dispatch(self, thread: SimThread, cmd: Any) -> None:
        # type-is instead of isinstance: the command classes are final by
        # design and this check runs once per yielded command.
        cmd_type = type(cmd)
        if cmd_type is CpuCommand:
            cycles = cmd.cycles
            category = cmd.category
            # charge_cpu inlined (one dispatch per yielded command).
            self._by_category[category] += cycles
            self._by_query[(thread.query_id, category)] += cycles
            rest = cmd.rest
            if cycles <= 0 and not rest:
                thread.state = ThreadState.READY
                self._seq += 1
                heapq.heappush(self._heap, (self.now, self._seq, (thread, None, 0)))
                return
            thread.state = ThreadState.ON_CPU
            pool = self.cpu
            if self._fuse:
                # Inline CpuPool.add + next_completion + the dedup arm of
                # _arm_pool: one advance, one push, and the post-add
                # completion estimate with the exact same arithmetic (the
                # second advance would be a dt=0 no-op).
                now = self.now
                waker = thread._waker
                if waker is None:
                    waker = self._make_waker(thread)
                pheap = pool._heap
                rates = pool._rates
                dt = now - pool._last_update
                if dt > 0:
                    n = len(pheap)
                    if n:
                        try:
                            r = rates[n]
                        except IndexError:
                            r = pool._rate_for(n)
                        pool.service += r * dt
                        pool.util_integral += min(n, pool.cores) * dt
                        pool.busy_time += dt
                    pool._last_update = now
                elif dt < 0:
                    raise AssertionError(
                        f"time went backwards: {pool._last_update} -> {now}"
                    )
                service = pool.service
                pool._seq += 1
                heapq.heappush(
                    pheap,
                    (service + (cycles if cycles > 0.0 else 0.0), pool._seq, thread, waker, rest),
                )
                pool._version += 1
                remaining = pheap[0][0] - service
                n = len(pheap)
                try:
                    rate = rates[n]
                except IndexError:
                    rate = pool._rate_for(n)
                when = now + (remaining if remaining > 0.0 else 0.0) / rate
                pool.fresh_when = when
                pool.fresh_version = pool._version
                armed = pool.armed_when
                if armed is None or when < armed:
                    self._push_pool_event(pool, when)
                return
            pool.add(self.now, thread, cycles, self._make_waker(thread), rest)
            self._arm_pool(pool)
        elif cmd_type is IoCommand:
            device = self.devices.get(cmd.device)
            if device is None:
                raise SimulationError(f"unknown device {cmd.device!r} (thread {thread.name})")
            nbytes = cmd.nbytes
            if nbytes <= 0:
                thread.state = ThreadState.READY
                self._seq += 1
                heapq.heappush(self._heap, (self.now, self._seq, (thread, None, 0)))
                return
            thread.state = ThreadState.ON_IO
            if self._fuse:
                # Mirror of the CPU branch for the shared-bandwidth device.
                now = self.now
                waker = thread._waker
                if waker is None:
                    waker = self._make_waker(thread)
                pheap = device._heap
                rates = device._rates
                dt = now - device._last_update
                if dt > 0:
                    n = len(pheap)
                    if n:
                        try:
                            r = rates[n]
                        except IndexError:
                            r = device._rate_for(n)
                        device.service += r * dt
                        device.busy_time += dt
                    device._last_update = now
                elif dt < 0:
                    raise AssertionError(f"time went backwards on {device.name}")
                charged = nbytes if nbytes > 0.0 else 0.0
                device.bytes_delivered += charged
                if not cmd.sequential:
                    charged *= device.random_multiplier
                service = device.service
                device._seq += 1
                heapq.heappush(pheap, (service + charged, device._seq, thread, waker, ()))
                device._version += 1
                remaining = pheap[0][0] - service
                n = len(pheap)
                try:
                    rate = rates[n]
                except IndexError:
                    rate = device._rate_for(n)
                when = now + (remaining if remaining > 0.0 else 0.0) / rate
                device.fresh_when = when
                device.fresh_version = device._version
                armed = device.armed_when
                if armed is None or when < armed:
                    self._push_pool_event(device, when)
                return
            device.add(self.now, thread, nbytes, cmd.sequential, self._make_waker(thread))
            self._arm_pool(device)
        elif cmd_type is SleepCommand:
            thread.state = ThreadState.SLEEPING

            def wake() -> None:
                if thread.state is ThreadState.SLEEPING:
                    thread.state = ThreadState.READY
                    self._resume(thread)

            self.call_at(self.now + max(cmd.delay, 0.0), wake)
        elif cmd is BLOCK:
            thread.state = ThreadState.BLOCKED
        else:
            raise SimulationError(
                f"thread {thread.name!r} yielded {cmd!r}; did you forget 'yield from'?"
            )

    def _make_waker(self, thread: SimThread) -> Callable[[], None]:
        if self._fuse:
            # The waker is stateless (closes only over the thread and the
            # simulator), so the fast path builds it once per thread
            # instead of once per dispatched command.
            waker = thread._waker
            if waker is not None:
                return waker

        def wake() -> None:
            thread.state = ThreadState.READY
            self._resume(thread)

        thread._waker = wake
        return wake

    def _arm_pool(self, pool: CpuPool | IoDevice, when: float | None = None) -> None:
        """Schedule the pool's next completion on the event heap.

        Slow path (seed behavior): every call pushes a fresh closure that
        carries the pool ``version`` it was computed under and no-ops if
        membership changed before it fires -- so a busy pool leaves a trail
        of stale events behind it (one per membership change).

        Fast path (``fuse_charges`` on): keep at most ONE live event per
        pool.  Every call still computes ``when`` with the exact arithmetic
        of the slow path (recording it as the pool's *fresh* estimate), but
        only pushes when the new estimate is not later than the live event
        -- a later estimate means the live, earlier event will fire first
        and *chase* the fresh estimate by re-pushing itself at it.  Chasing
        re-materializes the exact event time the slow path computed (never
        recomputes it at fire time, which would change the float), so pools
        advance and pop at exactly the same instants in both modes.  The
        eliminated events are precisely the slow path's stale no-ops, whose
        times are provably earlier than the member's actual pop time
        (entries leave a cumulative-service pool in target order, so an
        estimate can only move *later*), hence unobservable."""
        if when is None:
            when = pool.next_completion(self.now)
            if when is None:
                return
        if not self._fuse:
            version = pool.version

            def fire() -> None:
                if pool.version != version:
                    return  # membership changed; a fresher event is armed
                self._service_pool(pool)

            self.call_at(when, fire)
            return
        pool.fresh_when = when
        pool.fresh_version = pool.version
        armed = pool.armed_when
        if armed is not None and when >= armed:
            return  # the live event at `armed` fires first (or now) and chases
        self._push_pool_event(pool, when)

    def _push_pool_event(self, pool: CpuPool | IoDevice, when: float) -> None:
        """Push the pool's single live completion event.  Fast-path events
        are ``(pool, token)`` tuples interpreted by the run loop (no
        per-event closure); ``when`` is always >= ``self.now`` here."""
        token = pool.arm_token + 1
        pool.arm_token = token
        pool.armed_when = when
        self._seq += 1
        heapq.heappush(self._heap, (when, self._seq, (pool, token)))

    def _service_pool(self, pool: CpuPool | IoDevice) -> None:
        """Pop and process the pool's due completions at ``self.now``.

        Slow path (seed behavior): one ``pop_completed`` round, invoke the
        callbacks in completion order, re-arm through ``next_completion``.
        The fast path lives in ``_service_pool_fast``."""
        if self._fuse:
            self._service_pool_fast(pool)
            return
        completed = pool.pop_completed(self.now)
        if not completed:
            # Float round-off left the top element a hair short; nudge.
            self._arm_pool(pool, self.now + 1e-9)
            return
        for _thread, on_done in completed:
            on_done()
        self._arm_pool(pool)

    def _service_pool_fast(self, pool: CpuPool | IoDevice) -> None:
        """Fast-mode pool servicing: ``pop_completed``, the fused-part
        continuations, ``next_completion`` and the re-arm, all inlined.

        Servicing a pool is *the* hot loop of a simulated run -- every CPU
        charge and every disk read funnels through here -- so the fast path
        flattens what is otherwise ~10 Python calls per completion into a
        single frame.  Every float operation is kept literally identical to
        the method it replaces (``advance``'s service/utilization updates,
        ``pop_completed``'s epsilon test, ``_part_continuation``'s
        charge-and-re-add, ``next_completion``'s remaining/rate division),
        so simulated results stay bit-identical to the slow path -- the
        golden determinism test holds both modes to one snapshot.

        Structure per round: (1) advance the pool to ``self.now``; (2)
        two-phase pop -- collect *all* due entries first, then process them
        in completion order (an entry with remaining fused parts charges
        the next part and re-enters the pool; re-entries become due in a
        later round, exactly as ``pop_completed`` batches them); (3) if
        the pool's next completion is strictly earlier than every pending
        heap event (and inside the run window), jump the clock there and
        continue inline; otherwise arm the pool's single live event and
        return.  Ties defer to the heap, whose event holds the older seq."""
        now = self.now
        heap = self._heap
        pheap = pool._heap
        rates = pool._rates
        rate_for = pool._rate_for
        until = self._run_until
        is_cpu = pool is self.cpu
        cores = self.cpu.cores
        by_category = self._by_category
        by_query = self._by_query
        heappush = heapq.heappush
        heappop = heapq.heappop
        resume = self._resume
        ready = ThreadState.READY
        while True:
            # ---- inline pool.advance(now) ----
            dt = now - pool._last_update
            if dt > 0:
                n = len(pheap)
                if n:
                    try:
                        r = rates[n]
                    except IndexError:
                        r = rate_for(n)
                    pool.service += r * dt
                    if is_cpu:
                        pool.util_integral += min(n, cores) * dt
                    pool.busy_time += dt
                pool._last_update = now
            elif dt < 0:
                raise AssertionError(f"time went backwards: {pool._last_update} -> {now}")
            # ---- inline pool.pop_completed(now): two-phase batch pop ----
            service = pool.service
            mag = abs(service)
            limit = service + 1e-9 * (mag if mag > 1.0 else 1.0)
            if not pheap or pheap[0][0] > limit:
                # Float round-off left the top element a hair short; nudge.
                when = now + 1e-9
                pool.fresh_when = when
                pool.fresh_version = pool._version
                armed = pool.armed_when
                if armed is None or when < armed:
                    self._push_pool_event(pool, when)
                return
            e = heappop(pheap)
            pool._version += 1
            if pheap and pheap[0][0] <= limit:
                due = [e]
                while pheap and pheap[0][0] <= limit:
                    due.append(heappop(pheap))
                for e in due:
                    rest = e[4]
                    if rest:
                        # Next part of a fused charge: meter it and re-enter
                        # the pool at this instant (CpuPool._part_continuation).
                        thread = e[2]
                        cycles, category = rest[0]
                        by_category[category] += cycles
                        by_query[(thread.query_id, category)] += cycles
                        pool._seq += 1
                        heappush(
                            pheap,
                            (service + (cycles if cycles > 0.0 else 0.0), pool._seq, thread, e[3], rest[1:]),
                        )
                        pool._version += 1
                    else:
                        # Devirtualized waker: the cached completion callback
                        # just flips the thread READY and resumes it.
                        on_done = e[3]
                        thread = e[2]
                        if on_done is thread._waker:
                            thread.state = ready
                            resume(thread)
                        else:
                            on_done()
            else:
                # Single due entry -- the overwhelmingly common case.
                rest = e[4]
                if rest:
                    thread = e[2]
                    cycles, category = rest[0]
                    by_category[category] += cycles
                    by_query[(thread.query_id, category)] += cycles
                    pool._seq += 1
                    heappush(
                        pheap,
                        (service + (cycles if cycles > 0.0 else 0.0), pool._seq, thread, e[3], rest[1:]),
                    )
                    pool._version += 1
                else:
                    on_done = e[3]
                    thread = e[2]
                    if on_done is thread._waker:
                        thread.state = ready
                        resume(thread)
                    else:
                        on_done()
            # ---- inline pool.next_completion(now) + cascade decision ----
            if not pheap:
                return
            remaining = pheap[0][0] - service
            n = len(pheap)
            try:
                rate = rates[n]
            except IndexError:
                rate = rate_for(n)
            when = now + (remaining if remaining > 0.0 else 0.0) / rate
            if (
                (heap and when >= heap[0][0])
                or (until is not None and when > until)
                or self._pending_error is not None
            ):
                pool.fresh_when = when
                pool.fresh_version = pool._version
                armed = pool.armed_when
                if armed is None or when < armed:
                    token = pool.arm_token + 1
                    pool.arm_token = token
                    pool.armed_when = when
                    self._seq += 1
                    heappush(heap, (when, self._seq, (pool, token)))
                return
            now = when
            self.now = when

    # ------------------------------------------------------------------
    def run(self, until: float | None = None) -> float:
        """Process events until the heap drains (or simulated time passes
        ``until``).  Returns the final simulated time.

        Raises
        ------
        SimulationError
            if an exception escaped a thread with no joiner.
        DeadlockError
            if non-daemon threads remain blocked with no pending events.
        """
        prev_active = Simulator._active
        Simulator._active = self
        self._run_until = until
        self._fuse = fuse_charges_default()
        self._fast_resume = self._fuse and "_dispatch" not in self.__dict__
        self._by_category = self.metrics.cpu_cycles_by_category
        self._by_query = self.metrics.cpu_cycles_by_query
        # The event loop runs hundreds of thousands of iterations per
        # simulated second; hoist every per-iteration attribute lookup.
        heap = self._heap
        heappop = heapq.heappop
        heappush = heapq.heappush
        service_fast = self._service_pool_fast
        push_pool_event = self._push_pool_event
        resume = self._resume
        try:
            while heap:
                item = heappop(heap)
                when = item[0]
                if until is not None and when > until:
                    heappush(heap, item)  # keep it pending for a later run()
                    self.now = until
                    break
                self.now = when
                fn = item[2]
                if type(fn) is tuple:
                    if len(fn) == 2:
                        # A pool's live completion event (fast path): validate
                        # the token, chase a later fresh estimate, or service.
                        pool = fn[0]
                        if fn[1] == pool.arm_token:
                            pool.armed_when = None
                            if pool.fresh_version == pool._version:
                                fresh = pool.fresh_when
                                if fresh is not None and fresh > when:
                                    # Completion moved later after this event
                                    # was armed (members joined); chase the
                                    # recorded fresh estimate.
                                    push_pool_event(pool, fresh)
                                else:
                                    service_fast(pool)
                    else:
                        # A thread resume event: (thread, value, 0) -- the
                        # closure-free form of spawn/unblock scheduling.
                        resume(fn[0], fn[1])
                else:
                    fn()
                if self._pending_error is not None:
                    thread, error = self._pending_error
                    raise SimulationError(
                        f"unhandled exception in simulated thread {thread.name!r}"
                    ) from error
            else:
                self._check_deadlock()
            # Settle pool metric integrals at the final time.
            self.cpu.advance(self.now)
            for device in self.devices.values():
                device.advance(self.now)
            return self.now
        finally:
            Simulator._active = prev_active if prev_active is not None else self

    def _check_deadlock(self) -> None:
        stuck = [
            t
            for t in self.threads
            if t.alive and t not in self._daemons and t.state is ThreadState.BLOCKED
        ]
        if stuck:
            names = ", ".join(t.name for t in stuck[:12])
            raise DeadlockError(
                f"{len(stuck)} non-daemon thread(s) blocked with no pending events: {names}"
            )

    # ------------------------------------------------------------------
    @property
    def disk(self) -> IoDevice:
        """The primary disk device."""
        return self.devices[self.machine.primary_disk.name]

    def avg_cores_used(self, window: float | None = None) -> float:
        """Average busy cores over ``window`` (default: the busy period)."""
        w = window if window is not None else self.cpu.busy_time
        return self.cpu.avg_cores_used(w) if w else 0.0

    def avg_read_mb_per_s(self, window: float | None = None) -> float:
        """Average delivered disk read rate in MB/s over ``window``
        (default: the device's busy period)."""
        dev = self.disk
        w = window if window is not None else dev.busy_time
        return dev.avg_read_rate(w) / (1 << 20) if w else 0.0
