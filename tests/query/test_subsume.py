"""Property suite for the subsumption lattice (:mod:`repro.query.subsume`).

The fold plane's whole correctness argument rests on four claims, each
checked here over arbitrary generated predicates and relations:

* **Order** -- subsumption is reflexive and transitive, and adding
  conjuncts always strengthens (``w`` subsumes ``w AND r``).
* **Containment** -- whenever ``predicate_subsumes(weak, strong)`` says
  yes, every row passing ``strong`` passes ``weak`` (the check is
  conservative: it may say no to a true containment, never yes to a
  false one).
* **Residual exactness** -- ``weak AND residual`` selects *exactly* the
  rows of ``strong``, and :class:`ResidualOperator` applied to the
  provider's output equals direct evaluation of the consumer (both
  kernel and row-closure filter paths).
* **Roll-up exactness** -- re-aggregating a provider's finalized groups
  into a coarser grouping equals direct aggregation of the consumer,
  value-for-value (exact ``Fraction`` arithmetic) and in the same
  emission order.

Plus the canonicalization satellite: :func:`normalize` never changes the
selected rows, is idempotent, and maps any conjunct permutation to one
signature.
"""

from fractions import Fraction

from hypothesis import assume, given, settings
from hypothesis import strategies as st

from repro.query.expr import And, Between, Cmp, InSet, Not, Or
from repro.query.plan import AggregateNode, AggSpec, ScanNode, SelectNode
from repro.query.subsume import (
    FoldPlan,
    FoldPlanner,
    ResidualOperator,
    and_of,
    conjuncts,
    fold_plan,
    normalize,
    predicate_subsumes,
    split_range,
)
from repro.storage.schema import Column, Schema
from repro.storage.table import Table

# ----------------------------------------------------------------------
# Strategies: small-int relations over a fixed 3-column schema (values
# collide often, so containment/residual checks exercise real regions).
# ----------------------------------------------------------------------
SCHEMA = Schema([Column("a"), Column("b"), Column("c")], row_bytes=24)

rows_strategy = st.lists(
    st.tuples(st.integers(0, 9), st.integers(-5, 5), st.integers(0, 3)),
    max_size=80,
)

values = st.integers(-6, 10)
col_names = st.sampled_from(["a", "b", "c"])


def leaves(cols=col_names):
    cmps = st.builds(
        Cmp, st.sampled_from(["<", "<=", "=", "!=", ">=", ">"]), cols, values
    )
    betweens = st.builds(
        lambda c, lo, span: Between(c, lo, lo + span),
        cols,
        values,
        st.integers(0, 6),
    )
    insets = st.builds(
        lambda c, vs: InSet(c, tuple(vs)),
        cols,
        st.lists(values, min_size=1, max_size=4),
    )
    return st.one_of(cmps, betweens, insets)


conj_lists = st.lists(leaves(), min_size=1, max_size=4)
predicates = conj_lists.map(and_of)
maybe_predicates = st.one_of(st.none(), predicates)


def passing(pred, rows):
    """Positions of ``rows`` passing ``pred`` (all of them for None)."""
    if pred is None:
        return list(range(len(rows)))
    f = pred.compile(SCHEMA)
    return [i for i, r in enumerate(rows) if f(r)]


# ----------------------------------------------------------------------
# Order properties
# ----------------------------------------------------------------------
@settings(max_examples=120, deadline=None)
@given(pred=maybe_predicates)
def test_subsumption_is_reflexive(pred):
    ok, residual = predicate_subsumes(pred, pred)
    assert ok
    assert residual == []


@settings(max_examples=120, deadline=None)
@given(weak=maybe_predicates, extra=conj_lists)
def test_conjunction_strengthening_subsumes(weak, extra):
    strong = and_of(conjuncts(weak) + extra)
    ok, _ = predicate_subsumes(weak, strong)
    assert ok


@settings(max_examples=200, deadline=None)
@given(a=maybe_predicates, b=maybe_predicates, c=maybe_predicates)
def test_subsumption_is_transitive(a, b, c):
    if predicate_subsumes(a, b)[0] and predicate_subsumes(b, c)[0]:
        assert predicate_subsumes(a, c)[0]


# ----------------------------------------------------------------------
# Containment + residual exactness
# ----------------------------------------------------------------------
@settings(max_examples=200, deadline=None)
@given(weak=maybe_predicates, strong=maybe_predicates, rows=rows_strategy)
def test_subsumes_implies_row_containment(weak, strong, rows):
    ok, _ = predicate_subsumes(weak, strong)
    if ok:
        assert set(passing(strong, rows)) <= set(passing(weak, rows))


@settings(max_examples=200, deadline=None)
@given(weak=maybe_predicates, extra=conj_lists, rows=rows_strategy)
def test_residual_restores_strong_exactly(weak, extra, rows):
    strong = and_of(conjuncts(weak) + extra)
    ok, residual = predicate_subsumes(weak, strong)
    assert ok
    survivors = passing(weak, rows)
    refined = passing(and_of(residual), [rows[i] for i in survivors])
    assert [survivors[i] for i in refined] == passing(strong, rows)


@settings(max_examples=120, deadline=None)
@given(
    weak=maybe_predicates,
    extra=conj_lists,
    rows=rows_strategy,
    kernels=st.booleans(),
)
def test_residual_operator_equals_direct(weak, extra, rows, kernels):
    """Streaming the provider's (weak-filtered) rows through the compiled
    ResidualOperator must equal evaluating the consumer's predicate
    directly, on both the batch-kernel and row-closure filter paths."""
    strong = and_of(conjuncts(weak) + extra)
    ok, residual = predicate_subsumes(weak, strong)
    assert ok
    op = ResidualOperator(
        FoldPlan(residual=and_of(residual)), SCHEMA, batch_kernels=kernels
    )
    provider_rows = [rows[i] for i in passing(weak, rows)]
    assert op.apply(provider_rows) == [rows[i] for i in passing(strong, rows)]


@settings(max_examples=120, deadline=None)
@given(pred=predicates, rows=rows_strategy)
def test_split_range_is_exact(pred, rows):
    decomposed = split_range(pred)
    if decomposed is None:
        return
    col, lo, hi, residual = decomposed
    rebuilt = and_of([Between(col, lo, hi)] + conjuncts(residual))
    assert passing(rebuilt, rows) == passing(pred, rows)


# ----------------------------------------------------------------------
# Normalization (canonical conjunct form)
# ----------------------------------------------------------------------
@settings(max_examples=120, deadline=None)
@given(parts=conj_lists, rows=rows_strategy, data=st.data())
def test_normalize_is_canonical_and_semantics_preserving(parts, rows, data):
    perm = data.draw(st.permutations(parts))
    p1, p2 = and_of(parts), and_of(perm)
    n1, n2 = normalize(p1), normalize(p2)
    # One canonical signature for every author ordering...
    assert n1.signature == n2.signature
    # ...that selects exactly the original rows and is a fixpoint.
    assert passing(n1, rows) == passing(p1, rows)
    assert normalize(n1).signature == n1.signature


@settings(max_examples=80, deadline=None)
@given(parts=conj_lists, rows=rows_strategy)
def test_normalize_handles_negation_and_disjunction(parts, rows):
    pred = Not(Or(and_of(parts), Cmp("=", "a", 0)))
    assert passing(normalize(pred), rows) == passing(pred, rows)


# ----------------------------------------------------------------------
# Roll-up re-aggregation
# ----------------------------------------------------------------------
def _aggs():
    from repro.query.expr import Col

    return (
        AggSpec("sum", Col("c"), "sum_c"),
        AggSpec("count", None, "n"),
        AggSpec("min", Col("c"), "min_c"),
        AggSpec("max", Col("c"), "max_c"),
    )


def direct_agg(rows, group_by, aggs):
    """Reference aggregation: exact Fractions, first-occurrence group
    order (what the engine's hash aggregation emits)."""
    idx = {c.name: i for i, c in enumerate(SCHEMA.columns)}
    groups: dict[tuple, list] = {}
    for r in rows:
        key = tuple(r[idx[g]] for g in group_by)
        acc = groups.get(key)
        if acc is None:
            acc = groups[key] = [None] * len(aggs)
        for i, a in enumerate(aggs):
            v = r[idx[a.expr.name]] if a.expr is not None else None
            if a.func == "sum":
                acc[i] = (acc[i] or Fraction(0)) + Fraction(v)
            elif a.func == "count":
                acc[i] = (acc[i] or Fraction(0)) + Fraction(1)
            elif a.func == "min":
                acc[i] = v if acc[i] is None else min(acc[i], v)
            elif a.func == "max":
                acc[i] = v if acc[i] is None else max(acc[i], v)
    return [key + tuple(acc) for key, acc in groups.items()]


GROUP_SUBSETS = [("a", "b"), ("a",), ("b",), ()]


@settings(max_examples=120, deadline=None)
@given(
    rows=rows_strategy,
    weak=maybe_predicates,
    extra=st.lists(leaves(st.sampled_from(["a", "b"])), max_size=3),
    consumer_groups=st.sampled_from(GROUP_SUBSETS),
    agg_mask=st.integers(1, 15),
)
def test_rollup_reaggregation_equals_direct(
    rows, weak, extra, consumer_groups, agg_mask
):
    """Fold a consumer aggregate into a provider grouped strictly finer:
    the ResidualOperator's absorb/finalize over the provider's finalized
    groups must equal direct aggregation of the consumer's input, exactly
    (Fraction arithmetic) and in the same emission order."""
    aggs = _aggs()
    consumer_aggs = tuple(a for i, a in enumerate(aggs) if agg_mask >> i & 1)
    table = Table("t", SCHEMA, rows, packed=False)

    def child(pred):
        scan = ScanNode(table)
        return scan if pred is None else SelectNode(scan, pred)

    strong = and_of(conjuncts(weak) + extra)
    provider = AggregateNode(child(weak), ("a", "b"), aggs)
    consumer = AggregateNode(child(strong), consumer_groups, consumer_aggs)
    plan = fold_plan(consumer, provider)
    assume(plan is not None)  # conservative misses are allowed, silence isn't

    provider_out = direct_agg(
        [rows[i] for i in passing(weak, rows)], ("a", "b"), aggs
    )
    op = ResidualOperator(plan, provider.schema)
    if op.regrouping:
        op.absorb(provider_out)
        folded = op.finalize()
    else:
        folded = op.apply(provider_out)
    direct = direct_agg(
        [rows[i] for i in passing(strong, rows)], consumer_groups, consumer_aggs
    )
    assert folded == direct


@settings(max_examples=60, deadline=None)
@given(rows=rows_strategy, weak=maybe_predicates, extra=conj_lists)
def test_rollup_residual_on_nongroup_column_is_rejected(rows, weak, extra):
    """A residual conjunct on a column the provider did not group by can't
    run over finalized groups; fold_plan must refuse rather than guess."""
    aggs = _aggs()
    table = Table("t", SCHEMA, rows, packed=False)
    scan = ScanNode(table)
    strong_extra = and_of(conjuncts(weak) + extra + [Cmp(">", "c", 1)])
    provider = AggregateNode(
        scan if weak is None else SelectNode(scan, weak), ("a", "b"), aggs
    )
    consumer = AggregateNode(SelectNode(scan, strong_extra), ("a",), aggs[:1])
    plan = fold_plan(consumer, provider)
    if plan is not None:
        # Only acceptable if c>1 was implied by the weak predicate itself
        # (then it is not part of the residual at all).
        assert plan.residual is None or "c" not in plan.residual.columns()


# ----------------------------------------------------------------------
# Planner ranking
# ----------------------------------------------------------------------
def test_fold_planner_prefers_fewest_residual_terms():
    from repro.query.expr import Col

    aggs = (AggSpec("sum", Col("c"), "sum_c"),)
    table = Table("t", SCHEMA, [(1, 2, 3)], packed=False)
    scan = ScanNode(table)
    consumer = AggregateNode(
        SelectNode(scan, And(Between("a", 1, 4), Between("b", 0, 2))),
        ("a", "b"),
        aggs,
    )
    far = AggregateNode(scan, ("a", "b"), aggs)  # residual: both conjuncts
    near = AggregateNode(
        SelectNode(scan, Between("a", 1, 4)), ("a", "b"), aggs
    )  # residual: b only
    planner = FoldPlanner(consumer)
    planner.consider(far, "far")
    planner.consider(near, "near")
    token, plan = planner.best()
    assert token == "near"
    assert plan.residual.columns() == {"b"}
