"""CJOIN as a QPipe stage (paper Section 3.2/3.3).

The stage accepts CJOIN packets (the joins of one star query) and forwards
them to the per-fact-table :class:`~repro.gqp.cjoin.CJoinPipeline`.  With
``sp_cjoin`` the stage applies Simultaneous Pipelining to whole CJOIN
packets with a step WoP: an identical packet attaching before the host's
first output tuple becomes a satellite and skips the redundant admission,
bitmap extension and distribution entirely -- the CJOIN-SP configuration.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.engine.packet import Packet
from repro.engine.stage import Stage
from repro.gqp.cjoin import CJoinPipeline

if TYPE_CHECKING:  # pragma: no cover
    from repro.engine.qpipe import QPipeEngine
    from repro.query.plan import CJoinNode
    from repro.query.star import Query


class CJoinStage(Stage):
    """The QPipe stage wrapping per-fact-table CJOIN pipelines."""
    def __init__(self, engine: "QPipeEngine"):
        super().__init__(engine, "cjoin")
        self._pipelines: dict[str, CJoinPipeline] = {}

    def pipeline_for(self, fact_table: str) -> CJoinPipeline:
        """The (lazily created) pipeline for one fact table."""
        pipeline = self._pipelines.get(fact_table)
        if pipeline is None:
            pipeline = CJoinPipeline(self.engine, self.engine.storage.table(fact_table))
            self._pipelines[fact_table] = pipeline
        return pipeline

    def submit_cjoin(self, node: "CJoinNode", query: "Query", agg=None) -> Packet:
        """Admit a star query's joins (optionally with a DataPath-style
        shared aggregation folded in: ``agg`` is an AggregateNode whose
        child is ``node``; the packet then emits finalized groups)."""
        packet = self.make_packet(agg if agg is not None else node, query)
        if self.admit(packet):
            return packet  # satellite: reuses the host CJOIN packet's output
        self.pipeline_for(node.fact_table).submit(packet)
        return packet
