"""The QPipe engine: plan-to-packet conversion, submission, clients.

A submitted query plan becomes a tree of packets built *top-down*: each
node's packet is admitted to its stage first, and only if it did not attach
as a satellite is its sub-plan built (satellites cancel their entire
sub-plan, paper Figure 2a).  Workers are spawned bottom-wired: a worker
receives readers on its children's (effective) exchanges.

With ``config.use_cjoin`` star-query specs compile to a CJOIN-rooted plan
and the joins run in the shared CJOIN pipeline (:mod:`repro.gqp`);
aggregation and sorting above remain query-centric, as in the paper.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Iterator

from repro.engine.config import EngineConfig, QPIPE
from repro.engine.exchange import END, FifoExchange
from repro.engine.packet import Packet
from repro.engine.spl import SplExchange
from repro.engine.stage import Stage
from repro.engine.stages.aggregate import AggregateStage
from repro.engine.stages.inputs import FilteredInput, unwrap_selects
from repro.engine.stages.join import HashJoinStage
from repro.engine.stages.scan import TableScanStage
from repro.engine.stages.sort import SortStage
from repro.query.plan import (
    AggregateNode,
    CJoinNode,
    HashJoinNode,
    PlanNode,
    ScanNode,
    SortNode,
)
from repro.query.star import Query, StarQuerySpec
from repro.sim.costmodel import DEFAULT_COST_MODEL, CostModel
from repro.sim.sync import Gate
from repro.storage.arrangements import ARRANGEMENTS, Arrangement

if TYPE_CHECKING:  # pragma: no cover
    from repro.sim.engine import Simulator
    from repro.storage.manager import StorageManager


@dataclass
class QueryHandle:
    """Client-side handle of a submitted query."""

    query: Query
    gate: Gate
    root_packet: Packet | None = None
    results: list = field(default_factory=list)
    #: ``(rows, weight)`` per root-exchange batch, recorded only when the
    #: query was submitted with ``collect_batches=True``.  Weighted batches
    #: are what the shard tier's partial-aggregate merge consumes: each
    #: generated row stands for ``weight`` real rows, and additive
    #: aggregates must scale by it (exactly as the aggregation stage does).
    batches: list[tuple[list, float]] | None = None

    def wait(self) -> Iterator[Any]:
        """Generator: block (in simulated time) until the query completes."""
        yield from self.gate.wait()

    @property
    def response_time(self) -> float:
        return self.query.response_time

    @property
    def done(self) -> bool:
        return self.gate.is_open


class QPipeEngine:
    """One engine instance bound to one simulator and storage manager."""

    def __init__(
        self,
        sim: "Simulator",
        storage: "StorageManager",
        config: EngineConfig = QPIPE,
        cost: CostModel = DEFAULT_COST_MODEL,
    ):
        self.sim = sim
        self.storage = storage
        self.config = config
        self.cost = cost
        self.scan_stage = TableScanStage(self)
        self.join_stage = HashJoinStage(self)
        self.agg_stage = AggregateStage(self)
        self.sort_stage = SortStage(self)
        self.cjoin_stage = None
        if config.use_cjoin:
            from repro.gqp.stage import CJoinStage  # deferred: gqp imports engine

            self.cjoin_stage = CJoinStage(self)
        self._query_ids = itertools.count()
        self.handles: list[QueryHandle] = []

    # ------------------------------------------------------------------
    def new_exchange(self, name: str) -> Any:
        if self.config.comm == "spl":
            return SplExchange(
                self.sim,
                self.cost,
                self.config.spl_max_pages,
                name,
                fuse=self.config.use_fuse_charges(),
            )
        return FifoExchange(self.sim, self.cost, self.config.fifo_capacity, name)

    # ------------------------------------------------------------------
    def submit(self, spec: StarQuerySpec, label: str | None = None) -> QueryHandle:
        """Submit a star query; the engine config decides its plan shape."""
        if self.config.use_cjoin:
            plan = spec.to_gqp_plan(self.storage.tables)
        else:
            plan = spec.to_query_centric_plan(self.storage.tables)
        return self.submit_plan(plan, label=label or spec.label, spec=spec)

    def submit_plan(
        self,
        plan: PlanNode,
        label: str = "",
        spec: StarQuerySpec | None = None,
        collect_batches: bool = False,
    ) -> QueryHandle:
        """Submit an explicit physical plan (e.g. TPC-H Q1).

        ``collect_batches=True`` additionally records each root-exchange
        batch as ``(rows, weight)`` on the handle (see
        :attr:`QueryHandle.batches`)."""
        query = Query(
            query_id=next(self._query_ids),
            spec=spec,
            plan=plan,
            label=label,
            submit_time=self.sim.now,
        )
        root = self._build(plan, query)
        handle = QueryHandle(query=query, gate=Gate(self.sim, f"q{query.query_id}.done"), root_packet=root)
        if collect_batches:
            handle.batches = []
        self.handles.append(handle)
        self.sim.spawn(
            self._client(query, root, handle),
            name=f"q{query.query_id}-client",
            query_id=query.query_id,
        )
        return handle

    # ------------------------------------------------------------------
    def _client(self, query: Query, root: Packet, handle: QueryHandle) -> Iterator[Any]:
        reader = root.connect(budget=self._budget_for(root.node))
        while True:
            batch = yield from reader.read()
            if batch is END:
                break
            if handle.batches is not None:
                handle.batches.append((list(batch.rows), batch.weight))
            query.results.extend(batch.rows)
        query.finish_time = self.sim.now
        handle.results = query.results
        handle.gate.open()

    @staticmethod
    def _budget_for(node: PlanNode) -> int | None:
        return node.table.num_pages if isinstance(node, ScanNode) else None

    # ------------------------------------------------------------------
    def _build(self, node: PlanNode, query: Query) -> Packet:
        """Build the packet tree for ``node`` (top-down, sharing-aware)."""
        inner, predicate = unwrap_selects(node)
        if predicate is not None:
            raise ValueError(
                "a plan may not be rooted at a SelectNode; wrap it in an operator"
            )
        if isinstance(inner, ScanNode):
            return self.scan_stage.submit_scan(inner, query)
        if isinstance(inner, CJoinNode):
            if self.cjoin_stage is None:
                raise RuntimeError("plan contains a CJoinNode but use_cjoin is off")
            return self.cjoin_stage.submit_cjoin(inner, query)
        if isinstance(inner, HashJoinNode):
            packet = self.join_stage.make_packet(inner, query)
            if self.join_stage.admit(packet):
                return packet
            probe = self._input(inner.probe, query)
            build = self._input(inner.build, query)
            self.join_stage.run(packet, probe, build, shared=self._shared_build(inner))
            return packet
        if isinstance(inner, AggregateNode):
            if self.cjoin_stage is not None and self.config.shared_aggregation:
                child_inner, child_pred = unwrap_selects(inner.child)
                if isinstance(child_inner, CJoinNode) and child_pred is None:
                    # DataPath-style shared aggregation: fold the aggregation
                    # into the GQP's distributor (running sums per group and
                    # query); the packet emits finalized groups.
                    return self.cjoin_stage.submit_cjoin(child_inner, query, agg=inner)
            packet = self.agg_stage.make_packet(inner, query)
            if self.agg_stage.admit(packet):
                return packet
            child = self._input(inner.child, query)
            self.agg_stage.run(packet, child)
            return packet
        if isinstance(inner, SortNode):
            packet = self.sort_stage.make_packet(inner, query)
            if self.sort_stage.admit(packet):
                return packet
            child = self._input(inner.child, query)
            self.sort_stage.run(packet, child)
            return packet
        raise TypeError(f"cannot build a packet for {type(inner).__name__}")

    def _shared_build(self, node: HashJoinNode) -> tuple[Arrangement, Any] | None:
        """Resolve a shared build side for ``node`` -- ``(arrangement,
        build predicate)`` -- or None for a private build.  Applies only
        when the build side unwraps to a base-table scan (optionally
        filtered) AND the base table is unique on the build key: unique
        base keys make any filtered subset's mapping independent of build
        insertion order, so queries whose circular build scans start at
        different pages still see one identical view.  The build input is
        still read and charged in full either way -- sharing never moves a
        simulated tick.  The view itself is resolved in the join stage
        (seeded from the first query's drained build rows, memoized per
        predicate on the arrangement)."""
        if not self.config.use_arrangements():
            return None
        inner, predicate = unwrap_selects(node.build)
        if not isinstance(inner, ScanNode) or node.build_key not in inner.table.schema:
            return None
        arr = ARRANGEMENTS.acquire(inner.table, node.build_key)
        if not arr.unique:
            ARRANGEMENTS.release(arr)
            return None
        # Pinned until the join worker finishes (released in the stage).
        return (arr, predicate)

    def _input(self, child: PlanNode, query: Query) -> FilteredInput:
        """Resolve one operator input: build the child sub-plan (or attach
        to a host) and wrap its reader with any fused selection."""
        inner, predicate = unwrap_selects(child)
        child_packet = self._build(inner, query)
        reader = child_packet.connect(budget=self._budget_for(inner))
        return FilteredInput(
            reader,
            self.cost,
            predicate,
            inner.schema,
            batch=self.config.use_batch_kernels(),
            fuse=self.config.use_fuse_charges(),
        )

    # ------------------------------------------------------------------
    def sharing_summary(self) -> dict[str, int]:
        """Sharing events recorded so far, keyed by stage:label."""
        return dict(self.sim.metrics.sharing_events)
