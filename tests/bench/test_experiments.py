"""Structure tests for the per-figure experiment functions.

The real shape assertions run in ``benchmarks/``; these call each function
with minimal parameters to pin down result structure, rendering, and basic
sanity cheaply.
"""

import pytest

from repro.bench.ablations import (
    ablate_hybrid_routing,
    ablate_oversubscription,
    interarrival_sweep,
)
from repro.bench.experiments import (
    ExperimentResult,
    fig2_wop,
    fig6_push_vs_pull,
    fig10_concurrency,
    fig11_selectivity,
    fig13_scale_factor,
    fig14_similarity,
    spl_max_size_ablation,
)


class TestResultShape:
    def test_experiment_result_render_joins_tables(self):
        r = ExperimentResult("x", ["A", "B"])
        assert r.render() == "A\n\nB"

    def test_fig2_structure(self):
        r = fig2_wop(points=5)
        assert r.experiment == "fig2"
        assert len(r.data["xs"]) == 5
        assert "Window of Opportunity" in r.render()

    def test_fig6_minimal(self):
        r = fig6_push_vs_pull(concurrency=(1, 2), sf=1.0)
        assert set(r.data["rt"]) == {"NoSP(FIFO)", "CS(FIFO)", "NoSP(SPL)", "CS(SPL)"}
        assert len(r.data["rt"]["CS(SPL)"]) == 2
        assert "Figure 6c" in r.render()

    def test_fig10_minimal(self):
        r = fig10_concurrency(concurrency=(1, 2), resident=("memory",))
        assert "memory" in r.data
        rt = r.data["memory"]["rt"]
        assert set(rt) == {"QPipe", "QPipe-CS", "QPipe-SP", "CJOIN"}
        # 1 query: everything finishes; CJOIN pays bookkeeping.
        assert rt["CJOIN"][0] > rt["QPipe"][0]

    def test_fig11_minimal(self):
        r = fig11_selectivity(selectivities=(0.01,), n_queries=2, sf=1.0)
        assert len(r.data["rt"]["CJOIN"]) == 1
        assert r.data["rt"]["CJOIN admission"][0] > 0
        assert "CPU-time breakdown" in r.render()

    def test_fig13_minimal(self):
        r = fig13_scale_factor(scale_factors=(1.0,), n_queries=2)
        assert set(r.data["rt"]) == {
            "QPipe-SP",
            "CJOIN",
            "QPipe-SP (Direct I/O)",
            "CJOIN (Direct I/O)",
        }
        assert all(len(v) == 1 for v in r.data["read_rates"].values())

    def test_fig14_minimal(self):
        r = fig14_similarity(concurrency=(4,), n_plans=2, sf=1.0)
        assert r.data["rt"]["CJOIN-SP"][0] > 0
        cells = r.data["cells"]
        assert cells["CJOIN-SP"][0].sharing.get("cjoin", 0) == 2  # 4 queries, 2 plans

    def test_spl_ablation_minimal(self):
        r = spl_max_size_ablation(max_pages=(2, 16), n_queries=2)
        assert len(r.data["rt"]) == 2


class TestAblationStructure:
    def test_oversub_monotone(self):
        r = ablate_oversubscription(penalties=(0.0, 1.0), n_queries=48)
        assert r.data["rt"][0] < r.data["rt"][1]

    def test_interarrival_minimal(self):
        r = interarrival_sweep(delays=(0.0, 1.0), n_queries=4)
        assert r.data["join_shares"][0] >= r.data["join_shares"][1]

    def test_hybrid_minimal(self):
        r = ablate_hybrid_routing(concurrency=(2,))
        assert set(r.data["rt"]) == {"QPipe-SP", "CJOIN-SP", "Hybrid"}
