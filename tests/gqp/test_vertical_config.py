"""Tests for CJOIN's vertical thread configuration (one thread per filter,
paper Section 5.2.2)."""

import dataclasses

import pytest

from repro.baselines import evaluate_plan
from repro.data import generate_ssb
from repro.engine import CJOIN, CJOIN_SP, QPipeEngine
from repro.query.ssb_queries import q11, q32
from repro.sim import Simulator
from repro.sim.costmodel import DEFAULT_COST_MODEL
from repro.sim.machine import MachineSpec
from repro.storage import StorageConfig, StorageManager

CJOIN_V = dataclasses.replace(CJOIN, cjoin_threads="vertical", name="CJOIN-vertical")


@pytest.fixture(scope="module")
def ssb():
    return generate_ssb(0.5, seed=19)


def norm(rows):
    return sorted(
        tuple(round(v, 6) if isinstance(v, float) else v for v in row) for row in rows
    )


def make_engine(ssb, config):
    sim = Simulator(MachineSpec())
    storage = StorageManager(sim, DEFAULT_COST_MODEL, ssb.tables, StorageConfig(resident="memory"))
    return sim, QPipeEngine(sim, storage, config)


class TestVertical:
    def test_matches_oracle_multi_dim(self, ssb):
        spec = q32("CHINA", "FRANCE", 1993, 1996)
        oracle = norm(evaluate_plan(spec.to_query_centric_plan(ssb.tables)))
        sim, eng = make_engine(ssb, CJOIN_V)
        handles = [eng.submit(spec) for _ in range(2)]
        sim.run()
        for h in handles:
            assert norm(h.results) == oracle

    def test_matches_oracle_single_dim_with_fact_pred(self, ssb):
        spec = q11(1993, 1.0, 3.0, 25)
        oracle = norm(evaluate_plan(spec.to_query_centric_plan(ssb.tables)))
        sim, eng = make_engine(ssb, CJOIN_V)
        h = eng.submit(spec)
        sim.run()
        assert norm(h.results) == oracle

    def test_horizontal_and_vertical_agree(self, ssb):
        specs = [q32("CHINA", "FRANCE", 1993, 1996), q32("JAPAN", "BRAZIL", 1992, 1995)]
        results = {}
        for cfg in (CJOIN, CJOIN_V):
            sim, eng = make_engine(ssb, cfg)
            handles = [eng.submit(s) for s in specs]
            sim.run()
            results[cfg.name] = [norm(h.results) for h in handles]
        assert results["CJOIN"] == results["CJOIN-vertical"]

    def test_one_thread_per_filter_spawned(self, ssb):
        sim, eng = make_engine(ssb, CJOIN_V)
        eng.submit(q32("CHINA", "FRANCE", 1993, 1996))  # 3 dims
        sim.run()
        vthreads = [t for t in sim.threads if "vflt" in t.name]
        assert len(vthreads) == 3  # one per filter position

    def test_growing_filter_chain_spawns_workers(self, ssb):
        """A second query adding a new dimension grows the vertical chain."""
        sim, eng = make_engine(ssb, CJOIN_V)
        results = {}

        def waves():
            h1 = eng.submit(q11(1993, 1.0, 3.0, 25))  # date only: 1 filter
            yield from h1.wait()
            h2 = eng.submit(q32("CHINA", "FRANCE", 1993, 1996))  # 3 filters
            yield from h2.wait()
            results["h2"] = norm(h2.results)

        sim.spawn(waves(), "waves")
        sim.run()
        spec = q32("CHINA", "FRANCE", 1993, 1996)
        assert results["h2"] == norm(evaluate_plan(spec.to_query_centric_plan(ssb.tables)))
        vthreads = [t for t in sim.threads if "vflt" in t.name]
        assert len(vthreads) >= 3

    def test_works_with_sp(self, ssb):
        cfg = dataclasses.replace(CJOIN_SP, cjoin_threads="vertical", name="CJOIN-SP-v")
        spec = q32("CHINA", "FRANCE", 1993, 1996)
        oracle = norm(evaluate_plan(spec.to_query_centric_plan(ssb.tables)))
        sim, eng = make_engine(ssb, cfg)
        handles = [eng.submit(spec) for _ in range(3)]
        sim.run()
        for h in handles:
            assert norm(h.results) == oracle
        assert eng.sharing_summary().get("cjoin", 0) == 2

    def test_config_validation(self):
        from repro.engine.config import EngineConfig

        with pytest.raises(ValueError, match="cjoin_threads"):
            EngineConfig(use_cjoin=True, cjoin_threads="diagonal")
