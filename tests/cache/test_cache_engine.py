"""Engine integration: cache fill through the host's SPL, replay on later
identical arrivals, abandonment of oversized spills, GQP-route caching."""

import pytest

from repro.engine.config import CJOIN_SP, QPIPE_SP
from repro.engine.qpipe import QPipeEngine
from repro.query.ssb_queries import q32
from repro.sim import Simulator
from repro.sim.costmodel import DEFAULT_COST_MODEL
from repro.sim.machine import MachineSpec
from repro.storage import StorageConfig, StorageManager
from repro.data import generate_ssb


@pytest.fixture(scope="module")
def ssb():
    return generate_ssb(0.5, seed=23)


def norm(rows):
    return sorted(
        tuple(round(v, 6) if isinstance(v, float) else v for v in row) for row in rows
    )


def make_engine(ssb, cache_bytes=32 * 1024 * 1024, policy="benefit", config=QPIPE_SP):
    sim = Simulator(MachineSpec())
    storage = StorageManager(
        sim,
        DEFAULT_COST_MODEL,
        ssb.tables,
        StorageConfig(
            resident="memory",
            result_cache_bytes=cache_bytes,
            result_cache_policy=policy,
        ),
    )
    return sim, storage, QPipeEngine(sim, storage, config, DEFAULT_COST_MODEL)


SPEC_ARGS = ("CHINA", "FRANCE", 1993, 1996)


class TestFillAndReplay:
    def test_second_identical_query_is_served_from_cache(self, ssb):
        sim, storage, engine = make_engine(ssb)
        h1 = engine.submit(q32(*SPEC_ARGS))
        sim.run()
        cache = storage.result_cache
        assert cache.insertions > 0
        assert len(cache) > 0
        t1 = h1.response_time

        h2 = engine.submit(q32(*SPEC_ARGS))
        sim.run()
        t2 = h2.response_time
        assert cache.hits > 0
        assert h2.query.cache_served
        assert not h1.query.cache_served
        assert norm(h2.results) == norm(h1.results)
        # Replay at memory-read cost beats recomputation by a wide margin.
        assert t2 < t1 * 0.5

    def test_cached_stage_counters(self, ssb):
        sim, storage, engine = make_engine(ssb)
        engine.submit(q32(*SPEC_ARGS))
        sim.run()
        engine.submit(q32(*SPEC_ARGS))
        sim.run()
        # The root (sort, since Q3.2 orders by) replays from cache and the
        # whole sub-plan below it is never built.
        assert engine.sort_stage.packets_cached == 1
        assert sim.metrics.counts["result_cache_hits"] >= 1

    def test_different_query_misses(self, ssb):
        sim, storage, engine = make_engine(ssb)
        engine.submit(q32(*SPEC_ARGS))
        sim.run()
        h = engine.submit(q32("JAPAN", "BRAZIL", 1992, 1995))
        sim.run()
        assert not h.query.cache_served

    def test_cache_disabled_leaves_engine_untouched(self, ssb):
        sim = Simulator(MachineSpec())
        storage = StorageManager(
            sim, DEFAULT_COST_MODEL, ssb.tables, StorageConfig(resident="memory")
        )
        assert storage.result_cache is None
        engine = QPipeEngine(sim, storage, QPIPE_SP, DEFAULT_COST_MODEL)
        assert engine.sort_stage.result_cache() is None
        engine.submit(q32(*SPEC_ARGS))
        sim.run()
        assert "result_cache_hits" not in sim.metrics.counts
        assert "result_cache_misses" not in sim.metrics.counts


class TestBoundedSpill:
    def test_oversized_spill_is_abandoned_without_deadlock(self, ssb):
        # A few hundred bytes of budget: every spill outgrows the per-entry
        # bound; the fill consumer must keep draining the bounded SPL (a
        # blocked producer would deadlock the run).
        sim, storage, engine = make_engine(ssb, cache_bytes=256.0)
        h1 = engine.submit(q32(*SPEC_ARGS))
        sim.run()  # completing at all proves the SPL never blocked on the cache
        h2 = engine.submit(q32(*SPEC_ARGS))
        sim.run()
        assert not h2.query.cache_served
        assert norm(h2.results) == norm(h1.results)

    def test_concurrent_identical_hosts_fill_once(self, ssb):
        sim, storage, engine = make_engine(ssb)
        engine.submit(q32(*SPEC_ARGS))
        engine.submit(q32(*SPEC_ARGS))  # same WoP window: satellite or 2nd host
        sim.run()
        cache = storage.result_cache
        # Each signature was filled at most once (begin_fill exclusivity).
        assert cache.insertions == len(cache)


class TestInvalidation:
    def test_update_invalidates_and_forces_recompute(self, ssb):
        sim, storage, engine = make_engine(ssb)
        engine.submit(q32(*SPEC_ARGS))
        sim.run()
        before = len(storage.result_cache)
        assert before > 0
        dropped = storage.notify_update("lineorder")
        assert dropped == before  # every Q3.2 sub-plan reads the fact table
        assert len(storage.result_cache) == 0
        h = engine.submit(q32(*SPEC_ARGS))
        sim.run()
        assert not h.query.cache_served

    def test_notify_update_without_cache_is_noop(self, ssb):
        sim = Simulator(MachineSpec())
        storage = StorageManager(
            sim, DEFAULT_COST_MODEL, ssb.tables, StorageConfig(resident="memory")
        )
        assert storage.notify_update("lineorder") == 0


class TestGqpRoute:
    def test_cjoin_packet_hits_cache(self, ssb):
        sim, storage, engine = make_engine(ssb, config=CJOIN_SP)
        h1 = engine.submit(q32(*SPEC_ARGS))
        sim.run()
        assert storage.result_cache.insertions > 0
        h2 = engine.submit(q32(*SPEC_ARGS))
        sim.run()
        assert h2.query.cache_served
        assert norm(h2.results) == norm(h1.results)
        # The replayed query never paid CJOIN admission again.
        assert sim.metrics.counts["cjoin_queries_admitted"] == 1
