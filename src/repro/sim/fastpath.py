"""Process-wide fast-path switches (wall-clock only, never simulated time).

Two independent optimizations share this switchboard:

* ``batch_kernels`` -- engine hot loops call ``Expr.compile_batch``
  vectorized kernels instead of per-row closures;
* ``fuse_charges`` -- workers yield :func:`repro.sim.commands.CPU_FUSED`
  commands, and the simulator services the resulting completion chains
  inline (see ``Simulator._service_pool``) instead of one heap event per
  charge.

Both default on; ``fast_path(False, False)`` restores the row-at-a-time
"before" behavior for benchmarking and for the golden determinism tests,
which hold the two modes to *bit-identical* simulated results.

This lives in :mod:`repro.sim` (the lowest layer) because the simulator
itself consults ``fuse_charges``; engine code imports the same switches
through :mod:`repro.engine.config`, which re-exports them."""

from __future__ import annotations

import contextlib

_FAST_PATH = {"batch_kernels": True, "fuse_charges": True}


def batch_kernels_default() -> bool:
    """Process-wide default for vectorized batch kernels."""
    return _FAST_PATH["batch_kernels"]


def fuse_charges_default() -> bool:
    """Process-wide default for fused simulator CPU charges."""
    return _FAST_PATH["fuse_charges"]


@contextlib.contextmanager
def fast_path(batch_kernels: bool = True, fuse_charges: bool = True):
    """Temporarily override the fast-path defaults (benchmarking/tests)."""
    saved = dict(_FAST_PATH)
    _FAST_PATH["batch_kernels"] = batch_kernels
    _FAST_PATH["fuse_charges"] = fuse_charges
    try:
        yield
    finally:
        _FAST_PATH.update(saved)
