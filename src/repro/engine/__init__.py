"""The QPipe-style staged execution engine with Simultaneous Pipelining.

Every relational operator is a *stage*; an incoming plan becomes a tree of
*packets*, one per operator, exchanging pages through either push-based FIFO
buffers (the original QPipe design) or pull-based Shared Pages Lists (this
paper's contribution).  Stages detect identical in-flight sub-plans by plan
signature and -- within the pivot operator's Window of Opportunity -- attach
the new packet as a *satellite* that reuses the host's results.
"""

from repro.engine.config import (
    CJOIN,
    CJOIN_SP,
    QPIPE,
    QPIPE_CS,
    QPIPE_SP,
    EngineConfig,
)
from repro.engine.exchange import END, FifoExchange
from repro.engine.hybrid import HybridEngine, saturation_threshold
from repro.engine.qpipe import QPipeEngine, QueryHandle
from repro.engine.spl import SharedPagesList, SplExchange
from repro.engine.wop import WindowOfOpportunity, wop_gain

__all__ = [
    "CJOIN",
    "CJOIN_SP",
    "END",
    "EngineConfig",
    "FifoExchange",
    "HybridEngine",
    "QPIPE",
    "QPIPE_CS",
    "QPIPE_SP",
    "QPipeEngine",
    "QueryHandle",
    "SharedPagesList",
    "SplExchange",
    "WindowOfOpportunity",
    "saturation_threshold",
    "wop_gain",
]
