"""Shared-bandwidth disk device model.

The paper's storage is two 10kRPM SAS disks in RAID-0.  The dominant effects
on its experiments are:

* a *single* sequential stream gets full aggregate bandwidth;
* many *interleaved* sequential streams thrash the disk arms -- aggregate
  throughput collapses, which is precisely why one circular scan beats N
  independent table scans by 80-97% at high concurrency;
* random access pays a further multiplier.

We model a device with aggregate sequential bandwidth ``bandwidth`` bytes/s.
With ``n`` concurrent streams the device delivers
``bandwidth * interleave_efficiency(n)`` in total, split evenly, where the
efficiency decays harmonically with extra streams down to ``min_efficiency``.

The same cumulative-service trick as :class:`repro.sim.cpu.CpuPool` gives
O(log n) event handling (per-stream shares are identical, so completion
order is fixed by remaining bytes).
"""

from __future__ import annotations

import heapq
from typing import TYPE_CHECKING, Callable

if TYPE_CHECKING:  # pragma: no cover
    from repro.sim.task import SimThread


class IoDevice:
    """A disk (or RAID set) with fluid bandwidth sharing.

    Parameters
    ----------
    name:
        Registration name (``"disk"`` by default in :class:`MachineSpec`).
    bandwidth:
        Aggregate sequential read bandwidth in bytes/second.
    seek_penalty:
        Per-extra-stream harmonic decay factor of aggregate efficiency:
        ``eff(n) = max(min_efficiency, 1 / (1 + seek_penalty * (n - 1)))``.
    min_efficiency:
        Floor of the interleave efficiency.
    random_multiplier:
        Bytes of a non-sequential request are inflated by this factor
        (short random reads waste rotational latency).
    """

    def __init__(
        self,
        name: str,
        bandwidth: float,
        seek_penalty: float = 0.35,
        min_efficiency: float = 0.22,
        random_multiplier: float = 4.0,
    ):
        if bandwidth <= 0:
            raise ValueError("bandwidth must be positive")
        self.name = name
        self.bandwidth = bandwidth
        self.seek_penalty = seek_penalty
        self.min_efficiency = min_efficiency
        self.random_multiplier = random_multiplier
        self.service = 0.0  # per-stream cumulative bytes delivered
        self._last_update = 0.0
        # Memoized per-stream rates indexed by stream count (index 0 is a
        # placeholder; _rate early-returns 0.0 for an idle device).
        self._rates: list[float] = [0.0]
        # Entries share the CpuPool 5-tuple shape (the trailing fused-
        # parts slot is always empty for IO) so the simulator's inline
        # service loop can treat both pool kinds uniformly.
        self._heap: list[tuple[float, int, "SimThread", Callable[[], None], tuple]] = []
        self._seq = 0
        self._version = 0
        # ---- armed-event dedup (owned by Simulator._arm_pool fast path)
        self.armed_when: float | None = None
        self.arm_token = 0
        self.fresh_when: float | None = None
        self.fresh_version = -1
        # ---- metrics -------------------------------------------------
        self.bytes_delivered = 0.0  # real (un-inflated) bytes handed to readers
        self.busy_time = 0.0

    # ------------------------------------------------------------------
    def interleave_efficiency(self, n: int) -> float:
        """Fraction of peak aggregate bandwidth achieved with ``n`` streams."""
        if n <= 1:
            return 1.0
        return max(self.min_efficiency, 1.0 / (1.0 + self.seek_penalty * (n - 1)))

    @property
    def active_streams(self) -> int:
        return len(self._heap)

    def _rate(self) -> float:
        """Per-stream delivery rate in bytes/second."""
        n = len(self._heap)
        if n == 0:
            return 0.0
        rates = self._rates
        if n < len(rates):
            return rates[n]
        return self._rate_for(n)

    def _rate_for(self, n: int) -> float:
        """Compute (and memoize) the per-stream rate for ``n`` streams --
        a pure function of the stream count, so each distinct ``n`` is
        computed exactly once with the same expression (same float)."""
        rates = self._rates
        while len(rates) <= n:
            m = len(rates)
            rates.append(self.bandwidth * self.interleave_efficiency(m) / m)
        return rates[n]

    def advance(self, now: float) -> None:
        dt = now - self._last_update
        if dt < 0:
            raise AssertionError(f"time went backwards on {self.name}")
        if dt > 0:
            n = len(self._heap)
            if n:
                rate = self._rate()
                self.service += rate * dt
                self.busy_time += dt
            self._last_update = now

    # ------------------------------------------------------------------
    def add(
        self,
        now: float,
        thread: "SimThread",
        nbytes: float,
        sequential: bool,
        on_done: Callable[[], None],
    ) -> None:
        """Enqueue a read of ``nbytes`` for ``thread``."""
        self.advance(now)
        charged = max(nbytes, 0.0)
        self.bytes_delivered += charged
        if not sequential:
            charged *= self.random_multiplier
        target = self.service + charged
        self._seq += 1
        heapq.heappush(self._heap, (target, self._seq, thread, on_done, ()))
        self._version += 1

    def next_completion(self, now: float) -> float | None:
        self.advance(now)
        if not self._heap:
            return None
        rate = self._rate()
        remaining = max(self._heap[0][0] - self.service, 0.0)
        if rate == 0:  # pragma: no cover - defensive
            return None
        return now + remaining / rate

    def pop_completed(self, now: float) -> list[tuple["SimThread", Callable[[], None]]]:
        self.advance(now)
        done: list[tuple["SimThread", Callable[[], None]]] = []
        eps = 1e-9 * max(1.0, abs(self.service))
        while self._heap and self._heap[0][0] <= self.service + eps:
            _, _, thread, on_done, _rest = heapq.heappop(self._heap)
            done.append((thread, on_done))
        if done:
            self._version += 1
        return done

    @property
    def version(self) -> int:
        return self._version

    # ------------------------------------------------------------------
    def avg_read_rate(self, window: float) -> float:
        """Average delivered read rate in bytes/second over ``window``
        (the paper's 'Avg. Read Rate (MB/s)' measurement)."""
        if window <= 0:
            return 0.0
        return self.bytes_delivered / window

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<IoDevice {self.name!r} {self.bandwidth / 1e6:.0f}MB/s streams={self.active_streams}>"
