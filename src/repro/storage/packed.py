"""Packed column vectors: typed arrays and dictionary-encoded columns.

This module is the storage half of the ``packed_storage`` fast path (see
:mod:`repro.sim.fastpath`): instead of tuples/lists of *boxed* Python
objects, hot-path column vectors are held as

* :class:`PackedNumeric` -- an ``array.array`` of machine ints (``'q'``)
  or doubles (``'d'``), 8 bytes per value.  Slicing goes through
  ``memoryview`` so shard range-partitions and page slices are **views**
  over the parent buffer (zero copies, fork-COW friendly);
* :class:`DictColumn` -- dictionary encoding for low-cardinality columns
  (at most :data:`DICT_MAX_CARD` distinct values): a ``bytes`` code
  vector (1 byte per row) plus a shared, interned :class:`Dictionary`
  value table.  All slices and gathers of a column share one
  ``Dictionary`` object, so anything memoized on it -- notably predicate
  *pass tables* -- is computed once per table and reused by every page,
  shard and concurrent query (the Shared Arrangements idea applied to
  predicate evaluation state).

Selection on a dictionary column never touches decoded values: a
predicate is evaluated once per **distinct value** into a 256-byte pass
table, then a whole page is filtered with ``codes.translate(table)`` (a
single C call) + ``itertools.compress`` -- or folded into an int bitmap
via :meth:`DictColumn.mask_for`, which memoizes the per-page mask by
predicate signature so recurring predicates across concurrent queries
AND/OR single ints instead of re-scanning.

Decoding contract: ``decode(encode(col)) == col`` element for element --
values round-trip exactly (dictionary columns return the *original*
interned objects; ``'q'``/``'d'`` arrays reproduce machine ints and
doubles bit-for-bit).  Values whose type would not survive (huge ints,
int/float/bool aliasing across a column, unhashable values) simply fall
back to a plain boxed list; the packed layer is an opportunistic
representation, never a semantic change.  Simulated CPU/IO charges are
computed from row counts, which packing does not alter, so simulated
metrics are bit-identical packed or boxed (the golden suite holds both
modes to that).
"""

from __future__ import annotations

import sys
from array import array
from typing import Any, Callable, Iterator, Sequence

__all__ = [
    "DICT_MAX_CARD",
    "Dictionary",
    "DictColumn",
    "PackedNumeric",
    "as_list",
    "column_nbytes",
    "gather_column",
    "is_packed",
    "pack_column",
    "pack_columns",
]

#: Maximum distinct values for dictionary encoding (codes are one byte).
DICT_MAX_CARD = 256

_ZEROS_256 = bytes(256)


class Dictionary:
    """An interned value table shared by every slice/gather of a column.

    ``values`` keeps first-occurrence order, so codes -- and therefore
    everything derived from them -- are a pure function of the original
    column.  ``pass_table(key, pred)`` memoizes a 256-byte predicate
    lookup table by ``key`` (callers use the predicate's canonical
    signature): one predicate evaluation per *distinct value*, shared by
    all pages of the table and all queries with an equal predicate."""

    __slots__ = ("values", "_pass_tables")

    def __init__(self, values: Sequence[Any]):
        self.values = tuple(values)
        self._pass_tables: dict[Any, bytes] = {}

    def pass_table(self, key: Any, value_pred: Callable[[Any], bool]) -> bytes:
        table = self._pass_tables.get(key)
        if table is None:
            flags = bytes(bytearray(1 if value_pred(v) else 0 for v in self.values))
            table = flags + _ZEROS_256[len(flags) :]
            self._pass_tables[key] = table
        return table

    def __len__(self) -> int:
        return len(self.values)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<Dictionary card={len(self.values)}>"


class DictColumn:
    """A dictionary-encoded column: 1-byte codes over a shared value table.

    Supports the read-only sequence protocol the rest of the data plane
    expects from a column vector (len / int index / slice / iteration),
    plus the packed-specific operations: ``gather`` (single-pass hash
    partitioning), ``as_list`` (memoized full decode for consumers that
    genuinely need boxed values, e.g. hash-join probes), and
    ``mask_for`` (predicate result as an int bitmap, memoized by
    predicate signature)."""

    __slots__ = ("codes", "dictionary", "_list", "_masks")

    def __init__(self, codes: bytes, dictionary: Dictionary):
        self.codes = codes
        self.dictionary = dictionary
        self._list: list | None = None
        self._masks: dict[Any, int] | None = None

    def __len__(self) -> int:
        return len(self.codes)

    def __getitem__(self, j):
        if type(j) is slice:
            return DictColumn(self.codes[j], self.dictionary)
        return self.dictionary.values[self.codes[j]]

    def __iter__(self) -> Iterator[Any]:
        return map(self.dictionary.values.__getitem__, self.codes)

    def as_list(self) -> list:
        """The decoded column (computed once, then cached)."""
        lst = self._list
        if lst is None:
            lst = self._list = list(map(self.dictionary.values.__getitem__, self.codes))
        return lst

    def gather(self, idx: Sequence[int]) -> "DictColumn":
        """The rows at ``idx`` as a new column sharing this value table
        (a single C-level pass -- the shard tier's hash-partition path)."""
        return DictColumn(bytes(map(self.codes.__getitem__, idx)), self.dictionary)

    def mask_for(self, key: Any, value_pred: Callable[[Any], bool]) -> int:
        """The predicate's pass positions as an int bitmap (bit ``j`` =
        row ``j`` passes), memoized by ``key``.  Concurrent queries with
        an equal predicate share the mask; conjunction chains AND the
        cached ints instead of re-filtering."""
        masks = self._masks
        if masks is None:
            masks = self._masks = {}
        m = masks.get(key)
        if m is None:
            table = self.dictionary.pass_table(key, value_pred)
            m = _flags_to_mask(self.codes.translate(table))
            masks[key] = m
        return m

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<DictColumn rows={len(self.codes)} card={len(self.dictionary)}>"


def _flags_to_mask(flags: bytes) -> int:
    """Fold a 0/1 flag byte per row into an int bitmap (bit j = row j)."""
    mask = 0
    bit = 1
    for f in flags:
        if f:
            mask |= bit
        bit <<= 1
    return mask


class PackedNumeric:
    """A typed numeric vector: ``array('q')`` machine ints or ``array('d')``
    doubles, 8 unboxed bytes per value.  ``data`` is either the owning
    ``array`` or a ``memoryview`` slice of an ancestor's buffer (page
    slices and shard range-partitions are views -- zero copies)."""

    __slots__ = ("data", "typecode", "_list")

    def __init__(self, data, typecode: str):
        self.data = data
        self.typecode = typecode
        self._list: list | None = None

    def __len__(self) -> int:
        return len(self.data)

    def __getitem__(self, j):
        if type(j) is slice:
            data = self.data
            if type(data) is not memoryview:
                data = memoryview(data)
            return PackedNumeric(data[j], self.typecode)
        return self.data[j]

    def __iter__(self) -> Iterator[Any]:
        return iter(self.data)

    def as_list(self) -> list:
        """The boxed column (one C-level ``tolist``, then cached)."""
        lst = self._list
        if lst is None:
            lst = self._list = self.data.tolist()
        return lst

    def gather(self, idx: Sequence[int]) -> "PackedNumeric":
        """The rows at ``idx`` as a new owning array (single-pass)."""
        return PackedNumeric(
            array(self.typecode, map(self.data.__getitem__, idx)), self.typecode
        )

    @property
    def nbytes(self) -> int:
        data = self.data
        if type(data) is memoryview:
            return data.nbytes
        return len(data) * data.itemsize

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<PackedNumeric '{self.typecode}' rows={len(self.data)}>"


# ----------------------------------------------------------------------
# Packing / unpacking helpers.
# ----------------------------------------------------------------------
def _dict_encode(values: Sequence[Any]) -> DictColumn | None:
    """Dictionary-encode ``values`` or return ``None`` when the column has
    more than :data:`DICT_MAX_CARD` distinct values (or unhashable ones).

    Distinctness is per ``(type, value)`` so columns mixing equal-but-
    differently-typed values (``1`` / ``1.0`` / ``True``) decode back to
    the exact original type."""
    code_of: dict[Any, int] = {}
    codes = bytearray(len(values))
    table: list[Any] = []
    try:
        for j, v in enumerate(values):
            k = (v.__class__, v)
            c = code_of.get(k)
            if c is None:
                c = len(table)
                if c >= DICT_MAX_CARD:
                    return None
                code_of[k] = c
                table.append(v)
            codes[j] = c
    except TypeError:  # unhashable value somewhere in the column
        return None
    return DictColumn(bytes(codes), Dictionary(table))


def pack_column(values: Sequence[Any], kind: str) -> Any:
    """The tightest faithful representation of one column.

    Preference order: dictionary encoding (any kind, card <= 256) >
    typed array for numeric kinds > plain boxed list.  Already-packed
    inputs pass through unchanged (shard partitions hand back views and
    gathers of parent columns)."""
    t = type(values)
    if t is DictColumn or t is PackedNumeric:
        return values
    dc = _dict_encode(values)
    if dc is not None:
        return dc
    if kind == "int":
        try:
            packed = array("q", values)
        except (OverflowError, TypeError):
            pass  # huge ints / non-int values: keep them boxed
        else:
            # array('q') silently coerces bools; require faithful decode.
            if all(type(v) is int for v in values):
                return PackedNumeric(packed, "q")
    elif kind == "float":
        if all(type(v) is float for v in values):
            return PackedNumeric(array("d", values), "d")
    return values if t is list else list(values)


def pack_columns(columns: Sequence[Sequence[Any]], schema) -> tuple:
    """Pack every column of a table (see :func:`pack_column`)."""
    return tuple(
        pack_column(col, cd.kind) for col, cd in zip(columns, schema.columns)
    )


def is_packed(col: Any) -> bool:
    t = type(col)
    return t is DictColumn or t is PackedNumeric


def as_list(col: Any) -> Sequence[Any]:
    """A boxed view of a column: packed vectors decode once (memoized on
    the column, so page-resident columns pay a single decode ever);
    already-boxed sequences pass through untouched."""
    t = type(col)
    if t is DictColumn or t is PackedNumeric:
        return col.as_list()
    return col


def gather_column(col: Any, idx: Sequence[int]) -> Any:
    """The rows of ``col`` at ``idx`` -- packed stays packed (single-pass
    code/array gathers), boxed stays boxed (one C-level ``map``)."""
    t = type(col)
    if t is DictColumn or t is PackedNumeric:
        return col.gather(idx)
    return list(map(col.__getitem__, idx))


def column_nbytes(col: Any, kind: str) -> int:
    """Honest resident bytes of one column vector.

    Counts the container *and* what it keeps alive: array buffers, code
    bytes, dictionary value tables and their boxed numeric entries.
    String payloads are excluded (shared references in every layout);
    boxed lists charge the list plus each boxed numeric element."""
    t = type(col)
    if t is PackedNumeric:
        return sys.getsizeof(col) + col.nbytes
    if t is DictColumn:
        d = col.dictionary
        n = sys.getsizeof(col) + sys.getsizeof(col.codes) + sys.getsizeof(d.values)
        if kind in ("int", "float"):
            n += sum(sys.getsizeof(v) for v in d.values)
        return n
    n = sys.getsizeof(col)
    if kind in ("int", "float"):
        n += sum(sys.getsizeof(v) for v in col)
    return n
