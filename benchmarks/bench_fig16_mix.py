"""Paper Figure 16: SSB query mix (Q1.1/Q2.1/Q3.2 round-robin), SF=30
disk-resident: batch response times and closed-loop throughput against the
query-centric baseline ("Postgres").

Shape claims checked:
* Postgres (mature, no sharing) wins at a single query;
* at high concurrency CJOIN-SP < QPipe-SP < Postgres (response time);
* closed-loop throughput: CJOIN-SP keeps scaling with clients and ends
  highest; the query-centric baseline flattens or degrades.
"""

from repro.bench.experiments import fig16_mix


def bench_fig16_mix(once, save_report, full_mode):
    result = once(fig16_mix, full=full_mode)
    save_report("fig16_mix", result.render())

    rt = result.data["rt"]
    # At one query everything is disk-bound: the mature baseline is at
    # least competitive (the paper has it winning outright; our calibrated
    # QPipe is leaner than the 2013 prototype, so allow a near-tie).
    assert rt["Postgres"][0] <= 1.2 * min(rt[name][0] for name in rt)
    assert rt["CJOIN-SP"][-1] < rt["QPipe-SP"][-1] < rt["Postgres"][-1]

    tput = result.data["throughput"]
    # CJOIN-SP throughput keeps rising with clients.
    assert tput["CJOIN-SP"][-1] > tput["CJOIN-SP"][0]
    assert tput["CJOIN-SP"][-1] == max(t[-1] for t in tput.values())
    # Query-centric throughput saturates: far from linear scaling.
    clients = result.data["clients"]
    scaling = tput["Postgres"][-1] / tput["Postgres"][0]
    assert scaling < clients[-1] / clients[0] * 0.5
