"""Tests for service metrics: percentile math and the SLO report."""

import json

import pytest

from repro.bench.export import metrics_to_json
from repro.server.metrics import ServiceMetrics
from repro.sim.metrics import Metrics, percentile


class TestPercentile:
    def test_interpolated_values(self):
        xs = [float(i) for i in range(1, 101)]
        assert percentile(xs, 0.50) == pytest.approx(50.5)
        assert percentile(xs, 0.95) == pytest.approx(95.05)
        assert percentile(xs, 0.99) == pytest.approx(99.01)

    def test_extremes(self):
        xs = [3.0, 1.0, 2.0]
        assert percentile(xs, 0.0) == 1.0
        assert percentile(xs, 1.0) == 3.0

    def test_single_value(self):
        assert percentile([7.0], 0.95) == 7.0

    def test_unsorted_input(self):
        assert percentile([9.0, 1.0], 0.5) == 5.0

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            percentile([], 0.5)

    def test_out_of_range_raises(self):
        with pytest.raises(ValueError):
            percentile([1.0], 1.5)


class TestServiceMetrics:
    def make_loaded(self):
        m = ServiceMetrics()
        for _ in range(10):
            m.record_arrival()
        for _ in range(8):
            m.record_admit()
        for _ in range(2):
            m.record_drop()
        m.record_timeout(queue_wait=0.9)
        for i in range(7):
            m.record_dispatch(queue_wait=0.1 * i, route="query-centric" if i < 5 else "gqp")
            m.record_completion(latency=1.0 + i)
        return m

    def test_counters(self):
        m = self.make_loaded()
        assert (m.arrived, m.admitted, m.dropped, m.timed_out, m.completed) == (10, 8, 2, 1, 7)
        assert m.in_system == 0
        assert m.routed == {"query-centric": 5, "gqp": 2}

    def test_latency_percentiles(self):
        m = self.make_loaded()
        lat = m.latency_percentiles()
        assert lat["p50"] == pytest.approx(4.0)
        assert lat["p50"] <= lat["p95"] <= lat["p99"] <= 7.0

    def test_empty_percentiles_are_zero(self):
        m = ServiceMetrics()
        assert m.latency_percentiles() == {"p50": 0.0, "p95": 0.0, "p99": 0.0}
        assert m.queue_wait_percentiles() == {"p50": 0.0, "p95": 0.0, "p99": 0.0}

    def test_throughput(self):
        m = self.make_loaded()
        assert m.throughput(3.5) == pytest.approx(2.0)
        assert m.throughput(0.0) == 0.0

    def test_inherits_simulator_metrics(self):
        m = self.make_loaded()
        m.charge_cpu(1000.0, "joins", query_id=1)
        m.record_sharing("join-depth-1")
        d = m.to_dict(hz=1000.0)
        assert d["cpu_seconds_by_category"]["joins"] == pytest.approx(1.0)
        assert d["sharing_events"] == {"join-depth-1": 1}

    def test_to_dict_service_fields(self):
        d = self.make_loaded().to_dict(window=3.5)
        assert d["arrived"] == 10 and d["dropped"] == 2 and d["timed_out"] == 1
        assert d["throughput_qps"] == pytest.approx(2.0)
        assert set(d["latency"]) >= {"p50", "p95", "p99", "mean", "max"}


class TestMetricsToJson:
    def test_plain_metrics(self):
        m = Metrics()
        m.charge_cpu(2000.0, "scans", query_id=None)
        m.bump("bufferpool_hits", 3)
        payload = json.loads(metrics_to_json(m, hz=1000.0))
        assert payload["cpu_seconds_by_category"]["scans"] == pytest.approx(2.0)
        assert payload["counts"]["bufferpool_hits"] == 3

    def test_plain_metrics_ignores_window(self):
        # Plain Metrics has no throughput concept; window must not error.
        payload = json.loads(metrics_to_json(Metrics(), window=5.0))
        assert "throughput_qps" not in payload

    def test_service_metrics_with_window_and_extra(self):
        m = ServiceMetrics()
        m.record_arrival()
        m.record_admit()
        m.record_dispatch(0.0, "gqp")
        m.record_completion(2.0)
        payload = json.loads(metrics_to_json(m, window=4.0, extra={"policy": "adaptive"}))
        assert payload["policy"] == "adaptive"
        assert payload["throughput_qps"] == pytest.approx(0.25)
        assert payload["latency"]["p95"] == pytest.approx(2.0)
