"""Subsumption lattice over plan signatures: fold similar queries into one.

Every sharing mechanism in this repo -- the Window-of-Opportunity registry
(paper Section 2.3), the shared result cache (:mod:`repro.cache`) and the
shared join arrangements (:mod:`repro.storage.arrangements`) -- matched
plans by *exact* signature equality.  Two concurrent Q3.2 instances that
differ only in a year bound therefore ran fully query-centric even though
one's output strictly contains the other's.  Following GraftDB (*Dynamic
Folding of Concurrent Analytical Queries*) and the coordinated-reuse
argument of Sioulas et al. (*Real-Time Analytics by Coordinating Reuse and
Work Sharing*), this module defines ONE structural subsumption relation
that all three layers consult:

* :func:`predicate_subsumes` -- conjunctive-predicate containment.
  ``weak`` subsumes ``strong`` when every row passing ``strong`` passes
  ``weak`` (per-column interval/set containment for cmp/between/in-set
  conjuncts; opaque shapes must match by signature).  On success it also
  returns the *residual* conjuncts ``R`` with ``strong == weak AND R`` --
  exactly the post-filter a folded consumer must apply to the provider's
  rows.  The check is conservative: it may miss a true containment (a
  missed fold is only a missed optimization) but never reports a false
  one, so folded results are always exact.
* :func:`fold_plan` -- lifts predicate subsumption to whole plan nodes:
  selects over an identical sub-plan, CJOIN stars (per-dimension predicate
  containment + payload projection), hash joins (per-side containment),
  aggregations (group-by set containment with re-aggregable measures) and
  sorts.  Returns a :class:`FoldPlan`: the residual filter, an optional
  output projection and an optional :class:`Regroup` (roll-up
  re-aggregation), or ``None`` when the provider cannot serve the
  consumer.
* :class:`FoldPlanner` -- ranks candidate providers (in-flight hosts,
  cached entries) and keeps the cheapest fold; :class:`ResidualOperator`
  is the compiled runtime form the engine workers stream batches through.
* :func:`normalize` -- canonical conjunct form (sorted parts,
  constant-folded closed bounds), so author ordering never hides an
  equality; :func:`split_range` decomposes a predicate into a closed
  range on one column plus a residual, for the arrangement cache's
  sorted-variant probes.

Everything here is pure bookkeeping over immutable plan/expression
structures -- no simulated time.  The *engine* charges fold-search and
residual-filter work through :class:`~repro.sim.costmodel.CostModel`
(``fold_probe`` / ``fold_attach`` plus the ordinary read/predicate/
aggregate builders) at the consumer sites.
"""

from __future__ import annotations

import operator
from dataclasses import dataclass
from typing import TYPE_CHECKING, Any, Callable, Iterable

from repro.query.expr import And, Between, Cmp, Col, Const, Expr, InSet, Not, Or
from repro.query.plan import (
    AggregateNode,
    CJoinNode,
    HashJoinNode,
    PlanNode,
    SelectNode,
    SortNode,
)

if TYPE_CHECKING:  # pragma: no cover
    from repro.storage.schema import Schema

__all__ = [
    "FoldPlan",
    "FoldPlanner",
    "Regroup",
    "ResidualOperator",
    "and_of",
    "conjuncts",
    "fold_plan",
    "normalize",
    "predicate_subsumes",
    "split_range",
]


# ---------------------------------------------------------------------------
# Conjunct algebra
# ---------------------------------------------------------------------------
def conjuncts(expr: Expr | None) -> list[Expr]:
    """Flatten a predicate into its top-level conjuncts (nested ``And``
    included).  ``None`` (no predicate) flattens to no conjuncts."""
    if expr is None:
        return []
    if isinstance(expr, And):
        out: list[Expr] = []
        for p in expr.parts:
            out.extend(conjuncts(p))
        return out
    return [expr]


def and_of(parts: Iterable[Expr]) -> Expr | None:
    """Rebuild a conjunction: ``None`` for zero parts, the part itself for
    one, ``And`` otherwise."""
    parts = list(parts)
    if not parts:
        return None
    if len(parts) == 1:
        return parts[0]
    return And(*parts)


class _Constraint:
    """The region one column is constrained to by a set of conjuncts:
    an interval (open/closed bounds, ``None`` = unbounded) intersected
    with an optional finite value set."""

    __slots__ = ("lo", "lo_open", "hi", "hi_open", "values")

    def __init__(self):
        self.lo: Any = None
        self.lo_open = False
        self.hi: Any = None
        self.hi_open = False
        self.values: frozenset | None = None

    # -- construction ----------------------------------------------------
    def add_lo(self, v: Any, open_: bool) -> None:
        if self.lo is None or v > self.lo or (v == self.lo and open_):
            self.lo, self.lo_open = v, open_

    def add_hi(self, v: Any, open_: bool) -> None:
        if self.hi is None or v < self.hi or (v == self.hi and open_):
            self.hi, self.hi_open = v, open_

    def add_values(self, vals: Iterable[Any]) -> None:
        vs = frozenset(vals)
        self.values = vs if self.values is None else (self.values & vs)

    # -- membership / containment ----------------------------------------
    def admits(self, x: Any) -> bool:
        """Is value ``x`` inside this region?"""
        if self.values is not None and x not in self.values:
            return False
        if self.lo is not None and (x < self.lo or (x == self.lo and self.lo_open)):
            return False
        if self.hi is not None and (x > self.hi or (x == self.hi and self.hi_open)):
            return False
        return True

    def _interval_contains(self, other: "_Constraint") -> bool:
        if self.lo is not None:
            if other.lo is None:
                return False
            if other.lo < self.lo:
                return False
            if other.lo == self.lo and self.lo_open and not other.lo_open:
                return False
        if self.hi is not None:
            if other.hi is None:
                return False
            if other.hi > self.hi:
                return False
            if other.hi == self.hi and self.hi_open and not other.hi_open:
                return False
        return True

    def contains(self, other: "_Constraint") -> bool:
        """Is ``other``'s region a subset of this one?  Conservative:
        ``False`` on any shape (or type) mismatch it cannot decide."""
        try:
            if other.values is not None:
                # Finite region: check each surviving point directly.
                return all(
                    self.admits(x) for x in other.values if other.admits(x)
                )
            if self.values is not None:
                # A finite set cannot contain a (non-degenerate) interval;
                # the one decidable case is a single-point interval.
                if (
                    other.lo is not None
                    and other.lo == other.hi
                    and not other.lo_open
                    and not other.hi_open
                ):
                    return self.admits(other.lo)
                return False
            return self._interval_contains(other)
        except TypeError:
            return False  # incomparable value types: undecidable, so no


def _classify(conj: Expr) -> tuple[str, _Constraint] | None:
    """``(column, constraint)`` for the supported single-column shapes,
    ``None`` for opaque conjuncts (compared by signature only)."""
    c = _Constraint()
    if isinstance(conj, Between):
        c.add_lo(conj.lo, False)
        c.add_hi(conj.hi, False)
        return conj.col, c
    if isinstance(conj, InSet):
        c.add_values(conj.values)
        return conj.col, c
    if isinstance(conj, Cmp) and isinstance(conj.left, Col) and isinstance(conj.right, Const):
        v = conj.right.value
        if conj.op == "<":
            c.add_hi(v, True)
        elif conj.op == "<=":
            c.add_hi(v, False)
        elif conj.op == ">":
            c.add_lo(v, True)
        elif conj.op == ">=":
            c.add_lo(v, False)
        elif conj.op == "=":
            c.add_values((v,))
        else:  # '!=' has no convex region; treat as opaque
            return None
        return conj.left.name, c
    return None


def _constraint_map(
    parts: list[Expr],
) -> tuple[dict[str, _Constraint], list[Expr]]:
    """Split conjuncts into per-column merged constraints plus the opaque
    leftovers."""
    cols: dict[str, _Constraint] = {}
    opaque: list[Expr] = []
    for p in parts:
        info = _classify(p)
        if info is None:
            opaque.append(p)
            continue
        col, c = info
        merged = cols.get(col)
        if merged is None:
            cols[col] = c
        else:
            if c.lo is not None:
                merged.add_lo(c.lo, c.lo_open)
            if c.hi is not None:
                merged.add_hi(c.hi, c.hi_open)
            if c.values is not None:
                merged.add_values(c.values)
    return cols, opaque


def predicate_subsumes(
    weak: Expr | None, strong: Expr | None
) -> tuple[bool, list[Expr]]:
    """Does ``weak`` subsume ``strong`` -- rows(strong) a subset of
    rows(weak)?  Returns ``(ok, residual)`` where ``residual`` is the list
    of ``strong``'s conjuncts not already implied by ``weak``; on success
    ``weak AND residual`` selects *exactly* the rows of ``strong`` (the
    dropped conjuncts are each implied by ``weak``), so a consumer can run
    the residual as a post-filter over the provider's output."""
    if weak is None:
        return True, conjuncts(strong)
    if strong is None:
        return False, []
    wconj = conjuncts(weak)
    sconj = conjuncts(strong)
    ssigs = {c.signature for c in sconj}
    wcols, wopaque = _constraint_map(wconj)
    scols, _ = _constraint_map(sconj)
    # Every opaque conjunct of the weak side must literally reappear.
    for o in wopaque:
        if o.signature not in ssigs:
            return False, []
    # Every column the weak side constrains must be constrained at least
    # as tightly by the strong side.
    for col, wc in wcols.items():
        sc = scols.get(col)
        if sc is None or not wc.contains(sc):
            return False, []
    # Residual: strong conjuncts not implied by the weak predicate.
    wsigs = {c.signature for c in wconj}
    residual: list[Expr] = []
    for cj in sconj:
        if cj.signature in wsigs:
            continue
        info = _classify(cj)
        if info is not None:
            col, cc = info
            wc = wcols.get(col)
            if wc is not None and cc.contains(wc):
                continue  # weak's own constraint already implies this
        residual.append(cj)
    return True, residual


def split_range(
    predicate: Expr | None, column: str | None = None
) -> tuple[str, Any, Any, Expr | None] | None:
    """Decompose a conjunctive predicate into ``(col, lo, hi, residual)``
    where ``predicate == (lo <= col <= hi) AND residual`` exactly -- the
    shape the arrangement cache's sorted variants probe.  ``column``
    restricts which column the range may be on; ``None`` picks the first
    closed-range conjunct.  Returns ``None`` when no conjunct is a closed
    range (or single-point equality) on an eligible column."""
    parts = conjuncts(predicate)
    for i, p in enumerate(parts):
        col = lo = hi = None
        if isinstance(p, Between):
            col, lo, hi = p.col, p.lo, p.hi
        elif (
            isinstance(p, Cmp)
            and p.op == "="
            and isinstance(p.left, Col)
            and isinstance(p.right, Const)
        ):
            col, lo, hi = p.left.name, p.right.value, p.right.value
        if col is None or (column is not None and col != column):
            continue
        rest = parts[:i] + parts[i + 1 :]
        return col, lo, hi, and_of(rest)
    return None


# ---------------------------------------------------------------------------
# Normalization (canonical conjunct form)
# ---------------------------------------------------------------------------
def _rebuild_closed(col: str, lo: Any, hi: Any) -> Expr:
    if lo is not None and hi is not None:
        if lo == hi:
            return Cmp("=", col, lo)
        return Between(col, lo, hi)
    if lo is not None:
        return Cmp(">=", col, lo)
    return Cmp("<=", col, hi)


def _is_closed_bound(p: Expr) -> tuple[str, Any, Any] | None:
    """``(col, lo, hi)`` for closed-bound shapes (>=, <=, =, between);
    ``None`` for anything else (strict bounds and sets pass through)."""
    if isinstance(p, Between):
        return p.col, p.lo, p.hi
    if isinstance(p, Cmp) and isinstance(p.left, Col) and isinstance(p.right, Const):
        v = p.right.value
        if p.op == ">=":
            return p.left.name, v, None
        if p.op == "<=":
            return p.left.name, None, v
        if p.op == "=":
            return p.left.name, v, v
    return None


def normalize(expr: Expr | None) -> Expr | None:
    """Canonical form of a predicate: conjunctions flatten, closed bounds
    on one column constant-fold into a single range, duplicate conjuncts
    drop, and parts sort by signature.  Together with ``And``'s sorted
    signature this makes structurally equal predicates hash identically
    regardless of author order (``a>1 AND b<2`` == ``b<2 AND a>1``).
    Normalization never changes the selected rows."""
    if expr is None:
        return None
    if isinstance(expr, Not):
        return Not(normalize(expr.part))
    if isinstance(expr, Or):
        parts = [normalize(p) for p in expr.parts]
        seen: dict[tuple, Expr] = {}
        for p in parts:
            seen.setdefault(p.signature, p)
        ordered = [seen[s] for s in sorted(seen, key=repr)]
        return ordered[0] if len(ordered) == 1 else Or(*ordered)
    if not isinstance(expr, And):
        return expr
    flat: list[Expr] = []
    for p in expr.parts:
        np = normalize(p)
        flat.extend(np.parts if isinstance(np, And) else [np])
    # Constant-fold closed bounds per column (lo = max of lowers, hi = min
    # of uppers); strict bounds, sets and opaque conjuncts pass through.
    bounds: dict[str, tuple[Any, Any]] = {}
    order: list[Any] = []  # column name (folded) or Expr (pass-through)
    for p in flat:
        cb = _is_closed_bound(p)
        if cb is None:
            order.append(p)
            continue
        col, lo, hi = cb
        if col not in bounds:
            bounds[col] = (lo, hi)
            order.append(col)
        else:
            plo, phi = bounds[col]
            try:
                if lo is not None:
                    plo = lo if plo is None else max(plo, lo)
                if hi is not None:
                    phi = hi if phi is None else min(phi, hi)
            except TypeError:  # incomparable bound types: keep both as-is
                order.append(p)
                continue
            bounds[col] = (plo, phi)
    rebuilt: list[Expr] = []
    for item in order:
        if isinstance(item, Expr):
            rebuilt.append(item)
        else:
            lo, hi = bounds[item]
            rebuilt.append(_rebuild_closed(item, lo, hi))
    seen = {}
    for p in rebuilt:
        seen.setdefault(p.signature, p)
    ordered = [seen[s] for s in sorted(seen, key=repr)]
    return ordered[0] if len(ordered) == 1 else And(*ordered)


# ---------------------------------------------------------------------------
# Plan-level folding
# ---------------------------------------------------------------------------
#: Aggregate functions whose per-group results can be re-aggregated into
#: coarser groups (count rolls up by summing counts, etc.).  ``avg`` is
#: NOT re-aggregable from finalized values (it would need sum+count).
_ROLLUP = {"sum": "sum", "count": "sum", "min": "min", "max": "max"}


@dataclass(frozen=True)
class Regroup:
    """Roll-up re-aggregation of a provider aggregate's finalized groups
    into the consumer's coarser grouping."""

    #: positions of the consumer's group-by columns in the provider's output
    key_idx: tuple[int, ...]
    #: one ``(merge_func, provider_column)`` per consumer aggregate
    measures: tuple[tuple[str, int], ...]


@dataclass(frozen=True)
class FoldPlan:
    """How a subsuming provider's output becomes the consumer's result:
    residual filter, then projection or roll-up re-aggregation."""

    #: post-filter over the provider's output rows (None = pass everything)
    residual: Expr | None = None
    #: output projection (positions into the provider's output row);
    #: ``None`` = identity.  Mutually exclusive with ``regroup``.
    project: tuple[int, ...] | None = None
    #: roll-up re-aggregation; ``None`` for plain filter/project folds
    regroup: Regroup | None = None

    @property
    def residual_terms(self) -> int:
        return self.residual.terms if self.residual is not None else 0

    def cost_rank(self) -> tuple[int, int]:
        """Cheapest-provider ordering: fewer residual terms first, pure
        filters before roll-ups (a regroup re-touches every group)."""
        return (self.residual_terms, 1 if self.regroup is not None else 0)


def _schema_names(node: PlanNode) -> list[str]:
    return [c.name for c in node.schema.columns]


def _residual_over(
    residual: list[Expr], available: set[str]
) -> list[Expr] | None:
    """The residual conjuncts, provided every referenced column survives
    into the provider's output (else the fold is impossible)."""
    for r in residual:
        if not r.columns() <= available:
            return None
    return residual


def _unwrap_selects(node: PlanNode) -> tuple[PlanNode, Expr | None]:
    """Strip a chain of SelectNodes, folding predicates into one conjunction
    (same semantics as the engine-side unwrap in ``stages/inputs.py``)."""
    predicate: Expr | None = None
    while isinstance(node, SelectNode):
        predicate = node.predicate if predicate is None else And(node.predicate, predicate)
        node = node.child
    return node, predicate


def _child_residual(
    consumer_child: PlanNode, provider_child: PlanNode
) -> tuple[bool, list[Expr]]:
    """Subsumption between two operator *inputs* (select chains included):
    ``(ok, residual conjuncts over the provider child's output schema)``."""
    ci, cpred = _unwrap_selects(consumer_child)
    pi, ppred = _unwrap_selects(provider_child)
    if ci.signature == pi.signature:
        return predicate_subsumes(ppred, cpred)
    if isinstance(ci, CJoinNode) and isinstance(pi, CJoinNode):
        # Aggregations over CJOIN outputs: the star itself may subsume.
        plan = _fold_cjoin(ci, pi)
        if plan is None or plan.project is not None:
            # A projection below an aggregation would shift the column
            # positions its exprs resolve against; require equal payloads.
            return False, []
        ok, outer = predicate_subsumes(ppred, cpred)
        if not ok:
            return False, []
        return True, conjuncts(plan.residual) + outer
    if isinstance(ci, HashJoinNode) and isinstance(pi, HashJoinNode):
        # Query-centric join trees: recurse -- a narrower dimension
        # predicate anywhere in the tree surfaces as a residual over the
        # join's output (``_fold_join`` never projects, so column
        # positions are stable for the consuming operator's exprs).
        plan = _fold_join(ci, pi)
        if plan is None:
            return False, []
        ok, outer = predicate_subsumes(ppred, cpred)
        if not ok:
            return False, []
        return True, conjuncts(plan.residual) + outer
    return False, []


def _fold_aggregate(
    consumer: AggregateNode, provider: AggregateNode
) -> FoldPlan | None:
    if not set(consumer.group_by) <= set(provider.group_by):
        return None
    ok, residual = _child_residual(consumer.child, provider.child)
    if not ok:
        return None
    # The residual runs over the provider's *output groups*, so it may
    # only reference columns the provider grouped by (within one group
    # all rows agree on those columns, making the group-level filter
    # exactly equivalent to the row-level one).
    residual = _residual_over(residual, set(provider.group_by))
    if residual is None:
        return None
    out_names = _schema_names(provider)
    n_groups = len(provider.group_by)
    # Map each consumer aggregate onto a provider aggregate with the same
    # function and expression.
    matches: list[int] = []
    for a in consumer.aggregates:
        want = (a.func, a.expr.signature if a.expr else None)
        for j, p in enumerate(provider.aggregates):
            if (p.func, p.expr.signature if p.expr else None) == want:
                matches.append(n_groups + j)
                break
        else:
            return None
    if set(consumer.group_by) == set(provider.group_by):
        # Same grouping: groups pass through (filter + projection only).
        project: tuple[int, ...] | None = tuple(
            [out_names.index(g) for g in consumer.group_by] + matches
        )
        if project == tuple(range(len(project))) and len(project) == len(out_names):
            project = None
        return FoldPlan(residual=and_of(residual), project=project)
    # Proper subset: roll finalized measures up into coarser groups.
    measures = []
    for a, src in zip(consumer.aggregates, matches):
        merge = _ROLLUP.get(a.func)
        if merge is None:
            return None
        measures.append((merge, src))
    regroup = Regroup(
        key_idx=tuple(out_names.index(g) for g in consumer.group_by),
        measures=tuple(measures),
    )
    return FoldPlan(residual=and_of(residual), regroup=regroup)


def _fold_cjoin(consumer: CJoinNode, provider: CJoinNode) -> FoldPlan | None:
    if consumer.fact_table != provider.fact_table:
        return None
    if len(consumer.dims) != len(provider.dims):
        return None
    out_names = _schema_names(provider)
    if len(set(out_names)) != len(out_names):
        return None  # ambiguous column names: cannot resolve a residual
    available = set(out_names)
    residual: list[Expr] = []
    for cd, pd in zip(consumer.dims, provider.dims):
        if (cd.dim_table, cd.fact_fk, cd.dim_key) != (pd.dim_table, pd.fact_fk, pd.dim_key):
            return None
        if not set(cd.payload) <= set(pd.payload):
            return None
        ok, res = predicate_subsumes(pd.predicate, cd.predicate)
        if not ok:
            return None
        residual.extend(res)
    if not set(consumer.fact_payload) <= set(provider.fact_payload):
        return None
    ok, res = predicate_subsumes(provider.fact_predicate, consumer.fact_predicate)
    if not ok:
        return None
    residual.extend(res)
    checked = _residual_over(residual, available)
    if checked is None:
        return None
    consumer_names = _schema_names(consumer)
    if consumer_names == out_names:
        project = None
    else:
        project = tuple(out_names.index(n) for n in consumer_names)
    return FoldPlan(residual=and_of(checked), project=project)


def _fold_join(consumer: HashJoinNode, provider: HashJoinNode) -> FoldPlan | None:
    if (consumer.probe_key, consumer.build_key) != (provider.probe_key, provider.build_key):
        return None
    ok_p, res_p = _child_residual(consumer.probe, provider.probe)
    if not ok_p:
        return None
    ok_b, res_b = _child_residual(consumer.build, provider.build)
    if not ok_b:
        return None
    out_names = _schema_names(provider)
    if len(set(out_names)) != len(out_names):
        return None
    checked = _residual_over(res_p + res_b, set(out_names))
    if checked is None:
        return None
    return FoldPlan(residual=and_of(checked))


def _fold_sort(consumer: SortNode, provider: SortNode) -> FoldPlan | None:
    if consumer.keys != provider.keys:
        return None
    ok, res = _child_residual(consumer.child, provider.child)
    if not ok:
        return None
    out_names = _schema_names(provider)
    checked = _residual_over(res, set(out_names))
    if checked is None:
        return None
    # A filter of a sorted stream is sorted: no re-sort needed.
    return FoldPlan(residual=and_of(checked))


def fold_plan(consumer: PlanNode, provider: PlanNode) -> FoldPlan | None:
    """A :class:`FoldPlan` turning ``provider``'s output into exactly
    ``consumer``'s, or ``None`` when ``provider`` does not subsume it.
    Both arguments are stage-root nodes (never ``SelectNode`` roots)."""
    if consumer.signature == provider.signature:
        return FoldPlan()
    if isinstance(consumer, AggregateNode) and isinstance(provider, AggregateNode):
        return _fold_aggregate(consumer, provider)
    if isinstance(consumer, CJoinNode) and isinstance(provider, CJoinNode):
        return _fold_cjoin(consumer, provider)
    if isinstance(consumer, HashJoinNode) and isinstance(provider, HashJoinNode):
        return _fold_join(consumer, provider)
    if isinstance(consumer, SortNode) and isinstance(provider, SortNode):
        return _fold_sort(consumer, provider)
    return None


# ---------------------------------------------------------------------------
# Planner + runtime operator
# ---------------------------------------------------------------------------
class FoldPlanner:
    """Ranks candidate providers for one consumer node and keeps the
    cheapest fold.  ``examined`` counts subsumption tests so the engine
    can charge ``CostModel.fold_probe`` per candidate considered."""

    __slots__ = ("node", "examined", "_best")

    def __init__(self, node: PlanNode):
        self.node = node
        self.examined = 0
        self._best: tuple[tuple, Any, FoldPlan] | None = None

    def consider(self, provider_node: PlanNode, token: Any, tie_break: tuple = ()) -> None:
        """Test one provider; ``token`` is handed back by :meth:`best`.
        ``tie_break`` orders equal-cost folds deterministically (e.g.
        registration order, cache bytes)."""
        self.examined += 1
        plan = fold_plan(self.node, provider_node)
        if plan is None:
            return
        score = plan.cost_rank() + tie_break + (self.examined,)
        if self._best is None or score < self._best[0]:
            self._best = (score, token, plan)

    def best(self) -> tuple[Any, FoldPlan] | None:
        if self._best is None:
            return None
        return self._best[1], self._best[2]


_MERGE: dict[str, Callable[[Any, Any], Any]] = {
    "sum": operator.add,
    "min": min,
    "max": max,
}


class ResidualOperator:
    """Compiled runtime form of a :class:`FoldPlan`: stream the provider's
    output batches through the residual filter, then project rows or roll
    groups up.  Row order (and, for roll-ups, accumulation order) matches
    what direct evaluation would produce, so folded results are exact."""

    __slots__ = ("plan", "_filter", "_project", "_groups", "_measures", "_key_idx")

    def __init__(self, plan: FoldPlan, provider_schema: "Schema", batch_kernels: bool = True):
        self.plan = plan
        self._filter: Callable[[list], list] | None = None
        if plan.residual is not None:
            if batch_kernels:
                self._filter = plan.residual.compile_batch(provider_schema)
            else:
                pred = plan.residual.compile(provider_schema)
                self._filter = lambda rows, _p=pred: [r for r in rows if _p(r)]
        self._project: Callable[[tuple], tuple] | None = None
        if plan.project is not None:
            idx = plan.project
            if len(idx) > 1:
                self._project = operator.itemgetter(*idx)
            else:
                i = idx[0]
                self._project = lambda r, _i=i: (r[_i],)
        self._groups: dict[tuple, list] | None = None
        self._measures: tuple[tuple[str, int], ...] = ()
        self._key_idx: tuple[int, ...] = ()
        if plan.regroup is not None:
            self._groups = {}
            self._measures = plan.regroup.measures
            self._key_idx = plan.regroup.key_idx

    @property
    def regrouping(self) -> bool:
        return self._groups is not None

    @property
    def n_measures(self) -> int:
        return max(len(self._measures), 1)

    def apply(self, rows: list) -> list:
        """Filter + project one batch (non-regroup folds)."""
        if self._filter is not None:
            rows = self._filter(rows)
        if self._project is not None and rows:
            proj = self._project
            rows = [proj(r) for r in rows]
        return rows

    def absorb(self, rows: list) -> int:
        """Filter one batch of finalized provider groups and merge them
        into the coarser grouping; returns how many groups were merged
        (for cost charging)."""
        if self._filter is not None:
            rows = self._filter(rows)
        groups = self._groups
        key_idx = self._key_idx
        measures = self._measures
        key_of = (
            operator.itemgetter(*key_idx)
            if len(key_idx) > 1
            else (lambda r, _i=key_idx[0]: (r[_i],))
            if key_idx
            else (lambda r: ())
        )
        for r in rows:
            key = key_of(r)
            if not isinstance(key, tuple):
                key = (key,)
            acc = groups.get(key)
            if acc is None:
                groups[key] = [r[src] for _, src in measures]
            else:
                for i, (merge, src) in enumerate(measures):
                    acc[i] = _MERGE[merge](acc[i], r[src])
        return len(rows)

    def finalize(self) -> list:
        """The rolled-up output rows, in provider first-occurrence order
        (the same order direct aggregation would emit)."""
        return [key + tuple(acc) for key, acc in self._groups.items()]
