"""Engine-level tests of circular scans (shared scans with linear WoP)."""

import pytest

from repro.baselines import evaluate_plan
from repro.data import generate_ssb
from repro.engine import QPIPE_CS, QPipeEngine
from repro.query.ssb_queries import q32
from repro.sim import Simulator
from repro.sim.commands import SLEEP
from repro.sim.costmodel import DEFAULT_COST_MODEL
from repro.sim.machine import MachineSpec
from repro.storage import StorageConfig, StorageManager


@pytest.fixture(scope="module")
def ssb():
    return generate_ssb(0.5, seed=77)


def norm(rows):
    return sorted(
        tuple(round(v, 6) if isinstance(v, float) else v for v in row) for row in rows
    )


def make_engine(ssb, resident="memory"):
    sim = Simulator(MachineSpec())
    storage = StorageManager(sim, DEFAULT_COST_MODEL, ssb.tables, StorageConfig(resident=resident))
    return sim, QPipeEngine(sim, storage, QPIPE_CS)


class TestCircularScan:
    def test_late_joiner_wraps_and_gets_exact_results(self, ssb):
        """A query joining the circular scan mid-flight reads from its point
        of entry around the circle -- results must be exact."""
        spec_a = q32("CHINA", "FRANCE", 1993, 1996)
        spec_b = q32("JAPAN", "BRAZIL", 1992, 1995)
        oracle_b = norm(evaluate_plan(spec_b.to_query_centric_plan(ssb.tables)))
        sim, eng = make_engine(ssb)
        eng.submit(spec_a)
        holder = {}

        def late():
            yield SLEEP(0.4)  # mid-scan of A
            holder["h"] = eng.submit(spec_b)

        sim.spawn(late(), "late")
        sim.run()
        assert norm(holder["h"].results) == oracle_b
        # B attached to A's in-flight scans (linear WoP).
        assert eng.sharing_summary().get("tablescan", 0) >= 1

    def test_scan_position_persists_across_drivers(self, ssb):
        """When all consumers finish, the driver retires but the circular
        position is kept; the next driver resumes from there (the paper's
        host hand-off)."""
        spec = q32("CHINA", "FRANCE", 1993, 1996)
        sim, eng = make_engine(ssb)
        h1 = eng.submit(spec)
        holder = {}

        def second():
            yield from h1.wait()
            yield SLEEP(0.05)  # scan state retired
            holder["h"] = eng.submit(spec)

        sim.spawn(second(), "second")
        sim.run()
        # New driver was spawned (no live state to share with), position
        # resumed mid-table, and results are still exact.
        assert norm(holder["h"].results) == norm(h1.results)
        pos = eng.scan_stage._positions["lineorder"]
        assert 0 <= pos < ssb.lineorder.num_pages

    def test_fact_table_read_once_for_concurrent_queries(self, ssb):
        """Disk: N concurrent queries with a shared circular scan read each
        fact page from disk once."""
        specs = [q32("CHINA", "FRANCE", 1993, 1996), q32("JAPAN", "BRAZIL", 1992, 1995)]
        sim, eng = make_engine(ssb, resident="disk")
        for s in specs:
            eng.submit(s)
        sim.run()
        total = ssb.real_bytes
        # All tables read about once (prefetcher may fetch a few extra pages).
        assert sim.disk.bytes_delivered < total * 1.3

    def test_private_scans_read_n_times_without_sharing(self, ssb):
        from repro.engine import QPIPE

        spec = q32("CHINA", "FRANCE", 1993, 1996)
        sim = Simulator(MachineSpec())
        storage = StorageManager(
            sim,
            DEFAULT_COST_MODEL,
            ssb.tables,
            # Tiny caches so each private scan really hits the disk.
            StorageConfig(resident="disk", bufferpool_bytes=1e6, os_cache_bytes=1e6),
        )
        eng = QPipeEngine(sim, storage, QPIPE)
        for _ in range(3):
            eng.submit(spec)
        sim.run()
        assert sim.disk.bytes_delivered > ssb.real_bytes * 2.0
