"""Tests for routing policies: the static baseline and the adaptive
feedback controller, under forced load patterns."""

import pytest

from repro.query.ssb_queries import q32, random_q32
from repro.data.rng import make_rng
from repro.server.router import (
    GQP,
    POLICIES,
    QUERY_CENTRIC,
    AdaptivePolicy,
    StaticThresholdPolicy,
    make_policy,
    spec_features,
)
from repro.sim.machine import MachineSpec

MACHINE = MachineSpec()  # 24 cores -> saturation threshold 12
SPEC = q32("CHINA", "FRANCE", 1993, 1996)


class TestStatic:
    def test_below_threshold_query_centric(self):
        p = StaticThresholdPolicy(MACHINE, threshold=4)
        assert p.choose(SPEC, in_flight=3, queue_depth=50) == QUERY_CENTRIC

    def test_at_threshold_gqp(self):
        p = StaticThresholdPolicy(MACHINE, threshold=4)
        assert p.choose(SPEC, in_flight=4, queue_depth=0) == GQP

    def test_default_threshold_is_machine_saturation(self):
        from repro.engine.hybrid import saturation_threshold

        assert StaticThresholdPolicy(MACHINE).threshold == saturation_threshold(MACHINE) == 12

    def test_queue_depth_invisible(self):
        # The baseline's blind spot (what the adaptive policy fixes).
        p = StaticThresholdPolicy(MACHINE, threshold=4)
        assert p.choose(SPEC, in_flight=0, queue_depth=1000) == QUERY_CENTRIC


class TestAdaptive:
    def test_sustained_low_pressure_stays_query_centric(self):
        p = AdaptivePolicy(MACHINE, threshold=12)
        routes = {p.choose(SPEC, in_flight=6, queue_depth=0) for _ in range(50)}
        assert routes == {QUERY_CENTRIC}

    def test_sustained_high_pressure_switches_to_gqp(self):
        p = AdaptivePolicy(MACHINE, threshold=12)
        routes = [p.choose(SPEC, in_flight=16, queue_depth=0) for _ in range(50)]
        assert routes[-1] == GQP
        assert GQP in routes[:10]  # the EWMA converges quickly

    def test_one_spike_does_not_switch(self):
        # A single bunched arrival below the surge bound is absorbed.
        p = AdaptivePolicy(MACHINE, threshold=12)
        for _ in range(30):
            p.choose(SPEC, in_flight=6, queue_depth=0)
        assert p.choose(SPEC, in_flight=14, queue_depth=0) == QUERY_CENTRIC

    def test_surge_triggers_immediately(self):
        # Instantaneous pressure at surge_factor x threshold must not wait
        # for the moving average.
        p = AdaptivePolicy(MACHINE, threshold=12, surge_factor=2.0)
        for _ in range(30):
            p.choose(SPEC, in_flight=2, queue_depth=0)
        assert p.choose(SPEC, in_flight=24, queue_depth=0) == GQP

    def test_queue_depth_counts_toward_pressure(self):
        p = AdaptivePolicy(MACHINE, threshold=12, queue_weight=0.5)
        # 0 in flight but a deep sustained queue: 0 + 0.5*40 = 20 > 12.
        routes = [p.choose(SPEC, in_flight=0, queue_depth=40) for _ in range(20)]
        assert routes[-1] == GQP

    def test_hysteresis_on_exit(self):
        p = AdaptivePolicy(MACHINE, threshold=12, exit_ratio=0.7)
        for _ in range(50):
            p.choose(SPEC, in_flight=20, queue_depth=0)  # lock into GQP
        # Pressure just below threshold: a non-hysteretic rule would flap
        # back; the controller holds the GQP route.
        assert p.choose(SPEC, in_flight=11, queue_depth=0) == GQP
        # Far below the exit bound the route returns to query-centric.
        routes = [p.choose(SPEC, in_flight=1, queue_depth=0) for _ in range(50)]
        assert routes[-1] == QUERY_CENTRIC

    def test_similarity_lowers_the_switch_point(self):
        # Identical specs -> similarity 1; pressure 10 < 12 but above the
        # fully discounted threshold 12 * (1 - 0.25) = 9.
        p = AdaptivePolicy(MACHINE, threshold=12, similarity_discount=0.25)
        routes = [p.choose(SPEC, in_flight=10, queue_depth=0) for _ in range(50)]
        assert routes[-1] == GQP
        # With the discount off, the same sustained pressure stays below
        # the threshold and keeps the query-centric route.
        p2 = AdaptivePolicy(MACHINE, threshold=12, similarity_discount=0.0)
        routes2 = [p2.choose(SPEC, in_flight=10, queue_depth=0) for _ in range(50)]
        assert routes2[-1] == QUERY_CENTRIC

    def test_random_plans_less_similar_than_identical(self):
        rng = make_rng(7, "router-similarity")
        p = AdaptivePolicy(MACHINE, threshold=12)
        for _ in range(30):
            p.choose(random_q32(rng), in_flight=0, queue_depth=0)
        random_sims = [s for _, _, s, _ in p.decisions[1:]]
        p2 = AdaptivePolicy(MACHINE, threshold=12)
        for _ in range(30):
            p2.choose(SPEC, in_flight=0, queue_depth=0)
        identical_sims = [s for _, _, s, _ in p2.decisions[1:]]
        assert max(random_sims) < 1.0
        assert sum(random_sims) / len(random_sims) < sum(identical_sims) / len(identical_sims)
        assert identical_sims[-1] == pytest.approx(1.0)

    def test_similarity_score(self):
        p = AdaptivePolicy(MACHINE, threshold=12)
        assert p.similarity(spec_features(SPEC)) == 0.0  # empty window
        p.choose(SPEC, in_flight=0, queue_depth=0)
        assert p.similarity(spec_features(SPEC)) == pytest.approx(1.0)

    def test_observe_completion_feeds_latency_ewma(self):
        p = AdaptivePolicy(MACHINE)
        p.observe_completion(GQP, 4.0)
        p.observe_completion(GQP, 2.0)
        assert p.latency_ewma[GQP] == pytest.approx(4.0 + p.alpha * (2.0 - 4.0))

    def test_decision_log(self):
        p = AdaptivePolicy(MACHINE, threshold=12)
        p.choose(SPEC, in_flight=3, queue_depth=2)
        ((pressure, ewma, sim_score, route),) = p.decisions
        assert pressure == 3 + p.queue_weight * 2
        assert ewma == pytest.approx(pressure)  # bias-corrected first sample
        assert route == QUERY_CENTRIC


class TestFeatures:
    def test_identical_specs_identical_features(self):
        assert spec_features(SPEC) == spec_features(q32("CHINA", "FRANCE", 1993, 1996))

    def test_different_predicates_partial_overlap(self):
        other = q32("JAPAN", "BRAZIL", 1992, 1995)
        a, b = spec_features(SPEC), spec_features(other)
        assert a != b
        assert a & b  # same template: fact/agg components still shared


class TestFactory:
    def test_registry_matches_factory(self):
        for name in POLICIES:
            assert make_policy(name, MACHINE).name == name

    def test_threshold_override(self):
        assert make_policy("static", MACHINE, threshold=3).threshold == 3
        assert make_policy("adaptive", MACHINE, threshold=3).base_threshold == 3

    def test_unknown_policy(self):
        with pytest.raises(ValueError, match="unknown policy"):
            make_policy("oracle", MACHINE)
