"""Storage manager: tables + buffer pool + OS cache + scan primitives.

One :class:`StorageManager` is created per simulation run (it owns sim-bound
state: the buffer pool, the OS cache, metrics).  The immutable
:class:`~repro.storage.table.Table` objects it serves are shared across runs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Any, Iterator

from repro.sim.machine import GB
from repro.storage.bufferpool import BufferPool
from repro.storage.cache import OsPageCache
from repro.storage.page import Page
from repro.storage.table import Table

if TYPE_CHECKING:  # pragma: no cover
    from repro.sim.costmodel import CostModel
    from repro.sim.engine import Simulator


@dataclass(frozen=True)
class StorageConfig:
    """How the database is resident for an experiment.

    ``resident="memory"`` models the paper's RAM-drive experiments (no I/O
    at all); ``resident="disk"`` reads through buffer pool -> OS cache ->
    disk.  ``direct_io`` bypasses the OS cache (Figure 13).  The paper's
    default buffer pool is "large enough for datasets up to SF=30"; the
    SF=100 experiment shrinks it to ~10% of the database.
    """

    resident: str = "memory"
    bufferpool_bytes: float = 48 * GB
    os_cache_bytes: float = 32 * GB
    direct_io: bool = False
    prefetch_window: int = 4
    #: shared result cache budget in bytes; 0 disables the cache entirely
    #: (the engines then behave byte-for-byte as before it existed)
    result_cache_bytes: float = 0.0
    #: eviction policy: 'lru' or 'benefit' (see repro.cache)
    result_cache_policy: str = "benefit"

    def __post_init__(self) -> None:
        if self.resident not in ("memory", "disk"):
            raise ValueError("resident must be 'memory' or 'disk'")
        if self.prefetch_window < 0:
            raise ValueError("prefetch_window must be >= 0")
        if self.result_cache_bytes < 0:
            raise ValueError("result_cache_bytes must be >= 0")
        if self.result_cache_policy not in ("lru", "benefit"):
            raise ValueError("result_cache_policy must be 'lru' or 'benefit'")


class StorageManager:
    """Serves pages of a fixed catalog of tables under a storage config."""

    def __init__(
        self,
        sim: "Simulator",
        cost: "CostModel",
        tables: dict[str, Table],
        config: StorageConfig = StorageConfig(),
    ):
        self.sim = sim
        self.cost = cost
        self.tables = dict(tables)
        self.config = config
        self.os_cache = OsPageCache(sim, config.os_cache_bytes)
        self.bufferpool = BufferPool(sim, cost, config.bufferpool_bytes, self.os_cache)
        #: shared result cache (None when result_cache_bytes is 0).  It
        #: lives here -- not on an engine -- because hybrid/service stacks
        #: run two engines over one storage manager: a result filled by the
        #: query-centric path must be visible to queries routed anywhere.
        self.result_cache = None
        if config.result_cache_bytes > 0:
            from repro.cache import ResultCache  # deferred: cache imports storage

            self.result_cache = ResultCache(
                sim, config.result_cache_bytes, config.result_cache_policy
            )

    # ------------------------------------------------------------------
    def table(self, name: str) -> Table:
        try:
            return self.tables[name]
        except KeyError:
            raise KeyError(f"no table {name!r}; have {sorted(self.tables)}") from None

    @property
    def ram_resident(self) -> bool:
        return self.config.resident == "memory"

    def total_real_bytes(self) -> float:
        return sum(t.real_bytes for t in self.tables.values())

    def notify_update(self, table_name: str) -> int:
        """A base table changed: invalidate every materialized result
        derived from it.  Returns how many *result-cache* entries were
        dropped.  Shared join arrangements over the table are dropped too
        (concurrent holders finish on their pinned snapshot; the next
        acquirer rebuilds) -- tracked by the arrangement cache's own
        counters, not this return value.  (Tables themselves are immutable
        in this simulator; the hook exists so update-carrying workloads
        keep shared derived state consistent.)"""
        from repro.storage.arrangements import ARRANGEMENTS

        ARRANGEMENTS.invalidate_table(table_name)
        if self.result_cache is None:
            return 0
        return self.result_cache.invalidate_table(table_name)

    # ------------------------------------------------------------------
    def read_page(
        self,
        table: Table,
        page_index: int,
        sequential: bool = True,
        latch_prepaid: bool = False,
    ) -> Iterator[Any]:
        """Fetch one page under the active storage config.  Returns the
        buffer pool's generator directly (not a wrapping generator): the
        hot scan loops drive it with ``yield from``, which then skips this
        frame entirely on every resume."""
        return self.bufferpool.read_page(
            table,
            page_index,
            ram_resident=self.ram_resident,
            direct_io=self.config.direct_io,
            sequential=sequential,
            latch_prepaid=latch_prepaid,
        )

    def latch_prepay_charge(self):
        """The buffer-pool latch charge for prepaying scan loops (see
        :attr:`BufferPool.latch_charge`); None when acquisition is free."""
        return self.bufferpool.latch_charge

    def scan_pages(
        self, table: Table, start_page: int = 0, num_pages: int | None = None
    ) -> Iterator[Any]:
        """Generator yielding nothing; use :meth:`scan_into` for pipelined
        scans.  This sequential form fetches ``num_pages`` pages starting at
        ``start_page`` (wrapping circularly) and returns them as a list --
        only suitable for small tables (dimension scans during admission)."""
        n = table.num_pages
        if n == 0:
            return []
        if num_pages is None:
            num_pages = n
        pages: list[Page] = []
        for i in range(num_pages):
            idx = (start_page + i) % n
            page = yield from self.read_page(table, idx)
            pages.append(page)
        return pages
