"""Golden determinism: the fast path must not change a single simulated tick.

Each seeded SSB workload runs twice through the same engine configuration --
once with batch kernels and fused charges disabled (the row-at-a-time
"before") and once enabled -- and the complete ``Metrics.to_dict()`` view,
the final simulated clock, and every per-query response time must match
*bitwise* (``==`` on floats, no tolerance).

A committed snapshot (``golden_metrics.json``) additionally pins the
fast-path numbers across commits: any change to simulated behavior --
intended or not -- shows up as a diff of that file, which must then be
regenerated deliberately (``python tests/engine/test_golden_determinism.py``)
and reviewed."""

import json
import pathlib

import pytest

from repro.data import generate_ssb
from repro.engine import CJOIN, CJOIN_SP, QPIPE_SP, QPipeEngine
from repro.engine.config import fast_path
from repro.baselines import VolcanoEngine
from repro.query.ssb_queries import random_q32
from repro.data.rng import make_rng
from repro.sim import Simulator
from repro.sim.machine import MachineSpec
from repro.storage import StorageConfig, StorageManager
from repro.sim.costmodel import DEFAULT_COST_MODEL

GOLDEN_PATH = pathlib.Path(__file__).with_name("golden_metrics.json")

MACHINE = MachineSpec(cores=8, hz=1.86e9)
CONFIGS = {
    "QPipe-SP": QPIPE_SP,
    "CJOIN": CJOIN,
    "CJOIN-SP": CJOIN_SP,
    "Postgres": "postgres",
}


@pytest.fixture(scope="module")
def ssb():
    return generate_ssb(0.5, seed=21)


def _run_mix_inner(ssb, config_key: str) -> dict:
    """One seeded 6-query Q3.2 mix under the *current* process flags;
    returns a JSON-safe measurement dict."""
    sim = Simulator(MACHINE)
    storage = StorageManager(
        sim, DEFAULT_COST_MODEL, ssb.tables, StorageConfig(resident="memory")
    )
    config = CONFIGS[config_key]
    if config == "postgres":
        engine = VolcanoEngine(sim, storage, DEFAULT_COST_MODEL)
    else:
        engine = QPipeEngine(sim, storage, config)
    rng = make_rng(77, "golden", config_key)
    handles = [engine.submit(random_q32(rng)) for _ in range(6)]
    sim.run()
    times = sorted(h.response_time for h in handles)
    n = len(times)
    return {
        "sim_now": sim.now,
        "response_times": [h.response_time for h in handles],
        "p50": times[int(0.50 * (n - 1))],
        "p95": times[int(0.95 * (n - 1))],
        "p99": times[int(0.99 * (n - 1))],
        "metrics": sim.metrics.to_dict(),
    }


def run_mix(
    ssb, config_key: str, *, batch: bool, fuse: bool, columnar: bool | None = None
) -> dict:
    """:func:`_run_mix_inner` under a ``fast_path`` context.
    ``columnar=None`` follows ``batch`` (the fast_path default)."""
    with fast_path(batch_kernels=batch, fuse_charges=fuse, columnar_pages=columnar):
        return _run_mix_inner(ssb, config_key)


@pytest.mark.parametrize("config_key", list(CONFIGS), ids=list(CONFIGS))
def test_fast_path_is_bit_identical(ssb, config_key):
    slow = run_mix(ssb, config_key, batch=False, fuse=False)
    fast = run_mix(ssb, config_key, batch=True, fuse=True)
    assert fast == slow  # bitwise: dict equality compares floats with ==


@pytest.mark.parametrize(
    "batch,fuse", [(True, False), (False, True)], ids=["kernels-only", "fusion-only"]
)
def test_each_fast_path_is_independently_identical(ssb, batch, fuse):
    base = run_mix(ssb, "CJOIN-SP", batch=False, fuse=False)
    assert run_mix(ssb, "CJOIN-SP", batch=batch, fuse=fuse) == base


@pytest.mark.parametrize("config_key", list(CONFIGS), ids=list(CONFIGS))
def test_columnar_plane_is_bit_identical(ssb, config_key):
    """The columnar (late-materialized) data plane changes only host-side
    layout: batches, selection vectors and join tails carry the same row
    counts as the row plane, so every charge -- and therefore every
    simulated tick -- must match bitwise with the toggle alone flipped."""
    rows = run_mix(ssb, config_key, batch=True, fuse=True, columnar=False)
    cols = run_mix(ssb, config_key, batch=True, fuse=True, columnar=True)
    assert cols == rows


@pytest.mark.parametrize("config_key", list(CONFIGS), ids=list(CONFIGS))
def test_packed_storage_is_bit_identical(config_key):
    """Packed vectors (typed arrays + dictionary codes) change only how
    column values are *stored*.  Every kernel -- dictionary pass tables,
    memoized predicate masks, typed-array decodes -- keeps the same
    survivors in the same order and decodes the exact original values, so
    the full metrics view must match bitwise against boxed vectors.  The
    dataset is regenerated inside each context: layout is baked in at
    table build time (the memo is keyed by the effective flag)."""
    results = []
    for packed in (False, True):
        with fast_path(
            batch_kernels=True,
            fuse_charges=True,
            columnar_pages=True,
            packed_storage=packed,
        ):
            data = generate_ssb(0.5, seed=21)
            results.append(_run_mix_inner(data, config_key))
    assert results[0] == results[1]  # bitwise: == on floats


@pytest.mark.parametrize("config_key", list(CONFIGS), ids=list(CONFIGS))
def test_arrangements_are_bit_identical(ssb, config_key):
    """Shared join arrangements reuse the *host-side* build index across
    queries; every simulated charge (build-input reads, hashing/insert
    cycles, CJOIN admission scans) is still paid per query, so the full
    metrics view must match bitwise with the toggle alone flipped."""
    results = []
    for arrange in (False, True):
        with fast_path(
            batch_kernels=True,
            fuse_charges=True,
            arrangements=arrange,
        ):
            results.append(_run_mix_inner(ssb, config_key))
    assert results[0] == results[1]  # bitwise: == on floats


@pytest.mark.parametrize("mode", ["hash", "range"])
def test_shard_fingerprints_identical_arrangements_vs_naive(ssb, mode):
    """A shard engine probing shared arrangements must be indistinguishable
    from one building private hash tables: identical partial-aggregate
    state and identical simulated service time on every shard, for either
    placement mode."""
    from repro.parallel.cells import DatasetSpec
    from repro.query.ssb_queries import q32
    from repro.shard.partition import shard_tables
    from repro.shard.spec import ShardConfig
    from repro.shard.worker import execute_shard_query

    spec = q32("CHINA", "FRANCE", 1993, 1996)
    outcomes = []
    for arrange in (False, True):
        with fast_path(batch_kernels=True, fuse_charges=True, arrangements=arrange):
            config = ShardConfig(n_shards=2, dataset=DatasetSpec("ssb", 0.5, 21))
            per_shard = []
            for shard in range(2):
                view = shard_tables(ssb.tables, "lineorder", shard, 2, mode, 21)
                per_shard.append(execute_shard_query(view, spec, config))
            outcomes.append(per_shard)
    assert outcomes[0] == outcomes[1]  # bitwise: == on floats


@pytest.mark.parametrize("mode", ["hash", "range"])
def test_shard_fingerprints_identical_row_vs_columnar_partitioning(ssb, mode):
    """Zero-copy shard partitions (column slices / gathers through
    ``Table.from_columns``) must be *indistinguishable* from row-built
    partitions to a shard engine: identical partial-aggregate state and
    identical simulated service time on every shard."""
    from repro.parallel.cells import DatasetSpec
    from repro.query.ssb_queries import q32
    from repro.shard.partition import shard_tables
    from repro.shard.spec import ShardConfig
    from repro.shard.worker import execute_shard_query

    spec = q32("CHINA", "FRANCE", 1993, 1996)
    config = ShardConfig(n_shards=2, dataset=DatasetSpec("ssb", 0.5, 21))
    for shard in range(2):
        fingerprints = []
        for columnar in (False, True):
            view = shard_tables(
                ssb.tables, "lineorder", shard, 2, mode, 21, columnar=columnar
            )
            state, svc = execute_shard_query(view, spec, config)
            fingerprints.append((state, svc))
        assert fingerprints[0] == fingerprints[1]  # bitwise: == on floats


@pytest.mark.parametrize("mode", ["hash", "range"])
def test_shard_fingerprints_identical_packed_vs_boxed(mode):
    """Packed shard partitions -- zero-copy ``memoryview`` range slices
    and single-pass code/array gathers -- must be indistinguishable from
    boxed-list partitions to a shard engine: identical partial-aggregate
    state and identical simulated service time on every shard, for either
    placement mode."""
    from repro.parallel.cells import DatasetSpec
    from repro.query.ssb_queries import q32
    from repro.shard.partition import shard_tables
    from repro.shard.spec import ShardConfig
    from repro.shard.worker import execute_shard_query

    spec = q32("CHINA", "FRANCE", 1993, 1996)
    config = ShardConfig(n_shards=2, dataset=DatasetSpec("ssb", 0.5, 21))
    outcomes = []
    for packed in (False, True):
        with fast_path(
            batch_kernels=True,
            fuse_charges=True,
            columnar_pages=True,
            packed_storage=packed,
        ):
            data = generate_ssb(0.5, seed=21)
            per_shard = []
            for shard in range(2):
                view = shard_tables(
                    data.tables, "lineorder", shard, 2, mode, 21, columnar=True
                )
                per_shard.append(execute_shard_query(view, spec, config))
            outcomes.append(per_shard)
    assert outcomes[0] == outcomes[1]  # bitwise: == on floats


# ---------------------------------------------------------------------------
# Query folding (subsumption lattice, sixth fast-path flag)
# ---------------------------------------------------------------------------
# Folding deliberately CHANGES simulated timing -- a folded satellite reads
# the host's stream instead of running its own sub-plan -- so the invariant
# here is different from the other planes: query *results* must be
# bit-identical fold-on vs fold-off, while fold-OFF metrics stay pinned by
# the committed snapshot (every other test in this file runs inside a
# ``fast_path`` context, which resolves ``query_folding=None`` to False).


def _result_fingerprint(rows) -> str:
    import hashlib

    h = hashlib.sha256()
    for r in rows:
        h.update(repr(r).encode())
        h.update(b"\n")
    return h.hexdigest()


def _fold_mix_jobs():
    """An overlap-heavy Q3.2 mix: two broad templates, each followed by
    strictly narrower instances a fold can serve, plus random ad-hoc
    queries (arrival order broad-first so hosts exist when the narrow
    satellites are admitted)."""
    from repro.query.ssb_queries import q32

    rng = make_rng(31, "golden-fold")
    jobs = [
        q32("CHINA", "FRANCE", 1992, 1997),
        q32("CHINA", "FRANCE", 1993, 1996),
        q32("CHINA", "FRANCE", 1994, 1995),
        q32("INDIA", "RUSSIA", 1992, 1997),
        q32("INDIA", "RUSSIA", 1995, 1997),
        random_q32(rng),
        random_q32(rng),
        q32("CHINA", "FRANCE", 1993, 1993),
    ]
    return jobs


def _run_fold_mix(ssb, config_key: str, fold: bool):
    """Run the overlap mix with a small submit stagger; returns per-query
    result fingerprints plus the fold counters that fired."""
    from repro.sim.commands import SLEEP
    from repro.storage.manager import StorageConfig as SC

    with fast_path(batch_kernels=True, fuse_charges=True, query_folding=fold):
        sim = Simulator(MACHINE)
        storage = StorageManager(
            sim,
            DEFAULT_COST_MODEL,
            ssb.tables,
            SC(resident="memory", result_cache_bytes=32.0),
        )
        config = CONFIGS[config_key]
        if config == "postgres":
            engine = VolcanoEngine(sim, storage, DEFAULT_COST_MODEL)
        else:
            engine = QPipeEngine(sim, storage, config)
        jobs = _fold_mix_jobs()
        handles = []

        def submitter():
            for i, spec in enumerate(jobs):
                handles.append(engine.submit(spec))
                if i + 1 < len(jobs):
                    yield SLEEP(0.001)

        sim.spawn(submitter(), "submitter")
        sim.run()
        folds = {
            k: v for k, v in sim.metrics.counts.items() if k.startswith("fold_")
        }
        return [_result_fingerprint(h.results) for h in handles], folds


@pytest.mark.parametrize("config_key", list(CONFIGS), ids=list(CONFIGS))
def test_query_folding_results_bit_identical(ssb, config_key):
    """Folded execution must be invisible in query *results*: every
    query's rows fingerprint identically fold-on vs fold-off (the residual
    filter / roll-up is exact and order-preserving, and integer-valued SSB
    measures make re-summed aggregates exact)."""
    off, _ = _run_fold_mix(ssb, config_key, fold=False)
    on, _ = _run_fold_mix(ssb, config_key, fold=True)
    assert on == off


def test_query_folding_fires_on_overlap(ssb):
    """The overlap mix must actually exercise the fold path (otherwise the
    bit-identity test above proves nothing)."""
    _, off_folds = _run_fold_mix(ssb, "QPipe-SP", fold=False)
    _, on_folds = _run_fold_mix(ssb, "QPipe-SP", fold=True)
    assert not off_folds, f"fold counters must stay zero fold-off: {off_folds}"
    assert sum(on_folds.values()) > 0, "no fold fired on the overlap mix"


@pytest.mark.parametrize("mode", ["hash", "range"])
def test_shard_fingerprints_identical_fold_vs_naive(ssb, mode):
    """The fold flag rides ShardConfig's fast_flags into workers; a shard
    engine running under it must produce identical partial-aggregate state
    and identical simulated service time as the unfolded plane, for either
    placement mode."""
    from repro.parallel.cells import DatasetSpec
    from repro.query.ssb_queries import q32
    from repro.shard.partition import shard_tables
    from repro.shard.spec import ShardConfig
    from repro.shard.worker import execute_shard_query

    spec = q32("CHINA", "FRANCE", 1993, 1996)
    outcomes = []
    for fold in (False, True):
        with fast_path(batch_kernels=True, fuse_charges=True, query_folding=fold):
            config = ShardConfig(n_shards=2, dataset=DatasetSpec("ssb", 0.5, 21))
            per_shard = []
            for shard in range(2):
                view = shard_tables(ssb.tables, "lineorder", shard, 2, mode, 21)
                per_shard.append(execute_shard_query(view, spec, config))
            outcomes.append(per_shard)
    assert outcomes[0] == outcomes[1]  # bitwise: == on floats


def _jsonify(measured: dict) -> dict:
    """Round-trip through JSON so committed and in-memory forms compare
    equal (JSON has no tuples / int-vs-float distinctions to preserve)."""
    return json.loads(json.dumps(measured, sort_keys=True))


def test_matches_committed_golden_snapshot(ssb):
    assert GOLDEN_PATH.exists(), (
        "golden_metrics.json missing; regenerate with "
        "'PYTHONPATH=src python tests/engine/test_golden_determinism.py'"
    )
    golden = json.loads(GOLDEN_PATH.read_text())
    measured = {
        key: _jsonify(run_mix(ssb, key, batch=True, fuse=True)) for key in CONFIGS
    }
    assert measured == golden


if __name__ == "__main__":  # regenerate the snapshot
    data = generate_ssb(0.5, seed=21)
    snapshot = {
        key: _jsonify(run_mix(data, key, batch=True, fuse=True)) for key in CONFIGS
    }
    GOLDEN_PATH.write_text(json.dumps(snapshot, indent=1, sort_keys=True) + "\n")
    print(f"wrote {GOLDEN_PATH}")
