"""Star query specifications.

A :class:`StarQuerySpec` is the engine-independent description of one SSB
star query: which dimensions it joins (with what selections), the fact-table
predicate, and the aggregation/sort on top.  It compiles to either

* a **query-centric plan** -- a left-deep chain of hash joins (the plan
  QPipe runs, Figure 9 of the paper), or
* a **GQP plan** -- a :class:`~repro.query.plan.CJoinNode` evaluated by the
  shared CJOIN pipeline, with the same aggregation/sort on top.

Both produce identical results; the integration tests assert it.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.query.expr import Expr
from repro.query.plan import (
    AggregateNode,
    AggSpec,
    CJoinNode,
    DimJoinSpec,
    HashJoinNode,
    PlanNode,
    ScanNode,
    SelectNode,
    SortNode,
)
from repro.storage.table import Table


@dataclass(frozen=True)
class StarQuerySpec:
    """One star query over a fact table and some dimensions."""

    fact_table: str
    dims: tuple[DimJoinSpec, ...]
    group_by: tuple[str, ...]
    aggregates: tuple[AggSpec, ...]
    fact_predicate: Expr | None = None
    order_by: tuple[tuple[str, bool], ...] = ()
    label: str = "star"

    def __post_init__(self) -> None:
        if not self.dims:
            raise ValueError("a star query joins at least one dimension")

    # ------------------------------------------------------------------
    @property
    def fact_payload(self) -> tuple[str, ...]:
        """Fact columns the post-join operators need: foreign keys are
        consumed by the joins; group-by and aggregate inputs survive."""
        needed: list[str] = []
        dim_cols = {c for d in self.dims for c in d.payload}
        for g in self.group_by:
            if g not in dim_cols and g not in needed:
                needed.append(g)
        for a in self.aggregates:
            if a.expr is None:
                continue
            for c in sorted(a.expr.columns()):
                if c not in dim_cols and c not in needed:
                    needed.append(c)
        return tuple(needed)

    # ------------------------------------------------------------------
    def to_query_centric_plan(self, tables: dict[str, Table]) -> PlanNode:
        """Left-deep hash-join chain: ((F |x| D1) |x| D2) |x| D3 -> agg -> sort.

        The fact predicate (if any) is applied on the fact scan's output;
        dimension predicates on the build inputs.  Join nodes are labelled
        hj1..hjN bottom-up for the sharing-opportunity statistics."""
        probe = self.to_join_only_plan(tables, use_cjoin=False)
        plan: PlanNode = AggregateNode(probe, self.group_by, self.aggregates)
        if self.order_by:
            plan = SortNode(plan, self.order_by)
        return plan

    def to_join_only_plan(self, tables: dict[str, Table], use_cjoin: bool = False) -> PlanNode:
        """The joins of this query *without* the aggregation/sort on top.

        This is the plan a shard worker runs: selections and joins are
        evaluated inside the shard's own engine (query-centric chain or the
        shared CJOIN pipeline), while aggregation happens at the shard
        boundary as an order-independent *partial aggregate*
        (:mod:`repro.query.merge`) so that scatter/gather can merge shard
        partials into exactly one canonical answer for any shard count."""
        if use_cjoin:
            fact = tables[self.fact_table]
            return CJoinNode(
                fact_table=fact,
                dims=self.dims,
                fact_payload=self.fact_payload,
                fact_predicate=self.fact_predicate,
                dim_tables=tuple(tables[d.dim_table] for d in self.dims),
            )
        fact = tables[self.fact_table]
        probe: PlanNode = ScanNode(fact)
        if self.fact_predicate is not None:
            probe = SelectNode(probe, self.fact_predicate)
        for depth, d in enumerate(self.dims, start=1):
            build: PlanNode = ScanNode(tables[d.dim_table])
            if d.predicate is not None:
                build = SelectNode(build, d.predicate)
            probe = HashJoinNode(
                probe, build, probe_key=d.fact_fk, build_key=d.dim_key, label=f"hj{depth}"
            )
        return probe

    def to_gqp_plan(self, tables: dict[str, Table]) -> PlanNode:
        """CJOIN form: shared joins in the global query plan, query-centric
        aggregation and sort above (CJOIN shares only selections and
        hash-joins; Section 3.2)."""
        cjoin = self.to_join_only_plan(tables, use_cjoin=True)
        plan: PlanNode = AggregateNode(cjoin, self.group_by, self.aggregates)
        if self.order_by:
            plan = SortNode(plan, self.order_by)
        return plan

    # ------------------------------------------------------------------
    @property
    def signature(self) -> tuple:
        return (
            "star",
            self.fact_table,
            tuple(d.signature for d in self.dims),
            self.group_by,
            tuple(a.signature for a in self.aggregates),
            self.fact_predicate.signature if self.fact_predicate else None,
            self.order_by,
        )


@dataclass
class Query:
    """A submitted query instance (spec + runtime bookkeeping)."""

    query_id: int
    spec: StarQuerySpec | None = None
    plan: PlanNode | None = None
    label: str = ""
    submit_time: float | None = None
    finish_time: float | None = None
    results: list = field(default_factory=list)
    #: True once any of this query's packets was served from the shared
    #: result cache (set by the replaying stage; the service layer splits
    #: latency reports on it)
    cache_served: bool = False

    @property
    def response_time(self) -> float:
        if self.submit_time is None or self.finish_time is None:
            raise RuntimeError(f"query {self.query_id} has not completed")
        return self.finish_time - self.submit_time
