#!/usr/bin/env python
"""MPL sweep: shared join arrangements vs per-query build-side hash tables.

Two sections, both written to ``BENCH_arrangements.json`` at the repo root:

* ``build_path`` -- the isolated build-side indexing cost at each
  multiprogramming level: N concurrent SSB Q3.2-shaped queries each need a
  single-match index over their (filtered) dimension build inputs.  The
  private mode pays a full dict build plus single-match flatten *per
  query*; the shared mode pays one refcounted
  :class:`~repro.storage.arrangements.Arrangement` build per (table, key)
  and memoized view seeds/fetches thereafter.  The crossover is the story:
  at MPL 1 the arrangement's up-front index build can lose, and by MPL >= 8
  sharing wins outright -- one build amortized over every concurrent
  query.  Build/hit counters come from the real cache.
* ``end_to_end`` -- full-engine batches (QPipe-SP and CJOIN-SP) with the
  ``arrangements`` fast path off vs on, **asserted bit-identical** in
  simulated results (the golden-determinism contract).  End-to-end host
  time is dominated by the discrete-event simulator, and every build-input
  read is still drained and charged per query by design, so these rows
  document safety (~parity), not the sharing win -- that is what
  ``build_path`` isolates.

Usage::

    python benchmarks/bench_arrangements.py          # default sweep
    python benchmarks/bench_arrangements.py --fast   # CI smoke

Exits non-zero only on crash or on a simulated-results mismatch between
the two end-to-end modes; speedup thresholds are warn-only."""

from __future__ import annotations

import argparse
import json
import os
import pathlib
import platform
import sys
import time

sys.path.insert(0, str(pathlib.Path(__file__).resolve().parent.parent / "src"))

from repro.bench.runner import run_batch
from repro.bench.workload import q32_limited_plans_workload
from repro.data import generate_ssb
from repro.engine.config import CJOIN_SP, QPIPE_SP, arrangements_default, fast_path
from repro.query.expr import Between, Cmp
from repro.storage.arrangements import ARRANGEMENTS, single_match_table
from repro.storage.manager import StorageConfig

ROOT = pathlib.Path(__file__).resolve().parent.parent
OUT_PATH = ROOT / "BENCH_arrangements.json"

ENGINES = {"QPipe-SP": QPIPE_SP, "CJOIN-SP": CJOIN_SP}

#: Q3.2-shaped build sides: (dim table, key column, predicate pool).
#: Concurrent queries cycle through the pool -- the Figure 14/15
#: similarity knob (distinct plans, repeated across the batch).
NATIONS = ("CHINA", "FRANCE", "RUSSIA", "UNITED STATES")
DIM_BUILDS = [
    ("customer", "c_custkey", [Cmp("=", "c_nation", n) for n in NATIONS]),
    ("supplier", "s_suppkey", [Cmp("=", "s_nation", n) for n in NATIONS]),
    ("date", "d_datekey", [Between("d_year", 1992 + i, 1994 + i) for i in range(4)]),
]


def _timed(fn, reps: int):
    times, out = [], None
    for _ in range(max(reps, 1)):
        t0 = time.perf_counter()
        out = fn()
        times.append(time.perf_counter() - t0)
    return min(times), out


# ----------------------------------------------------------------------
# Section 1: the isolated build path.
# ----------------------------------------------------------------------
def bench_build_path(ds, mpl: int, reps: int) -> dict:
    """Index MPL concurrent queries' build sides, private vs shared.

    Both modes receive the same pre-filtered build rows (the engine
    drains and charges that scan identically either way); what is timed
    is exactly what differs in the join stage: per-query dict build +
    single-match flatten vs arrangement acquire + memoized view."""
    inputs = []  # (table, key_column, predicate, selected_rows) per query*dim
    for q in range(mpl):
        for name, key, pool in DIM_BUILDS:
            table = ds.tables[name]
            predicate = pool[q % len(pool)]
            pred = predicate.compile(table.schema)
            selected = [r for r in table.iter_rows() if pred(r)]
            inputs.append((table, key, predicate, selected))

    def private():
        views = []
        for table, key, _, selected in inputs:
            key_idx = table.schema.index(key)
            ht: dict = {}
            setdefault = ht.setdefault
            for r in selected:
                setdefault(r[key_idx], []).append(r)
            views.append(single_match_table(ht))
        return views

    def shared():
        ARRANGEMENTS.clear()
        views = []
        for table, key, predicate, selected in inputs:
            arr = ARRANGEMENTS.acquire(table, key)
            views.append(arr.offer_single_view(predicate, selected))
            ARRANGEMENTS.release(arr)
        return views

    private_s, private_views = _timed(private, reps)
    stats0 = ARRANGEMENTS.stats()
    shared_s, shared_views = _timed(shared, reps)
    stats1 = ARRANGEMENTS.stats()
    if private_views != shared_views:
        raise SystemExit(
            f"BUILD VIEWS DIVERGED at MPL {mpl}: the shared arrangement "
            "produced a different single-match view than a private build"
        )
    n_dims = len(DIM_BUILDS)
    return {
        "mpl": mpl,
        "private_s": round(private_s, 4),
        "shared_s": round(shared_s, 4),
        "speedup": round(private_s / shared_s, 2) if shared_s else None,
        # per timed run (the cache is cleared at each one's start)
        "builds": (stats1["builds"] - stats0["builds"]) // max(reps, 1),
        "hits": (stats1["hits"] - stats0["hits"]) // max(reps, 1),
        "indexed_inputs": mpl * n_dims,
    }


# ----------------------------------------------------------------------
# Section 2: end-to-end safety (bit-identical simulated results).
# ----------------------------------------------------------------------
def _fingerprint(result) -> dict:
    return {
        "sim_seconds": result.sim_seconds,
        "response_times": result.response_times,
        "cpu_breakdown": result.cpu_breakdown,
    }


def bench_end_to_end(ds, engine_name: str, mpl: int, seed: int, reps: int) -> dict:
    config = ENGINES[engine_name]
    workload = q32_limited_plans_workload(mpl, min(4, mpl), seed)
    storage = StorageConfig(resident="memory")

    def run():
        return run_batch(ds.tables, config, workload, storage)

    with fast_path(batch_kernels=True, fuse_charges=True, arrangements=False):
        private_s, private = _timed(run, reps)

    def run_shared():
        ARRANGEMENTS.clear()
        return run()

    with fast_path(batch_kernels=True, fuse_charges=True, arrangements=True):
        shared_s, shared = _timed(run_shared, reps)
    stats = ARRANGEMENTS.stats()
    if _fingerprint(private) != _fingerprint(shared):
        raise SystemExit(
            f"SIMULATED RESULTS DIVERGED for {engine_name} at MPL {mpl}: "
            "shared arrangements changed ticks or charges -- this is a "
            "bug, not a perf issue"
        )
    return {
        "mpl": mpl,
        "private_s": round(private_s, 3),
        "shared_s": round(shared_s, 3),
        "ratio": round(private_s / shared_s, 2) if shared_s else None,
        "hits": stats["hits"],
        "bit_identical": True,
    }


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.split("\n")[0])
    parser.add_argument("--fast", action="store_true",
                        help="small sweep for CI smoke (minutes -> seconds)")
    parser.add_argument("--out", type=pathlib.Path, default=OUT_PATH,
                        help=f"output path (default {OUT_PATH.name} at repo root)")
    parser.add_argument("--reps", type=int, default=None,
                        help="repetitions per timing (best-of-N; default 5, "
                             "2 with --fast)")
    args = parser.parse_args(argv)
    reps = args.reps if args.reps is not None else (2 if args.fast else 5)
    if args.fast:
        mpls, sf, e2e_mpl = (1, 4, 8), 0.5, 8
    else:
        mpls, sf, e2e_mpl = (1, 2, 4, 8, 16), 1.0, 16
    seed = 42

    ds = generate_ssb(sf, seed)
    points: dict = {}
    speedup: dict = {}
    for mpl in mpls:
        cell = bench_build_path(ds, mpl, reps)
        key = f"build/mpl{mpl}"
        points[key] = cell
        speedup[key] = cell["speedup"]
        print(f"  {key:<12} private {cell['private_s']:>9}s  "
              f"shared {cell['shared_s']:>9}s  speedup {cell['speedup']}x  "
              f"(builds {cell['builds']}, hits {cell['hits']})")

    end_to_end: dict = {}
    for engine_name in ENGINES:
        cell = bench_end_to_end(ds, engine_name, e2e_mpl, seed, reps)
        end_to_end[f"{engine_name}/mpl{e2e_mpl}"] = cell
        print(f"  {engine_name}/mpl{e2e_mpl}: bit-identical, "
              f"host ratio {cell['ratio']}x, {cell['hits']} arrangement hits")

    report = {
        "host": {
            "python": platform.python_version(),
            "machine": platform.machine(),
            "mode": "fast" if args.fast else "default",
            "cpus": os.cpu_count(),
            "reps": reps,
            "arrangements_default": arrangements_default(),
        },
        "sf": sf,
        "mpls": list(mpls),
        "points": points,
        "speedup": speedup,
        "end_to_end": end_to_end,
    }
    args.out.write_text(json.dumps(report, indent=1, sort_keys=True) + "\n")
    print(f"wrote {args.out}")

    slow = [k for k, v in speedup.items()
            if int(k.rsplit("mpl", 1)[1]) >= 8 and (v or 0) <= 1.0]
    if slow:
        # Warn-only: host load varies, and the determinism assertions are
        # the real gate.  CI fails only on crash or result divergence.
        print(f"WARNING: no shared-arrangement win at high MPL for: "
              f"{', '.join(slow)}", file=sys.stderr)
    return 0


if __name__ == "__main__":
    sys.exit(main())
