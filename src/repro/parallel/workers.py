"""Long-lived worker processes with a duplex message channel.

:mod:`repro.parallel.fabric` schedules *one-shot* cells onto a process
pool; the shard tier (:mod:`repro.shard`) needs the complementary shape:
a fixed set of **long-lived** workers, each holding expensive per-process
state (its table partition), answering an open-ended stream of requests
over a pipe.  :class:`WorkerHandle` wraps one such process and turns its
failure modes into two exceptions the caller can act on:

* :class:`WorkerCrashed` -- the process died (killed, crashed hard, or
  closed its end of the pipe).  The caller may :meth:`~WorkerHandle.respawn`
  the handle and resend work; the worker's in-process state is rebuilt by
  its entry point.
* :class:`WorkerUnresponsive` -- the process is alive but produced no
  response within the timeout (a stuck request).  The only safe recovery
  is :meth:`~WorkerHandle.respawn` (kill + restart): the pipe may carry a
  late response for the stuck request, so it must not be reused.

Entry points run as ``target(conn, *args)`` with ``conn`` the worker's end
of the pipe, and must be module-level functions (under spawn/forkserver
they are pickled by reference).  Under the fork start method -- requested
explicitly when available -- workers inherit the parent's memory
copy-on-write, so datasets generated in the parent before :meth:`start`
need not be regenerated per worker (same prewarm trick as the fabric)."""

from __future__ import annotations

import multiprocessing
from multiprocessing.connection import Connection
from typing import Any

__all__ = ["WorkerCrashed", "WorkerHandle", "WorkerUnresponsive"]


class WorkerCrashed(Exception):
    """The worker process died; its pipe returned EOF or refused a send."""


class WorkerUnresponsive(Exception):
    """The worker is alive but sent no response within the timeout."""


def _context():
    """Prefer fork (copy-on-write dataset inheritance); else the default."""
    if "fork" in multiprocessing.get_all_start_methods():
        return multiprocessing.get_context("fork")
    return multiprocessing.get_context()  # pragma: no cover - non-POSIX


class WorkerHandle:
    """One long-lived worker process plus the parent's end of its pipe."""

    def __init__(self, target, args: tuple = (), name: str = "worker"):
        self.target = target
        self.args = tuple(args)
        self.name = name
        self.process: multiprocessing.Process | None = None
        self.conn: Connection | None = None
        #: processes started over this handle's lifetime (1 after start();
        #: +1 per respawn) -- the shard metrics report it as respawn count
        self.generation = 0

    # ------------------------------------------------------------------
    def start(self) -> None:
        if self.process is not None and self.process.is_alive():
            raise RuntimeError(f"{self.name} is already running")
        ctx = _context()
        parent_conn, child_conn = ctx.Pipe(duplex=True)
        self.process = ctx.Process(
            target=self.target,
            args=(child_conn, *self.args),
            name=self.name,
            daemon=True,
        )
        self.process.start()
        # The child holds its own copy; keeping the parent's reference open
        # would mask worker death (no EOF while any writer exists).
        child_conn.close()
        self.conn = parent_conn
        self.generation += 1

    @property
    def alive(self) -> bool:
        return self.process is not None and self.process.is_alive()

    @property
    def pid(self) -> int | None:
        return self.process.pid if self.process is not None else None

    # ------------------------------------------------------------------
    def send(self, obj: Any) -> None:
        """Ship one picklable request; raises :class:`WorkerCrashed` if the
        worker is gone (the request was not delivered)."""
        if self.conn is None:
            raise RuntimeError(f"{self.name} was never started")
        try:
            self.conn.send(obj)
        except (BrokenPipeError, EOFError, OSError) as exc:
            raise WorkerCrashed(f"{self.name} (pid {self.pid}) is gone: {exc}") from exc

    def recv(self, timeout: float | None = None) -> Any:
        """Wait for the next response.

        Raises :class:`WorkerUnresponsive` after ``timeout`` seconds with
        the process still alive, :class:`WorkerCrashed` on EOF / death."""
        if self.conn is None:
            raise RuntimeError(f"{self.name} was never started")
        try:
            if not self.conn.poll(timeout):
                if self.alive:
                    raise WorkerUnresponsive(
                        f"{self.name} (pid {self.pid}): no response within {timeout:g}s"
                    )
                raise WorkerCrashed(
                    f"{self.name} (pid {self.pid}) died with no response "
                    f"(exitcode {self.process.exitcode})"
                )
            return self.conn.recv()
        except (EOFError, ConnectionResetError, BrokenPipeError) as exc:
            raise WorkerCrashed(
                f"{self.name} (pid {self.pid}) died mid-response: {exc}"
            ) from exc

    # ------------------------------------------------------------------
    def kill(self) -> None:
        """Terminate the process (escalating to SIGKILL) and close the
        pipe.  Idempotent; safe on an already-dead worker."""
        if self.conn is not None:
            self.conn.close()
            self.conn = None
        proc = self.process
        if proc is None:
            return
        if proc.is_alive():
            proc.terminate()
            proc.join(timeout=5)
            if proc.is_alive():  # pragma: no cover - last resort
                proc.kill()
                proc.join(timeout=5)
        self.process = None

    def respawn(self) -> None:
        """Kill whatever is left of the worker and start a fresh process
        (with a fresh pipe -- stale in-flight responses cannot leak in)."""
        self.kill()
        self.start()
