"""The paper's conclusion as a policy: dynamic sharing selection.

    "In conclusion, analytical query engines should dynamically choose
    between query-centric operators with SP for low concurrency and GQP
    with shared operators enhanced by SP for high concurrency."

:class:`HybridEngine` implements exactly that: one simulator hosts *both* a
QPipe-SP engine and a CJOIN-SP engine (they share the storage manager, so
circular scans and caches are common), and each incoming star query is
routed by a concurrency threshold -- below it, the query-centric plan with
SP; at or above it, the shared-operator GQP with SP.  Table 1's "shared
scans always" comes for free: both engines run with ``sp_scan``.

The default threshold follows the paper's simple heuristic -- "the point
when resources become saturated" -- i.e. enough in-flight queries to cover
the machine's cores.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.engine.config import CJOIN_SP, QPIPE_SP
from repro.engine.qpipe import QPipeEngine, QueryHandle
from repro.query.plan import PlanNode
from repro.query.star import StarQuerySpec
from repro.sim.costmodel import DEFAULT_COST_MODEL, CostModel

if TYPE_CHECKING:  # pragma: no cover
    from repro.sim.engine import Simulator
    from repro.sim.machine import MachineSpec
    from repro.storage.manager import StorageManager


def saturation_threshold(machine: "MachineSpec") -> int:
    """The paper's default switch point -- "the point when resources become
    saturated": enough in-flight queries to cover the machine's cores (one
    query-centric plan busies roughly two cores).  Shared by
    :class:`HybridEngine` and the service layer's routing policies
    (:mod:`repro.server.router`)."""
    return max(machine.cores // 2, 1)


class HybridEngine:
    """Routes star queries between QPipe-SP and CJOIN-SP by load."""

    name = "Hybrid"

    def __init__(
        self,
        sim: "Simulator",
        storage: "StorageManager",
        cost: CostModel = DEFAULT_COST_MODEL,
        threshold: int | None = None,
        qc_config=QPIPE_SP,
        gqp_config=CJOIN_SP,
    ):
        self.sim = sim
        self.storage = storage
        #: in-flight queries at/above which new arrivals go to the GQP;
        #: default: the machine saturates (one plan busies ~2 cores).
        self.threshold = threshold if threshold is not None else saturation_threshold(sim.machine)
        #: the two routed configurations; overridable so sweeps can vary
        #: e.g. the CJOIN thread layout or adaptive-ordering tuning.  The
        #: presets leave the adaptive-GQP knobs at ``None``, so the
        #: process-wide ``set_gqp_plane`` defaults flow through here too.
        self.query_centric = QPipeEngine(sim, storage, qc_config, cost)
        self.gqp = QPipeEngine(sim, storage, gqp_config, cost)
        self._in_flight = 0
        #: "cache-discount" (counted on top of "query-centric") appears
        #: only once a result-cache hit actually bends a routing decision
        self.routed: dict[str, int] = {"query-centric": 0, "gqp": 0}
        self.handles: list[QueryHandle] = []

    # ------------------------------------------------------------------
    @property
    def in_flight(self) -> int:
        return self._in_flight

    def submit(self, spec: StarQuerySpec, label: str | None = None) -> QueryHandle:
        """Route a star query by current concurrency and submit.

        Cache-aware discount: when the query-centric plan's root (or the
        aggregate under its sort) is already materialized in the shared
        result cache, the query is routed query-centric even at saturation
        -- it will replay cached pages at memory-read cost instead of
        paying GQP admission, so it adds almost no load."""
        if self._in_flight >= self.threshold:
            plan = self._cached_query_centric_plan(spec)
            if plan is not None:
                self.routed["query-centric"] += 1
                self.routed["cache-discount"] = self.routed.get("cache-discount", 0) + 1
                self.sim.metrics.bump("hybrid_cache_discount")
                return self._track(
                    self.query_centric.submit_plan(plan, label=label or spec.label, spec=spec)
                )
            engine = self.gqp
            self.routed["gqp"] += 1
        else:
            engine = self.query_centric
            self.routed["query-centric"] += 1
        return self._track(engine.submit(spec, label=label))

    def _cached_query_centric_plan(self, spec: StarQuerySpec) -> "PlanNode | None":
        from repro.cache import cached_query_centric_plan

        return cached_query_centric_plan(self.storage, spec)

    def submit_plan(self, plan, label: str = "", spec: StarQuerySpec | None = None) -> QueryHandle:
        """Non-star plans (e.g. TPC-H Q1) always run query-centric: the GQP
        only evaluates star-query joins."""
        self.routed["query-centric"] += 1
        return self._track(self.query_centric.submit_plan(plan, label=label, spec=spec))

    def _track(self, handle: QueryHandle) -> QueryHandle:
        self.handles.append(handle)
        self._in_flight += 1
        self.sim.spawn(
            self._watch(handle),
            name=f"hybrid-watch-q{handle.query.query_id}",
            daemon=True,
        )
        return handle

    def _watch(self, handle: QueryHandle):
        yield from handle.wait()
        self._in_flight -= 1

    # ------------------------------------------------------------------
    def sharing_summary(self) -> dict[str, int]:
        return dict(self.sim.metrics.sharing_events)
