"""Tests for consumer-side input handling (fused selections)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.engine.exchange import END, FifoExchange
from repro.engine.stages.inputs import FilteredInput, unwrap_selects
from repro.query.expr import And, Cmp
from repro.query.plan import ScanNode, SelectNode
from repro.data import generate_ssb
from repro.sim import Simulator
from repro.sim.costmodel import CostModel
from repro.sim.machine import MachineSpec
from repro.storage.page import Batch


@pytest.fixture(scope="module")
def ssb():
    return generate_ssb(0.5, seed=52)


class TestUnwrapSelects:
    def test_plain_node_passthrough(self, ssb):
        node = ScanNode(ssb.customer)
        inner, pred = unwrap_selects(node)
        assert inner is node
        assert pred is None

    def test_single_select(self, ssb):
        p = Cmp("=", "c_nation", "CHINA")
        inner, pred = unwrap_selects(SelectNode(ScanNode(ssb.customer), p))
        assert isinstance(inner, ScanNode)
        assert pred == p

    def test_nested_selects_fold_to_conjunction(self, ssb):
        p1 = Cmp("=", "c_nation", "CHINA")
        p2 = Cmp("=", "c_region", "ASIA")
        node = SelectNode(SelectNode(ScanNode(ssb.customer), p1), p2)
        inner, pred = unwrap_selects(node)
        assert isinstance(inner, ScanNode)
        assert isinstance(pred, And)
        # Inner select evaluated first, outer last.
        assert pred.parts[0] == p1
        assert pred.parts[1] == p2

    def test_nested_selects_semantics(self, ssb):
        """The folded conjunction selects the same rows as sequential
        filters."""
        p1 = Cmp("=", "c_nation", "CHINA")
        p2 = Cmp(">", "c_custkey", 100)
        node = SelectNode(SelectNode(ScanNode(ssb.customer), p1), p2)
        _inner, pred = unwrap_selects(node)
        fn = pred.compile(ssb.customer.schema)
        f1 = p1.compile(ssb.customer.schema)
        f2 = p2.compile(ssb.customer.schema)
        for row in ssb.customer.iter_rows():
            assert fn(row) == (f1(row) and f2(row))


class TestFilteredInput:
    def run_reads(self, batches, predicate, schema):
        sim = Simulator(MachineSpec(cores=4, hz=1e9, oversub_penalty=0.0))
        ex = FifoExchange(sim, CostModel(), capacity=16, name="x")
        reader = ex.open_reader()
        fin = FilteredInput(reader, CostModel(), predicate, schema)
        got = []

        def producer():
            for b in batches:
                yield from ex.emit(b)
            ex.close()

        def consumer():
            while True:
                b = yield from fin.read()
                if b is END:
                    break
                got.extend(b.rows)

        sim.spawn(producer(), "p")
        sim.spawn(consumer(), "c")
        sim.run()
        return got, sim

    def test_no_predicate_passthrough(self, ssb):
        rows = list(ssb.supplier.iter_rows())[:10]
        got, _ = self.run_reads([Batch(rows, 1.0)], None, ssb.supplier.schema)
        assert got == rows

    def test_predicate_filters_and_charges(self, ssb):
        rows = list(ssb.supplier.iter_rows())
        pred = Cmp("=", "s_region", "ASIA")
        got, sim = self.run_reads([Batch(rows, 1.0)], pred, ssb.supplier.schema)
        fn = pred.compile(ssb.supplier.schema)
        assert got == [r for r in rows if fn(r)]
        assert sim.metrics.cpu_cycles_by_category["scans"] > 0  # predicate cost

    def test_empty_batches_pass_through_cheaply(self, ssb):
        got, _ = self.run_reads([Batch([], 1.0)], Cmp("=", "s_region", "ASIA"), ssb.supplier.schema)
        assert got == []

    @settings(max_examples=20, deadline=None)
    @given(threshold=st.integers(0, 300))
    def test_filter_oracle_property(self, ssb, threshold):
        rows = list(ssb.supplier.iter_rows())[:64]
        pred = Cmp("<", "s_suppkey", threshold)
        got, _ = self.run_reads([Batch(rows, 1.0)], pred, ssb.supplier.schema)
        assert got == [r for r in rows if r[0] < threshold]
