"""Paper Table 2: taxonomy of sharing methodologies (structural check of
the encoded table plus rendering)."""

from repro.bench.taxonomy import TABLE2, render_table2


def bench_table2_taxonomy(once, save_report):
    text = once(render_table2)
    save_report("table2_taxonomy", text)

    systems = [t.system for t in TABLE2]
    assert systems == [
        "Traditional query-centric model",
        "QPipe",
        "CJOIN",
        "DataPath",
        "SharedDB",
    ]
    by_name = {t.system: t for t in TABLE2}
    assert "Simultaneous Pipelining" in by_name["QPipe"].execution_engine_sharing
    assert "Global Query Plan" in by_name["CJOIN"].execution_engine_sharing
    assert "Circular scan" in by_name["QPipe"].io_layer_sharing
