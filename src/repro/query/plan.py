"""Physical plan nodes.

A plan is a tree of immutable nodes.  Each node exposes:

* ``children`` -- input nodes;
* ``schema`` -- output schema;
* ``signature`` -- canonical hashable encoding of the node *and its whole
  sub-plan*, the key for QPipe's common-sub-plan detection (two packets
  share iff signatures match and the interarrival is inside the pivot
  operator's Window of Opportunity).

Selection (:class:`SelectNode`) is *fused*: it never gets its own packet --
the consuming operator applies the predicate while reading (standard in
engines that exchange pages, and it keeps scan outputs raw so circular
scans can be shared across queries with different predicates).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

from repro.query.expr import Expr
from repro.storage.schema import Column, Schema

if TYPE_CHECKING:  # pragma: no cover
    from repro.storage.table import Table


@dataclass(frozen=True)
class AggSpec:
    """One aggregate function: ``func(expr) AS name``."""

    func: str  # 'sum' | 'count' | 'avg' | 'min' | 'max'
    expr: Expr | None  # None only for count(*)
    name: str

    def __post_init__(self) -> None:
        if self.func not in ("sum", "count", "avg", "min", "max"):
            raise ValueError(f"unknown aggregate {self.func!r}")
        if self.expr is None and self.func != "count":
            raise ValueError("only count(*) may omit an expression")

    @property
    def signature(self) -> tuple:
        return (self.func, self.expr.signature if self.expr else None, self.name)


@dataclass(frozen=True)
class DimJoinSpec:
    """One fact-to-dimension equi-join of a star query."""

    dim_table: str
    fact_fk: str  # foreign-key column on the fact table
    dim_key: str  # key column on the dimension
    predicate: Expr | None = None  # selection on the dimension
    payload: tuple[str, ...] = ()  # dimension columns needed downstream

    @property
    def signature(self) -> tuple:
        return (
            "dimjoin",
            self.dim_table,
            self.fact_fk,
            self.dim_key,
            self.predicate.signature if self.predicate else None,
            self.payload,
        )


class PlanNode:
    """Base class for plan nodes."""

    __slots__ = ("_signature",)

    @property
    def children(self) -> tuple["PlanNode", ...]:
        return ()

    @property
    def schema(self) -> Schema:
        raise NotImplementedError

    def _compute_signature(self) -> tuple:
        raise NotImplementedError

    @property
    def signature(self) -> tuple:
        sig = getattr(self, "_signature", None)
        if sig is None:
            sig = self._compute_signature()
            object.__setattr__(self, "_signature", sig)
        return sig

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        kids = ", ".join(repr(c) for c in self.children)
        return f"{type(self).__name__}({kids})"


class ScanNode(PlanNode):
    """Raw table scan.  Emits unfiltered pages, so a circular scan can be
    shared by queries with different predicates (linear WoP)."""

    __slots__ = ("table",)

    def __init__(self, table: "Table"):
        self.table = table

    @property
    def schema(self) -> Schema:
        return self.table.schema

    def _compute_signature(self) -> tuple:
        return ("scan", self.table.name)


class SelectNode(PlanNode):
    """Filter; fused into the consuming operator's input."""

    __slots__ = ("child", "predicate")

    def __init__(self, child: PlanNode, predicate: Expr):
        self.child = child
        self.predicate = predicate

    @property
    def children(self) -> tuple[PlanNode, ...]:
        return (self.child,)

    @property
    def schema(self) -> Schema:
        return self.child.schema

    def _compute_signature(self) -> tuple:
        return ("select", self.predicate.signature, self.child.signature)


class HashJoinNode(PlanNode):
    """Query-centric equi hash-join (build on ``build``, probe with
    ``probe``).  Step WoP: a satellite can reuse results only if it attaches
    before the first output tuple."""

    __slots__ = ("probe", "build", "probe_key", "build_key", "label")

    def __init__(
        self,
        probe: PlanNode,
        build: PlanNode,
        probe_key: str,
        build_key: str,
        label: str = "hj",
    ):
        self.probe = probe
        self.build = build
        self.probe_key = probe_key
        self.build_key = build_key
        self.label = label  # e.g. 'hj1'..'hj3': join depth, for sharing stats

    @property
    def children(self) -> tuple[PlanNode, ...]:
        return (self.probe, self.build)

    @property
    def schema(self) -> Schema:
        return self.probe.schema.concat(self.build.schema)

    def _compute_signature(self) -> tuple:
        return (
            "hashjoin",
            self.probe_key,
            self.build_key,
            self.probe.signature,
            self.build.signature,
        )


class AggregateNode(PlanNode):
    """Hash group-by aggregation.  Step WoP."""

    __slots__ = ("child", "group_by", "aggregates")

    def __init__(self, child: PlanNode, group_by: tuple[str, ...], aggregates: tuple[AggSpec, ...]):
        if not aggregates:
            raise ValueError("aggregation needs at least one aggregate")
        self.child = child
        self.group_by = tuple(group_by)
        self.aggregates = tuple(aggregates)

    @property
    def children(self) -> tuple[PlanNode, ...]:
        return (self.child,)

    @property
    def schema(self) -> Schema:
        cols = [self.child.schema.column(g) for g in self.group_by]
        cols += [Column(a.name, "float") for a in self.aggregates]
        return Schema(cols, row_bytes=8.0 * len(cols))

    def _compute_signature(self) -> tuple:
        return (
            "aggregate",
            self.group_by,
            tuple(a.signature for a in self.aggregates),
            self.child.signature,
        )


class SortNode(PlanNode):
    """Sort on ``keys`` ((column, ascending) pairs).  Linear WoP in the
    paper; SP for the sort stage is disabled in all its experiments."""

    __slots__ = ("child", "keys")

    def __init__(self, child: PlanNode, keys: tuple[tuple[str, bool], ...]):
        if not keys:
            raise ValueError("sort needs at least one key")
        self.child = child
        self.keys = tuple(keys)

    @property
    def children(self) -> tuple[PlanNode, ...]:
        return (self.child,)

    @property
    def schema(self) -> Schema:
        return self.child.schema

    def _compute_signature(self) -> tuple:
        return ("sort", self.keys, self.child.signature)


class CJoinNode(PlanNode):
    """The joins of one star query, evaluated by the shared CJOIN pipeline
    (global query plan).  Output = fact payload columns followed by each
    dimension's payload columns, already filtered by the fact predicate
    (CJOIN evaluates fact predicates on its *output*, Section 3.2).

    Step WoP for CJOIN-SP: an identical CJOIN packet arriving before the
    host's first output re-uses the host's results entirely, skipping
    admission, bitmap extension and distribution."""

    __slots__ = ("fact_table_obj", "dims", "dim_tables", "fact_predicate", "fact_payload")

    def __init__(
        self,
        fact_table: "Table",
        dims: tuple[DimJoinSpec, ...],
        fact_payload: tuple[str, ...],
        fact_predicate: Expr | None = None,
        dim_tables: tuple["Table", ...] = (),
    ):
        if not dims:
            raise ValueError("a star query joins at least one dimension")
        if dim_tables and len(dim_tables) != len(dims):
            raise ValueError("dim_tables must match dims")
        self.fact_table_obj = fact_table
        self.dims = tuple(dims)
        self.dim_tables = tuple(dim_tables)
        self.fact_payload = tuple(fact_payload)
        self.fact_predicate = fact_predicate

    @property
    def fact_table(self) -> str:
        return self.fact_table_obj.name

    @property
    def schema(self) -> Schema:
        cols = [self.fact_table_obj.schema.column(c) for c in self.fact_payload]
        for d in self.dims:
            cols += [Column(c, "str") for c in d.payload]
        return Schema(cols, row_bytes=16.0 * max(len(cols), 1))

    def _compute_signature(self) -> tuple:
        return (
            "cjoin",
            self.fact_table,
            tuple(d.signature for d in self.dims),
            self.fact_payload,
            self.fact_predicate.signature if self.fact_predicate else None,
        )


def referenced_tables(node: PlanNode) -> frozenset[str]:
    """Names of every base table the sub-plan rooted at ``node`` reads.

    The result cache records this per entry so an update to a table can
    invalidate exactly the materialized results derived from it."""
    names: set[str] = set()
    stack: list[PlanNode] = [node]
    while stack:
        n = stack.pop()
        if isinstance(n, ScanNode):
            names.add(n.table.name)
        elif isinstance(n, CJoinNode):
            names.add(n.fact_table)
            names.update(d.dim_table for d in n.dims)
        stack.extend(n.children)
    return frozenset(names)
