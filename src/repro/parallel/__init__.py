"""Parallel sweep fabric: multi-core execution of experiment cells.

Every sweep in :mod:`repro.bench` enumerates :class:`CellSpec`\\ s --
picklable, self-seeding descriptions of one simulation -- and hands them
to :func:`run_cells`, which executes them serially (``jobs=1``, the exact
in-process path) or across a ``ProcessPoolExecutor`` (``jobs=N`` /
``REPRO_JOBS``) and merges results by cell key.  Output is byte-identical
for any worker count; see :mod:`repro.parallel.cells` for why.
"""

from repro.parallel.cells import (
    CellResult,
    CellSpec,
    DatasetSpec,
    WorkloadSpec,
    current_fast_flags,
    execute_cell,
)
from repro.parallel.fabric import (
    JOBS_ENV,
    CellFailure,
    ParallelRunner,
    SweepError,
    SweepOutcome,
    resolve_jobs,
    run_cells,
)
from repro.parallel.workers import WorkerCrashed, WorkerHandle, WorkerUnresponsive

__all__ = [
    "JOBS_ENV",
    "CellFailure",
    "CellResult",
    "CellSpec",
    "DatasetSpec",
    "ParallelRunner",
    "SweepError",
    "SweepOutcome",
    "WorkerCrashed",
    "WorkerHandle",
    "WorkerUnresponsive",
    "WorkloadSpec",
    "current_fast_flags",
    "execute_cell",
    "resolve_jobs",
    "run_cells",
]
