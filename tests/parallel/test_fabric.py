"""Fabric mechanics: jobs resolution, robustness, ordered progress.

Cell-level determinism (parallel == serial, byte for byte) is covered in
``test_cells.py``; here the work items are tiny synthetic functions so the
failure paths run in milliseconds.
"""

from __future__ import annotations

import os
import time

import pytest

from repro.parallel import CellFailure, ParallelRunner, SweepError, resolve_jobs
from repro.parallel.fabric import JOBS_ENV

from tests.parallel._workers import (
    Item,
    always_raise,
    echo,
    exit_in_worker,
    raise_differently,
    raise_in_worker,
    sleep_then_echo,
)


def _items(n: int, **kwargs) -> list[Item]:
    return [Item(key=f"cell{i}", value=i, **kwargs) for i in range(n)]


# ---------------------------------------------------------------------------
# jobs resolution
# ---------------------------------------------------------------------------


def test_resolve_jobs_explicit_beats_env(monkeypatch):
    monkeypatch.setenv(JOBS_ENV, "8")
    assert resolve_jobs(3) == 3


def test_resolve_jobs_env_fallback(monkeypatch):
    monkeypatch.setenv(JOBS_ENV, "5")
    assert resolve_jobs(None) == 5


def test_resolve_jobs_default_serial(monkeypatch):
    monkeypatch.delenv(JOBS_ENV, raising=False)
    assert resolve_jobs(None) == 1


def test_resolve_jobs_rejects_garbage(monkeypatch):
    monkeypatch.setenv(JOBS_ENV, "many")
    with pytest.raises(ValueError):
        resolve_jobs(None)
    with pytest.raises(ValueError):
        resolve_jobs(0)


# ---------------------------------------------------------------------------
# mapping and merging
# ---------------------------------------------------------------------------


def test_serial_and_pool_agree():
    items = _items(6)
    serial = ParallelRunner(jobs=1).map(echo, items)
    pooled = ParallelRunner(jobs=3).map(echo, items)
    assert serial.results == pooled.results
    assert list(pooled.results) == [i.key for i in items]  # submission order
    assert serial.jobs == 1
    assert pooled.jobs == 3


def test_effective_jobs_capped_by_items():
    out = ParallelRunner(jobs=8).map(echo, _items(2))
    assert out.jobs == 2


def test_duplicate_keys_rejected():
    items = [Item(key="same", value=1), Item(key="same", value=2)]
    with pytest.raises(ValueError, match="duplicate cell keys"):
        ParallelRunner(jobs=1).map(echo, items)


def test_ordered_progress_lines():
    lines: list[str] = []
    items = _items(4)
    ParallelRunner(jobs=2, progress=lines.append).map(echo, items)
    assert [line.split("]")[0] for line in lines] == ["[1/4", "[2/4", "[3/4", "[4/4"]
    assert [line.split("] ")[1].split(":")[0] for line in lines] == [
        i.key for i in items
    ]


# ---------------------------------------------------------------------------
# robustness
# ---------------------------------------------------------------------------


def test_worker_exception_retried_serially():
    items = _items(3, parent_pid=os.getpid())
    out = ParallelRunner(jobs=2).map(raise_in_worker, items)
    assert not out.failures
    assert out.results == {f"cell{i}": i * 2 for i in range(3)}


def test_worker_crash_retried_serially():
    # os._exit in the worker takes the pool down (BrokenProcessPool);
    # every lost cell must still be recovered by the one serial retry.
    items = _items(2, parent_pid=os.getpid())
    out = ParallelRunner(jobs=2).map(exit_in_worker, items)
    assert not out.failures
    assert out.results == {"cell0": 0, "cell1": 2}


def test_persistent_failure_is_structured():
    out = ParallelRunner(jobs=2).map(always_raise, _items(2))
    assert not out.results
    assert len(out.failures) == 2
    for failure in out.failures:
        assert isinstance(failure, CellFailure)
        assert failure.kind == "error"
        assert "persistent failure" in failure.message


def test_serial_failure_is_structured():
    out = ParallelRunner(jobs=1).map(always_raise, _items(2))
    assert not out.results
    assert [f.kind for f in out.failures] == ["error", "error"]


def test_failed_retry_keeps_original_worker_reason():
    # The worker raises one error, the serial retry a different one: the
    # structured failure must report BOTH -- losing the worker-side reason
    # would hide the failure that actually happened first.
    items = _items(2, parent_pid=os.getpid())
    out = ParallelRunner(jobs=2).map(raise_differently, items)
    assert not out.results
    assert len(out.failures) == 2
    for i, failure in enumerate(out.failures):
        assert failure.kind == "error"
        assert f"worker-side reason for cell{i}" in failure.message
        assert f"parent-side reason for cell{i}" in failure.message
        assert "retry also failed" in failure.message


def test_timeout_is_structured_not_a_hang():
    # One cell sleeps far longer than the timeout; the sweep must return
    # a "timeout" failure quickly and still deliver the other cell.
    items = [
        Item(key="stuck", sleep_s=60.0),
        Item(key="fine", value=21),
    ]
    t0 = time.perf_counter()
    out = ParallelRunner(jobs=2, timeout=1.0).map(sleep_then_echo, items)
    elapsed = time.perf_counter() - t0
    assert elapsed < 30.0  # nowhere near the 60s sleep
    assert [f.key for f in out.failures] == ["stuck"]
    assert out.failures[0].kind == "timeout"
    assert out.results == {"fine": 42}


def test_run_cells_style_raise_on_failure():
    runner = ParallelRunner(jobs=1)
    out = runner.map(always_raise, _items(1))
    with pytest.raises(SweepError, match="1 cell\\(s\\) failed"):
        raise SweepError(out.failures)
