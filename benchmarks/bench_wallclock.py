#!/usr/bin/env python
"""Wall-clock benchmark of the harness itself: row-at-a-time vs vectorized.

Times fixed seeded workloads twice -- once with the fast path disabled
(per-row closures, one simulator event per CPU charge) and once enabled
(batch kernels + fused charges) -- and writes the before/after numbers to
``BENCH_wallclock.json`` at the repo root.  Simulated results are
bit-identical either way (tests/engine/test_golden_determinism.py); this
benchmark measures only how fast the *host* machine gets them.

Usage::

    python benchmarks/bench_wallclock.py          # default settings
    python benchmarks/bench_wallclock.py --fast   # CI smoke (small sweeps)

Exits non-zero only on crash or on a simulated-results mismatch between the
two modes; the speedup threshold is warn-only (host machines vary)."""

from __future__ import annotations

import argparse
import json
import os
import pathlib
import platform
import statistics
import sys
import time

sys.path.insert(0, str(pathlib.Path(__file__).resolve().parent.parent / "src"))

import dataclasses

from repro.bench.experiments import fig10_concurrency, fig13_scale_factor
from repro.bench.runner import POSTGRES, run_batch
from repro.bench.workload import QueryJob, gqp_skewed_workload, q32_random_workload
from repro.data import generate_ssb
from repro.data.rng import make_rng
from repro.engine.config import (
    CJOIN,
    CJOIN_SP,
    QPIPE_SP,
    arrangements_default,
    columnar_pages_default,
    fast_path,
    packed_storage_default,
)
from repro.query.ssb_queries import random_q11
from repro.storage.manager import StorageConfig
from repro.storage.packed import column_nbytes

ROOT = pathlib.Path(__file__).resolve().parent.parent
OUT_PATH = ROOT / "BENCH_wallclock.json"

ENGINES = {
    "QPipe-SP": QPIPE_SP,
    "CJOIN": CJOIN,
    "CJOIN-SP": CJOIN_SP,
    "Postgres": POSTGRES,
}


#: Sub-second rows get at least this many repetitions: at ~0.1-0.6 s a
#: single scheduler hiccup is a 10-50% error, and extra reps are cheap
#: exactly when the row is fast.  Multi-second rows (the experiment
#: sweeps) keep the caller's count -- reps are expensive there and the
#: relative noise is small.
MIN_REPS_SUBSECOND = 5


def _timed(fn, reps: int = 1):
    """Wall-clock time over ``reps`` repetitions.  The run is deterministic,
    so the minimum is the cleanest point estimate on a loaded host; the full
    per-rep list is kept so the report shows the min/median spread.  When
    the first repetition finishes in under a second the count is raised to
    ``MIN_REPS_SUBSECOND`` (noise floor dominates short rows)."""
    times = []
    out = None
    target = max(reps, 1)
    while len(times) < target:
        t0 = time.perf_counter()
        out = fn()
        times.append(time.perf_counter() - t0)
        if len(times) == 1 and times[0] < 1.0:
            target = max(target, MIN_REPS_SUBSECOND)
    return min(times), out, times


def _spread(times: list[float]) -> dict:
    """min/median summary plus the raw per-rep samples."""
    return {
        "min_s": round(min(times), 3),
        "median_s": round(statistics.median(times), 3),
        "reps_s": [round(t, 3) for t in times],
    }


def _engine_fingerprint(result) -> dict:
    """Simulated measurements that must not depend on the fast path."""
    return {
        "sim_seconds": result.sim_seconds,
        "response_times": result.response_times,
        "cpu_breakdown": result.cpu_breakdown,
    }


def bench_engines(n: int, sf: float, seed: int, reps: int = 1) -> dict:
    """One batch of ``n`` random Q3.2 instances per engine, both modes."""
    ds = generate_ssb(sf, seed)
    workload = q32_random_workload(n, seed)
    storage = StorageConfig(resident="memory")
    out = {}
    # The enabled mode keeps the process-wide columnar default, so a
    # ``REPRO_COLUMNAR=0`` run times the row-plane fallback (the CI
    # row-plane smoke leg) instead of silently re-enabling columnar.
    columnar = columnar_pages_default()
    for name, config in ENGINES.items():
        with fast_path(batch_kernels=False, fuse_charges=False):
            before_s, before, before_reps = _timed(
                lambda: run_batch(ds.tables, config, workload, storage), reps
            )
        with fast_path(batch_kernels=True, fuse_charges=True, columnar_pages=columnar):
            after_s, after, after_reps = _timed(
                lambda: run_batch(ds.tables, config, workload, storage), reps
            )
        if _engine_fingerprint(before) != _engine_fingerprint(after):
            raise SystemExit(
                f"SIMULATED RESULTS DIVERGED for {name}: the fast path "
                "changed ticks or charges -- this is a bug, not a perf issue"
            )
        out[name] = {
            "n_queries": n,
            "before_s": round(before_s, 3),
            "after_s": round(after_s, 3),
            "speedup": round(before_s / after_s, 2) if after_s else None,
            "before": _spread(before_reps),
            "after": _spread(after_reps),
        }
    return out


def bench_cjoin_chain(n: int, sf: float, seed: int, reps: int = 1) -> dict:
    """The CJOIN filter-chain row: per-row probe loop vs columnar kernels.

    Both runs keep the default fast path; the only difference is
    ``gqp_filter_kernels``.  Every query in the workload references every
    dimension, so no filter is ever skipped and the simulated results must
    be identical -- this row isolates the host-side cost of the chain's
    probe loop itself."""
    ds = generate_ssb(sf, seed)
    workload = gqp_skewed_workload(n, seed)
    storage = StorageConfig(resident="memory")
    rowwise = dataclasses.replace(CJOIN_SP, gqp_filter_kernels=False)
    columnar = dataclasses.replace(CJOIN_SP, gqp_filter_kernels=True)
    before_s, before, before_reps = _timed(
        lambda: run_batch(ds.tables, rowwise, workload, storage), reps
    )
    after_s, after, after_reps = _timed(
        lambda: run_batch(ds.tables, columnar, workload, storage), reps
    )
    if _engine_fingerprint(before) != _engine_fingerprint(after):
        raise SystemExit(
            "SIMULATED RESULTS DIVERGED for the CJOIN filter chain: the "
            "columnar kernels changed ticks or charges with no skipped "
            "filter -- this is a bug, not a perf issue"
        )
    return {
        "CJOIN filter chain (columnar kernels)": {
            "n_queries": n,
            "before_s": round(before_s, 3),
            "after_s": round(after_s, 3),
            "speedup": round(before_s / after_s, 2) if after_s else None,
            "before": _spread(before_reps),
            "after": _spread(after_reps),
        }
    }


def bench_columnar_pages(n: int, sf: float, seed: int, reps: int = 1) -> dict:
    """The columnar-pages row: the full four-engine batch with the
    late-materialized data plane off vs on (batch kernels and fused
    charges stay on in both runs, so the row isolates the columnar
    plane's host-side contribution).  Simulated results are asserted
    identical per engine -- charges are computed from row counts, which
    the columnar plane preserves exactly."""
    ds = generate_ssb(sf, seed)
    workload = q32_random_workload(n, seed)
    storage = StorageConfig(resident="memory")

    def run_all():
        return {
            name: run_batch(ds.tables, config, workload, storage)
            for name, config in ENGINES.items()
        }

    with fast_path(batch_kernels=True, fuse_charges=True, columnar_pages=False):
        before_s, before, before_reps = _timed(run_all, reps)
    with fast_path(batch_kernels=True, fuse_charges=True, columnar_pages=True):
        after_s, after, after_reps = _timed(run_all, reps)
    for name in ENGINES:
        if _engine_fingerprint(before[name]) != _engine_fingerprint(after[name]):
            raise SystemExit(
                f"SIMULATED RESULTS DIVERGED for {name}: the columnar plane "
                "changed ticks or charges -- this is a bug, not a perf issue"
            )
    return {
        "Columnar pages (all engines, off vs on)": {
            "n_queries": n,
            "before_s": round(before_s, 3),
            "after_s": round(after_s, 3),
            "speedup": round(before_s / after_s, 2) if after_s else None,
            "before": _spread(before_reps),
            "after": _spread(after_reps),
        }
    }


def bench_arrangements_row(n: int, sf: float, seed: int, reps: int = 1) -> dict:
    """The shared-arrangements row: the full four-engine batch with
    refcounted build-side sharing off vs on (batch kernels, fused charges
    and the columnar default stay fixed in both runs, so the row isolates
    the arrangement layer's host-side contribution).  Simulated results
    are asserted identical per engine -- every build-input read and
    hashing charge is still paid per query; only the Python index is
    shared (tests/engine/test_golden_determinism.py holds the same)."""
    from repro.storage.arrangements import ARRANGEMENTS

    ds = generate_ssb(sf, seed)
    workload = q32_random_workload(n, seed)
    storage = StorageConfig(resident="memory")
    columnar = columnar_pages_default()

    def run_all():
        return {
            name: run_batch(ds.tables, config, workload, storage)
            for name, config in ENGINES.items()
        }

    with fast_path(
        batch_kernels=True, fuse_charges=True,
        columnar_pages=columnar, arrangements=False,
    ):
        before_s, before, before_reps = _timed(run_all, reps)
    stats0 = ARRANGEMENTS.stats()
    with fast_path(
        batch_kernels=True, fuse_charges=True,
        columnar_pages=columnar, arrangements=True,
    ):
        after_s, after, after_reps = _timed(run_all, reps)
    stats1 = ARRANGEMENTS.stats()
    for name in ENGINES:
        if _engine_fingerprint(before[name]) != _engine_fingerprint(after[name]):
            raise SystemExit(
                f"SIMULATED RESULTS DIVERGED for {name}: shared arrangements "
                "changed ticks or charges -- this is a bug, not a perf issue"
            )
    return {
        "Shared arrangements (all engines, off vs on)": {
            "n_queries": n,
            "before_s": round(before_s, 3),
            "after_s": round(after_s, 3),
            "speedup": round(before_s / after_s, 2) if after_s else None,
            "before": _spread(before_reps),
            "after": _spread(after_reps),
            "arrangement_counters": {
                k: stats1[k] - stats0[k]
                for k in ("hits", "builds", "evictions", "invalidations")
            },
        }
    }


def _fact_bytes_resident(ds) -> int:
    """Resident bytes of the fact table's live column vectors (whatever
    layout the current flags built)."""
    fact = ds.tables["lineorder"]
    return sum(
        column_nbytes(col, cd.kind)
        for col, cd in zip(fact.columns(), fact.schema.columns)
    )


def bench_packed_storage(n: int, sf: float, seed: int, reps: int = 1) -> dict:
    """The packed-storage rows: one row per engine, packed vectors off vs
    on (columnar plane, batch kernels and fused charges stay on in both
    runs, so each row isolates the packed layer's host-side contribution
    on a scan/filter-dominated workload).

    The workload is ``n`` random SSB Q1.1 instances: a single-dimension
    join plus a two-term fact predicate on ``lo_discount`` (11 distinct
    values) and ``lo_quantity`` (50) -- both dictionary-encoded, so the
    packed run selects through memoized per-page predicate bitmaps ANDed
    as single ints, while the boxed run filters boxed lists.  The dataset
    is regenerated inside each mode: layout is baked in at table build
    time (the memo is keyed by the effective flag).  Each row also
    carries the fact table's resident column bytes per mode -- the memory
    win ships with the speed win in one artifact."""
    storage = StorageConfig(resident="memory")

    def q11_workload():
        rng = make_rng(seed, "bench-q11")
        return [QueryJob(spec=random_q11(rng)) for _ in range(n)]

    out = {}
    for name, config in ENGINES.items():
        with fast_path(
            batch_kernels=True, fuse_charges=True,
            columnar_pages=True, packed_storage=False,
        ):
            ds = generate_ssb(sf, seed)
            boxed_bytes = _fact_bytes_resident(ds)
            workload = q11_workload()
            before_s, before, before_reps = _timed(
                lambda: run_batch(ds.tables, config, workload, storage), reps
            )
        with fast_path(
            batch_kernels=True, fuse_charges=True,
            columnar_pages=True, packed_storage=True,
        ):
            ds = generate_ssb(sf, seed)
            packed_bytes = _fact_bytes_resident(ds)
            workload = q11_workload()
            after_s, after, after_reps = _timed(
                lambda: run_batch(ds.tables, config, workload, storage), reps
            )
        if _engine_fingerprint(before) != _engine_fingerprint(after):
            raise SystemExit(
                f"SIMULATED RESULTS DIVERGED for {name}: packed storage "
                "changed ticks or charges -- this is a bug, not a perf issue"
            )
        out[f"Packed storage ({name}, off vs on)"] = {
            "n_queries": n,
            "before_s": round(before_s, 3),
            "after_s": round(after_s, 3),
            "speedup": round(before_s / after_s, 2) if after_s else None,
            "before": _spread(before_reps),
            "after": _spread(after_reps),
            "bytes_resident": {
                "boxed": boxed_bytes,
                "packed": packed_bytes,
                "packed_vs_boxed": (
                    round(packed_bytes / boxed_bytes, 3) if boxed_bytes else None
                ),
            },
        }
    return out


def memory_report(sf: float, seed: int) -> dict:
    """Resident bytes of the fact table's layouts: the row-tuple forest,
    the packed column vectors (dictionary codes + typed arrays), and what
    the same columns cost as boxed lists -- the data-plane footprint the
    packed layer trades against.  Informational: never part of any
    simulated metric."""
    from repro.storage.packed import as_list

    ds = generate_ssb(sf, seed)
    fact = ds.tables["lineorder"]
    footprint = fact.memory_footprint()
    rows_b, cols_b = footprint["rows_bytes"], footprint["columns_bytes"]
    boxed_b = sum(
        column_nbytes(list(as_list(col)), cd.kind)
        for col, cd in zip(fact.columns(), fact.schema.columns)
    )
    return {
        "fact_table": fact.name,
        "sf": sf,
        "rows": fact.num_rows,
        "rows_bytes": rows_b,
        "columns_bytes": cols_b,
        "boxed_columns_bytes": boxed_b,
        "columns_vs_rows": round(cols_b / rows_b, 3) if rows_b else None,
        "packed_vs_boxed": round(cols_b / boxed_b, 3) if boxed_b else None,
        "column_layouts": footprint["column_layouts"],
    }


def bench_experiment(name: str, fn, reps: int = 1) -> dict:
    """One full paper experiment (its default settings), both modes.

    ``fn`` already has the fabric ``jobs`` count baked in (see ``main``);
    both modes use the same count, so the before/after speedup still
    isolates the fast path."""
    with fast_path(batch_kernels=False, fuse_charges=False):
        before_s, _, before_reps = _timed(fn, reps)
    with fast_path(
        batch_kernels=True, fuse_charges=True, columnar_pages=columnar_pages_default()
    ):
        after_s, _, after_reps = _timed(fn, reps)
    return {
        "before_s": round(before_s, 1),
        "after_s": round(after_s, 1),
        "speedup": round(before_s / after_s, 2) if after_s else None,
        "before": _spread(before_reps),
        "after": _spread(after_reps),
    }


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.split("\n")[0])
    parser.add_argument("--fast", action="store_true",
                        help="small sweeps for CI smoke (minutes -> seconds)")
    parser.add_argument("--out", type=pathlib.Path, default=OUT_PATH,
                        help=f"output path (default {OUT_PATH.name} at repo root)")
    parser.add_argument("--reps", type=int, default=None,
                        help="repetitions per timing (best-of-N; default 2, "
                             "1 with --fast)")
    parser.add_argument("--jobs", type=int, default=None,
                        help="fabric worker processes for the experiment "
                             "sweeps (default: REPRO_JOBS or 1)")
    args = parser.parse_args(argv)
    reps = args.reps if args.reps is not None else (1 if args.fast else 2)

    from repro.parallel import resolve_jobs

    jobs = resolve_jobs(args.jobs)
    report: dict = {
        "host": {
            "python": platform.python_version(),
            "machine": platform.machine(),
            "mode": "fast" if args.fast else "default",
            "cpus": os.cpu_count(),
            "jobs": jobs,
            "columnar_default": columnar_pages_default(),
            "packed_default": packed_storage_default(),
            "arrangements_default": arrangements_default(),
        },
        "engines": {},
        "experiments": {},
    }

    report["host"]["reps"] = reps
    if args.fast:
        report["engines"] = bench_engines(n=16, sf=0.5, seed=42, reps=reps)
        report["engines"].update(bench_cjoin_chain(n=16, sf=0.5, seed=42, reps=reps))
        report["engines"].update(bench_columnar_pages(n=16, sf=0.5, seed=42, reps=reps))
        report["engines"].update(bench_packed_storage(n=16, sf=0.5, seed=42, reps=reps))
        report["engines"].update(bench_arrangements_row(n=16, sf=0.5, seed=42, reps=reps))
        report["memory"] = memory_report(sf=0.5, seed=42)
        report["experiments"]["fig10_concurrency"] = bench_experiment(
            "fig10", lambda: fig10_concurrency(
                concurrency=(1, 8), sf=0.5, resident=("memory",), jobs=jobs),
            reps,
        )
        report["experiments"]["fig13_scale_factor"] = bench_experiment(
            "fig13", lambda: fig13_scale_factor(
                scale_factors=(0.5,), n_queries=4, jobs=jobs),
            reps,
        )
    else:
        report["engines"] = bench_engines(n=64, sf=1.0, seed=42, reps=reps)
        report["engines"].update(bench_cjoin_chain(n=64, sf=1.0, seed=42, reps=reps))
        report["engines"].update(bench_columnar_pages(n=64, sf=1.0, seed=42, reps=reps))
        report["engines"].update(bench_packed_storage(n=64, sf=1.0, seed=42, reps=reps))
        report["engines"].update(bench_arrangements_row(n=64, sf=1.0, seed=42, reps=reps))
        report["memory"] = memory_report(sf=1.0, seed=42)
        report["experiments"]["fig10_concurrency"] = bench_experiment(
            "fig10", lambda: fig10_concurrency(jobs=jobs), reps
        )
        report["experiments"]["fig13_scale_factor"] = bench_experiment(
            "fig13", lambda: fig13_scale_factor(jobs=jobs), reps
        )

    args.out.write_text(json.dumps(report, indent=1, sort_keys=True) + "\n")

    print(f"wrote {args.out}")
    width = max(len(k) for k in {**report["engines"], **report["experiments"]})
    for section in ("engines", "experiments"):
        for name, cell in report[section].items():
            print(f"  {name:<{width}}  before {cell['before_s']:>8}s"
                  f"  after {cell['after_s']:>8}s  speedup {cell['speedup']}x"
                  f"  (median after {cell['after']['median_s']}s)")
    slow = [
        name
        for section in ("engines", "experiments")
        for name, cell in report[section].items()
        if (cell["speedup"] or 0) < 2.0
    ]
    if slow:
        # Warn-only: host load varies, and the determinism tests are the
        # real gate.  CI fails only on crash or simulated-result divergence.
        print(f"WARNING: speedup below 2x for: {', '.join(slow)}", file=sys.stderr)
    return 0


if __name__ == "__main__":
    sys.exit(main())
