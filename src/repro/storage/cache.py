"""OS page-cache model.

Sits between the buffer pool and the disk.  File-system caching matters to
the paper in two places (Section 5.2.2, Figure 13): it coalesces and
read-aheads sequential scans, masking the CJOIN preprocessor's per-tuple
overhead, and it absorbs repeated dimension-table scans during CJOIN
admission.  ``direct_io`` reads bypass this cache entirely, which is how the
paper isolates the preprocessor overhead.

The cache is a byte-capacity LRU over (table, page) keys.  Hits cost nothing
(the buffer pool layer already charges its own CPU); misses go to the disk
device in simulated time.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import TYPE_CHECKING, Any, Iterator

from repro.sim.commands import IO

if TYPE_CHECKING:  # pragma: no cover
    from repro.sim.engine import Simulator


class OsPageCache:
    """LRU file-system cache in front of one disk device."""

    def __init__(self, sim: "Simulator", capacity_bytes: float, device: str = "disk"):
        if capacity_bytes < 0:
            raise ValueError("capacity must be >= 0")
        self.sim = sim
        self.capacity_bytes = capacity_bytes
        self.device = device
        self._resident: OrderedDict[tuple[str, int], float] = OrderedDict()
        self._bytes = 0.0
        self.hits = 0
        self.misses = 0

    # ------------------------------------------------------------------
    @property
    def resident_bytes(self) -> float:
        return self._bytes

    def contains(self, key: tuple[str, int]) -> bool:
        return key in self._resident

    def read(self, key: tuple[str, int], nbytes: float, sequential: bool = True) -> Iterator[Any]:
        """Read a page through the cache (generator: may block on disk)."""
        if key in self._resident:
            self.hits += 1
            self.sim.metrics.bump("os_cache_hits")
            self._resident.move_to_end(key)
            return
        self.misses += 1
        self.sim.metrics.bump("os_cache_misses")
        yield IO(self.device, nbytes, sequential)
        self._insert(key, nbytes)

    def read_direct(self, nbytes: float, sequential: bool = True) -> Iterator[Any]:
        """Direct I/O: bypass the cache (no admission, no hit)."""
        yield IO(self.device, nbytes, sequential)

    # ------------------------------------------------------------------
    def _insert(self, key: tuple[str, int], nbytes: float) -> None:
        if nbytes > self.capacity_bytes:
            return  # page larger than the whole cache: don't cache
        if key in self._resident:
            self._resident.move_to_end(key)
            return
        self._resident[key] = nbytes
        self._bytes += nbytes
        while self._bytes > self.capacity_bytes and self._resident:
            _old, old_bytes = self._resident.popitem(last=False)
            self._bytes -= old_bytes

    def drop(self) -> None:
        """Drop all cached pages (the paper clears FS caches before every
        measurement)."""
        self._resident.clear()
        self._bytes = 0.0
