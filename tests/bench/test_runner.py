"""Tests for the experiment runner."""

import pytest

from repro.bench.runner import (
    POSTGRES,
    geometric_levels,
    percentile,
    run_batch,
    run_closed_loop,
)
from repro.bench.workload import q32_random_workload, ssb_mix_workload, mix_spec_factory
from repro.data import generate_ssb
from repro.engine import CJOIN_SP, QPIPE_SP
from repro.storage import StorageConfig


@pytest.fixture(scope="module")
def tables():
    return generate_ssb(0.5, seed=66).tables


class TestRunBatch:
    def test_collects_all_metrics(self, tables):
        r = run_batch(tables, QPIPE_SP, q32_random_workload(4, seed=1))
        assert r.config_name == "QPipe-SP"
        assert r.n_queries == 4
        assert len(r.response_times) == 4
        assert r.mean_response > 0
        assert r.sim_seconds >= max(r.response_times)
        assert r.avg_cores_used > 0
        assert set(r.cpu_breakdown) == {"hashing", "joins", "aggregation", "scans", "locks", "misc"}
        assert r.total_cpu_seconds > 0

    def test_postgres_selector(self, tables):
        r = run_batch(tables, POSTGRES, q32_random_workload(2, seed=1))
        assert r.config_name == "Postgres"
        assert r.sharing == {}

    def test_memory_vs_disk_read_rates(self, tables):
        wl = q32_random_workload(2, seed=1)
        mem = run_batch(tables, QPIPE_SP, wl, StorageConfig(resident="memory"))
        disk = run_batch(tables, QPIPE_SP, wl, StorageConfig(resident="disk"))
        assert mem.avg_read_mb_s == 0
        assert disk.avg_read_mb_s > 0

    def test_empty_workload_rejected(self, tables):
        with pytest.raises(ValueError):
            run_batch(tables, QPIPE_SP, [])

    def test_stdev_single_query_is_zero(self, tables):
        r = run_batch(tables, QPIPE_SP, q32_random_workload(1, seed=1))
        assert r.stdev_response == 0.0

    def test_deterministic(self, tables):
        wl = ssb_mix_workload(3, seed=5)
        a = run_batch(tables, CJOIN_SP, wl)
        b = run_batch(tables, CJOIN_SP, wl)
        assert a.response_times == b.response_times
        assert a.cpu_breakdown == b.cpu_breakdown


class TestClosedLoop:
    def test_counts_completions(self, tables):
        r = run_closed_loop(
            tables, QPIPE_SP, mix_spec_factory(1), n_clients=2, duration=20.0
        )
        assert r.completed >= 2  # each client finishes at least one query
        assert r.queries_per_hour > 0
        assert r.n_clients == 2

    def test_more_clients_more_throughput_when_unsaturated(self, tables):
        f = mix_spec_factory(1)
        one = run_closed_loop(tables, CJOIN_SP, f, 1, 30.0)
        four = run_closed_loop(tables, CJOIN_SP, f, 4, 30.0)
        assert four.completed > one.completed

    def test_validation(self, tables):
        with pytest.raises(ValueError):
            run_closed_loop(tables, QPIPE_SP, mix_spec_factory(1), 0, 10.0)


class TestHelpers:
    def test_geometric_levels(self):
        assert geometric_levels(1, 64) == [1, 2, 4, 8, 16, 32, 64]
        assert geometric_levels(1, 48) == [1, 2, 4, 8, 16, 32, 48]
        assert geometric_levels(4, 4) == [4]

    def test_percentile(self):
        xs = [1.0, 2.0, 3.0, 4.0]
        assert percentile(xs, 0.0) == 1.0
        assert percentile(xs, 1.0) == 4.0
        assert percentile(xs, 0.5) == pytest.approx(2.5)
        with pytest.raises(ValueError):
            percentile([], 0.5)
