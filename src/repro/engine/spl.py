"""Shared Pages Lists (SPL): pull-based sharing for Simultaneous Pipelining.

This is the paper's Section 4 contribution.  An SPL is a bounded linked list
of pages with **one producer and many consumers**: the producer appends at
the head and pays only its own append cost; each consumer walks the list
independently and pays its own read cost.  Sharing therefore adds *nothing*
to the producer's critical path -- the serialization point of push-based SP
disappears, and SP becomes beneficial at every concurrency level.

Design elements from the paper's Figure 8:

* a lock (charged as ``locks`` CPU per operation; contention is modelled by
  the lock's wait queue),
* per-page atomic reader counters -- the last consumer deletes the page,
* a bounded maximum size -- the producer blocks when consumers lag,
* per-consumer points of entry and page budgets for the **linear WoP**:
  a consumer joining a circular scan mid-stream is addressed exactly
  ``num_pages`` pages from its entry point; the page on which its budget
  reaches zero records it as a *finishing packet* and it stops being
  addressed by subsequent pages.
"""

from __future__ import annotations

import itertools
from typing import TYPE_CHECKING, Any, Iterator

from repro.sim.commands import BLOCK, CPU, CPU_FUSED
from repro.sim.sync import Condition, Lock
from repro.storage.page import Batch

from repro.engine.exchange import END

if TYPE_CHECKING:  # pragma: no cover
    from repro.sim.costmodel import CostModel
    from repro.sim.engine import Simulator

_spl_ids = itertools.count()


class _SplPage:
    __slots__ = ("batch", "readers")

    def __init__(self, batch: Batch, readers: int):
        self.batch = batch
        self.readers = readers


class SplConsumer:
    """One consumer's cursor into an SPL."""

    __slots__ = (
        "spl",
        "next_seq",
        "addressed",
        "read_count",
        "budget",
        "closed_for_new",
        "entry_seq",
        "deferred",
        "lock_prepaid",
    )

    def __init__(self, spl: "SharedPagesList", entry_seq: int, budget: int | None):
        self.spl = spl
        self.entry_seq = entry_seq  # point of entry (paper 4.2)
        self.next_seq = entry_seq
        self.addressed = 0  # pages emitted while this consumer was active
        self.read_count = 0
        self.budget = budget  # pages still to be addressed; None = unbounded
        self.closed_for_new = budget == 0
        self.deferred = False  # read charges handed to the caller to fuse
        self.lock_prepaid = False  # next read's lock charge already metered

    def read(self) -> Iterator[Any]:
        # Plain call returning the SPL's generator: ``yield from`` drives it
        # identically, without an extra delegating frame per page read.
        return self.spl.read(self)

    def defer_read_charge(self):
        """Opt this consumer into *deferred* per-page read charges (fast
        mode only).  ``read`` then returns each page without yielding its
        ``spl_read_page`` charge; the caller must fuse the returned command
        in front of the very next CPU charge it yields after every
        successful (non-END) read -- everything in between must be pure
        computation, so the fused parts complete at exactly the instants
        the separate yields would have.  Returns None (and changes
        nothing) when the SPL is not in fused mode."""
        spl = self.spl
        if spl.fuse and spl._read_charge.cycles > 0:
            self.deferred = True
            return spl._read_charge
        return None

    def prepay_lock_charge(self):
        """Fast mode: the lock charge of this consumer's *next* ``read``
        may be fused as the last part of the command the caller yields
        right before that read -- ``take_or_enqueue`` still runs at the
        charge's completion instant, and only pure computation separates
        the two.  Returns the lock charge to fuse, or None when
        unavailable.  The caller must set ``lock_prepaid`` each time it
        actually fuses the charge, and must keep reading until END (the
        END-returning read consumes the final prepaid charge, exactly as
        the unfused read would have paid it)."""
        spl = self.spl
        charge = spl._lock.charge_cmd
        if spl.fuse and charge is not None and charge.cycles > 0:
            return charge
        return None


class SharedPagesList:
    """Single-producer(*) multi-consumer bounded list of pages.

    (*) The CJOIN distributor uses several distributor-part threads feeding
    one query's output; emission is lock-protected, so multiple producers
    interleave safely -- ``close`` must still be called exactly once."""

    def __init__(
        self,
        sim: "Simulator",
        cost: "CostModel",
        max_pages: int,
        name: str | None = None,
        fuse: bool = False,
    ):
        if max_pages < 1:
            raise ValueError("max_pages must be >= 1")
        self.sim = sim
        self.cost = cost
        self.max_pages = max_pages
        self.name = name or f"spl{next(_spl_ids)}"
        self._pages: dict[int, _SplPage] = {}
        self._head_seq = 0
        self._consumers: list[SplConsumer] = []
        self._producer_done = False
        self._lock = Lock(sim, f"{self.name}.lock", acquire_cycles=cost.spl_lock_cycles)
        self._not_empty = Condition(sim, f"{self.name}.ne")
        self._not_full = Condition(sim, f"{self.name}.nf")
        self.pages_emitted = 0
        # Fixed-cost charges built once; read/emit yield these cached
        # (immutable) instances instead of constructing one per page.
        self._emit_charge = CPU(cost.spl_emit_page, "misc")
        self._read_charge = CPU(cost.spl_read_page, "misc")
        #: fast mode (``fuse_charges``): yield the emit and lock charges as
        #: one fused command, and let consumers defer their read charge
        #: into the next command they yield.  Neither moves a charge to a
        #: different simulated instant (fused parts are metered and
        #: completed exactly like the separate yields), so both modes
        #: produce bit-identical results.  Zero-cost charges stay unfused:
        #: a zero-cycle *command* resumes through the event heap while a
        #: zero-cycle fused *part* would ride the pool, which could order
        #: differently against same-instant events.
        self.fuse = bool(fuse)
        self._emit_lock_charge = (
            CPU_FUSED(self._emit_charge, self._lock.charge_cmd)
            if fuse and cost.spl_emit_page > 0 and self._lock.charge_cmd is not None
            else None
        )

    # ------------------------------------------------------------------
    @property
    def closed(self) -> bool:
        return self._producer_done

    @property
    def size(self) -> int:
        """Pages currently retained (emitted but not yet fully consumed)."""
        return len(self._pages)

    @property
    def active_consumers(self) -> int:
        """Consumers still being addressed by new pages."""
        return sum(1 for c in self._consumers if not c.closed_for_new)

    def register(self, budget: int | None = None) -> SplConsumer:
        """Add a consumer at the current head (its point of entry)."""
        consumer = SplConsumer(self, self._head_seq, budget)
        self._consumers.append(consumer)
        return consumer

    # ------------------------------------------------------------------
    def emit(self, batch: Batch, lead=None) -> Iterator[Any]:
        """Producer: append one page.  Blocks while the list is at its
        maximum size.  The producer pays only its own append cost.

        ``lead`` (fast mode) is an extra CPU charge the producer wants
        metered immediately before the emit charge -- e.g. a scan's
        per-page cycles.  It is fused in front of the emit+lock command,
        which is legal because the producer does nothing observable
        between those yields."""
        if self._producer_done:
            raise RuntimeError(f"emit on closed SPL {self.name!r}")
        lock = self._lock
        me = self.sim.current
        fused = self._emit_lock_charge
        if fused is not None:
            # Fast mode: emit charge + lock charge (+ optional lead) in one
            # command; each part completes at the exact instant its
            # separate yield would have, and ``take_or_enqueue`` still runs
            # at the lock charge's completion instant.
            yield CPU_FUSED(lead, fused) if lead is not None else fused
            if not lock.take_or_enqueue(me):
                yield BLOCK
                lock.confirm_after_block(me)
        else:
            if lead is not None:
                yield lead
            yield self._emit_charge
            # Inline lock protocol (one emit per page is a hot path); the
            # yielded commands are exactly ``yield from self._lock.acquire()``.
            if lock.charge_cmd is not None:
                yield lock.charge_cmd
            if not lock.take_or_enqueue(me):
                yield BLOCK
                lock.confirm_after_block(me)
        try:
            while len(self._pages) >= self.max_pages:
                lock.release()
                yield from self._not_full.wait()
                if lock.charge_cmd is not None:
                    yield lock.charge_cmd
                if not lock.take_or_enqueue(me):
                    yield BLOCK
                    lock.confirm_after_block(me)
            active = [c for c in self._consumers if not c.closed_for_new]
            if active:
                self._pages[self._head_seq] = _SplPage(batch, len(active))
                for c in active:
                    c.addressed += 1
                    if c.budget is not None:
                        c.budget -= 1
                        if c.budget == 0:
                            # Finishing packet: stop addressing it.
                            c.closed_for_new = True
            self._head_seq += 1
            self.pages_emitted += 1
            self._not_empty.notify_all()
        finally:
            self._lock.release()

    def close(self) -> None:
        """Producer finished; consumers drain and then see END."""
        self._producer_done = True
        self._not_empty.notify_all()

    # ------------------------------------------------------------------
    def read(self, consumer: SplConsumer) -> Iterator[Any]:
        """Consumer: fetch the next page addressed to it, or END.

        The lock protocol is inlined (a consumer takes the lock once per
        page); the yielded command sequence is exactly what
        ``yield from self._lock.acquire()`` would produce."""
        lock = self._lock
        charge = lock.charge_cmd
        me = self.sim.current
        if consumer.lock_prepaid:
            # Fast mode: the caller fused this read's lock charge into its
            # previous command (see ``prepay_lock_charge``); it completed
            # at this very instant, so go straight to the acquisition.
            consumer.lock_prepaid = False
            prepaid = True
        else:
            prepaid = False
        while True:
            if charge is not None and not prepaid:
                yield charge
            prepaid = False
            if not lock.take_or_enqueue(me):
                yield BLOCK
                lock.confirm_after_block(me)
            if consumer.read_count < consumer.addressed:
                page = self._pages[consumer.next_seq]
                batch = page.batch
                page.readers -= 1
                if page.readers == 0:
                    del self._pages[consumer.next_seq]
                    self._not_full.notify_all()
                consumer.next_seq += 1
                consumer.read_count += 1
                lock.release()
                if consumer.deferred:
                    # Fast mode: the caller fuses the read charge in front
                    # of its next yield (see ``defer_read_charge``).
                    return batch
                yield self._read_charge
                return batch
            done = consumer.closed_for_new or self._producer_done
            lock.release()
            if done:
                return END
            yield from self._not_empty.wait()


class SplExchange:
    """Exchange facade over an SPL, mirroring :class:`FifoExchange`."""

    kind = "spl"

    def __init__(
        self, sim: "Simulator", cost: "CostModel", max_pages: int, name: str, fuse: bool = False
    ):
        self.spl = SharedPagesList(sim, cost, max_pages, name, fuse=fuse)
        self.name = name

    @property
    def closed(self) -> bool:
        return self.spl.closed

    @property
    def active_consumers(self) -> int:
        return self.spl.active_consumers

    @property
    def pages_emitted(self) -> int:
        return self.spl.pages_emitted

    def open_reader(self, budget: int | None = None) -> SplConsumer:
        if self.spl.closed:
            raise RuntimeError(f"open_reader on closed exchange {self.name!r}")
        return self.spl.register(budget)

    def emit(self, batch: Batch, lead=None) -> Iterator[Any]:
        # Plain call returning the SPL's generator (no delegating frame).
        return self.spl.emit(batch, lead)

    def close(self) -> None:
        self.spl.close()
