"""Tests for the expression layer (compile / signature / terms)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.query.expr import And, Arith, Between, Cmp, Col, Const, InSet, Not, Or
from repro.storage.schema import Column, Schema

SCHEMA = Schema([Column("a"), Column("b", "float"), Column("s", "str")])


def ev(expr, row):
    return expr.compile(SCHEMA)(row)


class TestCompile:
    def test_col_const(self):
        assert ev(Col("b"), (1, 2.5, "x")) == 2.5
        assert ev(Const(7), (0, 0, "")) == 7

    @pytest.mark.parametrize(
        "op,expected",
        [("<", True), ("<=", True), ("=", False), ("!=", True), (">=", False), (">", False)],
    )
    def test_cmp_ops(self, op, expected):
        assert ev(Cmp(op, "a", 5), (3, 0.0, "")) is expected

    def test_cmp_accepts_strings_as_col_and_const(self):
        assert ev(Cmp("=", "s", "x"), (0, 0.0, "x")) is True

    def test_between(self):
        e = Between("a", 2, 4)
        assert ev(e, (2, 0, "")) and ev(e, (4, 0, ""))
        assert not ev(e, (1, 0, "")) and not ev(e, (5, 0, ""))

    def test_in_set(self):
        e = InSet("s", ["x", "y"])
        assert ev(e, (0, 0, "y"))
        assert not ev(e, (0, 0, "z"))

    def test_and_or_not(self):
        e = And(Cmp(">", "a", 0), Cmp("<", "a", 10))
        assert ev(e, (5, 0, "")) and not ev(e, (11, 0, ""))
        e = Or(Cmp("=", "a", 1), Cmp("=", "a", 2))
        assert ev(e, (2, 0, "")) and not ev(e, (3, 0, ""))
        assert ev(Not(Cmp("=", "a", 1)), (2, 0, ""))

    def test_arith(self):
        e = Arith("*", Col("b"), Arith("+", Const(1.0), Col("b")))
        assert ev(e, (0, 2.0, "")) == pytest.approx(6.0)

    def test_unknown_operator_rejected(self):
        with pytest.raises(ValueError):
            Cmp("~", "a", 1)
        with pytest.raises(ValueError):
            Arith("%", "a", 1)

    def test_empty_inset_rejected(self):
        with pytest.raises(ValueError):
            InSet("a", [])


class TestSignature:
    def test_structural_equality(self):
        assert Cmp("=", "a", 5) == Cmp("=", "a", 5)
        assert Cmp("=", "a", 5) != Cmp("=", "a", 6)
        assert hash(Between("a", 1, 2)) == hash(Between("a", 1, 2))

    def test_inset_order_insensitive(self):
        assert InSet("s", ["x", "y"]) == InSet("s", ["y", "x", "x"])

    def test_and_order_insensitive(self):
        # Conjunction is commutative, so the signature canonicalizes the
        # conjunct order: ``a AND b`` and ``b AND a`` are the same plan
        # and must share (sub-plan registry, result cache, folding).
        # Evaluation still runs in author order (short-circuit cost).
        a, b = Cmp("=", "a", 1), Cmp("=", "b", 2.0)
        assert And(a, b) == And(b, a)
        assert hash(And(a, b)) == hash(And(b, a))
        # ... but different conjunct *sets* stay distinct.
        assert And(a, b) != And(a, Cmp("=", "b", 3.0))

    def test_signatures_hashable_and_distinct(self):
        exprs = [
            Col("a"),
            Const(1),
            Cmp("<", "a", 1),
            Between("a", 0, 1),
            InSet("a", [1]),
            And(Cmp("=", "a", 1)),
            Or(Cmp("=", "a", 1)),
            Not(Cmp("=", "a", 1)),
            Arith("+", "a", 1),
        ]
        assert len({e.signature for e in exprs}) == len(exprs)


class TestTermsAndColumns:
    def test_terms_counts(self):
        assert Cmp("=", "a", 1).terms == 1
        assert Between("a", 0, 1).terms == 2
        assert And(Cmp("=", "a", 1), Between("b", 0, 1)).terms == 3
        assert Col("a").terms == 0

    def test_columns(self):
        e = And(Cmp("=", "a", 1), Or(Cmp("<", "b", 2.0), InSet("s", ["x"])))
        assert e.columns() == {"a", "b", "s"}


class TestPropertyOracle:
    """Predicates must agree with direct Python evaluation."""

    @settings(max_examples=80, deadline=None)
    @given(
        a=st.integers(-10, 10),
        b=st.floats(-5, 5, allow_nan=False),
        lo=st.integers(-10, 10),
        hi=st.integers(-10, 10),
    )
    def test_between_oracle(self, a, b, lo, hi):
        row = (a, b, "s")
        assert ev(Between("a", lo, hi), row) == (lo <= a <= hi)

    @settings(max_examples=80, deadline=None)
    @given(a=st.integers(-5, 5), vals=st.lists(st.integers(-5, 5), min_size=1, max_size=8))
    def test_inset_oracle(self, a, vals):
        assert ev(InSet("a", vals), (a, 0.0, "")) == (a in set(vals))
